//! Prosperity reproduction — umbrella crate.
//!
//! Re-exports the public API of every sub-crate so examples and downstream
//! users can depend on a single package:
//!
//! * [`spikemat`] — bit-packed spike matrices, tiling, reference GeMM.
//! * [`core`] — the Product Sparsity algorithm (the paper's contribution).
//! * [`neuron`] — LIF/FS spiking neuron models.
//! * [`models`] — SNN model zoo and calibrated activation-trace generation.
//! * [`sim`] — cycle-accurate Prosperity simulator and energy model.
//! * [`baselines`] — Eyeriss / PTB / SATO / MINT / Stellar / LoAS / A100.
//!
//! # Quickstart
//!
//! ```
//! use prosperity::core::ProSparsityPlan;
//! use prosperity::spikemat::{SpikeMatrix, TileShape};
//!
//! let spikes = SpikeMatrix::from_rows_of_bits(&[
//!     &[1, 0, 1, 0],
//!     &[1, 0, 0, 1],
//!     &[1, 0, 1, 1],
//!     &[0, 0, 1, 0],
//!     &[1, 1, 0, 1],
//!     &[1, 1, 0, 1],
//! ]);
//! let plan = ProSparsityPlan::build(&spikes);
//! // Product sparsity reduces the 14 bit-sparse ops of this matrix to 6.
//! assert!(plan.stats().pro_ops < plan.stats().bit_ops);
//! ```

pub use prosperity_baselines as baselines;
pub use prosperity_core as core;
pub use prosperity_models as models;
pub use prosperity_neuron as neuron;
pub use prosperity_sim as sim;
pub use spikemat;

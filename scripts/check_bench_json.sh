#!/usr/bin/env bash
# Validates the committed BENCH_*.json artifacts: each file must parse as
# JSON and carry the fields BENCHMARKS.md promises, so a bench refactor
# that silently drops a field (or a hand-edit that breaks the format) fails
# CI instead of bit-rotting the perf audit trail. Requires jq.
set -u

cd "$(dirname "$0")/.."

if ! command -v jq >/dev/null 2>&1; then
    echo "jq is required to validate BENCH_*.json (install jq and re-run)"
    exit 1
fi

status=0

# need FILE JQ_EXPR DESCRIPTION — the expression must select a truthy value.
need() {
    if ! jq -e "$2" "$1" >/dev/null 2>&1; then
        echo "MISSING: $1: $2 ($3)"
        status=1
    fi
}

for f in BENCH_kernels.json BENCH_e2e.json BENCH_serving.json BENCH_perf.json; do
    if [ ! -f "$f" ]; then
        echo "MISSING FILE: $f"
        status=1
        continue
    fi
    if ! jq empty "$f" >/dev/null 2>&1; then
        echo "PARSE ERROR: $f is not valid JSON"
        status=1
        continue
    fi
    need "$f" '.unit == "ms"' "timing unit"
    need "$f" '.scenarios | length > 0' "non-empty scenarios"
done

# BENCH_kernels.json: geometry + legacy/opt timings + speedups per scenario,
# including the acceptance row.
need BENCH_kernels.json \
    '[.scenarios[] | has("m") and has("k") and has("n") and has("density")
      and has("legacy_total_ms") and has("opt_total_ms") and has("speedup_total")] | all' \
    "kernels per-scenario fields"
need BENCH_kernels.json \
    '.scenarios[] | select(.name | startswith("acceptance"))' \
    "kernels acceptance row"
need BENCH_kernels.json 'has("threads_effective")' "kernels threads_effective"

# Parallel must not lose to serial — but only when the recording run
# actually had more than one worker thread; a single-core run records
# threads_effective == 1 and is exempt (10% tolerance for timer noise).
need BENCH_kernels.json \
    '.threads_effective <= 1
     or ([.scenarios[] | .opt_total_ms <= .opt_serial_total_ms * 1.1] | all)' \
    "kernels parallel >= serial (threads_effective > 1 only)"

# BENCH_perf.json: SIMD-vs-scalar kernel rows, allocation counts, and the
# snapshot encode throughput. The speedup thresholds only bind when the
# recording run actually had AVX2 compiled in and detected (simd_active).
need BENCH_perf.json \
    'has("simd_feature") and has("simd_active") and has("threads_effective")' \
    "perf dispatch provenance fields"
for name in intersect_popcount transpose64; do
    need BENCH_perf.json \
        ".scenarios[] | select(.name == \"$name\")
         | has(\"scalar_ns\") and has(\"simd_ns\") and has(\"speedup\")" \
        "perf $name row fields"
done
need BENCH_perf.json \
    '(.simd_active | not)
     or ([.scenarios[] | select(.name == "intersect_popcount") | .speedup >= 1.2] | all)' \
    "perf intersect_popcount SIMD >= 1.2x scalar (simd_active only)"
need BENCH_perf.json \
    '.scenarios[] | select(.name == "alloc_steady_state")
     | has("steps") and has("allocs_total") and has("step_ms")' \
    "perf alloc_steady_state fields"
need BENCH_perf.json \
    '.scenarios[] | select(.name == "alloc_steady_state") | .allocs_per_step == 0' \
    "perf steady-state serving allocations == 0"
need BENCH_perf.json \
    '.scenarios[] | select(.name == "snapshot_encode")
     | has("bytes") and has("plans") and has("encode_ms") and has("mb_per_s")' \
    "perf snapshot_encode fields"
need BENCH_perf.json \
    '.scenarios[] | select(.name == "snapshot_encode") | .allocs_warm == 0' \
    "perf warm snapshot encode allocations == 0"

# BENCH_e2e.json: naive-vs-engine timings and session stats per scenario.
need BENCH_e2e.json \
    '[.scenarios[] | has("gemms") and has("naive_ms") and has("engine_ms")
      and has("speedup") and has("hit_rate")] | all' \
    "e2e per-scenario fields"
for name in correlated_trace fig8_spikingbert attention_stream; do
    need BENCH_e2e.json ".scenarios[] | select(.name == \"$name\")" "e2e $name row"
done

# BENCH_serving.json: the documented scenario set, stats blocks included.
for name in shared_cache_2 shared_cache_4 shared_cache_8 fig8_admission warm_start qos preemption shard_tuning resilience fleet; do
    need BENCH_serving.json ".scenarios[] | select(.name == \"$name\")" "serving $name row"
done
need BENCH_serving.json 'has("threads_effective")' "serving threads_effective"
need BENCH_serving.json \
    '[.scenarios[] | select(.name | startswith("shared_cache_"))
      | has("private_ms") and has("shared_rr_ms") and has("shared_aff_ms")
      and has("merged") and has("private_merged") and has("shared_cache") and has("sessions")] | all' \
    "shared_cache row fields"
need BENCH_serving.json \
    '[.scenarios[] | select(.name | startswith("shared_cache_")) | .shared_cache
      | has("hits") and has("misses") and has("insertions") and has("evictions")
      and has("bypasses") and has("dedups") and has("restored_hits")
      and has("resident") and has("restored_resident") and has("tenants")
      and has("shards") and has("capacity") and has("shard_resets")] | all' \
    "SharedCacheStats block fields"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "fig8_admission")
     | has("admission_off_ms") and has("admission_on_ms") and has("stats_off") and has("stats_on")' \
    "fig8_admission fields"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "warm_start")
     | has("snapshot_plans") and has("snapshot_bytes") and has("cold_ms") and has("warm_ms")
     and has("cold_hit_curve") and has("warm_hit_curve")' \
    "warm_start fields"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "qos") | .weighted
     | has("weights") and has("rr_ms") and has("weighted_ms")
     and has("throughput_ratio") and has("share_ratio") and has("lane_steps")' \
    "qos weighted fields"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "qos") | .deadline
     | has("budgets") and has("edf_misses") and has("rr_misses")
     and has("edf_completion") and has("rr_completion")' \
    "qos deadline fields"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "qos") | .rr_skew
     | has("lengths") and has("gemms") and has("rr_ms")' \
    "qos rr_skew fields"

# The recorded qos row must also satisfy its acceptance thresholds: the
# weight-4 tenant gets >= 2.5x the weight-1 step share at ~unchanged
# aggregate throughput, and EDF meets the budget mix round-robin misses.
need BENCH_serving.json \
    '.scenarios[] | select(.name == "qos") | .weighted.share_ratio >= 2.5' \
    "qos weighted share >= 2.5x"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "qos")
     | .weighted.throughput_ratio >= 0.95 and .weighted.throughput_ratio <= 1.05' \
    "qos weighted throughput within 5% of round-robin"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "qos") | .deadline.edf_misses == 0' \
    "qos EDF meets the feasible mix"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "qos") | .deadline.rr_misses >= 1' \
    "qos round-robin misses the tight budget"

# The preemption row: fields, plus its acceptance thresholds — slicing the
# scheduling quantum below the GeMM must at least halve short-tenant
# completion latency under the 1000:10:10 size skew while keeping aggregate
# throughput within 5% of whole-GeMM dispatch.
need BENCH_serving.json \
    '.scenarios[] | select(.name == "preemption")
     | has("lengths") and has("monster_row_tiles")
     and has("whole_short_ms") and has("whole_total_ms") and has("sweep")
     and has("knee_quantum") and has("knee_short_ms") and has("knee_total_ms")
     and has("latency_improvement") and has("throughput_ratio")' \
    "preemption fields"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "preemption")
     | ([.sweep[] | has("quantum") and has("short_ms") and has("total_ms")] | all)
       and (.sweep | length > 0)' \
    "preemption sweep entries"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "preemption") | .latency_improvement >= 2' \
    "preemption short-tenant completion >= 2x better than whole-GeMM"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "preemption") | .throughput_ratio >= 0.95' \
    "preemption throughput within 5% of whole-GeMM dispatch"

# The shard_tuning row: the measured lock-hold sweep behind the derived
# shard-count default.
need BENCH_serving.json \
    '.scenarios[] | select(.name == "shard_tuning")
     | has("recommended_shards")
     and ([.sweep[] | has("shards") and has("ms") and has("lock_hold_ns")] | all)
     and (.sweep | length > 0)' \
    "shard_tuning fields"

# The resilience row: fields, plus its acceptance thresholds — every
# injected fault left a trace in the counters, and the surviving lanes kept
# >= 0.9x the throughput of a fault-free fleet doing the same work.
need BENCH_serving.json \
    '.scenarios[] | select(.name == "resilience")
     | has("clean_ms") and has("faulted_ms") and has("surviving_throughput_ratio")
     and has("lane_faults") and has("shard_resets") and has("snapshot_saves")
     and has("snapshots_quarantined") and has("recovered_plans")' \
    "resilience fields"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "resilience") | .lane_faults >= 1' \
    "resilience records the lane fault"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "resilience") | .snapshots_quarantined >= 1' \
    "resilience quarantines the rotted snapshot"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "resilience") | .recovered_plans >= 1' \
    "resilience recovers from the previous good snapshot"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "resilience") | .surviving_throughput_ratio >= 0.9' \
    "resilience surviving-lane throughput >= 0.9x fault-free"

# The fleet row: fields, plus its acceptance thresholds — a cold process
# joining a warm fleet must reach steady-state hit rate in strictly fewer
# steps than starting alone, and the cross-process duplicate-plan savings
# must be recorded and real (gossip adopted plans the joiner never
# computed).
need BENCH_serving.json \
    '.scenarios[] | select(.name == "fleet")
     | has("nodes") and has("steady_hit_rate")
     and has("cold_alone_steps_to_steady") and has("warm_join_steps_to_steady")
     and has("duplicate_plans_saved") and has("gossip_imports")
     and has("gossip_plans_adopted") and has("restored_hits")
     and has("cold_ms") and has("warm_ms") and has("bootstrap_ms")
     and has("cold_hit_curve") and has("warm_hit_curve")' \
    "fleet fields"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "fleet")
     | .warm_join_steps_to_steady < .cold_alone_steps_to_steady' \
    "fleet warm join reaches steady state in strictly fewer steps"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "fleet") | .duplicate_plans_saved >= 1' \
    "fleet records cross-process duplicate-plan savings"
need BENCH_serving.json \
    '.scenarios[] | select(.name == "fleet")
     | .gossip_plans_adopted >= 1 and .gossip_imports >= 1' \
    "fleet gossip adopted peer plans"

if [ $status -eq 0 ]; then
    echo "all BENCH_*.json artifacts parse and carry the documented fields"
fi
exit $status

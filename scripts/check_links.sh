#!/usr/bin/env bash
# Checks that intra-repo markdown links resolve to real files.
#
# Scans the given markdown files (default: the top-level docs) for inline
# links `[text](target)`, ignores external (scheme://, mailto:) and
# pure-anchor (#...) targets, strips any #fragment, and verifies the
# remaining path exists relative to the repo root. Offline and
# dependency-free by design (grep/sed only) so CI can run it anywhere.
set -u

cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
    files=(README.md ARCHITECTURE.md BENCHMARKS.md ROADMAP.md)
fi

status=0
for file in "${files[@]}"; do
    if [ ! -f "$file" ]; then
        echo "MISSING FILE: $file (listed for link checking)"
        status=1
        continue
    fi
    # Inline links only; reference-style links are not used in this repo.
    targets=$(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*(\(.*\))/\1/')
    while IFS= read -r target; do
        [ -z "$target" ] && continue
        case "$target" in
            *://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        # Relative targets resolve against the containing file's directory
        # (absolute ones against the repo root).
        case "$path" in
            /*) resolved=".$path" ;;
            *) resolved="$(dirname "$file")/$path" ;;
        esac
        if [ ! -e "$resolved" ]; then
            echo "BROKEN LINK: $file -> $target"
            status=1
        fi
    done <<< "$targets"
done

if [ $status -eq 0 ]; then
    echo "all intra-repo links resolve (${files[*]})"
fi
exit $status

#!/usr/bin/env bash
# Runs the repo's static analyzer (prosperity-analyze) against the
# workspace with the checked-in analyze.toml baseline, then its own rule
# fixture tests. CI's `analyze` job runs exactly this; run it locally
# before pushing anything that touches engine/, spikemat/, or the stats
# structs.
#
# Exit codes: 0 clean; nonzero on any non-allowlisted finding, stale
# allowlist entry, or fixture-test failure.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== prosperity-analyze: workspace scan =="
cargo run -p prosperity-analyze --release --quiet -- --workspace

echo "== prosperity-analyze: rule fixtures =="
cargo test -q -p prosperity-analyze

echo "static analysis: OK"

//! Cycle-accurate performance, energy and area simulation of the Prosperity
//! accelerator (paper Secs. IV–VI, evaluated in Sec. VII).
//!
//! The simulator mirrors the hardware organisation:
//!
//! * [`config`] — the Table III architecture setup (tile geometry, PE count,
//!   buffer sizes, DRAM bandwidth, clock).
//! * [`events`] — micro-architectural event counters (TCAM bit-ops, PE
//!   accumulations, buffer/DRAM traffic) that drive the energy model.
//! * [`pipeline`] — the two-level pipeline timing model: the 5-stage
//!   intra-phase pipeline (`m + 4` cycles per ProSparsity phase) and the
//!   inter-phase overlap of ProSparsity processing with computation.
//! * [`ppu`] — per-layer simulation of the ProSparsity Processing Unit,
//!   including the Fig. 9 ablation modes.
//! * [`energy`] — event-cost energy model and component area model anchored
//!   to the paper's published breakdown (Fig. 10, Table IV).
//! * [`accel`] — whole-model simulation producing a [`report::ModelPerf`].
//! * [`dse`] — the Fig. 7 tile-size design-space exploration.
//! * [`cost_model`] — the closed-form benefit/cost analysis of Sec. VII-G.
//! * [`sfu`] — the Special Function Unit for spiking-transformer support
//!   (softmax / layer norm, Sec. IV).
//! * [`scale`] — intra-/inter-PPU scalability models (Sec. VIII-A).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accel;
pub mod config;
pub mod cost_model;
pub mod dse;
pub mod energy;
pub mod events;
pub mod pipeline;
pub mod ppu;
pub mod report;
pub mod scale;
pub mod sfu;

pub use accel::simulate_model;
pub use config::{ProsperityConfig, SimMode};
pub use energy::{AreaModel, EnergyBreakdown, EnergyModel};
pub use events::EventCounts;
pub use report::{LayerPerf, ModelPerf};

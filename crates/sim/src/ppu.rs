//! Per-layer simulation of the ProSparsity Processing Unit.
//!
//! For every `m × k` spike tile the simulator runs the software model of
//! Detector → Pruner → Dispatcher (via [`prosperity_core::plan::TileMeta`]),
//! derives the phase timings of [`crate::pipeline`], counts the
//! micro-architectural events of [`crate::events`], and folds everything
//! into a [`LayerPerf`].

use crate::config::{ProsperityConfig, SimMode};
use crate::events::EventCounts;
use crate::pipeline::{
    compute_phase_cycles, compute_phase_cycles_with_deps, overlap_tiles, prosparsity_phase_cycles,
    TileTiming,
};
use crate::report::LayerPerf;
use prosperity_core::plan::TileMeta;
use prosperity_core::stats::ProStats;
use prosperity_core::MatchKind;
use spikemat::SpikeMatrix;

/// Bank parallelism of the product-sparsity table during the slow
/// (forest-walk) dispatch of the Fig. 9 ablation: the table is banked, so
/// several ancestor probes proceed per cycle; the walk still cannot overlap
/// computation the way the stable-sort dispatcher does.
pub const SLOW_DISPATCH_LANES: u64 = 4;

/// Simulates one spiking GeMM (`spikes × (K × n_cols)` weight) on the PPU.
///
/// `n_cols` is the layer's full output width `N`; the PPU covers it in
/// `⌈N / n_tile⌉` passes per spike tile, reusing the tile's meta information.
pub fn simulate_layer(spikes: &SpikeMatrix, n_cols: usize, config: &ProsperityConfig) -> LayerPerf {
    let tile_shape = config.tile;
    let n_passes = n_cols.div_ceil(config.n_tile).max(1) as u64;
    let mut events = EventCounts::default();
    let mut stats = ProStats::default();
    let mut timings = Vec::new();
    let log_m = (tile_shape.m.max(2) as f64).log2().ceil() as u64;

    for tile in spikes.tiles(tile_shape) {
        let valid = tile.valid_rows;
        let spike_bits: u64 = (0..valid).map(|r| tile.data.row(r).popcount() as u64).sum();

        // --- ProSparsity processing phase ------------------------------
        // (compute cycles per pass, per-row pattern popcounts, stats, phase, prefix rows)
        let (compute_once, pattern_pcs, tile_stats, pro_phase, prefix_rows): (
            u64,
            Vec<usize>,
            ProStats,
            u64,
            u64,
        ) = match config.mode {
            SimMode::BitSparsityOnly => {
                // No detection: rows are their own patterns.
                let pcs: Vec<usize> = (0..valid).map(|r| tile.data.row(r).popcount()).collect();
                let s = ProStats {
                    dense_ops: (valid * tile.valid_cols) as u64,
                    bit_ops: spike_bits,
                    pro_ops: spike_bits,
                    rows: valid as u64,
                    root_rows: valid as u64,
                    ..ProStats::default()
                };
                (compute_phase_cycles(pcs.iter().copied()), pcs, s, 0, 0)
            }
            SimMode::ProSparsitySlowDispatch | SimMode::Full => {
                let meta = {
                    let mut meta = TileMeta::build(&tile.data, tile.row_start, tile.col_start);
                    meta.valid_rows = valid;
                    meta.valid_cols = tile.valid_cols;
                    meta
                };
                let s = meta.stats(spike_bits);
                // Per-row issue cost: an Exact Match row spends its one
                // issue/writeback slot; a Partial Match row first loads
                // the prefix partial sum from the output buffer (Step 9)
                // and then accumulates its pattern bits; a root row
                // accumulates from zero.
                let costs: Vec<usize> = (0..valid)
                    .map(|r| {
                        let row = &meta.rows[r];
                        match row.kind {
                            MatchKind::Exact => 1,
                            MatchKind::Partial => 1 + row.ops(),
                            MatchKind::None => row.ops().max(1),
                        }
                    })
                    .collect();
                let pcs: Vec<usize> = (0..valid).map(|r| meta.rows[r].ops()).collect();
                let prefix_rows = (0..valid)
                    .filter(|&r| meta.rows[r].prefix.is_some())
                    .count() as u64;
                // Detector events: every valid row queries the TCAM once.
                events.tcam_queries += valid as u64;
                events.tcam_bitops += valid as u64 * (tile_shape.m * tile_shape.k) as u64;
                events.popcounts += valid as u64;
                // Pruner: each query row's SI vector is filtered and
                // argmax-reduced across all m candidate channels.
                events.prune_comparisons += valid as u64 * tile_shape.m as u64 + log_m;
                // Sorter comparators (Sec. VII-G: 2 m log m per tile).
                events.sorter_comparators += 2 * valid as u64 * log_m;
                // Table accesses: one write per row + one read per issue.
                events.table_accesses += 2 * valid as u64;
                let extra = match config.mode {
                    SimMode::ProSparsitySlowDispatch => {
                        // O(m·d) forest walk, serialized with dispatch:
                        // one table probe per ancestor per row, spread
                        // over the table's banks.
                        let forest = meta.forest();
                        let probes =
                            (0..valid).map(|r| forest.depth(r) as u64).sum::<u64>() + valid as u64;
                        probes.div_ceil(SLOW_DISPATCH_LANES)
                    }
                    _ => 0,
                };
                let pro_phase = prosparsity_phase_cycles(valid, extra);
                // Issue in the Dispatcher's order, honouring the
                // output-buffer read-after-write hazard on prefix loads.
                let order: Vec<usize> = meta.order.iter().copied().filter(|&r| r < valid).collect();
                let prefixes: Vec<Option<usize>> =
                    (0..valid).map(|r| meta.rows[r].prefix).collect();
                // A prefix index may point at a padding row (never: only
                // valid rows are nonzero, and zero rows are not usable
                // prefixes), so the slice is consistent.
                let compute = compute_phase_cycles_with_deps(&order, &prefixes, &costs);
                (compute, pcs, s, pro_phase, prefix_rows)
            }
        };

        // --- Computation phase ------------------------------------------
        let compute = compute_once * n_passes;
        let pattern_bits: u64 = pattern_pcs.iter().map(|&p| p as u64).sum();

        events.pe_accumulations += pattern_bits * n_cols as u64;
        events.prefix_loads += prefix_rows * n_passes;
        events.output_writes += valid as u64 * n_passes;
        events.weight_buffer_bytes += pattern_bits * n_cols as u64 * config.weight_bits as u64 / 8;
        events.spike_buffer_bytes += 2 * (tile_shape.m * tile_shape.k / 8) as u64;
        let out_bytes_per_row = (n_cols * config.output_bits / 8) as u64;
        events.output_buffer_bytes += (valid as u64 + prefix_rows) * out_bytes_per_row;

        stats += tile_stats;
        timings.push(TileTiming { pro_phase, compute });
    }

    // --- DRAM traffic (double-buffered, overlapped with compute) --------
    // Weight-stationary streaming: each k×n weight tile is fetched once;
    // the (tiny, bit-packed) spike tiles are re-read per n-pass instead.
    let m_total = spikes.rows();
    let k_total = spikes.cols();
    let weight_bytes = (k_total * n_cols * config.weight_bits / 8) as u64;
    let spike_bytes = (m_total * k_total) as u64 / 8 * n_passes;
    let output_bytes = (m_total * n_cols) as u64; // 8-bit post-neuron values
    events.dram_bytes += weight_bytes + spike_bytes + output_bytes;
    events.neuron_updates += (m_total * n_cols) as u64;

    let compute_side = overlap_tiles(&timings);
    let dram_cycles = (events.dram_bytes as f64 / config.dram_bytes_per_cycle()).ceil() as u64;
    let cycles = compute_side.max(dram_cycles);

    LayerPerf {
        cycles,
        compute_cycles: compute_side,
        dram_cycles,
        events,
        stats,
    }
}

/// Convenience: count of rows with each match kind in a tile meta (used by
/// diagnostics and tests).
pub fn match_kind_counts(meta: &TileMeta) -> (usize, usize, usize) {
    let mut none = 0;
    let mut pm = 0;
    let mut em = 0;
    for r in meta.rows.iter().take(meta.valid_rows) {
        match r.kind {
            MatchKind::None => none += 1,
            MatchKind::Partial => pm += 1,
            MatchKind::Exact => em += 1,
        }
    }
    (none, pm, em)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_matrix() -> SpikeMatrix {
        SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 1, 0, 1],
            &[1, 1, 0, 1],
        ])
    }

    fn cfg(mode: SimMode) -> ProsperityConfig {
        ProsperityConfig {
            tile: spikemat::TileShape::new(6, 4),
            n_tile: 4,
            mode,
            ..ProsperityConfig::default()
        }
    }

    #[test]
    fn full_mode_reduces_pe_work_vs_bit_only() {
        let s = fig1_matrix();
        let full = simulate_layer(&s, 4, &cfg(SimMode::Full));
        let bit = simulate_layer(&s, 4, &cfg(SimMode::BitSparsityOnly));
        // Fig. 1: 14 bit ops vs 6 pro ops (×4 output cols).
        assert_eq!(bit.events.pe_accumulations, 14 * 4);
        assert_eq!(full.events.pe_accumulations, 6 * 4);
        assert!(full.stats.pro_ops < bit.stats.pro_ops);
    }

    #[test]
    fn compute_cycles_account_prefix_loads_and_em() {
        let s = fig1_matrix();
        let p = simulate_layer(&s, 4, &cfg(SimMode::Full));
        // Order [3,0,1,2,4,5]; costs: PM rows 1+pc, EM 1, roots max(1,pc).
        // r3 ends 1; r0 waits one forwarding bubble (1+1) → ends 4; r1 ends
        // 6; r2 waits on r1 (6+1) → ends 9; r4 ends 11; r5 waits on r4
        // (11+1) → ends 13. compute = 13 + 4 fill = 17; pro phase = 10.
        assert_eq!(p.compute_cycles, 10 + 17);
    }

    #[test]
    fn slow_dispatch_never_faster() {
        let s = fig1_matrix();
        let slow = simulate_layer(&s, 4, &cfg(SimMode::ProSparsitySlowDispatch));
        let fast = simulate_layer(&s, 4, &cfg(SimMode::Full));
        assert!(slow.compute_cycles >= fast.compute_cycles);
        // Same sparsity exploitation either way.
        assert_eq!(slow.events.pe_accumulations, fast.events.pe_accumulations);
    }

    #[test]
    fn bit_only_skips_detection_events() {
        let s = fig1_matrix();
        let p = simulate_layer(&s, 4, &cfg(SimMode::BitSparsityOnly));
        assert_eq!(p.events.tcam_bitops, 0);
        assert_eq!(p.events.sorter_comparators, 0);
        assert_eq!(p.events.prefix_loads, 0);
    }

    #[test]
    fn n_passes_scale_compute_and_events() {
        let s = fig1_matrix();
        let mut c = cfg(SimMode::Full);
        c.n_tile = 2; // N = 4 → 2 passes
        let p2 = simulate_layer(&s, 4, &c);
        let p1 = simulate_layer(&s, 4, &cfg(SimMode::Full));
        assert!(p2.compute_cycles > p1.compute_cycles);
        assert_eq!(p2.events.pe_accumulations, p1.events.pe_accumulations);
        assert_eq!(p2.events.output_writes, 2 * p1.events.output_writes);
    }

    #[test]
    fn dram_bound_layer_is_limited_by_bandwidth() {
        // Huge N with a tiny spike matrix: weight traffic dominates.
        let s = SpikeMatrix::zeros(4, 16);
        let c = ProsperityConfig {
            dram_bytes_per_sec: 1e9, // throttle
            ..ProsperityConfig::default()
        };
        let p = simulate_layer(&s, 4096, &c);
        assert_eq!(p.cycles, p.dram_cycles.max(p.compute_cycles));
        assert!(p.dram_cycles > p.compute_cycles);
    }

    #[test]
    fn stats_match_plan_densities() {
        use prosperity_core::ProSparsityPlan;
        let s = fig1_matrix();
        let p = simulate_layer(&s, 4, &cfg(SimMode::Full));
        let plan = ProSparsityPlan::build_tiled(&s, spikemat::TileShape::new(6, 4));
        assert_eq!(p.stats.pro_ops, plan.stats().pro_ops);
        assert_eq!(p.stats.bit_ops, plan.stats().bit_ops);
    }
}

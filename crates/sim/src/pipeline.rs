//! Pipeline timing model (paper Sec. VI, Fig. 6).
//!
//! **Intra-phase**: Detector → Pruner → Dispatcher form a five-stage pipeline
//! with a throughput of one spike row per cycle, so the ProSparsity
//! processing phase of an `m`-row tile takes `m + 4` cycles. The bitonic
//! sorter (O(log² m) stages) and the TCAM pre-load (double-buffered) run
//! concurrently and are never the bottleneck.
//!
//! **Computation phase**: the Processor issues one accumulate per cycle per
//! PE row; a spike row with `p` pattern bits takes `max(1, p)` cycles (an
//! Exact Match row still takes its single issue/writeback slot), plus a
//! four-stage fill, hence `Σ max(1, p_r) + 4 ≥ m + 4` cycles per tile pass.
//!
//! **Inter-phase**: the ProSparsity phase of tile `t+1` overlaps the
//! computation phase of tile `t`; only the first tile's ProSparsity phase is
//! exposed. [`overlap_tiles`] folds a tile sequence accordingly.

/// Pipeline depth of the Detector→Pruner→Dispatcher path (stages 2–6).
pub const PRO_PIPELINE_FILL: u64 = 4;

/// Pipeline depth of the Processor (issue/decode/execute/writeback).
pub const COMPUTE_PIPELINE_FILL: u64 = 4;

/// Timing of one spike tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TileTiming {
    /// Cycles of the ProSparsity processing phase (Detector+Pruner+Dispatcher).
    pub pro_phase: u64,
    /// Cycles of the computation phase (all `n`-tile passes included).
    pub compute: u64,
}

/// ProSparsity-phase cycles for a tile of `rows` spike rows.
///
/// `extra_dispatch` models the Fig. 9 "high-overhead" Dispatcher: the
/// forest-walk order generation costs O(m·d) additional cycles that cannot
/// be hidden (pass 0 for the overhead-free design).
pub fn prosparsity_phase_cycles(rows: usize, extra_dispatch: u64) -> u64 {
    rows as u64 + PRO_PIPELINE_FILL + extra_dispatch
}

/// Computation-phase cycles for one pass over a tile, given each valid row's
/// ProSparsity-pattern popcount.
///
/// Every row costs `max(1, popcount)` issue slots: rows fully covered by an
/// Exact Match still spend one cycle (the paper notes this as the gap to the
/// theoretical sparsity limit, Sec. VII-F).
pub fn compute_phase_cycles(pattern_popcounts: impl IntoIterator<Item = usize>) -> u64 {
    let issue: u64 = pattern_popcounts.into_iter().map(|p| p.max(1) as u64).sum();
    issue + COMPUTE_PIPELINE_FILL
}

/// Writeback-to-prefix-load latency: a suffix row reading its prefix's
/// partial sum cannot start until the prefix row's final accumulation has
/// produced it (a read-after-write hazard through the output buffer).
/// Because Exact/Partial-Match rows sort *adjacent* to their prefixes
/// (equal or near-equal popcounts), these stalls are a first-order cost of
/// deep reuse chains; a forwarding path from the execute stage bounds the
/// penalty at one bubble.
pub const WRITEBACK_LATENCY: u64 = 1;

/// Computation-phase cycles for one pass over a tile under prefix
/// dependencies.
///
/// Rows issue in `order`; row `r` occupies `costs[r]` issue slots, and if it
/// has a prefix it cannot *start* before the prefix's finish time plus
/// [`WRITEBACK_LATENCY`]. Returns the cycle at which the last row drains,
/// plus the pipeline fill.
///
/// # Panics
///
/// Panics if an order entry or prefix index is out of range of `costs`.
pub fn compute_phase_cycles_with_deps(
    order: &[usize],
    prefixes: &[Option<usize>],
    costs: &[usize],
) -> u64 {
    let mut finish = vec![0u64; costs.len()];
    let mut cur = 0u64;
    for &r in order {
        let mut start = cur;
        if let Some(p) = prefixes[r] {
            start = start.max(finish[p] + WRITEBACK_LATENCY);
        }
        let end = start + costs[r].max(1) as u64;
        finish[r] = end;
        cur = end;
    }
    cur + COMPUTE_PIPELINE_FILL
}

/// Folds a sequence of tile timings under the inter-phase pipeline: the
/// ProSparsity phase of tile `t+1` overlaps the computation of tile `t`, so
/// the total is `pro(0) + Σ_t max(compute(t), pro(t+1))` (with `pro` of the
/// one-past-last tile = 0).
pub fn overlap_tiles(tiles: &[TileTiming]) -> u64 {
    match tiles.first() {
        None => 0,
        Some(first) => {
            let mut total = first.pro_phase;
            for (i, t) in tiles.iter().enumerate() {
                let next_pro = tiles.get(i + 1).map_or(0, |n| n.pro_phase);
                total += t.compute.max(next_pro);
            }
            total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pro_phase_is_m_plus_4() {
        assert_eq!(prosparsity_phase_cycles(256, 0), 260);
        assert_eq!(prosparsity_phase_cycles(0, 0), 4);
        assert_eq!(prosparsity_phase_cycles(256, 100), 360);
    }

    #[test]
    fn compute_phase_counts_em_rows_as_one_cycle() {
        // Rows with popcounts [0 (EM), 3, 1]: 1 + 3 + 1 + fill.
        assert_eq!(compute_phase_cycles([0, 3, 1]), 5 + 4);
        assert_eq!(compute_phase_cycles(std::iter::empty::<usize>()), 4);
    }

    #[test]
    fn compute_phase_at_least_rows_plus_fill() {
        let rows = vec![0usize; 256];
        assert_eq!(compute_phase_cycles(rows), 256 + 4);
    }

    #[test]
    fn deps_stall_adjacent_chains() {
        // Three-row EM chain 0 → 1 → 2, each cost 1, issued back to back:
        // row 0 ends at 1; row 1 starts at max(1, 1+1)=2, ends 3; row 2
        // starts at 4, ends 5. Total = 5 + fill.
        let order = [0, 1, 2];
        let prefixes = [None, Some(0), Some(1)];
        let costs = [1, 1, 1];
        assert_eq!(
            compute_phase_cycles_with_deps(&order, &prefixes, &costs),
            5 + COMPUTE_PIPELINE_FILL
        );
    }

    #[test]
    fn deps_hidden_by_intervening_work() {
        // Independent rows between prefix and suffix hide the hazard.
        let order = [0, 1, 2, 3, 4];
        let prefixes = [None, None, None, None, Some(0)];
        let costs = [1, 2, 2, 2, 1];
        // Row 0 ends at 1; rows 1-3 end at 7; row 4 starts at max(7, 1+1)=7.
        assert_eq!(
            compute_phase_cycles_with_deps(&order, &prefixes, &costs),
            8 + COMPUTE_PIPELINE_FILL
        );
    }

    #[test]
    fn deps_reduce_to_plain_sum_without_prefixes() {
        let order = [2, 0, 1];
        let prefixes = [None, None, None];
        let costs = [3, 1, 2];
        assert_eq!(
            compute_phase_cycles_with_deps(&order, &prefixes, &costs),
            compute_phase_cycles(costs)
        );
    }

    #[test]
    fn overlap_hides_all_but_first_pro_phase() {
        // Equal tiles where compute dominates: total = pro + Σ compute.
        let t = TileTiming {
            pro_phase: 260,
            compute: 400,
        };
        let tiles = vec![t; 4];
        assert_eq!(overlap_tiles(&tiles), 260 + 4 * 400);
    }

    #[test]
    fn overlap_exposes_slow_dispatch() {
        // When the pro phase exceeds compute it becomes the bottleneck.
        let t = TileTiming {
            pro_phase: 500,
            compute: 300,
        };
        let tiles = vec![t; 3];
        // 500 + max(300,500) + max(300,500) + max(300,0)
        assert_eq!(overlap_tiles(&tiles), 500 + 500 + 500 + 300);
    }

    #[test]
    fn empty_and_single_tile() {
        assert_eq!(overlap_tiles(&[]), 0);
        let t = TileTiming {
            pro_phase: 10,
            compute: 20,
        };
        assert_eq!(overlap_tiles(&[t]), 30);
    }
}

//! Architecture scalability (paper Sec. VIII-A).
//!
//! The paper sketches two scaling axes:
//!
//! * **Intra-PPU**: nodes at the same level of the ProSparsity forest have
//!   no dependencies, so the Processor can issue several rows per cycle
//!   ([`intra_ppu_compute_cycles`] models a `w`-wide issue window that still
//!   honours prefix dependencies).
//! * **Inter-PPU**: multiple PPUs each process one spike tile at a time;
//!   tiles of a layer are independent except for shared DRAM bandwidth
//!   ([`inter_ppu_layer_cycles`]).

use crate::config::ProsperityConfig;
use crate::pipeline::{COMPUTE_PIPELINE_FILL, WRITEBACK_LATENCY};
use crate::ppu::simulate_layer;
use crate::report::LayerPerf;
use spikemat::SpikeMatrix;

/// Computation-phase cycles with an issue width of `width` rows per cycle.
///
/// Rows are taken in `order`; a row may start only after its prefix's finish
/// time plus the forwarding latency. Up to `width` rows occupy issue slots
/// concurrently (a row of cost `c` holds its slot for `c` cycles), modelling
/// the paper's observation that same-level forest nodes are independent.
pub fn intra_ppu_compute_cycles(
    order: &[usize],
    prefixes: &[Option<usize>],
    costs: &[usize],
    width: usize,
) -> u64 {
    assert!(width > 0, "issue width must be positive");
    let mut finish = vec![0u64; costs.len()];
    // Earliest-free time per issue slot.
    let mut slots = vec![0u64; width];
    for &r in order {
        // Pick the earliest-available slot.
        let slot = (0..width)
            .min_by_key(|&s| slots[s])
            .expect("width > 0 guarantees a slot");
        let mut start = slots[slot];
        if let Some(p) = prefixes[r] {
            start = start.max(finish[p] + WRITEBACK_LATENCY);
        }
        let end = start + costs[r].max(1) as u64;
        finish[r] = end;
        slots[slot] = end;
    }
    slots.into_iter().max().unwrap_or(0) + COMPUTE_PIPELINE_FILL
}

/// Layer cycles with `ppus` PPUs working on the layer's tiles in parallel.
///
/// Each PPU owns a share of the tiles (compute parallelizes); all PPUs share
/// the DRAM channels, so the memory side does not speed up.
pub fn inter_ppu_layer_cycles(
    spikes: &SpikeMatrix,
    n_cols: usize,
    config: &ProsperityConfig,
    ppus: usize,
) -> LayerPerf {
    assert!(ppus > 0, "need at least one PPU");
    let single = simulate_layer(spikes, n_cols, config);
    // Compute side divides across PPUs (tiles are independent); the first
    // tile's ProSparsity phase is paid once per PPU pipeline, a negligible
    // constant already inside the per-tile accounting.
    let compute = single.compute_cycles.div_ceil(ppus as u64);
    let cycles = compute.max(single.dram_cycles);
    LayerPerf {
        cycles,
        compute_cycles: compute,
        dram_cycles: single.dram_cycles,
        events: single.events,
        stats: single.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProsperityConfig;
    use spikemat::TileShape;

    #[test]
    fn wider_issue_never_slower() {
        let order = [0, 1, 2, 3, 4, 5];
        let prefixes = [None, None, Some(0), Some(1), None, Some(4)];
        let costs = [3, 2, 1, 1, 2, 1];
        let w1 = intra_ppu_compute_cycles(&order, &prefixes, &costs, 1);
        let w2 = intra_ppu_compute_cycles(&order, &prefixes, &costs, 2);
        let w4 = intra_ppu_compute_cycles(&order, &prefixes, &costs, 4);
        assert!(w2 <= w1);
        assert!(w4 <= w2);
    }

    #[test]
    fn independent_rows_scale_linearly() {
        let order: Vec<usize> = (0..8).collect();
        let prefixes = vec![None; 8];
        let costs = vec![4usize; 8];
        let w1 = intra_ppu_compute_cycles(&order, &prefixes, &costs, 1);
        let w4 = intra_ppu_compute_cycles(&order, &prefixes, &costs, 4);
        assert_eq!(w1 - COMPUTE_PIPELINE_FILL, 32);
        assert_eq!(w4 - COMPUTE_PIPELINE_FILL, 8);
    }

    #[test]
    fn dependency_chains_limit_intra_ppu_scaling() {
        // A pure chain cannot be parallelized at all.
        let order: Vec<usize> = (0..6).collect();
        let prefixes: Vec<Option<usize>> = (0..6)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        let costs = vec![1usize; 6];
        let w1 = intra_ppu_compute_cycles(&order, &prefixes, &costs, 1);
        let w8 = intra_ppu_compute_cycles(&order, &prefixes, &costs, 8);
        assert_eq!(w1, w8, "a chain has no same-level parallelism");
    }

    #[test]
    fn inter_ppu_splits_compute_but_not_dram() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let s = SpikeMatrix::random(512, 64, 0.3, &mut rng);
        let c = ProsperityConfig {
            tile: TileShape::new(64, 16),
            ..ProsperityConfig::default()
        };
        let one = inter_ppu_layer_cycles(&s, 128, &c, 1);
        let four = inter_ppu_layer_cycles(&s, 128, &c, 4);
        assert!(four.compute_cycles <= one.compute_cycles.div_ceil(4) + 1);
        assert_eq!(four.dram_cycles, one.dram_cycles);
        assert!(four.cycles <= one.cycles);
        // With enough PPUs the layer becomes DRAM bound.
        let many = inter_ppu_layer_cycles(&s, 128, &c, 64);
        assert_eq!(many.cycles, many.dram_cycles.max(many.compute_cycles));
    }

    #[test]
    #[should_panic(expected = "issue width must be positive")]
    fn zero_width_panics() {
        let _ = intra_ppu_compute_cycles(&[], &[], &[], 0);
    }
}

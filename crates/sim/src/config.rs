//! Architecture configuration (paper Table III).

use serde::{Deserialize, Serialize};
use spikemat::TileShape;

/// Simulation mode, matching the Fig. 9 ablation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimMode {
    /// Unstructured bit sparsity only: the row-wise dataflow and address
    /// decoder skip every zero, but no prefix reuse happens.
    BitSparsityOnly,
    /// Product sparsity with the high-overhead Dispatcher: execution order
    /// is found by walking the ProSparsity forest (O(m·d)), serialized with
    /// computation.
    ProSparsitySlowDispatch,
    /// Full Prosperity: product sparsity with the overhead-free stable-sort
    /// dispatch, fully overlapped with computation.
    Full,
}

/// The Prosperity architecture setup (Table III defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProsperityConfig {
    /// Spike-tile geometry `m × k` (default 256 × 16).
    pub tile: TileShape,
    /// Output-tile width `n` = number of PEs (default 128).
    pub n_tile: usize,
    /// Clock frequency in Hz (default 500 MHz).
    pub freq_hz: f64,
    /// DRAM bandwidth in bytes/second (default 64 GB/s: DDR4-2133 ×4ch).
    pub dram_bytes_per_sec: f64,
    /// Weight precision in bits (default 8).
    pub weight_bits: usize,
    /// Output partial-sum precision in bits (default 24, sized so the
    /// 96 KB output buffer holds a 256 × 128 tile).
    pub output_bits: usize,
    /// Simulation mode (ablations).
    pub mode: SimMode,
}

impl Default for ProsperityConfig {
    fn default() -> Self {
        Self {
            tile: TileShape::prosperity_default(),
            n_tile: 128,
            freq_hz: 500e6,
            dram_bytes_per_sec: 64e9,
            weight_bits: 8,
            output_bits: 24,
            mode: SimMode::Full,
        }
    }
}

impl ProsperityConfig {
    /// Returns the default config with a different tile geometry (DSE).
    pub fn with_tile(m: usize, k: usize) -> Self {
        Self {
            tile: TileShape::new(m, k),
            ..Self::default()
        }
    }

    /// Returns the default config in the given mode.
    pub fn with_mode(mode: SimMode) -> Self {
        Self {
            mode,
            ..Self::default()
        }
    }

    /// DRAM bytes transferable per clock cycle (128 B at defaults).
    pub fn dram_bytes_per_cycle(&self) -> f64 {
        self.dram_bytes_per_sec / self.freq_hz
    }

    /// Spike buffer bytes: double-buffered `m × k` bit tile.
    pub fn spike_buffer_bytes(&self) -> usize {
        2 * self.tile.m * self.tile.k / 8
    }

    /// Weight buffer bytes: double-buffered `k × n` tile at weight precision.
    pub fn weight_buffer_bytes(&self) -> usize {
        2 * self.tile.k * self.n_tile * self.weight_bits / 8
    }

    /// Output buffer bytes: one `m × n` tile of partial sums.
    pub fn output_buffer_bytes(&self) -> usize {
        self.tile.m * self.n_tile * self.output_bits / 8
    }

    /// TCAM bytes: double-buffered `m × k` bits.
    pub fn tcam_bytes(&self) -> usize {
        2 * self.tile.m * self.tile.k / 8
    }

    /// Seconds per cycle.
    pub fn cycle_time(&self) -> f64 {
        1.0 / self.freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let c = ProsperityConfig::default();
        assert_eq!((c.tile.m, c.tile.k, c.n_tile), (256, 16, 128));
        assert_eq!(c.tcam_bytes(), 1024); // 1 KB TCAM
        assert_eq!(c.output_buffer_bytes(), 96 * 1024); // 96 KB output buffer
        assert_eq!(c.spike_buffer_bytes(), 1024);
        assert_eq!(c.weight_buffer_bytes(), 4096);
        assert!((c.dram_bytes_per_cycle() - 128.0).abs() < 1e-9);
    }

    #[test]
    fn with_tile_overrides_geometry() {
        let c = ProsperityConfig::with_tile(64, 32);
        assert_eq!((c.tile.m, c.tile.k), (64, 32));
        assert_eq!(c.n_tile, 128);
    }

    #[test]
    fn cycle_time_inverse_of_freq() {
        let c = ProsperityConfig::default();
        assert!((c.cycle_time() - 2e-9).abs() < 1e-15);
    }
}

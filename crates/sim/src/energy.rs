//! Energy and area models.
//!
//! The paper obtains energy from Synopsys DC (logic), CACTI 7.0 (SRAM) and
//! DRAMsim3 (DRAM) at 28 nm. We substitute an event-cost model whose
//! per-event energies are **anchored to the paper's published breakdown**
//! (Fig. 10: 0.529 mm², 915 mW on Spikformer/CIFAR-10, with the Detector's
//! TCAM dominating on-chip power and DRAM dominating overall). Ratios
//! between components — which is what every evaluation figure reports — are
//! therefore preserved by construction; see DESIGN.md §4.

use crate::config::ProsperityConfig;
use crate::events::EventCounts;
use serde::{Deserialize, Serialize};

/// Per-event energies in picojoules (28 nm class, calibrated to Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// One TCAM bit comparison.
    pub tcam_bitop_pj: f64,
    /// One popcount-unit operation (16-bit).
    pub popcount_pj: f64,
    /// One pruner comparator operation (subset filter / argmax channel).
    pub prune_cmp_pj: f64,
    /// One bitonic-sorter comparator evaluation.
    pub sorter_cmp_pj: f64,
    /// One product-sparsity-table access (row-wide read or write).
    pub table_access_pj: f64,
    /// One 8-bit PE accumulation.
    pub pe_add_pj: f64,
    /// One SRAM byte transferred (any on-chip buffer).
    pub sram_byte_pj: f64,
    /// One DRAM byte transferred (DDR4, ≈15 pJ/bit).
    pub dram_byte_pj: f64,
    /// One LIF neuron update (SFU / spiking neuron array).
    pub neuron_update_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            tcam_bitop_pj: 0.64,
            popcount_pj: 1.0,
            prune_cmp_pj: 0.12,
            sorter_cmp_pj: 0.5,
            table_access_pj: 110.0,
            pe_add_pj: 2.2,
            sram_byte_pj: 0.38,
            dram_byte_pj: 120.0,
            neuron_update_pj: 10.0,
        }
    }
}

/// Energy per architectural component, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Detector (TCAM + popcount units).
    pub detector: f64,
    /// Pruner (subset filter + argmax).
    pub pruner: f64,
    /// Dispatcher (product sparsity table + bitonic sorter).
    pub dispatcher: f64,
    /// Processor (PE array + address decoder).
    pub processor: f64,
    /// On-chip buffers (spike / weight / output).
    pub buffer: f64,
    /// Other (SFU + spiking neuron array).
    pub other: f64,
    /// Off-chip DRAM.
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Total energy in joules.
    pub fn total(&self) -> f64 {
        self.detector
            + self.pruner
            + self.dispatcher
            + self.processor
            + self.buffer
            + self.other
            + self.dram
    }

    /// Total on-chip energy (everything but DRAM).
    pub fn on_chip(&self) -> f64 {
        self.total() - self.dram
    }
}

impl EnergyModel {
    /// Converts event counts into a per-component energy breakdown.
    pub fn energy(&self, ev: &EventCounts) -> EnergyBreakdown {
        let pj = |n: u64, e: f64| n as f64 * e * 1e-12;
        EnergyBreakdown {
            detector: pj(ev.tcam_bitops, self.tcam_bitop_pj) + pj(ev.popcounts, self.popcount_pj),
            pruner: pj(ev.prune_comparisons, self.prune_cmp_pj),
            dispatcher: pj(ev.sorter_comparators, self.sorter_cmp_pj)
                + pj(ev.table_accesses, self.table_access_pj),
            processor: pj(ev.pe_accumulations, self.pe_add_pj),
            buffer: pj(
                ev.weight_buffer_bytes + ev.spike_buffer_bytes + ev.output_buffer_bytes,
                self.sram_byte_pj,
            ),
            other: pj(ev.neuron_updates, self.neuron_update_pj),
            dram: pj(ev.dram_bytes, self.dram_byte_pj),
        }
    }
}

/// Component area model in mm² (28 nm), anchored to the Fig. 10 breakdown at
/// the default configuration and scaled with the structures' capacities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Detector anchor (0.021 mm² at 1 KB TCAM).
    pub detector_anchor: f64,
    /// Pruner anchor (0.020 mm² at 256 channels).
    pub pruner_anchor: f64,
    /// Dispatcher anchor (0.088 mm² at a 1.5 KB table for 256 rows).
    pub dispatcher_anchor: f64,
    /// Processor anchor (0.074 mm² at 128 PEs).
    pub processor_anchor: f64,
    /// Fixed overhead (SFU, neuron array, control): 0.022 mm².
    pub other: f64,
    /// Buffer anchor (0.303 mm² at the default 101 KB of SRAM).
    pub buffer_anchor: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            detector_anchor: 0.021,
            pruner_anchor: 0.020,
            dispatcher_anchor: 0.088,
            processor_anchor: 0.074,
            other: 0.022,
            buffer_anchor: 0.303,
        }
    }
}

/// Area per component for a given configuration, in mm².
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// Detector (TCAM + popcounts).
    pub detector: f64,
    /// Pruner.
    pub pruner: f64,
    /// Dispatcher.
    pub dispatcher: f64,
    /// Processor (PE array).
    pub processor: f64,
    /// SFU / neuron array / control.
    pub other: f64,
    /// On-chip buffers.
    pub buffer: f64,
}

impl AreaBreakdown {
    /// Total die area in mm².
    pub fn total(&self) -> f64 {
        self.detector + self.pruner + self.dispatcher + self.processor + self.other + self.buffer
    }
}

impl AreaModel {
    /// Area for a configuration. CAM-like structures grow mildly
    /// super-linearly with entry count (match-line/priority logic), matching
    /// the paper's observation that hardware overhead grows super-linearly
    /// with tile size `m` (Sec. VII-B).
    pub fn area(&self, config: &ProsperityConfig) -> AreaBreakdown {
        let def = ProsperityConfig::default();
        let m_ratio = config.tile.m as f64 / def.tile.m as f64;
        let k_ratio = config.tile.k as f64 / def.tile.k as f64;
        let n_ratio = config.n_tile as f64 / def.n_tile as f64;
        let cam_scale = m_ratio.powf(1.15) * k_ratio;
        let buf_bytes = |c: &ProsperityConfig| {
            (c.spike_buffer_bytes() + c.weight_buffer_bytes() + c.output_buffer_bytes()) as f64
        };
        AreaBreakdown {
            detector: self.detector_anchor * cam_scale,
            pruner: self.pruner_anchor * m_ratio,
            dispatcher: self.dispatcher_anchor * m_ratio.powf(1.15),
            processor: self.processor_anchor * n_ratio,
            other: self.other,
            buffer: self.buffer_anchor * buf_bytes(config) / buf_bytes(&def),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_area_matches_fig10_total() {
        let a = AreaModel::default().area(&ProsperityConfig::default());
        // Fig. 10 (a): 0.529 mm² total (component sum 0.528).
        assert!((a.total() - 0.528).abs() < 0.002, "total {}", a.total());
        assert!(a.buffer > a.dispatcher);
        assert!(a.dispatcher > a.detector); // dispatcher dominates non-buffer
    }

    #[test]
    fn area_grows_superlinearly_with_m() {
        let model = AreaModel::default();
        let a256 = model.area(&ProsperityConfig::with_tile(256, 16));
        let a512 = model.area(&ProsperityConfig::with_tile(512, 16));
        // Doubling m more than doubles CAM-like area.
        assert!(a512.detector / a256.detector > 2.0);
        assert!(a512.dispatcher / a256.dispatcher > 2.0);
        // …but the processor is untouched.
        assert!((a512.processor - a256.processor).abs() < 1e-12);
    }

    #[test]
    fn energy_breakdown_totals_are_additive() {
        let ev = EventCounts {
            tcam_bitops: 1_000_000,
            pe_accumulations: 500_000,
            dram_bytes: 10_000,
            ..EventCounts::default()
        };
        let e = EnergyModel::default().energy(&ev);
        let expect = 1e6 * 0.64e-12 + 5e5 * 2.2e-12 + 1e4 * 120e-12;
        assert!((e.total() - expect).abs() < 1e-15);
        assert!((e.on_chip() - (e.total() - e.dram)).abs() < 1e-18);
    }

    #[test]
    fn dram_byte_energy_dominates_sram() {
        let m = EnergyModel::default();
        assert!(m.dram_byte_pj > 100.0 * m.sram_byte_pj);
    }
}

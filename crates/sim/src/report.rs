//! Simulation result types.

use crate::config::ProsperityConfig;
use crate::events::EventCounts;
use prosperity_core::stats::ProStats;
use serde::{Deserialize, Serialize};

/// Performance of one spiking-GeMM layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LayerPerf {
    /// Total cycles (max of compute-side and DRAM-side with double buffering).
    pub cycles: u64,
    /// Compute-side cycles (inter-phase-pipelined PPU time).
    pub compute_cycles: u64,
    /// DRAM transfer cycles at the configured bandwidth.
    pub dram_cycles: u64,
    /// Micro-architectural events.
    pub events: EventCounts,
    /// Sparsity statistics.
    pub stats: ProStats,
}

/// Aggregated performance of a whole model inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPerf {
    /// Configuration the model was simulated under.
    pub config: ProsperityConfig,
    /// Per-layer results, in network order.
    pub layers: Vec<LayerPerf>,
    /// Σ layer cycles (layers execute back to back).
    pub cycles: u64,
    /// Σ layer events.
    pub events: EventCounts,
    /// Σ layer sparsity statistics.
    pub stats: ProStats,
    /// Σ `M·K·N` over layers: the dense-equivalent operation count used for
    /// throughput normalization (Table IV reports GOP/s of this quantity).
    pub effective_ops: u64,
}

impl ModelPerf {
    /// Aggregates per-layer results.
    pub fn from_layers(
        config: ProsperityConfig,
        layers: Vec<LayerPerf>,
        effective_ops: u64,
    ) -> Self {
        let cycles = layers.iter().map(|l| l.cycles).sum();
        let events = layers.iter().map(|l| l.events).sum();
        let stats = layers.iter().map(|l| l.stats).sum();
        Self {
            config,
            layers,
            cycles,
            events,
            stats,
            effective_ops,
        }
    }

    /// Wall-clock inference latency in seconds.
    pub fn time_seconds(&self) -> f64 {
        self.cycles as f64 * self.config.cycle_time()
    }

    /// Dense-equivalent throughput in GOP/s (the Table IV metric).
    pub fn throughput_gops(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.effective_ops as f64 / self.time_seconds() / 1e9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_sums_layers() {
        let l1 = LayerPerf {
            cycles: 100,
            compute_cycles: 100,
            dram_cycles: 50,
            ..LayerPerf::default()
        };
        let l2 = LayerPerf {
            cycles: 200,
            compute_cycles: 150,
            dram_cycles: 200,
            ..LayerPerf::default()
        };
        let m = ModelPerf::from_layers(ProsperityConfig::default(), vec![l1, l2], 1_000_000);
        assert_eq!(m.cycles, 300);
        assert!((m.time_seconds() - 300.0 * 2e-9).abs() < 1e-15);
        // 1e6 ops in 600 ns = 1666.7 GOP/s.
        assert!((m.throughput_gops() - 1_000_000.0 / 600e-9 / 1e9).abs() < 1e-6);
    }

    #[test]
    fn empty_model_has_zero_throughput() {
        let m = ModelPerf::from_layers(ProsperityConfig::default(), vec![], 0);
        assert_eq!(m.throughput_gops(), 0.0);
    }
}

//! Tile-size design-space exploration (paper Fig. 7 and Sec. VII-B).
//!
//! Sweeps the spike-tile geometry `m × k`, reporting for each point the
//! latency normalized to the bit-sparsity baseline, the achieved product
//! density, and the area/power proxies of the hardware cost curves.

use crate::accel::simulate_model;
use crate::config::{ProsperityConfig, SimMode};
use crate::energy::{AreaModel, EnergyModel};
use prosperity_models::workload::ModelTrace;
use serde::{Deserialize, Serialize};

/// One point of the tile-size sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DsePoint {
    /// Tile rows `m`.
    pub m: usize,
    /// Tile columns `k`.
    pub k: usize,
    /// Latency normalized to the bit-sparsity baseline at the same geometry
    /// (the Fig. 7 bar metric; < 1 means ProSparsity wins).
    pub norm_latency: f64,
    /// Achieved product density.
    pub pro_density: f64,
    /// Bit density (constant across the sweep, for reference).
    pub bit_density: f64,
    /// Normalized area (1.0 at the default 256 × 16 geometry).
    pub norm_area: f64,
    /// Normalized nominal power (1.0 at the default geometry).
    pub norm_power: f64,
}

/// Sweeps tile `m` at fixed `k`, averaging over the given traces.
pub fn sweep_m(traces: &[ModelTrace], ms: &[usize], k: usize) -> Vec<DsePoint> {
    ms.iter().map(|&m| evaluate(traces, m, k)).collect()
}

/// Sweeps tile `k` at fixed `m`.
pub fn sweep_k(traces: &[ModelTrace], m: usize, ks: &[usize]) -> Vec<DsePoint> {
    ks.iter().map(|&k| evaluate(traces, m, k)).collect()
}

/// Evaluates one tile geometry against all traces.
pub fn evaluate(traces: &[ModelTrace], m: usize, k: usize) -> DsePoint {
    let pro_cfg = ProsperityConfig::with_tile(m, k);
    let bit_cfg = ProsperityConfig {
        mode: SimMode::BitSparsityOnly,
        ..pro_cfg
    };
    let mut pro_cycles = 0u64;
    let mut bit_cycles = 0u64;
    let mut pro_ops = 0u64;
    let mut bit_ops = 0u64;
    let mut dense = 0u64;
    for t in traces {
        let pro = simulate_model(t, &pro_cfg);
        let bit = simulate_model(t, &bit_cfg);
        pro_cycles += pro.cycles;
        bit_cycles += bit.cycles;
        pro_ops += pro.stats.pro_ops;
        bit_ops += pro.stats.bit_ops;
        dense += pro.stats.dense_ops;
    }
    let area_model = AreaModel::default();
    let default_cfg = ProsperityConfig::default();
    let norm_area = area_model.area(&pro_cfg).total() / area_model.area(&default_cfg).total();
    DsePoint {
        m,
        k,
        norm_latency: if bit_cycles == 0 {
            1.0
        } else {
            pro_cycles as f64 / bit_cycles as f64
        },
        pro_density: if dense == 0 {
            0.0
        } else {
            pro_ops as f64 / dense as f64
        },
        bit_density: if dense == 0 {
            0.0
        } else {
            bit_ops as f64 / dense as f64
        },
        norm_area,
        norm_power: nominal_power_ratio(&pro_cfg, &default_cfg),
    }
}

/// Nominal-power proxy: the Detector's TCAM searches `m × k` bits every
/// cycle and dominates on-chip power (Fig. 10), so nominal power scales with
/// the per-cycle activity of the CAM plus the (area-proportional) leakage of
/// the remaining blocks.
fn nominal_power_ratio(cfg: &ProsperityConfig, base: &ProsperityConfig) -> f64 {
    let activity = |c: &ProsperityConfig| (c.tile.m * c.tile.k) as f64;
    let area = AreaModel::default();
    let a = 0.7 * activity(cfg) / activity(base);
    let l = 0.3 * area.area(cfg).total() / area.area(base).total();
    a + l
}

/// The energy model, re-exported here so DSE consumers can report power.
pub fn default_energy_model() -> EnergyModel {
    EnergyModel::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosperity_models::{Architecture, Dataset, Workload};

    fn traces() -> Vec<ModelTrace> {
        vec![Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.08, 5).generate_trace(0.25)]
    }

    #[test]
    fn larger_m_improves_density() {
        let t = traces();
        let pts = sweep_m(&t, &[4, 64, 256], 16);
        // Fig. 7 (left): larger m → lower product density, monotonically.
        assert!(pts[0].pro_density >= pts[1].pro_density);
        assert!(pts[1].pro_density >= pts[2].pro_density);
        // m = 4 cannot beat bit sparsity by much.
        assert!(pts[0].pro_density <= pts[0].bit_density + 1e-12);
    }

    #[test]
    fn area_and_power_grow_with_m() {
        let t = traces();
        let pts = sweep_m(&t, &[64, 256, 512], 16);
        assert!(pts[0].norm_area < pts[1].norm_area);
        assert!(pts[1].norm_area < pts[2].norm_area);
        assert!(pts[0].norm_power < pts[2].norm_power);
        // Normalization anchor: m=256 ⇒ 1.0.
        assert!((pts[1].norm_area - 1.0).abs() < 1e-9);
        assert!((pts[1].norm_power - 1.0).abs() < 1e-9);
    }

    #[test]
    fn latency_normalized_to_bit_sparsity_is_below_one_for_default() {
        let t = traces();
        let p = evaluate(&t, 256, 16);
        assert!(
            p.norm_latency < 1.0,
            "ProSparsity should beat bit sparsity: {}",
            p.norm_latency
        );
    }

    #[test]
    fn k_sweep_has_an_interior_sweet_spot_or_monotone_edge() {
        let t = traces();
        let pts = sweep_k(&t, 256, &[4, 16, 128]);
        // Density at k=16 should not be worse than at the extremes jointly
        // (the paper finds an interior optimum near k=16).
        let d4 = pts[0].pro_density;
        let d16 = pts[1].pro_density;
        let d128 = pts[2].pro_density;
        assert!(d16 <= d4.max(d128) + 1e-9, "d4={d4} d16={d16} d128={d128}");
    }
}

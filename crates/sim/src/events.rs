//! Micro-architectural event counters.
//!
//! Every unit of the PPU contributes countable events; the energy model
//! multiplies these by per-event costs. Counting events rather than
//! integrating power traces keeps the simulator fast while preserving the
//! paper's cost structure (Sec. VII-G counts exactly these events).

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Event counts accumulated over a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EventCounts {
    /// TCAM subset-search queries (one per row per tile).
    pub tcam_queries: u64,
    /// TCAM bit comparisons (`m × k` per query) — the paper's cost unit.
    pub tcam_bitops: u64,
    /// Popcount-unit operations (one per row per tile).
    pub popcounts: u64,
    /// Pruner comparator operations (subset filter + argmax).
    pub prune_comparisons: u64,
    /// Bitonic-sorter comparator evaluations.
    pub sorter_comparators: u64,
    /// Product-sparsity-table accesses (row issue + prefix lookups).
    pub table_accesses: u64,
    /// PE weight accumulations (8-bit adds), the dominant compute event.
    pub pe_accumulations: u64,
    /// Prefix partial-sum loads from the output buffer (rows with a prefix).
    pub prefix_loads: u64,
    /// Output-row writebacks.
    pub output_writes: u64,
    /// Bytes read from the weight buffer.
    pub weight_buffer_bytes: u64,
    /// Bytes read from the spike buffer.
    pub spike_buffer_bytes: u64,
    /// Bytes read/written on the output buffer.
    pub output_buffer_bytes: u64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
    /// LIF neuron-array updates (one per output element).
    pub neuron_updates: u64,
}

impl EventCounts {
    /// Sum of all on-chip compute events, a coarse activity proxy.
    pub fn total_onchip_events(&self) -> u64 {
        self.tcam_bitops
            + self.popcounts
            + self.prune_comparisons
            + self.sorter_comparators
            + self.table_accesses
            + self.pe_accumulations
            + self.prefix_loads
            + self.output_writes
            + self.neuron_updates
    }
}

impl Add for EventCounts {
    type Output = Self;

    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl AddAssign for EventCounts {
    fn add_assign(&mut self, r: Self) {
        self.tcam_queries += r.tcam_queries;
        self.tcam_bitops += r.tcam_bitops;
        self.popcounts += r.popcounts;
        self.prune_comparisons += r.prune_comparisons;
        self.sorter_comparators += r.sorter_comparators;
        self.table_accesses += r.table_accesses;
        self.pe_accumulations += r.pe_accumulations;
        self.prefix_loads += r.prefix_loads;
        self.output_writes += r.output_writes;
        self.weight_buffer_bytes += r.weight_buffer_bytes;
        self.spike_buffer_bytes += r.spike_buffer_bytes;
        self.output_buffer_bytes += r.output_buffer_bytes;
        self.dram_bytes += r.dram_bytes;
        self.neuron_updates += r.neuron_updates;
    }
}

impl std::iter::Sum for EventCounts {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_all_fields() {
        let a = EventCounts {
            tcam_queries: 1,
            tcam_bitops: 2,
            popcounts: 3,
            prune_comparisons: 4,
            sorter_comparators: 5,
            table_accesses: 6,
            pe_accumulations: 7,
            prefix_loads: 8,
            output_writes: 9,
            weight_buffer_bytes: 10,
            spike_buffer_bytes: 11,
            output_buffer_bytes: 12,
            dram_bytes: 13,
            neuron_updates: 14,
        };
        let s = a + a;
        assert_eq!(s.tcam_bitops, 4);
        assert_eq!(s.dram_bytes, 26);
        assert_eq!(s.neuron_updates, 28);
        assert_eq!(
            s.total_onchip_events(),
            2 * (2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 14)
        );
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![EventCounts::default(); 3];
        let total: EventCounts = parts.into_iter().sum();
        assert_eq!(total, EventCounts::default());
    }
}

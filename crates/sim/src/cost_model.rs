//! The closed-form cost trade-off analysis of Sec. VII-G.
//!
//! ProSparsity processing costs TCAM bit-ops (`m² · k` per tile, dominating
//! the sorter's `2m log m` and the pruner's `m + log m` comparisons) and
//! saves `ΔS · m · k · n` floating-point additions, where `ΔS` is the
//! sparsity increase over bit sparsity. With an addition costing
//! [`FP_ADD_OVER_TCAM_BITOP`] = 45× a TCAM bit-op, the benefit-cost ratio is
//!
//! ```text
//!       ΔS · m · k · n · 45
//! R = ──────────────────────
//!            m² · k
//! ```
//!
//! which exceeds 1 whenever `ΔS > m / (45 n)` — 4.4 % at the default
//! `m = 256, n = 128`.

use serde::{Deserialize, Serialize};

/// Relative hardware cost of one floating-point addition versus one TCAM
/// bitwise operation (paper Sec. VII-G: "a floating-point addition incurs
/// 45× the hardware overhead of a single TCAM bitwise operation").
pub const FP_ADD_OVER_TCAM_BITOP: f64 = 45.0;

/// Inputs to the benefit/cost analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostInputs {
    /// Tile rows `m`.
    pub m: usize,
    /// Tile columns `k`.
    pub k: usize,
    /// Output tile width `n`.
    pub n: usize,
    /// Sparsity increase `ΔS` of product over bit sparsity
    /// (bit density − product density).
    pub delta_s: f64,
}

impl CostInputs {
    /// The paper's operating point: default tile and the measured average
    /// `ΔS = 13.35 %`.
    pub fn paper_default() -> Self {
        Self {
            m: 256,
            k: 16,
            n: 128,
            delta_s: 0.1335,
        }
    }

    /// ProSparsity processing cost in TCAM-bit-op equivalents (`m² k`).
    pub fn processing_cost(&self) -> f64 {
        (self.m * self.m * self.k) as f64
    }

    /// Saved computation in TCAM-bit-op equivalents
    /// (`ΔS · m · k · n · 45`).
    pub fn savings(&self) -> f64 {
        self.delta_s * (self.m * self.k * self.n) as f64 * FP_ADD_OVER_TCAM_BITOP
    }

    /// Benefit-cost ratio `R`; ProSparsity pays off when `R > 1`.
    pub fn benefit_cost_ratio(&self) -> f64 {
        self.savings() / self.processing_cost()
    }

    /// The break-even sparsity increase `ΔS* = m / (45 n)`.
    pub fn break_even_delta_s(&self) -> f64 {
        self.m as f64 / (FP_ADD_OVER_TCAM_BITOP * self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_threshold_is_4_4_percent() {
        let c = CostInputs::paper_default();
        assert!(
            (c.break_even_delta_s() - 0.0444).abs() < 0.001,
            "got {}",
            c.break_even_delta_s()
        );
    }

    #[test]
    fn paper_operating_point_gives_ratio_3() {
        // Sec. VII-G: "the benefit-cost ratio reaches 3.0×".
        let r = CostInputs::paper_default().benefit_cost_ratio();
        assert!((r - 3.0).abs() < 0.05, "ratio {r}");
    }

    #[test]
    fn ratio_exceeds_one_exactly_above_break_even() {
        let mut c = CostInputs::paper_default();
        c.delta_s = c.break_even_delta_s() * 1.01;
        assert!(c.benefit_cost_ratio() > 1.0);
        c.delta_s = c.break_even_delta_s() * 0.99;
        assert!(c.benefit_cost_ratio() < 1.0);
    }

    #[test]
    fn bigger_tiles_raise_the_bar() {
        let small = CostInputs {
            m: 128,
            ..CostInputs::paper_default()
        };
        let big = CostInputs {
            m: 512,
            ..CostInputs::paper_default()
        };
        assert!(big.break_even_delta_s() > small.break_even_delta_s());
    }
}

//! Whole-model simulation.

use crate::config::ProsperityConfig;
use crate::ppu::simulate_layer;
use crate::report::{LayerPerf, ModelPerf};
use prosperity_models::workload::ModelTrace;

/// Simulates a full model inference (layer by layer, Sec. IV) on Prosperity.
pub fn simulate_model(trace: &ModelTrace, config: &ProsperityConfig) -> ModelPerf {
    let layers: Vec<LayerPerf> = trace
        .layers
        .iter()
        .map(|l| simulate_layer(&l.spikes, l.spec.shape.n, config))
        .collect();
    ModelPerf::from_layers(*config, layers, trace.dense_ops())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimMode;
    use prosperity_models::{Architecture, Dataset, Workload};

    fn small_trace() -> ModelTrace {
        Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 5).generate_trace(0.25)
    }

    #[test]
    fn full_mode_beats_bit_only_on_cycles() {
        let trace = small_trace();
        let full = simulate_model(&trace, &ProsperityConfig::default());
        let bit = simulate_model(
            &trace,
            &ProsperityConfig::with_mode(SimMode::BitSparsityOnly),
        );
        assert!(
            full.cycles <= bit.cycles,
            "{} vs {}",
            full.cycles,
            bit.cycles
        );
        assert!(full.stats.pro_ops < bit.stats.pro_ops);
    }

    #[test]
    fn layer_count_matches_trace() {
        let trace = small_trace();
        let perf = simulate_model(&trace, &ProsperityConfig::default());
        assert_eq!(perf.layers.len(), trace.layers.len());
        assert_eq!(perf.effective_ops, trace.dense_ops());
        assert!(perf.throughput_gops() > 0.0);
    }

    #[test]
    fn slow_dispatch_between_bit_only_and_full() {
        let trace = small_trace();
        let full = simulate_model(&trace, &ProsperityConfig::default());
        let slow = simulate_model(
            &trace,
            &ProsperityConfig::with_mode(SimMode::ProSparsitySlowDispatch),
        );
        assert!(slow.cycles >= full.cycles);
    }
}

//! Special Function Unit (SFU) model — transformer support (paper Sec. IV).
//!
//! Spiking transformers add operations that are not spiking GeMM: the
//! softmax in (some) spiking attention blocks and layer normalization. The
//! PPU is reused for the GeMM-like parts (`Q·Kᵀ`, `attn·V`); the SFU
//! supplies the element-wise exponentiation, multiplication and division.
//! Table III sizes it at 128 AND/OR, 32 multipliers, 8 EXP units and 1
//! divider.

use crate::events::EventCounts;
use serde::{Deserialize, Serialize};

/// SFU configuration (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SfuConfig {
    /// Bitwise AND/OR lanes (spike masking).
    pub and_or_units: usize,
    /// Multiplier lanes.
    pub mul_units: usize,
    /// Exponentiation units.
    pub exp_units: usize,
    /// Dividers.
    pub div_units: usize,
}

impl Default for SfuConfig {
    fn default() -> Self {
        Self {
            and_or_units: 128,
            mul_units: 32,
            exp_units: 8,
            div_units: 1,
        }
    }
}

/// Cycle/energy cost of one SFU pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SfuCost {
    /// SFU cycles (serialized after the producing GeMM).
    pub cycles: u64,
    /// Element-wise operations executed, by unit kind:
    /// `(and_or, mul, exp, div)`.
    pub ops: (u64, u64, u64, u64),
}

impl SfuConfig {
    /// Cost of a softmax over an `rows × cols` attention score matrix:
    /// per row, `cols` exponentiations, a `cols`-element sum (reusing the
    /// multiplier/adder lanes) and `cols` divisions by the row sum.
    pub fn softmax_cost(&self, rows: usize, cols: usize) -> SfuCost {
        let n = (rows * cols) as u64;
        let exp_cycles = n.div_ceil(self.exp_units as u64);
        let sum_cycles = n.div_ceil(self.mul_units as u64);
        let div_cycles = n.div_ceil(self.div_units as u64);
        SfuCost {
            cycles: exp_cycles + sum_cycles + div_cycles,
            ops: (0, n, n, n),
        }
    }

    /// Cost of layer normalization over `rows × cols`: two reduction passes
    /// (mean, variance) on the multiplier lanes plus a scale/shift pass.
    pub fn layernorm_cost(&self, rows: usize, cols: usize) -> SfuCost {
        let n = (rows * cols) as u64;
        let reduce = 2 * n.div_ceil(self.mul_units as u64);
        let scale = n.div_ceil(self.mul_units as u64);
        let rsqrt = (rows as u64).div_ceil(self.div_units as u64);
        SfuCost {
            cycles: reduce + scale + rsqrt,
            ops: (0, 3 * n, 0, rows as u64),
        }
    }

    /// Cost of binary spike masking (AND/OR) over `rows × cols` bits.
    pub fn mask_cost(&self, rows: usize, cols: usize) -> SfuCost {
        let n = (rows * cols) as u64;
        SfuCost {
            cycles: n.div_ceil(self.and_or_units as u64),
            ops: (n, 0, 0, 0),
        }
    }
}

impl SfuCost {
    /// Adds this pass's activity into an event-count accumulator
    /// (multiplications are charged as neuron-class updates, the dominant
    /// SFU energy term).
    pub fn accumulate_into(&self, events: &mut EventCounts) {
        let (_and_or, mul, exp, div) = self.ops;
        events.neuron_updates += mul + 2 * exp + 4 * div;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_is_divider_bound() {
        let sfu = SfuConfig::default();
        let c = sfu.softmax_cost(64, 64);
        // 4096 divisions through a single divider dominate.
        assert!(c.cycles >= 4096);
        assert_eq!(c.ops.3, 4096);
        assert_eq!(c.ops.2, 4096);
    }

    #[test]
    fn layernorm_scales_linearly() {
        let sfu = SfuConfig::default();
        let small = sfu.layernorm_cost(16, 128);
        let big = sfu.layernorm_cost(32, 128);
        assert!(big.cycles > small.cycles);
        assert!(big.cycles <= 2 * small.cycles + 32);
    }

    #[test]
    fn mask_uses_all_lanes() {
        let sfu = SfuConfig::default();
        // 128 lanes: 256 bits in 2 cycles.
        assert_eq!(sfu.mask_cost(2, 128).cycles, 2);
    }

    #[test]
    fn accumulate_charges_events() {
        let sfu = SfuConfig::default();
        let mut ev = EventCounts::default();
        sfu.softmax_cost(4, 4).accumulate_into(&mut ev);
        assert!(ev.neuron_updates > 0);
    }

    #[test]
    fn zero_size_costs_nothing() {
        let sfu = SfuConfig::default();
        assert_eq!(sfu.softmax_cost(0, 64).cycles, 0);
        assert_eq!(sfu.mask_cost(0, 0).cycles, 0);
    }
}

//! SATO (Liu et al., DAC 2022): temporal-oriented unstructured bit sparsity
//! with bucket-sort load balancing.
//!
//! SATO distributes spike rows across PE groups; each group accumulates the
//! weight rows selected by its spikes. A bucket sort over row spike counts
//! evens the load, but residual imbalance means the array waits for the
//! heaviest group — the effect Prosperity's single shared PE array avoids
//! (Sec. VII-C).

use crate::perf::BaselinePerf;
use prosperity_models::workload::ModelTrace;
use spikemat::SpikeMatrix;

/// SATO configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sato {
    /// Total PEs (128).
    pub pes: usize,
    /// Number of independent PE groups rows are distributed over.
    pub groups: usize,
    /// Clock (500 MHz).
    pub freq_hz: f64,
    /// Effective pipeline utilization (bucket-sort distribution, spike
    /// decode and temporal-dataflow serialization overheads).
    pub utilization: f64,
    /// Energy per accumulation, pJ.
    pub energy_per_op_pj: f64,
}

impl Default for Sato {
    fn default() -> Self {
        Self {
            pes: 128,
            groups: 16,
            freq_hz: 500e6,
            utilization: 0.18,
            energy_per_op_pj: 58.0,
        }
    }
}

impl Sato {
    /// Cycles for one spike matrix: rows are bucket-sorted by spike count
    /// (descending) and greedily assigned to the least-loaded group; the
    /// matrix finishes when the heaviest group does. Each group owns
    /// `pes / groups` lanes, so covering `N` output columns takes
    /// `⌈N / lanes⌉` passes.
    pub fn cycles(&self, spikes: &SpikeMatrix, n_cols: usize) -> u64 {
        let lanes = (self.pes / self.groups).max(1);
        let passes = n_cols.div_ceil(lanes) as u64;
        let mut counts: Vec<u64> = (0..spikes.rows())
            .map(|i| spikes.row(i).popcount() as u64)
            .collect();
        counts.sort_unstable_by(|a, b| b.cmp(a)); // bucket-sort proxy (LPT)
        let mut loads = vec![0u64; self.groups];
        for c in counts {
            let min = loads
                .iter_mut()
                .min_by_key(|l| **l)
                .expect("at least one group");
            *min += c.max(1); // a row costs at least its issue slot
        }
        loads.into_iter().max().unwrap_or(0) * passes
    }

    /// Simulates one model inference (attention layers unsupported, skipped).
    pub fn simulate(&self, trace: &ModelTrace) -> BaselinePerf {
        let mut cycles = 0u64;
        let mut ops = 0u64;
        for l in &trace.layers {
            if !l.spec.supported_by_prior_asics() {
                continue;
            }
            cycles += self.cycles(&l.spikes, l.spec.shape.n);
            ops += l.spikes.total_spikes() as u64 * l.spec.shape.n as u64;
        }
        BaselinePerf {
            name: "SATO".into(),
            time_s: cycles as f64 / (self.freq_hz * self.utilization),
            energy_j: ops as f64 * self.energy_per_op_pj * 1e-12,
            effective_ops: trace.dense_ops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_rows_divide_evenly() {
        // 16 identical rows over 16 groups: one row each.
        let s = SpikeMatrix::from_rows(vec![spikemat::BitRow::from_ones(8, &[0, 1]); 16]);
        let sato = Sato::default();
        // Each group: 2 cycles; lanes = 8, N = 8 → 1 pass.
        assert_eq!(sato.cycles(&s, 8), 2);
    }

    #[test]
    fn imbalance_is_bounded_by_heaviest_group() {
        // One very heavy row dominates.
        let mut rows = vec![spikemat::BitRow::zeros(64); 17];
        rows[0] = spikemat::BitRow::from_ones(64, &(0..64).collect::<Vec<_>>());
        let s = SpikeMatrix::from_rows(rows);
        let sato = Sato::default();
        // Heaviest group carries the 64-spike row (+ maybe a 1-slot row).
        let c = sato.cycles(&s, 8);
        assert!(c >= 64, "cycles {c}");
        assert!(c <= 66, "cycles {c}");
    }

    #[test]
    fn passes_scale_with_output_width() {
        let s = SpikeMatrix::from_rows(vec![spikemat::BitRow::from_ones(8, &[0]); 16]);
        let sato = Sato::default();
        assert_eq!(sato.cycles(&s, 16), 2 * sato.cycles(&s, 8));
    }

    #[test]
    fn empty_matrix_costs_nothing() {
        let s = SpikeMatrix::zeros(0, 8);
        assert_eq!(Sato::default().cycles(&s, 8), 0);
    }
}

//! PTB — Parallel Time Batching (Lee et al., HPCA 2022): the paper's primary
//! SNN-accelerator baseline.
//!
//! PTB is a systolic-array design that processes spikes under *structured*
//! sparsity: spike information is grouped into time windows, and if any step
//! of a window spikes, **all** steps in the window are processed; only fully
//! silent windows are squeezed out. This trades sparsity for parallelism —
//! zeros inside active windows are not skipped, which is exactly the
//! inefficiency Prosperity's unstructured row-wise dataflow removes
//! (Sec. VII-C).

use crate::perf::BaselinePerf;
use prosperity_models::workload::ModelTrace;
use spikemat::SpikeMatrix;

/// PTB configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ptb {
    /// PEs (128, Table IV).
    pub pes: usize,
    /// Clock (500 MHz).
    pub freq_hz: f64,
    /// Time-window size for batching.
    pub window: usize,
    /// Systolic-array utilization on squeezed windows.
    pub utilization: f64,
    /// Energy per processed (structured) operation, pJ.
    pub energy_per_op_pj: f64,
}

impl Default for Ptb {
    fn default() -> Self {
        Self {
            pes: 128,
            freq_hz: 500e6,
            window: 4,
            utilization: 0.37,
            energy_per_op_pj: 51.0,
        }
    }
}

impl Ptb {
    /// Operations PTB actually executes on one spike matrix.
    ///
    /// PTB's time batching groups the *time steps* of one spatial position:
    /// in the unrolled `M = T·L` spike matrix, the window for position `p`
    /// is the row set `{p, p + L, …, p + (T−1)·L}` (stride `L = M/T`). If
    /// any step of a window spikes in a column, the whole window column is
    /// processed; fully silent window columns are squeezed out.
    pub fn structured_ops(&self, spikes: &SpikeMatrix, n_cols: usize) -> u64 {
        let m = spikes.rows();
        if m == 0 {
            return 0;
        }
        let window = self.window.max(1);
        let stride = m.div_ceil(window);
        let mut processed = 0u64;
        for p in 0..stride {
            let members: Vec<usize> = (0..window)
                .map(|t| p + t * stride)
                .filter(|&r| r < m)
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut any = spikes.row(members[0]).clone();
            for &r in &members[1..] {
                any = any.or(spikes.row(r));
            }
            processed += any.popcount() as u64 * members.len() as u64;
        }
        processed * n_cols as u64
    }

    /// Simulates one model inference. Attention GeMMs are skipped: prior SNN
    /// ASICs do not support spiking attention (Sec. VII-A), so — like the
    /// paper — PTB is only charged for the layers it can run.
    pub fn simulate(&self, trace: &ModelTrace) -> BaselinePerf {
        let mut ops = 0u64;
        for l in &trace.layers {
            if !l.spec.supported_by_prior_asics() {
                continue;
            }
            ops += self.structured_ops(&l.spikes, l.spec.shape.n);
        }
        let rate = self.pes as f64 * self.freq_hz * self.utilization;
        BaselinePerf {
            name: "PTB".into(),
            time_s: ops as f64 / rate,
            energy_j: ops as f64 * self.energy_per_op_pj * 1e-12,
            effective_ops: trace.dense_ops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_ops_process_whole_active_windows() {
        // 4 rows (one window), 4 cols: col 0 active in one row only → still
        // costs 4 ops; col 2 silent → 0 ops.
        let s = SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 0, 1],
            &[0, 0, 0, 1],
            &[0, 1, 0, 0],
            &[0, 0, 0, 0],
        ]);
        let ptb = Ptb::default();
        // Active cols: 0, 1, 3 → 3 cols × 4 steps × N(=1).
        assert_eq!(ptb.structured_ops(&s, 1), 12);
    }

    #[test]
    fn structured_never_below_bit_ops() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let s = SpikeMatrix::random(64, 32, 0.3, &mut rng);
        let ptb = Ptb::default();
        let bit_ops = s.total_spikes() as u64 * 8;
        assert!(ptb.structured_ops(&s, 8) >= bit_ops);
        // And never above dense.
        assert!(ptb.structured_ops(&s, 8) <= (64 * 32 * 8) as u64);
    }

    #[test]
    fn ragged_rows_fall_into_strided_windows() {
        // M = 5, T = 4 → stride 2: windows {0,2,4} and {1,3}.
        let s = SpikeMatrix::from_rows_of_bits(&[&[1, 0], &[0, 0], &[0, 0], &[0, 0], &[0, 1]]);
        let ptb = Ptb::default();
        // Window {0,2,4}: union 11 → 2 cols × 3 steps; window {1,3}: silent.
        assert_eq!(ptb.structured_ops(&s, 1), 6);
    }

    #[test]
    fn temporally_correlated_rows_do_not_help_ptb() {
        // Identical spikes at the same position across all T time steps:
        // time batching still pays for every step of the active window.
        let row: &[u8] = &[1, 0, 1, 0, 0, 0, 0, 0];
        let s = SpikeMatrix::from_rows_of_bits(&[row; 8]); // T=4, L=2
        let ptb = Ptb::default();
        // stride 2; both windows have union popcount 2 → 2 × 4 steps × 2.
        assert_eq!(ptb.structured_ops(&s, 1), 16);
        // PTB processes every spike here (no squeezing possible).
        assert_eq!(ptb.structured_ops(&s, 1), s.total_spikes() as u64);
    }

    #[test]
    fn skips_attention_layers() {
        use prosperity_models::{Architecture, Dataset, Workload};
        let trace =
            Workload::new(Architecture::Sdt, Dataset::Cifar10, 0.2, 0.05, 3).generate_trace(0.1);
        let ptb = Ptb::default();
        let perf = ptb.simulate(&trace);
        // Rebuild ops counting all layers: must exceed the supported-only sum.
        let all: u64 = trace
            .layers
            .iter()
            .map(|l| ptb.structured_ops(&l.spikes, l.spec.shape.n))
            .sum();
        let charged = (perf.time_s * ptb.pes as f64 * ptb.freq_hz * ptb.utilization).round() as u64;
        assert!(charged < all);
    }
}

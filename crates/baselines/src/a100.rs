//! Analytical NVIDIA A100 model.
//!
//! The paper measures end-to-end PyTorch + SpikingJelly inference on an
//! 80 GB A100. We substitute a roofline model with a per-layer framework
//! overhead: SpikingJelly executes spiking GeMM as dense fp32 GEMM on the
//! CUDA cores (the SIMT pipeline cannot skip zeros, and the tensor cores go
//! unused by the fp32 spike path — Sec. VII-C), small kernels underfill the
//! 108-SM machine, and every layer pays Python/kernel-launch and
//! neuron-update costs across `T` time steps. Calibrated so the paper's
//! headline gaps reproduce: Prosperity ≈ 1.8× faster on average, with only
//! minor speedup on the large SpikeBERT, and ≈ 193× better energy.

use crate::perf::BaselinePerf;
use prosperity_models::workload::ModelTrace;

/// A100 model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct A100 {
    /// Peak throughput of the path SpikingJelly actually uses, ops/s
    /// (19.5 TFLOPS fp32 CUDA cores; the 312 TOPS tensor cores stay idle).
    pub peak_ops: f64,
    /// HBM2e bandwidth, bytes/s (1.555 TB/s).
    pub mem_bytes_per_sec: f64,
    /// Average board power during inference, watts (measured small-batch
    /// inference averages far below the 400 W TDP).
    pub power_w: f64,
    /// Per-layer framework overhead (kernel launches over `T` time steps,
    /// neuron updates, Python dispatch), seconds.
    pub layer_overhead_s: f64,
    /// Utilization at the asymptote (large GEMMs).
    pub max_utilization: f64,
    /// GEMM size (in dense MACs) at which utilization reaches half of max.
    pub half_util_ops: f64,
    /// Utilization floor as a fraction of `max_utilization` (tiny kernels
    /// still use a few SMs).
    pub utilization_floor: f64,
}

impl Default for A100 {
    fn default() -> Self {
        Self {
            peak_ops: 19.5e12,
            mem_bytes_per_sec: 1.555e12,
            power_w: 100.0,
            layer_overhead_s: 120e-6,
            max_utilization: 0.55,
            half_util_ops: 2.0e9,
            utilization_floor: 0.02,
        }
    }
}

impl A100 {
    /// Effective utilization for a GEMM of `ops` dense MACs: small kernels
    /// cannot fill the 108-SM machine.
    pub fn utilization(&self, ops: f64) -> f64 {
        let ramp = ops / (ops + self.half_util_ops);
        self.max_utilization * ramp.max(self.utilization_floor)
    }

    /// Simulates one model inference (the GPU runs all layers, including
    /// attention).
    pub fn simulate(&self, trace: &ModelTrace) -> BaselinePerf {
        let mut time = 0.0;
        for l in &trace.layers {
            let ops = l.spec.shape.dense_ops() as f64 * 2.0; // MAC = 2 ops
            let compute = ops / (self.peak_ops * self.utilization(ops));
            // Activations (fp16) + weights (fp16) traffic.
            let bytes = 2.0
                * (l.spec.shape.m * l.spec.shape.k
                    + l.spec.shape.k * l.spec.shape.n
                    + l.spec.shape.m * l.spec.shape.n) as f64;
            let mem = bytes / self.mem_bytes_per_sec;
            time += compute.max(mem) + self.layer_overhead_s;
        }
        BaselinePerf {
            name: "A100".into(),
            time_s: time,
            energy_j: time * self.power_w,
            effective_ops: trace.dense_ops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosperity_models::{Architecture, Dataset, Workload};

    #[test]
    fn utilization_grows_with_gemm_size() {
        let g = A100::default();
        assert!(g.utilization(1e6) < g.utilization(1e9));
        assert!(g.utilization(1e12) < g.max_utilization);
        assert!(g.utilization(1e13) > 0.4 * g.max_utilization);
    }

    #[test]
    fn overhead_dominates_tiny_models() {
        let g = A100::default();
        let t =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 3).generate_trace(0.25);
        let p = g.simulate(&t);
        let overhead = g.layer_overhead_s * t.layers.len() as f64;
        assert!(p.time_s >= overhead);
        assert!(
            p.time_s < 2.0 * overhead,
            "tiny model should be launch-bound"
        );
    }

    #[test]
    fn energy_is_power_times_time() {
        let g = A100::default();
        let t =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 3).generate_trace(0.25);
        let p = g.simulate(&t);
        assert!((p.energy_j - p.time_s * 100.0).abs() < 1e-12);
    }

    #[test]
    fn large_models_run_proportionally_faster_per_op() {
        let g = A100::default();
        let small =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 3).generate_trace(0.5);
        let large = Workload::new(Architecture::SpikeBert, Dataset::Sst2, 0.13, 0.012, 3)
            .generate_trace(0.5);
        let ps = g.simulate(&small);
        let pl = g.simulate(&large);
        // Throughput (GOP/s) should be far better on the big model.
        assert!(pl.throughput_gops() > 5.0 * ps.throughput_gops());
    }
}

//! Common performance-result type for baseline accelerators.

use serde::{Deserialize, Serialize};

/// Simulated performance of one model inference on a baseline accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselinePerf {
    /// Accelerator name (e.g. `"PTB"`).
    pub name: String,
    /// Inference latency in seconds.
    pub time_s: f64,
    /// Inference energy in joules.
    pub energy_j: f64,
    /// Dense-equivalent operations `Σ M·K·N` — the common numerator for
    /// throughput across accelerators (Table IV's GOP metric).
    pub effective_ops: u64,
}

impl BaselinePerf {
    /// Dense-equivalent throughput in GOP/s.
    pub fn throughput_gops(&self) -> f64 {
        if self.time_s <= 0.0 {
            0.0
        } else {
            self.effective_ops as f64 / self.time_s / 1e9
        }
    }

    /// Energy efficiency in GOP/J.
    pub fn energy_eff_gopj(&self) -> f64 {
        if self.energy_j <= 0.0 {
            0.0
        } else {
            self.effective_ops as f64 / self.energy_j / 1e9
        }
    }

    /// Speedup of `self` over `other` (same workload).
    pub fn speedup_over(&self, other: &BaselinePerf) -> f64 {
        other.time_s / self.time_s
    }

    /// Energy-efficiency gain of `self` over `other`.
    pub fn energy_gain_over(&self, other: &BaselinePerf) -> f64 {
        other.energy_j / self.energy_j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(time: f64, energy: f64) -> BaselinePerf {
        BaselinePerf {
            name: "X".into(),
            time_s: time,
            energy_j: energy,
            effective_ops: 1_000_000_000,
        }
    }

    #[test]
    fn derived_metrics() {
        let a = p(1e-3, 1e-3);
        assert!((a.throughput_gops() - 1000.0).abs() < 1e-9);
        assert!((a.energy_eff_gopj() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_energy_gain() {
        let fast = p(1e-3, 2e-3);
        let slow = p(4e-3, 4e-3);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((fast.energy_gain_over(&slow) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_guard() {
        let z = p(0.0, 0.0);
        assert_eq!(z.throughput_gops(), 0.0);
        assert_eq!(z.energy_eff_gopj(), 0.0);
    }
}

//! Eyeriss: the dense DNN-accelerator baseline (Table IV column 1).
//!
//! Eyeriss processes SNN layers densely — every element of the spike matrix
//! costs a MAC regardless of its value. The model is anchored to the paper's
//! Table IV: 168 PEs at 500 MHz achieving 29.40 GOP/s (an effective array
//! utilization of 35 % on VGG-16-class layers) and 16.67 GOP/J.

use crate::perf::BaselinePerf;
use prosperity_models::workload::ModelTrace;

/// Eyeriss configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eyeriss {
    /// Number of MAC PEs (168 in the paper's comparison).
    pub pes: usize,
    /// Clock frequency (500 MHz).
    pub freq_hz: f64,
    /// Effective array utilization for dense dataflow.
    pub utilization: f64,
    /// Total energy per dense operation, pJ (logic + SRAM + DRAM amortized;
    /// anchors Table IV's 16.67 GOP/J).
    pub energy_per_op_pj: f64,
}

impl Default for Eyeriss {
    fn default() -> Self {
        Self {
            pes: 168,
            freq_hz: 500e6,
            utilization: 0.35,
            energy_per_op_pj: 60.0,
        }
    }
}

impl Eyeriss {
    /// Simulates one model inference.
    pub fn simulate(&self, trace: &ModelTrace) -> BaselinePerf {
        let dense_ops = trace.dense_ops();
        let rate = self.pes as f64 * self.freq_hz * self.utilization;
        BaselinePerf {
            name: "Eyeriss".into(),
            time_s: dense_ops as f64 / rate,
            energy_j: dense_ops as f64 * self.energy_per_op_pj * 1e-12,
            effective_ops: dense_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosperity_models::{Architecture, Dataset, Workload};

    #[test]
    fn throughput_matches_table4_anchor() {
        let t =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 1).generate_trace(0.25);
        let p = Eyeriss::default().simulate(&t);
        // Dense throughput is utilization-limited peak: 168·0.5 GHz·0.35.
        assert!(
            (p.throughput_gops() - 29.4).abs() < 0.01,
            "{}",
            p.throughput_gops()
        );
        assert!(
            (p.energy_eff_gopj() - 16.67).abs() < 0.01,
            "{}",
            p.energy_eff_gopj()
        );
    }

    #[test]
    fn time_scales_with_dense_ops() {
        let small =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 1).generate_trace(0.25);
        let big =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 1).generate_trace(0.5);
        let e = Eyeriss::default();
        assert!(e.simulate(&big).time_s > e.simulate(&small).time_s);
    }

    #[test]
    fn density_does_not_matter_to_dense_hardware() {
        let sparse =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.05, 0.02, 1).generate_trace(0.25);
        let dense =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.6, 0.3, 1).generate_trace(0.25);
        let e = Eyeriss::default();
        let a = e.simulate(&sparse);
        let b = e.simulate(&dense);
        assert!((a.time_s - b.time_s).abs() / a.time_s < 1e-9);
    }
}

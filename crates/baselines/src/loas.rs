//! LoAS (Yin et al., 2024) dual-side sparsity analysis (paper Table V).
//!
//! LoAS prunes SNN weights to 1.8–4 % density and computes with dual-side
//! (weight × activation) sparsity. ProSparsity is orthogonal: it compresses
//! the *activation* side further. Table V applies ProSparsity to three
//! LoAS-pruned spiking CNNs and reports the activation-density reduction.
//! We reproduce this by generating activation traces at LoAS's reported
//! activation densities (the pruned models fire more densely than the
//! Fig. 11 LIF baselines), sampling unstructured weight masks at the
//! reported weight densities, and measuring product density.

use prosperity_core::ProSparsityPlan;
use prosperity_models::{TraceGen, TraceGenParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use spikemat::TileShape;

/// One LoAS-pruned model of Table V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoasModel {
    /// Model name.
    pub name: &'static str,
    /// LoAS's reported pruned weight density.
    pub weight_density: f64,
    /// LoAS's reported activation (bit) density.
    pub activation_density: f64,
    /// Paper-reported activation density after applying ProSparsity.
    pub paper_pro_density: f64,
    /// Representative layer geometry `(M, K)` for the density measurement.
    pub layer_m: usize,
    /// Reduction dimension of the representative layers.
    pub layer_k: usize,
}

/// The three pruned models evaluated in Table V.
pub fn table5_models() -> [LoasModel; 3] {
    [
        LoasModel {
            name: "AlexNet",
            weight_density: 0.018,
            activation_density: 0.2932,
            paper_pro_density: 0.0912,
            layer_m: 1024,
            layer_k: 1152,
        },
        LoasModel {
            name: "VGG-16",
            weight_density: 0.018,
            activation_density: 0.3107,
            paper_pro_density: 0.0768,
            layer_m: 1024,
            layer_k: 2304,
        },
        LoasModel {
            name: "ResNet-19",
            weight_density: 0.040,
            activation_density: 0.3568,
            paper_pro_density: 0.0696,
            layer_m: 1024,
            layer_k: 2304,
        },
    ]
}

/// Measured Table V row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoasResult {
    /// Model name.
    pub name: &'static str,
    /// Weight density (unchanged by ProSparsity).
    pub weight_density: f64,
    /// Measured activation bit density.
    pub activation_density: f64,
    /// Measured activation density after ProSparsity.
    pub pro_density: f64,
}

impl LoasResult {
    /// The Table V "Ratio" column: activation density reduction.
    pub fn ratio(&self) -> f64 {
        self.activation_density / self.pro_density
    }
}

/// Runs the Table V experiment for one model.
pub fn evaluate(model: &LoasModel, seed: u64) -> LoasResult {
    let tile = TileShape::prosperity_default();
    let params = TraceGenParams::calibrate(
        model.activation_density,
        model.paper_pro_density,
        tile,
        seed,
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let spikes = TraceGen::new(params).generate(model.layer_m, model.layer_k, &mut rng);
    let plan = ProSparsityPlan::build_tiled(&spikes, tile);
    LoasResult {
        name: model.name,
        weight_density: model.weight_density,
        activation_density: plan.stats().bit_density(),
        pro_density: plan.stats().pro_density(),
    }
}

/// Samples an unstructured weight mask of `k × n` at `density`, returning
/// the achieved density (LoAS's weight side, untouched by ProSparsity).
pub fn sample_weight_mask<R: Rng + ?Sized>(
    k: usize,
    n: usize,
    density: f64,
    rng: &mut R,
) -> (Vec<bool>, f64) {
    let mask: Vec<bool> = (0..k * n).map(|_| rng.gen_bool(density)).collect();
    let achieved = mask.iter().filter(|&&b| b).count() as f64 / mask.len().max(1) as f64;
    (mask, achieved)
}

/// Dual-side effective operations: an accumulation happens only where both
/// the spike bit and the weight-column mask are nonzero. With unstructured
/// pruning the expected dual-side op count factorizes.
pub fn dual_side_ops(spike_ops: u64, weight_density: f64) -> f64 {
    spike_ops as f64 * weight_density
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_rows_have_paper_ratios() {
        for m in table5_models() {
            let paper_ratio = m.activation_density / m.paper_pro_density;
            assert!(
                paper_ratio > 3.0 && paper_ratio < 5.5,
                "{}: ratio {paper_ratio}",
                m.name
            );
        }
    }

    #[test]
    fn evaluate_reduces_density() {
        // Smaller layer for test speed.
        let mut m = table5_models()[0];
        m.layer_m = 512;
        m.layer_k = 256;
        let r = evaluate(&m, 17);
        assert!(r.pro_density < r.activation_density);
        assert!(r.ratio() > 1.5, "ratio {}", r.ratio());
        assert!((r.activation_density - m.activation_density).abs() < 0.06);
    }

    #[test]
    fn weight_mask_density_is_achieved() {
        let mut rng = StdRng::seed_from_u64(1);
        let (_, d) = sample_weight_mask(256, 256, 0.018, &mut rng);
        assert!((d - 0.018).abs() < 0.005, "got {d}");
    }

    #[test]
    fn dual_side_ops_factorize() {
        assert!((dual_side_ops(1000, 0.04) - 40.0).abs() < 1e-9);
    }
}

//! MINT (Yin et al., ASP-DAC 2024): multiplier-less integer quantization.
//!
//! MINT quantizes weights and membrane potentials to narrow integers (the
//! comparison point uses 2-bit adders, Table IV), shrinking both memory
//! footprint and per-op energy. Compute remains bit-sparse on a
//! SATA-style systolic array. Quantization is orthogonal to ProSparsity
//! (Sec. VIII-B), which is why Prosperity still wins 3.6× despite MINT's
//! cheap arithmetic.

use crate::perf::BaselinePerf;
use prosperity_models::workload::ModelTrace;

/// MINT configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mint {
    /// PEs (128).
    pub pes: usize,
    /// Clock (500 MHz).
    pub freq_hz: f64,
    /// Systolic utilization on bit-sparse work.
    pub utilization: f64,
    /// Energy per (2-bit) accumulation, pJ — cheaper than 8-bit baselines.
    pub energy_per_op_pj: f64,
    /// Weight precision in bits (2).
    pub weight_bits: usize,
}

impl Default for Mint {
    fn default() -> Self {
        Self {
            pes: 128,
            freq_hz: 500e6,
            utilization: 0.335,
            energy_per_op_pj: 38.0,
            weight_bits: 2,
        }
    }
}

impl Mint {
    /// Simulates one model inference: bit-sparse accumulations at reduced
    /// precision (attention layers unsupported, skipped).
    pub fn simulate(&self, trace: &ModelTrace) -> BaselinePerf {
        let mut ops = 0u64;
        for l in &trace.layers {
            if !l.spec.supported_by_prior_asics() {
                continue;
            }
            ops += l.spikes.total_spikes() as u64 * l.spec.shape.n as u64;
        }
        let rate = self.pes as f64 * self.freq_hz * self.utilization;
        BaselinePerf {
            name: "MINT".into(),
            time_s: ops as f64 / rate,
            energy_j: ops as f64 * self.energy_per_op_pj * 1e-12,
            effective_ops: trace.dense_ops(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eyeriss::Eyeriss;
    use crate::ptb::Ptb;
    use prosperity_models::{Architecture, Dataset, Workload};

    fn trace() -> prosperity_models::workload::ModelTrace {
        Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.35, 0.1, 2).generate_trace(0.25)
    }

    #[test]
    fn mint_beats_dense_and_structured_on_sparse_input() {
        let t = trace();
        let mint = Mint::default().simulate(&t);
        let eyeriss = Eyeriss::default().simulate(&t);
        let ptb = Ptb::default().simulate(&t);
        assert!(mint.speedup_over(&eyeriss) > 1.0);
        assert!(mint.time_s < ptb.time_s);
    }

    #[test]
    fn energy_per_op_is_cheapest_of_the_asics() {
        let m = Mint::default();
        assert!(m.energy_per_op_pj < Ptb::default().energy_per_op_pj);
    }

    #[test]
    fn time_scales_with_density() {
        let sparse =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.1, 0.05, 2).generate_trace(0.25);
        let dense =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.5, 0.2, 2).generate_trace(0.25);
        let m = Mint::default();
        assert!(m.simulate(&dense).time_s > m.simulate(&sparse).time_s);
    }
}

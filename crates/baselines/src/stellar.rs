//! Stellar (Mao et al., HPCA 2024): FS-neuron algorithm/hardware co-design.
//!
//! Stellar's sparsity gain comes from replacing LIF with few-spikes (FS)
//! neurons — an *algorithmic* change that the paper (and we) cannot re-run:
//! its modified models are closed source. Like the paper (Sec. VII-A: "we
//! use the statistics reported in their paper"), this model combines
//! Stellar's reported Table IV figures with an FS-neuron density model for
//! the Fig. 11 comparison. Stellar only supports spiking CNNs.

use crate::perf::BaselinePerf;
use prosperity_models::workload::ModelTrace;
use prosperity_models::Architecture;
use prosperity_neuron::{FsNeuron, FsParams};

/// Stellar's reported statistics (Table IV, VGG-16 class workloads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stellar {
    /// PEs (168 — 31 % more than Prosperity's 128).
    pub pes: usize,
    /// Clock (500 MHz).
    pub freq_hz: f64,
    /// Reported throughput on VGG-16, GOP/s.
    pub reported_throughput_gops: f64,
    /// Reported energy efficiency, GOP/J.
    pub reported_energy_eff_gopj: f64,
    /// Reported area, mm².
    pub reported_area_mm2: f64,
}

impl Default for Stellar {
    fn default() -> Self {
        Self {
            pes: 168,
            freq_hz: 500e6,
            reported_throughput_gops: 190.44,
            reported_energy_eff_gopj: 142.98,
            reported_area_mm2: 0.768,
        }
    }
}

impl Stellar {
    /// Simulates via reported throughput/efficiency. Returns `None` for
    /// spiking transformers, which Stellar does not support.
    pub fn simulate(&self, trace: &ModelTrace) -> Option<BaselinePerf> {
        if trace.workload.arch.is_transformer() {
            return None;
        }
        let ops = trace.dense_ops();
        Some(BaselinePerf {
            name: "Stellar".into(),
            time_s: ops as f64 / (self.reported_throughput_gops * 1e9),
            energy_j: ops as f64 / (self.reported_energy_eff_gopj * 1e9),
            effective_ops: ops,
        })
    }

    /// `true` if Stellar can run this architecture.
    pub fn supports(&self, arch: Architecture) -> bool {
        !arch.is_transformer()
    }
}

/// FS-neuron activation density model for the Fig. 11 comparison.
///
/// SNN activations are bimodal: most neurons are silent, and the active
/// minority fires at a substantial rate. We model active values as
/// `Uniform(0.3, 1.0)` and choose the active fraction so that *rate coding*
/// of the distribution reproduces the measured LIF bit density
/// (`E[v] · active_fraction = bit_density`). Re-coding the same activations
/// with an FS neuron caps each active neuron at `max_spikes` per window,
/// which yields the intermediate density Fig. 11 shows: below bit density
/// (≈1.6× reduction on average) but well above product density (≈3.2×
/// higher than ProSparsity).
pub fn fs_density(bit_density: f64, window: usize, max_spikes: usize) -> f64 {
    let neuron = FsNeuron::new(FsParams {
        window,
        full_scale: 1.0,
        max_spikes,
    });
    let (active_lo, active_hi) = (0.3f64, 1.0f64);
    let mean_active = 0.5 * (active_lo + active_hi);
    let active_fraction = (bit_density / mean_active).clamp(0.0, 1.0);
    // Average FS spikes per *active* neuron over the value range.
    let samples = 256;
    let mut fs_spikes = 0.0;
    for i in 0..samples {
        let v = active_lo + (active_hi - active_lo) * (i as f64 + 0.5) / samples as f64;
        fs_spikes += neuron.spike_count(v as f32) as f64;
    }
    fs_spikes /= samples as f64;
    active_fraction * fs_spikes / window as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use prosperity_models::{Dataset, Workload};

    #[test]
    fn transformer_unsupported() {
        let t = Workload::new(Architecture::SpikeBert, Dataset::Sst2, 0.13, 0.012, 3)
            .generate_trace(0.05);
        assert!(Stellar::default().simulate(&t).is_none());
        assert!(!Stellar::default().supports(Architecture::Spikformer));
        assert!(Stellar::default().supports(Architecture::Vgg16));
    }

    #[test]
    fn cnn_uses_reported_numbers() {
        let t =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 3).generate_trace(0.25);
        let p = Stellar::default().simulate(&t).unwrap();
        assert!((p.throughput_gops() - 190.44).abs() < 0.01);
        assert!((p.energy_eff_gopj() - 142.98).abs() < 0.01);
    }

    #[test]
    fn fs_density_below_bit_density_above_zero() {
        for d in [0.1, 0.2, 0.34, 0.48] {
            let fs = fs_density(d, 4, 2);
            assert!(fs > 0.0, "bit {d} → fs {fs}");
            assert!(fs < d, "FS must reduce density: bit {d} → fs {fs}");
        }
    }

    #[test]
    fn fs_density_monotone_in_bit_density() {
        let lo = fs_density(0.1, 4, 2);
        let hi = fs_density(0.4, 4, 2);
        assert!(hi > lo);
    }

    #[test]
    fn max_spike_cap_binds() {
        // With a looser cap the density can only rise.
        let tight = fs_density(0.45, 4, 1);
        let loose = fs_density(0.45, 4, 4);
        assert!(loose >= tight);
        // The cap bounds density at max_spikes / window.
        assert!(tight <= 1.0 / 4.0 + 1e-9);
    }
}

//! Baseline accelerator models (paper Sec. VII-A).
//!
//! The paper benchmarks Prosperity against six comparators. Each is
//! reproduced here at the fidelity the paper itself uses:
//!
//! * [`eyeriss`] — dense DNN accelerator (168 PEs, processes every element).
//! * [`ptb`] — Parallel Time Batching: systolic array with *structured* bit
//!   sparsity; a time window is processed whenever any of its steps spikes.
//! * [`sato`] — temporal-oriented dataflow: unstructured bit sparsity spread
//!   over PE groups by bucket sort, limited by workload imbalance.
//! * [`mint`] — quantized (2-bit) SNN accelerator built on a systolic array.
//! * [`stellar`] — algorithm/hardware co-design with FS neurons. Like the
//!   paper, we use Stellar's *reported* statistics (its algorithm is closed
//!   source) plus an FS-neuron density model for Fig. 11.
//! * [`a100`] — analytical NVIDIA A100 model (roofline + launch overhead).
//! * [`loas`] — the LoAS dual-side-sparsity algorithm analysis of Table V.
//!
//! All models consume the same [`prosperity_models::workload::ModelTrace`]
//! as the Prosperity simulator, so every comparison sees identical spikes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod a100;
pub mod eyeriss;
pub mod loas;
pub mod mint;
pub mod perf;
pub mod ptb;
pub mod sato;
pub mod stellar;

pub use perf::BaselinePerf;

//! Fixture: a stats struct with a field no test observes.

/// Scheduler counters (fixture twin of the real struct).
#[derive(Debug, Default)]
pub struct SchedulerStats {
    /// Steps executed across all lanes.
    pub lane_steps: u64,
    /// Quanta that overran their deadline.
    pub deadline_misses: u64,
}

//! Observes only `lane_steps`; `deadline_misses` is left to rot.

#[test]
fn observes_lane_steps() {
    let stats = SchedulerStats::default();
    assert_eq!(stats.lane_steps, 0);
}

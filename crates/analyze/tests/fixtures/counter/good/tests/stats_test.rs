//! Observes every counter: one by field access, one via a JSON key string.

#[test]
fn observes_every_counter() {
    let stats = SchedulerStats::default();
    assert_eq!(stats.lane_steps, 0);
    assert!(to_json(&stats).contains("\"deadline_misses\""));
}

//! Fixture twin of cfg/bad: both gated features are declared.

#[cfg(feature = "parallel")]
pub fn par() {}

#[cfg(feature = "simd")]
pub fn simd() {}

#[cfg(feature = "rayon")]
pub fn via_optional_dep() {}

#[cfg(target_arch = "x86_64")]
pub fn not_a_feature_gate() {}

//! Fixture: `#[cfg(feature = "simd")]` names a feature the manifest does
//! not declare.

#[cfg(feature = "parallel")]
pub fn par() {}

#[cfg(feature = "simd")]
pub fn simd() {}

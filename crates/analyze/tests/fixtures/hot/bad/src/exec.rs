//! Fixture: panic paths inside a hot-path region.

// analyze: hot-path
fn accumulate(acc: &mut [i64], src: &[i64], idx: usize) {
    let v = src.get(idx).unwrap();
    acc[idx] += *v;
    if idx >= acc.len() {
        panic!("index out of range");
    }
}

//! Fixture twin: the same region written with infallible patterns. Literal
//! and SCREAMING_CASE-const indices are allowed; code outside the marked
//! region is not patrolled.

const HEADER_WORDS: usize = 2;

// analyze: hot-path
fn accumulate(acc: &mut [i64], src: &[i64], idx: usize) {
    let Some(v) = src.get(idx) else {
        return;
    };
    if let Some(slot) = acc.get_mut(idx) {
        *slot += *v;
    }
    let header = &acc[0..HEADER_WORDS];
    let _ = header;
}

fn cold(v: &[i64], i: usize) -> i64 {
    v[i]
}

//! Fixture twin: planning and IO happen before the lock is taken, and a
//! temporary guard's scope ends with its statement.

impl Engine {
    fn refresh(&self) {
        let plan = self.build_tiled_plan(&self.matrix);
        let bytes = std::fs::read(&self.path);
        let mut shard = self.lock_shard(0);
        shard.install(plan);
        shard.absorb(bytes);
    }

    fn count(&self) -> usize {
        let n = self.lock_shard(0).cache.len();
        self.build_tiled_plan(&self.matrix);
        n
    }
}

//! Fixture: planning and file IO performed inside guard scopes.

impl Engine {
    fn refresh(&self) {
        let mut shard = self.lock_shard(0);
        let plan = self.build_tiled_plan(&self.matrix);
        shard.install(plan);
    }

    fn persist(&self) {
        let guard = self.lock_recovering();
        let bytes = std::fs::read(&self.path);
        guard.absorb(bytes);
    }
}

//! Fixture twin: `unsafe` confined to the allowlisted SIMD module, with a
//! `# Safety` doc section on the public fn and `// SAFETY:` comments on
//! every site.

/// Reads the byte at `p`.
///
/// # Safety
///
/// `p` must be valid for reads.
pub unsafe fn read_raw(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` is valid for reads.
    unsafe { *p }
}

fn caller(byte: &u8) -> u8 {
    // SAFETY: `byte` is a live reference, so the pointer is valid.
    unsafe { read_raw(byte as *const u8) }
}

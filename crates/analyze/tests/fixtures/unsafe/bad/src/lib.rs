//! Fixture: `unsafe` in a file outside the allowlisted set.

pub unsafe fn read_raw(p: *const u8) -> u8 {
    *p
}

fn caller(p: *const u8) -> u8 {
    unsafe { read_raw(p) }
}

//! Fixture: one unsafe-hygiene finding (unsafe outside the allowlisted
//! files) for the allowlist tests to suppress.

fn peek(byte: &u8) -> u8 {
    // SAFETY: `byte` is a live reference, so the pointer is valid.
    unsafe { *(byte as *const u8) }
}

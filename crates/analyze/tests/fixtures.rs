//! End-to-end rule tests against the fixture micro-repos under
//! `tests/fixtures/`, plus the self-check that the real workspace is clean.
//!
//! Each rule has a `bad` fixture that must fire and a `good` twin that must
//! be silent; the `allowlist` fixture drives the binary to prove both
//! suppression and the stale-entry ratchet through the real exit codes.

use prosperity_analyze::allowlist::Allowlist;
use prosperity_analyze::report::{Finding, Rule};
use prosperity_analyze::{analyze_root, find_workspace_root};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn findings(name: &str) -> Vec<Finding> {
    analyze_root(&fixture(name)).expect("fixture analyzes")
}

/// Runs the binary on a fixture root, returning (exit code, stdout).
fn run_bin(root: &Path, allowlist: Option<&Path>) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_prosperity-analyze"));
    cmd.arg("--root").arg(root);
    if let Some(a) = allowlist {
        cmd.arg("--allowlist").arg(a);
    }
    let out = cmd.output().expect("binary runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn lock_bad_fires_good_is_silent() {
    let bad = findings("lock/bad");
    assert_eq!(bad.len(), 2, "{bad:?}");
    assert!(bad.iter().all(|f| f.rule == Rule::LockDiscipline));
    assert!(bad.iter().any(|f| f.msg.contains("planning")));
    assert!(bad.iter().any(|f| f.msg.contains("file IO")));
    assert!(findings("lock/good").is_empty());
}

#[test]
fn hot_bad_fires_good_is_silent() {
    let bad = findings("hot/bad");
    assert_eq!(bad.len(), 3, "{bad:?}");
    assert!(bad.iter().all(|f| f.rule == Rule::HotPathPanic));
    assert!(bad.iter().any(|f| f.msg.contains("unwrap")));
    assert!(bad.iter().any(|f| f.msg.contains("indexing")));
    assert!(bad.iter().any(|f| f.msg.contains("panic")));
    assert!(findings("hot/good").is_empty());
}

#[test]
fn unsafe_bad_fires_good_is_silent() {
    let bad = findings("unsafe/bad");
    assert_eq!(bad.len(), 2, "{bad:?}");
    assert!(bad.iter().all(|f| f.rule == Rule::UnsafeHygiene));
    assert!(bad
        .iter()
        .all(|f| f.msg.contains("outside the allowlisted files")));
    // The good twin puts the same code at crates/spikemat/src/simd.rs with
    // full `# Safety` / `// SAFETY:` hygiene.
    assert!(findings("unsafe/good").is_empty());
}

#[test]
fn counter_bad_fires_good_is_silent() {
    let bad = findings("counter/bad");
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_eq!(bad[0].rule, Rule::CounterCoverage);
    assert!(bad[0].msg.contains("SchedulerStats.deadline_misses"));
    assert!(findings("counter/good").is_empty());
}

#[test]
fn cfg_bad_fires_good_is_silent() {
    let bad = findings("cfg/bad");
    assert_eq!(bad.len(), 1, "{bad:?}");
    assert_eq!(bad[0].rule, Rule::CfgFeature);
    assert!(bad[0].msg.contains("\"simd\""));
    assert!(findings("cfg/good").is_empty());
}

#[test]
fn binary_exits_nonzero_on_every_bad_fixture() {
    for name in [
        "lock/bad",
        "hot/bad",
        "unsafe/bad",
        "counter/bad",
        "cfg/bad",
    ] {
        let (code, out) = run_bin(&fixture(name), None);
        assert_eq!(code, 1, "{name} should fail: {out}");
    }
    for name in [
        "lock/good",
        "hot/good",
        "unsafe/good",
        "counter/good",
        "cfg/good",
    ] {
        let (code, out) = run_bin(&fixture(name), None);
        assert_eq!(code, 0, "{name} should pass: {out}");
    }
}

#[test]
fn allowlist_suppresses_and_stale_entries_fail() {
    let repo = fixture("allowlist/repo");
    // Unscreened, the fixture has exactly one finding.
    let raw = findings("allowlist/repo");
    assert_eq!(raw.len(), 1, "{raw:?}");

    let (code, out) = run_bin(&repo, Some(&fixture("allowlist/cover.toml")));
    assert_eq!(code, 0, "covered finding should pass: {out}");
    assert!(out.contains("1 allowlisted"), "{out}");

    let (code, out) = run_bin(&repo, Some(&fixture("allowlist/stale.toml")));
    assert_eq!(code, 1, "stale entry should fail: {out}");
    assert!(out.contains("stale allowlist entry"), "{out}");
    assert!(out.contains("src/gone.rs"), "{out}");
}

#[test]
fn real_workspace_is_clean_and_baseline_has_no_hot_or_lock_entries() {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(here).expect("enclosing workspace");
    let found = analyze_root(&root).expect("workspace analyzes");

    // The two serving invariants hold unconditionally — no baseline entry
    // may grandfather them, and indeed nothing fires at HEAD.
    assert!(
        !found
            .iter()
            .any(|f| f.rule == Rule::HotPathPanic || f.rule == Rule::LockDiscipline),
        "hot-path/lock-discipline findings at HEAD: {found:?}"
    );

    let baseline = std::fs::read_to_string(root.join("analyze.toml")).expect("analyze.toml");
    let allow = Allowlist::parse(&baseline).expect("baseline parses");
    assert!(allow
        .entries
        .iter()
        .all(|e| e.rule != Rule::HotPathPanic && e.rule != Rule::LockDiscipline));

    let screened = allow.screen(found);
    assert!(
        screened.unallowed.is_empty(),
        "non-allowlisted findings: {:?}",
        screened.unallowed
    );
    assert!(screened.stale.is_empty(), "stale: {:?}", screened.stale);
}

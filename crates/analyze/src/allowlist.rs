//! The checked-in finding baseline (`analyze.toml`) and its ratchet.
//!
//! Grandfathered findings live in a TOML file of `[[allow]]` tables. Two
//! properties make the baseline a one-way ratchet:
//!
//! * a finding not covered by any entry fails the run (no silent growth);
//! * an entry that no longer suppresses anything *also* fails the run
//!   (stale entries must be deleted, so the baseline only shrinks).
//!
//! The parser is a hand-rolled subset of TOML — `[[allow]]` array tables
//! with string/integer scalar keys and `#` comments — matching the repo's
//! no-external-deps constraint. Entries match on `file` + `rule`, and
//! optionally pin an exact `line`; a `reason` documents why the site is
//! grandfathered.

use crate::report::{Finding, Rule};

/// One `[[allow]]` table.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub file: String,
    pub rule: Rule,
    /// When present, only a finding on exactly this line matches.
    pub line: Option<u32>,
    pub reason: String,
    /// The line of `analyze.toml` this entry starts on (for stale reports).
    pub at_line: u32,
}

/// A parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

/// The outcome of filtering findings through the allowlist.
#[derive(Debug)]
pub struct Screened {
    /// Findings no entry covered — each one fails the run.
    pub unallowed: Vec<Finding>,
    /// Findings an entry suppressed (reported only in verbose mode).
    pub suppressed: Vec<Finding>,
    /// Entries that suppressed nothing — each one fails the run (ratchet).
    pub stale: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the `analyze.toml` format. Unknown keys are ignored;
    /// structural errors (an entry without `file`/`rule`, an unknown rule
    /// name) are reported with their line.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        // Pending entry state: (file, rule, line, reason, at_line).
        let mut cur: Option<PendingEntry> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut cur, &mut entries)?;
                cur = Some((None, None, None, String::new(), lineno));
                continue;
            }
            if line.starts_with('[') {
                // Some other table: close any open entry, then skip keys
                // until the next [[allow]].
                finish(&mut cur, &mut entries)?;
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("analyze.toml:{lineno}: expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(entry) = cur.as_mut() else {
                continue; // key outside any [[allow]] table — ignore
            };
            match key {
                "file" => entry.0 = Some(unquote(value, lineno)?),
                "rule" => {
                    let name = unquote(value, lineno)?;
                    entry.1 =
                        Some(Rule::parse(&name).ok_or_else(|| {
                            format!("analyze.toml:{lineno}: unknown rule {name:?}")
                        })?);
                }
                "line" => {
                    entry.2 =
                        Some(value.parse().map_err(|_| {
                            format!("analyze.toml:{lineno}: line must be an integer")
                        })?);
                }
                "reason" => entry.3 = unquote(value, lineno)?,
                _ => {} // forward-compatible: ignore unknown keys
            }
        }
        finish(&mut cur, &mut entries)?;
        Ok(Allowlist { entries })
    }

    /// Splits `findings` into unallowed / suppressed and reports entries
    /// that matched nothing as stale.
    pub fn screen(&self, findings: Vec<Finding>) -> Screened {
        let mut used = vec![false; self.entries.len()];
        let mut unallowed = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            let mut hit = false;
            for (i, e) in self.entries.iter().enumerate() {
                if e.rule == f.rule && e.file == f.file && e.line.is_none_or(|l| l == f.line) {
                    used[i] = true;
                    hit = true;
                }
            }
            if hit {
                suppressed.push(f);
            } else {
                unallowed.push(f);
            }
        }
        let stale = self
            .entries
            .iter()
            .zip(&used)
            .filter(|&(_, &u)| !u)
            .map(|(e, _)| e.clone())
            .collect();
        Screened {
            unallowed,
            suppressed,
            stale,
        }
    }
}

type PendingEntry = (Option<String>, Option<Rule>, Option<u32>, String, u32);

fn finish(cur: &mut Option<PendingEntry>, out: &mut Vec<AllowEntry>) -> Result<(), String> {
    if let Some((file, rule, line, reason, at_line)) = cur.take() {
        let file =
            file.ok_or_else(|| format!("analyze.toml:{at_line}: [[allow]] entry needs `file`"))?;
        let rule =
            rule.ok_or_else(|| format!("analyze.toml:{at_line}: [[allow]] entry needs `rule`"))?;
        out.push(AllowEntry {
            file,
            rule,
            line,
            reason,
            at_line,
        });
    }
    Ok(())
}

/// Drops a `#` comment, respecting (simple, non-escaped) quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(value: &str, lineno: u32) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(format!("analyze.toml:{lineno}: expected a quoted string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: Rule) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule,
            msg: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_screens() {
        let toml = r#"
            # baseline
            [[allow]]
            file = "tests/alloc.rs"
            rule = "unsafe-hygiene"
            reason = "counting allocator"

            [[allow]]
            file = "src/x.rs"
            line = 10
            rule = "hot-path-panic"
            reason = "cold path"
        "#;
        let list = Allowlist::parse(toml).unwrap();
        assert_eq!(list.entries.len(), 2);
        let screened = list.screen(vec![
            finding("tests/alloc.rs", 5, Rule::UnsafeHygiene),
            finding("tests/alloc.rs", 9, Rule::UnsafeHygiene),
            finding("src/x.rs", 10, Rule::HotPathPanic),
            finding("src/x.rs", 11, Rule::HotPathPanic),
        ]);
        assert_eq!(screened.suppressed.len(), 3);
        assert_eq!(screened.unallowed.len(), 1);
        assert_eq!(screened.unallowed[0].line, 11);
        assert!(screened.stale.is_empty());
    }

    #[test]
    fn stale_entries_are_reported() {
        let toml = "[[allow]]\nfile = \"a.rs\"\nrule = \"cfg-feature\"\n";
        let list = Allowlist::parse(toml).unwrap();
        let screened = list.screen(vec![]);
        assert_eq!(screened.stale.len(), 1);
        assert_eq!(screened.stale[0].file, "a.rs");
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let toml = "[[allow]]\nfile = \"a.rs\"\nrule = \"bogus\"\n";
        assert!(Allowlist::parse(toml).is_err());
    }

    #[test]
    fn entry_missing_file_is_an_error() {
        let toml = "[[allow]]\nrule = \"cfg-feature\"\n";
        assert!(Allowlist::parse(toml).is_err());
    }
}

//! CLI for `prosperity-analyze`.
//!
//! ```text
//! prosperity-analyze [--workspace | --root DIR] [--allowlist FILE] [--verbose]
//! ```
//!
//! Exit codes: `0` clean, `1` non-allowlisted findings or stale allowlist
//! entries, `2` usage or IO error.

use prosperity_analyze::allowlist::Allowlist;
use prosperity_analyze::{analyze_root, find_workspace_root};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    workspace: bool,
    allowlist: Option<PathBuf>,
    verbose: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        workspace: false,
        allowlist: None,
        verbose: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a directory argument")?;
                args.root = Some(PathBuf::from(v));
            }
            "--allowlist" => {
                let v = it.next().ok_or("--allowlist needs a file argument")?;
                args.allowlist = Some(PathBuf::from(v));
            }
            "--verbose" => args.verbose = true,
            "--help" | "-h" => {
                println!(
                    "usage: prosperity-analyze [--workspace | --root DIR] \
                     [--allowlist FILE] [--verbose]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let root = match (&args.root, args.workspace) {
        (Some(r), _) => r.clone(),
        (None, _) => {
            // --workspace is also the default: find the enclosing workspace.
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or("no enclosing Cargo workspace found (try --root DIR)")?
        }
    };

    let allowlist_path = args
        .allowlist
        .clone()
        .unwrap_or_else(|| root.join("analyze.toml"));
    let allowlist = if allowlist_path.exists() {
        let text = std::fs::read_to_string(&allowlist_path)
            .map_err(|e| format!("{}: {e}", allowlist_path.display()))?;
        Allowlist::parse(&text)?
    } else if args.allowlist.is_some() {
        return Err(format!("{}: not found", allowlist_path.display()));
    } else {
        Allowlist::default()
    };

    let findings = analyze_root(&root)?;
    let screened = allowlist.screen(findings);

    if args.verbose {
        for f in &screened.suppressed {
            println!("allowed: {f}");
        }
    }
    for f in &screened.unallowed {
        println!("{f}");
    }
    for e in &screened.stale {
        println!(
            "analyze.toml:{}: stale allowlist entry ({}, {}) no longer fires; delete it",
            e.at_line,
            e.file,
            e.rule.name()
        );
    }

    let clean = screened.unallowed.is_empty() && screened.stale.is_empty();
    println!(
        "prosperity-analyze: {} finding(s), {} allowlisted, {} stale allowlist entr{}",
        screened.unallowed.len(),
        screened.suppressed.len(),
        screened.stale.len(),
        if screened.stale.len() == 1 {
            "y"
        } else {
            "ies"
        },
    );
    Ok(clean)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("prosperity-analyze: error: {e}");
            ExitCode::from(2)
        }
    }
}

//! A hand-rolled Rust lexer: comment-, string-, and char-literal-aware.
//!
//! The analyzer's rules are token-shape patterns ("`lock_shard` followed by
//! `(`", "`.unwrap()` inside a region"), so the lexer's one job is to
//! classify source bytes well enough that **prose never masquerades as
//! code**: identifiers inside comments, strings, raw strings, byte strings,
//! and char literals must come out as [`TokKind::Comment`] / [`TokKind::Str`]
//! / [`TokKind::Char`] tokens, never as [`TokKind::Ident`]s. In the same
//! spirit as the repo's `trace_io` codec, there are no dependencies — the
//! grammar subset implemented here is exactly what the rules consume.
//!
//! The lexer is *lossless enough*: every non-whitespace byte lands in some
//! token, each token carries its 1-based source line, and comments keep
//! their text so marker comments (`// analyze: hot-path`, `// SAFETY:`) can
//! be recognized downstream.

/// Token classes the rule passes distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `lock_shard`, ...).
    Ident,
    /// Numeric literal (`12`, `0x0F`, `1.5`, `64usize`).
    Num,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Life,
    /// Single punctuation byte (`{`, `.`, `#`, ...).
    Punct,
    /// Non-doc comment (`// ...`, `/* ... */`), text preserved.
    Comment,
    /// Doc comment (`/// ...`, `//! ...`, `/** ... */`), text preserved.
    DocComment,
}

/// One lexed token: kind, raw text, and the 1-based line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Whether this token is a comment of either kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::Comment | TokKind::DocComment)
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this token is the punctuation byte `p`.
    pub fn is_punct(&self, p: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == p as u8
    }
}

/// Lexes `src` into a token stream. Never fails: unterminated constructs
/// simply consume to end-of-input (the analyzer lints real, compiling
/// code; graceful degradation beats erroring on fixtures).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        s: src.as_bytes(),
        i: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    s: &'a [u8],
    i: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Tok> {
        while self.i < self.s.len() {
            let b = self.s[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.i),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => {
                    self.push(TokKind::Punct, self.i, self.i + 1, self.line);
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.s.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize, line: u32) {
        self.out.push(Tok {
            kind,
            text: String::from_utf8_lossy(&self.s[start..end]).into_owned(),
            line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        // Doc: `///` (but not `////`) or `//!`.
        let doc = (self.peek(2) == Some(b'/') && self.peek(3) != Some(b'/'))
            || self.peek(2) == Some(b'!');
        while self.i < self.s.len() && self.s[self.i] != b'\n' {
            self.i += 1;
        }
        let kind = if doc {
            TokKind::DocComment
        } else {
            TokKind::Comment
        };
        self.push(kind, start, self.i, line);
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        let doc = (self.peek(2) == Some(b'*') && self.peek(3) != Some(b'*'))
            || self.peek(2) == Some(b'!');
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.s.len() && depth > 0 {
            if self.s[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
            } else if self.s[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.s[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
            } else {
                self.i += 1;
            }
        }
        let kind = if doc {
            TokKind::DocComment
        } else {
            TokKind::Comment
        };
        self.push(kind, start, self.i, line);
    }

    /// Ordinary (or byte) string starting at the `"`; `start` marks where
    /// the token text begins (before a `b` prefix, if any).
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.i += 1; // opening quote
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\\' => self.i += 2, // escape: skip the escaped byte
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Str, start, self.i.min(self.s.len()), line);
    }

    /// Raw string starting at the first `#` or `"` after the `r` prefix;
    /// `start` marks the token text start.
    fn raw_string(&mut self, start: usize) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote
        while self.i < self.s.len() {
            if self.s[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
            } else if self.s[self.i] == b'"' {
                let mut ok = true;
                for h in 0..hashes {
                    if self.s.get(self.i + 1 + h) != Some(&b'#') {
                        ok = false;
                        break;
                    }
                }
                self.i += 1;
                if ok {
                    self.i += hashes;
                    break;
                }
            } else {
                self.i += 1;
            }
        }
        self.push(TokKind::Str, start, self.i.min(self.s.len()), line);
    }

    /// Handles `r"`, `r#"`, `br"`, `b"`, `b'`, and raw identifiers
    /// (`r#ident`). Returns false when the `r`/`b` is a plain identifier
    /// start, leaving the position untouched.
    fn raw_or_byte_string(&mut self) -> bool {
        let start = self.i;
        let b0 = self.s[self.i];
        match (b0, self.peek(1), self.peek(2)) {
            (b'r', Some(b'"'), _) => {
                self.i += 1;
                self.raw_string(start);
                true
            }
            (b'r', Some(b'#'), Some(n)) if n == b'"' || n == b'#' => {
                self.i += 1;
                self.raw_string(start);
                true
            }
            // Raw identifier `r#name`: lex as the identifier itself.
            (b'r', Some(b'#'), Some(n)) if is_ident_start(n) => {
                self.i += 2;
                self.ident();
                true
            }
            (b'b', Some(b'"'), _) => {
                self.i += 1;
                self.string(start);
                true
            }
            (b'b', Some(b'r'), Some(n)) if n == b'"' || n == b'#' => {
                self.i += 2;
                self.raw_string(start);
                true
            }
            (b'b', Some(b'\''), _) => {
                self.i += 1;
                self.char_lit(start);
                true
            }
            _ => false,
        }
    }

    /// A `'` begins either a char literal or a lifetime.
    fn char_or_lifetime(&mut self) {
        let start = self.i;
        match (self.peek(1), self.peek(2)) {
            // Escape: definitely a char literal.
            (Some(b'\\'), _) => self.char_lit(start),
            // 'x' (identifier byte then closing quote): char literal.
            (Some(c), Some(b'\'')) if is_ident_byte(c) => self.char_lit(start),
            // 'ident with no closing quote: lifetime.
            (Some(c), _) if is_ident_start(c) => {
                let line = self.line;
                self.i += 1;
                while self.i < self.s.len() && is_ident_byte(self.s[self.i]) {
                    self.i += 1;
                }
                self.push(TokKind::Life, start, self.i, line);
            }
            // Anything else ('{', '∆', ...) is a char literal.
            _ => self.char_lit(start),
        }
    }

    fn char_lit(&mut self, start: usize) {
        let line = self.line;
        self.i += 1; // opening quote
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'\\' => self.i += 2,
                b'\'' => {
                    self.i += 1;
                    break;
                }
                b'\n' => break, // unterminated; don't eat the file
                _ => self.i += 1,
            }
        }
        self.push(TokKind::Char, start, self.i.min(self.s.len()), line);
    }

    fn number(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.i < self.s.len() {
            let b = self.s[self.i];
            if is_ident_byte(b) {
                self.i += 1;
            } else if b == b'.'
                && self.peek(1).is_some_and(|n| n.is_ascii_digit())
                && !self.s[start..self.i].contains(&b'.')
            {
                self.i += 1; // 1.5, but never 1..5 and only one dot
            } else {
                break;
            }
        }
        self.push(TokKind::Num, start, self.i, line);
    }

    fn ident(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.i < self.s.len() && is_ident_byte(self.s[self.i]) {
            self.i += 1;
        }
        self.push(TokKind::Ident, start, self.i, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_in_strings_and_comments_never_leak() {
        let toks = kinds(
            r##"
            // unwrap in a comment
            let s = "unwrap()";
            let r = r#"lock_shard("x")"#;
            let c = 'u';
            /* build_tiled */
            "##,
        );
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && (t == "unwrap" || t.contains("lock_shard"))));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Comment && t.contains("unwrap")));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Life && t == "'a"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "str"));
    }

    #[test]
    fn char_literals_with_escapes() {
        let toks = kinds(r"let a = '\''; let b = '\u{1F600}'; let c = '{';");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(chars.len(), 3);
        // The code after each literal still lexes.
        assert_eq!(toks.iter().filter(|(_, t)| t == "let").count(), 3);
    }

    #[test]
    fn doc_comments_are_classified() {
        let toks = lex("/// # Safety\n//! inner\n// plain\nfn f() {}");
        assert_eq!(toks[0].kind, TokKind::DocComment);
        assert!(toks[0].text.contains("# Safety"));
        assert_eq!(toks[1].kind, TokKind::DocComment);
        assert_eq!(toks[2].kind, TokKind::Comment);
    }

    #[test]
    fn lines_are_tracked_through_multiline_tokens() {
        let toks = lex("let a = \"x\ny\";\nlet b = 1;");
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("a[1..HEADER_BYTES]; x = 1.5; y = 0x0F;");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "1.5"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0x0F"));
        // The range dots survive as punctuation.
        assert_eq!(
            toks.iter()
                .filter(|(k, t)| *k == TokKind::Punct && t == ".")
                .count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ fn f() {}");
        assert_eq!(toks[0].0, TokKind::Comment);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "fn"));
    }
}

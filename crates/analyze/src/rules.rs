//! The five rule passes.
//!
//! Every pass is a token-shape scan over a [`Scoped`] file — no type
//! information, no name resolution. The rules are deliberately narrow:
//! each one encodes a single invariant this repo's earlier PRs introduced
//! in prose, and matches the exact code shapes the workspace uses, so the
//! false-positive surface stays small enough for a ratcheting baseline.

use crate::lexer::TokKind;
use crate::report::{Finding, Rule};
use crate::scopes::Scoped;
use std::collections::BTreeSet;

/// Marker comment that opens a hot-path region (the next `{ ... }` block).
pub const HOT_MARKER: &str = "analyze: hot-path";

/// Guard constructors from `engine/shared.rs` whose `MutexGuard` scopes
/// rule 1 patrols.
pub const LOCK_FNS: [&str; 2] = ["lock_shard", "lock_recovering"];

/// The only files allowed to contain `unsafe` at all (rule 3). Everything
/// here is SIMD/allocator code with a scalar oracle next to it.
pub const UNSAFE_ALLOWED: [&str; 4] = [
    "crates/spikemat/src/simd.rs",
    "crates/spikemat/src/bitops.rs",
    "crates/core/src/exec.rs",
    "tests/alloc.rs",
];

/// Stats structs whose every field must be observed (rule 4).
pub const STATS_STRUCTS: [&str; 3] = ["SchedulerStats", "EngineStats", "SharedCacheStats"];

/// One file ready for the per-file passes.
pub struct FileUnit {
    /// Root-relative, `/`-separated path.
    pub rel: String,
    pub scoped: Scoped,
}

impl FileUnit {
    fn finding(&self, line: u32, rule: Rule, msg: impl Into<String>) -> Finding {
        Finding {
            file: self.rel.clone(),
            line,
            rule,
            msg: msg.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 1: lock discipline
// ---------------------------------------------------------------------------

/// Denies planning, snapshot codec, and file IO calls inside a guard scope
/// obtained from [`LOCK_FNS`]. A `let`-bound guard lives to the end of the
/// enclosing block; a temporary guard (`self.lock_shard(s).cache.len()`)
/// lives to the end of its statement.
pub fn lock_discipline(f: &FileUnit) -> Vec<Finding> {
    let s = &f.scoped;
    let mut out = Vec::new();
    for i in 0..s.toks.len() {
        let t = &s.toks[i];
        if t.kind != TokKind::Ident || !LOCK_FNS.iter().any(|n| t.is_ident(n)) {
            continue;
        }
        if !next_is_call_paren(s, i) || is_fn_definition(s, i) {
            continue;
        }
        let end = guard_region_end(s, i);
        for j in i + 1..end.min(s.toks.len()) {
            let tj = &s.toks[j];
            if tj.kind != TokKind::Ident || !next_is_call_paren(s, j) || is_fn_definition(s, j) {
                continue;
            }
            if let Some(what) = denied_under_lock(s, j) {
                out.push(f.finding(
                    tj.line,
                    Rule::LockDiscipline,
                    format!(
                        "`{}` ({what}) called inside a `{}` guard scope \
                         (line {}); do this before taking the lock",
                        tj.text, t.text, t.line
                    ),
                ));
            }
        }
    }
    out
}

/// The end (exclusive token index) of the guard scope opened by the lock
/// call at `i`.
fn guard_region_end(s: &Scoped, i: usize) -> usize {
    let start = s.statement_start(i);
    let starts_with_let = s
        .next_code(start)
        .is_some_and(|k| k <= i && s.toks[k].is_ident("let"));
    // The guard itself is bound (not a temporary in a larger expression)
    // only if the lock call's closing paren ends the statement.
    let directly_bound = s
        .next_code(i + 1)
        .and_then(|open| s.matching(open))
        .and_then(|close| s.next_code(close + 1))
        .is_some_and(|after| s.toks[after].is_punct(';'));
    if starts_with_let && directly_bound {
        match s.enclosing_brace(i).and_then(|b| s.matching(b)) {
            Some(close) => close,
            None => s.toks.len(),
        }
    } else {
        s.statement_end(i)
    }
}

/// Classifies the callee ident at `j` if it is denied under a lock.
fn denied_under_lock(s: &Scoped, j: usize) -> Option<&'static str> {
    const SNAPSHOT_CODEC: [&str; 4] = ["encode", "encode_into", "encode_entry", "decode"];
    const FILE_IO: [&str; 9] = [
        "atomic_write",
        "sync_all",
        "write_all",
        "save",
        "load_latest_valid",
        "load_newer_than",
        "create_dir_all",
        "remove_file",
        "rename",
    ];
    // Qualified-only file IO names: too generic to deny bare (atomics have
    // `.load(...)`/`.store(...)`), but `fs::read`, `File::open`,
    // `PlanSnapshot::load` are the real thing.
    const FILE_IO_QUALIFIED: [&str; 7] = [
        "load",
        "read",
        "write",
        "open",
        "create",
        "read_to_string",
        "read_dir",
    ];
    let name = s.toks[j].text.as_str();
    if name.starts_with("build_tiled") {
        return Some("planning");
    }
    if SNAPSHOT_CODEC.contains(&name) {
        return Some("snapshot codec");
    }
    if FILE_IO.contains(&name) {
        return Some("file IO");
    }
    if FILE_IO_QUALIFIED.contains(&name) && path_qualified(s, j) {
        return Some("file IO");
    }
    None
}

/// Whether the ident at `j` is preceded by `::` (a path call, not a method).
fn path_qualified(s: &Scoped, j: usize) -> bool {
    let Some(p1) = j.checked_sub(1).and_then(|k| s.prev_code(k)) else {
        return false;
    };
    let Some(p2) = p1.checked_sub(1).and_then(|k| s.prev_code(k)) else {
        return false;
    };
    s.toks[p1].is_punct(':') && s.toks[p2].is_punct(':')
}

// ---------------------------------------------------------------------------
// Rule 2: hot-path panic-freedom
// ---------------------------------------------------------------------------

/// Within each `// analyze: hot-path` region (the next brace block after
/// the marker), denies `.unwrap()`, `.expect()`, the panicking macros, and
/// `[...]` indexing whose index is not a literal/const expression.
pub fn hot_path(f: &FileUnit) -> Vec<Finding> {
    const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
    let s = &f.scoped;
    let mut out = Vec::new();
    for i in 0..s.toks.len() {
        if !(s.toks[i].is_comment() && is_hot_marker(&s.toks[i].text)) {
            continue;
        }
        let Some(open) = (i + 1..s.toks.len()).find(|&j| s.toks[j].is_punct('{')) else {
            continue;
        };
        let close = s.matching(open).unwrap_or(s.toks.len());
        for j in open + 1..close {
            let t = &s.toks[j];
            if t.is_comment() {
                continue;
            }
            // `.unwrap(` / `.expect(`
            if (t.is_ident("unwrap") || t.is_ident("expect"))
                && next_is_call_paren(s, j)
                && j.checked_sub(1)
                    .and_then(|k| s.prev_code(k))
                    .is_some_and(|p| s.toks[p].is_punct('.'))
            {
                out.push(f.finding(
                    t.line,
                    Rule::HotPathPanic,
                    format!(
                        "`.{}()` in a hot-path region; use an infallible pattern",
                        t.text
                    ),
                ));
                continue;
            }
            // `panic!(` and friends
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text.as_str())
                && s.next_code(j + 1).is_some_and(|n| s.toks[n].is_punct('!'))
            {
                out.push(f.finding(
                    t.line,
                    Rule::HotPathPanic,
                    format!("`{}!` in a hot-path region", t.text),
                ));
                continue;
            }
            // indexing `[...]` with a non-literal index
            if t.is_punct('[') && is_index_expr(s, j) {
                let close_b = s.matching(j).unwrap_or(close);
                if !index_is_const(s, j + 1, close_b) {
                    out.push(f.finding(
                        t.line,
                        Rule::HotPathPanic,
                        "unchecked `[...]` indexing with a non-literal index in a \
                         hot-path region; use `get`/iterators",
                    ));
                }
            }
        }
    }
    out
}

/// Whether a comment token *is* the hot-path marker: exactly
/// `// analyze: hot-path` (modulo comment punctuation and whitespace), so
/// prose that merely mentions the marker does not open a region.
fn is_hot_marker(comment: &str) -> bool {
    comment.trim_start_matches(['/', '*', '!']).trim() == HOT_MARKER
}

/// Whether the `[` at `j` starts an index expression (vs. an array literal,
/// attribute, or slice type).
fn is_index_expr(s: &Scoped, j: usize) -> bool {
    const NOT_AN_EXPR_BEFORE: [&str; 16] = [
        "let", "mut", "return", "in", "as", "if", "else", "match", "move", "ref", "break",
        "continue", "unsafe", "where", "box", "yield",
    ];
    let Some(p) = j.checked_sub(1).and_then(|k| s.prev_code(k)) else {
        return false;
    };
    let t = &s.toks[p];
    match t.kind {
        TokKind::Ident => !NOT_AN_EXPR_BEFORE.contains(&t.text.as_str()),
        TokKind::Punct => t.is_punct(')') || t.is_punct(']') || t.is_punct('?'),
        _ => false,
    }
}

/// Whether the index tokens in `(from..to)` are all literal/const material:
/// numbers, range punctuation (`.`/`=`), and SCREAMING_CASE constants.
fn index_is_const(s: &Scoped, from: usize, to: usize) -> bool {
    for j in from..to.min(s.toks.len()) {
        let t = &s.toks[j];
        let ok = match t.kind {
            TokKind::Num => true,
            TokKind::Punct => t.is_punct('.') || t.is_punct('='),
            TokKind::Ident => is_const_ident(&t.text),
            TokKind::Comment | TokKind::DocComment => true,
            _ => false,
        };
        if !ok {
            return false;
        }
    }
    true
}

fn is_const_ident(name: &str) -> bool {
    name.chars().any(|c| c.is_ascii_uppercase())
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

// ---------------------------------------------------------------------------
// Rule 3: unsafe hygiene
// ---------------------------------------------------------------------------

/// Every `unsafe` site must be in an allowlisted file; every `unsafe fn`,
/// `unsafe {}`, `unsafe impl`, or `unsafe trait` must carry a nearby
/// `// SAFETY:` comment (or, for fns, an attached `# Safety` doc section);
/// every public `unsafe fn` must have the `# Safety` doc section.
pub fn unsafe_hygiene(f: &FileUnit) -> Vec<Finding> {
    let s = &f.scoped;
    // Lines on which a SAFETY: comment appears (either comment kind).
    let safety_lines: BTreeSet<u32> = s
        .toks
        .iter()
        .filter(|t| t.is_comment() && t.text.contains("SAFETY:"))
        .map(|t| t.line)
        .collect();
    let allowed_here = UNSAFE_ALLOWED.contains(&f.rel.as_str());
    let mut out = Vec::new();
    for i in 0..s.toks.len() {
        let t = &s.toks[i];
        if !t.is_ident("unsafe") {
            continue;
        }
        if !allowed_here {
            out.push(f.finding(
                t.line,
                Rule::UnsafeHygiene,
                format!(
                    "`unsafe` outside the allowlisted files ({}); keep unsafe \
                     confined to the SIMD/allocator modules",
                    UNSAFE_ALLOWED.join(", ")
                ),
            ));
            continue;
        }
        let Some(n) = s.next_code(i + 1) else {
            continue;
        };
        let next = &s.toks[n];
        let (is_fn, what) = if next.is_ident("fn") {
            (true, "unsafe fn")
        } else if next.is_punct('{') {
            (false, "unsafe block")
        } else if next.is_ident("impl") {
            (false, "unsafe impl")
        } else if next.is_ident("trait") {
            (false, "unsafe trait")
        } else {
            continue; // e.g. `unsafe extern` / fn-pointer type
        };
        let (docs, is_pub) = attached_docs(s, i);
        let has_safety_doc = docs.iter().any(|d| d.contains("# Safety"));
        let has_safety_comment =
            (t.line.saturating_sub(3)..=t.line + 1).any(|l| safety_lines.contains(&l));
        if is_fn && is_pub && !has_safety_doc {
            out.push(f.finding(
                t.line,
                Rule::UnsafeHygiene,
                "public `unsafe fn` without a `# Safety` doc section",
            ));
        } else if !(has_safety_comment || (is_fn && has_safety_doc)) {
            out.push(f.finding(
                t.line,
                Rule::UnsafeHygiene,
                format!("{what} without a `// SAFETY:` comment"),
            ));
        }
    }
    out
}

/// Walks backwards from the `unsafe` token over visibility modifiers and
/// attributes, collecting attached doc comments. Returns `(docs, is_pub)`.
fn attached_docs(s: &Scoped, i: usize) -> (Vec<String>, bool) {
    let mut docs = Vec::new();
    let mut is_pub = false;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &s.toks[j];
        match t.kind {
            TokKind::DocComment => docs.push(t.text.clone()),
            TokKind::Comment => {}
            TokKind::Ident
                if matches!(
                    t.text.as_str(),
                    "pub" | "crate" | "super" | "self" | "const"
                ) =>
            {
                if t.text == "pub" {
                    is_pub = true;
                }
            }
            TokKind::Punct if t.is_punct('(') || t.is_punct(')') => {}
            // An attribute `#[...]`: jump from `]` back over it.
            TokKind::Punct if t.is_punct(']') => {
                let Some(open) = s.matching(j) else { break };
                // Expect `#` (or `#!`) just before the `[`.
                let Some(h) = open.checked_sub(1) else { break };
                if s.toks[h].is_punct('#') {
                    j = h;
                } else if s.toks[h].is_punct('!')
                    && h.checked_sub(1).is_some_and(|k| s.toks[k].is_punct('#'))
                {
                    j = h - 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (docs, is_pub)
}

// ---------------------------------------------------------------------------
// Rule 4: counter coverage
// ---------------------------------------------------------------------------

/// A field of one of the [`STATS_STRUCTS`].
#[derive(Debug, Clone)]
pub struct StatsField {
    pub strukt: String,
    pub name: String,
    pub file: String,
    pub line: u32,
}

/// Extracts the fields of any [`STATS_STRUCTS`] definitions in `f`.
pub fn stats_fields(f: &FileUnit) -> Vec<StatsField> {
    let s = &f.scoped;
    let mut out = Vec::new();
    for i in 0..s.toks.len() {
        if !s.toks[i].is_ident("struct") {
            continue;
        }
        let Some(ni) = s.next_code(i + 1) else {
            continue;
        };
        let name = &s.toks[ni];
        if name.kind != TokKind::Ident || !STATS_STRUCTS.contains(&name.text.as_str()) {
            continue;
        }
        let Some(open) = (ni + 1..s.toks.len()).find(|&j| s.toks[j].is_punct('{')) else {
            continue;
        };
        let close = s.matching(open).unwrap_or(s.toks.len());
        let mut depth = 0i32;
        for j in open + 1..close {
            let t = &s.toks[j];
            if t.kind == TokKind::Punct {
                match t.text.as_bytes().first() {
                    Some(b'(') | Some(b'[') | Some(b'{') => depth += 1,
                    Some(b')') | Some(b']') | Some(b'}') => depth -= 1,
                    _ => {}
                }
                continue;
            }
            if depth != 0 || t.kind != TokKind::Ident {
                continue;
            }
            let colon_next = s.next_code(j + 1).is_some_and(|n| s.toks[n].is_punct(':'));
            let starts_field = j
                .checked_sub(1)
                .and_then(|k| s.prev_code(k))
                .is_some_and(|p| {
                    s.toks[p].is_punct('{') || s.toks[p].is_punct(',') || s.toks[p].is_ident("pub")
                });
            if colon_next && starts_field && !t.is_ident("pub") {
                out.push(StatsField {
                    strukt: name.text.clone(),
                    name: t.text.clone(),
                    file: f.rel.clone(),
                    line: t.line,
                });
            }
        }
    }
    out
}

/// Collects the identifiers a file's test code *observes*: field accesses
/// (`.name`) plus words inside string literals (JSON key assertions). When
/// `whole_file` is set (a `tests/` integration file), the entire file
/// counts; otherwise only `#[cfg(test)]` regions do.
pub fn test_mentions(f: &FileUnit, whole_file: bool, out: &mut BTreeSet<String>) {
    let s = &f.scoped;
    if whole_file {
        collect_mentions(s, 0, s.toks.len(), out);
        return;
    }
    for (open, close) in cfg_test_regions(s) {
        collect_mentions(s, open, close, out);
    }
}

/// Brace regions guarded by a `#[cfg(test)]`-style attribute.
fn cfg_test_regions(s: &Scoped) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for i in 0..s.toks.len() {
        if !s.toks[i].is_punct('#') {
            continue;
        }
        let Some(b) = s.next_code(i + 1) else {
            continue;
        };
        if !s.toks[b].is_punct('[') {
            continue;
        }
        let Some(bc) = s.matching(b) else { continue };
        let slice_has = |name: &str| (b + 1..bc).any(|j| s.toks[j].is_ident(name));
        if !(slice_has("cfg") && slice_has("test")) {
            continue;
        }
        if let Some(open) = (bc + 1..s.toks.len()).find(|&j| s.toks[j].is_punct('{')) {
            let close = s.matching(open).unwrap_or(s.toks.len());
            regions.push((open, close));
        }
    }
    regions
}

fn collect_mentions(s: &Scoped, from: usize, to: usize, out: &mut BTreeSet<String>) {
    for j in from..to.min(s.toks.len()) {
        let t = &s.toks[j];
        match t.kind {
            TokKind::Ident => {
                let field_access = j
                    .checked_sub(1)
                    .and_then(|k| s.prev_code(k))
                    .is_some_and(|p| s.toks[p].is_punct('.'));
                if field_access {
                    out.insert(t.text.clone());
                }
            }
            TokKind::Str => {
                for w in t
                    .text
                    .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                {
                    if !w.is_empty() {
                        out.insert(w.to_string());
                    }
                }
            }
            _ => {}
        }
    }
}

/// Flags every stats field neither mentioned by test code nor named in the
/// bench JSON contract script.
pub fn counter_coverage(
    fields: &[StatsField],
    mentions: &BTreeSet<String>,
    script_text: &str,
) -> Vec<Finding> {
    fields
        .iter()
        .filter(|f| !mentions.contains(&f.name) && !script_text.contains(&f.name))
        .map(|f| Finding {
            file: f.file.clone(),
            line: f.line,
            rule: Rule::CounterCoverage,
            msg: format!(
                "field `{}.{}` is never read by any test or scripts/check_bench_json.sh; \
                 counters must be observed so they cannot rot",
                f.strukt, f.name
            ),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Rule 5: cfg/feature consistency
// ---------------------------------------------------------------------------

/// Flags `feature = "..."` strings inside `#[cfg(...)]`/`#[cfg_attr(...)]`
/// attributes that name a feature the owning crate's `Cargo.toml` does not
/// declare.
pub fn cfg_feature(f: &FileUnit, declared: &BTreeSet<String>) -> Vec<Finding> {
    let s = &f.scoped;
    let mut out = Vec::new();
    for i in 0..s.toks.len() {
        if !s.toks[i].is_punct('#') {
            continue;
        }
        // `#[` or `#![`
        let Some(mut b) = s.next_code(i + 1) else {
            continue;
        };
        if s.toks[b].is_punct('!') {
            let Some(b2) = s.next_code(b + 1) else {
                continue;
            };
            b = b2;
        }
        if !s.toks[b].is_punct('[') {
            continue;
        }
        let Some(bc) = s.matching(b) else { continue };
        let head = s.next_code(b + 1);
        let is_cfg =
            head.is_some_and(|h| s.toks[h].is_ident("cfg") || s.toks[h].is_ident("cfg_attr"));
        if !is_cfg {
            continue;
        }
        let mut j = b + 1;
        while j < bc {
            if s.toks[j].is_ident("feature") {
                let eq = s.next_code(j + 1);
                let val = eq.and_then(|e| {
                    if s.toks[e].is_punct('=') {
                        s.next_code(e + 1)
                    } else {
                        None
                    }
                });
                if let Some(v) = val {
                    if s.toks[v].kind == TokKind::Str {
                        let name = s.toks[v].text.trim_matches('"');
                        if !declared.contains(name) {
                            out.push(f.finding(
                                s.toks[v].line,
                                Rule::CfgFeature,
                                format!(
                                    "`feature = \"{name}\"` is not declared in the owning \
                                     crate's Cargo.toml"
                                ),
                            ));
                        }
                        j = v + 1;
                        continue;
                    }
                }
            }
            j += 1;
        }
    }
    out
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

/// Whether the next code token after `i` is `(` — i.e. `ident(...)`.
fn next_is_call_paren(s: &Scoped, i: usize) -> bool {
    s.next_code(i + 1).is_some_and(|n| s.toks[n].is_punct('('))
}

/// Whether the ident at `i` is a definition (`fn name(...)`), not a call.
fn is_fn_definition(s: &Scoped, i: usize) -> bool {
    i.checked_sub(1)
        .and_then(|k| s.prev_code(k))
        .is_some_and(|p| s.toks[p].is_ident("fn"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn unit(src: &str) -> FileUnit {
        FileUnit {
            rel: "crates/core/src/exec.rs".into(),
            scoped: Scoped::new(lex(src)),
        }
    }

    #[test]
    fn lock_rule_flags_planning_under_let_bound_guard() {
        let f = unit(
            "fn x(&self) {\n\
             let mut shard = self.lock_shard(0);\n\
             let plan = build_tiled_plan(&m);\n\
             shard.insert(plan);\n\
             }",
        );
        let found = lock_discipline(&f);
        assert_eq!(found.len(), 1);
        assert!(found[0].msg.contains("planning"));
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn lock_rule_temporary_guard_ends_at_statement() {
        let f = unit(
            "fn x(&self) {\n\
             let n = self.lock_shard(0).cache.len();\n\
             let plan = build_tiled_plan(&m);\n\
             }",
        );
        assert!(lock_discipline(&f).is_empty());
    }

    #[test]
    fn lock_rule_allows_atomic_load_but_not_qualified_io() {
        let ok = unit(
            "fn x(&self) {\n\
             let g = lock_recovering(&self.states);\n\
             let gen = self.generation.load(Ordering::Relaxed);\n\
             }",
        );
        assert!(lock_discipline(&ok).is_empty());
        let bad = unit(
            "fn x(&self) {\n\
             let g = lock_recovering(&self.states);\n\
             let bytes = fs::read(path);\n\
             }",
        );
        let found = lock_discipline(&bad);
        assert_eq!(found.len(), 1);
        assert!(found[0].msg.contains("file IO"));
    }

    #[test]
    fn hot_path_flags_unwrap_and_variable_index() {
        let f = unit(
            "// analyze: hot-path\n\
             fn step(&mut self, i: usize) {\n\
             let x = self.rows.get(i).unwrap();\n\
             let y = self.cols[i];\n\
             let z = self.buf[12..HEADER_BYTES].len();\n\
             }",
        );
        let found = hot_path(&f);
        assert_eq!(found.len(), 2);
        assert!(found[0].msg.contains("unwrap"));
        assert!(found[1].msg.contains("indexing"));
    }

    #[test]
    fn hot_path_region_is_bounded_by_the_next_block() {
        let f = unit(
            "// analyze: hot-path\n\
             fn hot(&self) { let a = self.x.first(); }\n\
             fn cold(&self) { let b = self.v[i]; b.unwrap(); }",
        );
        assert!(hot_path(&f).is_empty());
    }

    #[test]
    fn hot_path_ignores_attribute_brackets_and_array_types() {
        let f = unit(
            "// analyze: hot-path\n\
             fn hot(&self) {\n\
             #[cfg(feature = \"simd\")]\n\
             let a: [u64; 4] = [0; 4];\n\
             let b = [x, y];\n\
             }",
        );
        assert!(hot_path(&f).is_empty());
    }

    #[test]
    fn unsafe_outside_allowlist_is_flagged() {
        let f = FileUnit {
            rel: "crates/core/src/engine/session.rs".into(),
            scoped: Scoped::new(lex("fn f() { unsafe { g(); } }")),
        };
        let found = unsafe_hygiene(&f);
        assert_eq!(found.len(), 1);
        assert!(found[0].msg.contains("outside the allowlisted files"));
    }

    #[test]
    fn unsafe_block_needs_safety_comment() {
        let bad = unit("fn f() { unsafe { g(); } }");
        assert_eq!(unsafe_hygiene(&bad).len(), 1);
        let good = unit("fn f() {\n// SAFETY: g has no preconditions.\nunsafe { g(); } }");
        assert!(unsafe_hygiene(&good).is_empty());
    }

    #[test]
    fn public_unsafe_fn_needs_safety_doc() {
        let bad = unit(
            "// SAFETY: covered by a comment only.\n\
             pub(crate) unsafe fn f() {}",
        );
        let found = unsafe_hygiene(&bad);
        assert_eq!(found.len(), 1);
        assert!(found[0].msg.contains("# Safety"));
        let good = unit(
            "/// Does things.\n\
             ///\n\
             /// # Safety\n\
             /// Caller must check avx2.\n\
             #[target_feature(enable = \"avx2\")]\n\
             pub(crate) unsafe fn f() {}",
        );
        assert!(unsafe_hygiene(&good).is_empty());
    }

    #[test]
    fn private_unsafe_fn_accepts_either_form() {
        let with_comment = unit("// SAFETY: internal.\nunsafe fn f() {}");
        assert!(unsafe_hygiene(&with_comment).is_empty());
        let with_doc = unit("/// # Safety\n/// Internal.\nunsafe fn f() {}");
        assert!(unsafe_hygiene(&with_doc).is_empty());
        let bare = unit("unsafe fn f() {}");
        assert_eq!(unsafe_hygiene(&bare).len(), 1);
    }

    #[test]
    fn stats_fields_and_coverage() {
        let def = unit(
            "pub struct SchedulerStats {\n\
             pub lane_steps: u64,\n\
             pub deadline_misses: u64,\n\
             }",
        );
        let fields = stats_fields(&def);
        assert_eq!(fields.len(), 2);
        let tests = unit(
            "#[cfg(test)]\nmod tests {\n\
             fn t() { assert_eq!(stats.lane_steps, 1); }\n\
             }",
        );
        let mut mentions = BTreeSet::new();
        test_mentions(&tests, false, &mut mentions);
        assert!(mentions.contains("lane_steps"));
        let findings = counter_coverage(&fields, &mentions, "");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].msg.contains("deadline_misses"));
        // The script text also counts.
        assert!(counter_coverage(&fields, &mentions, "jq .deadline_misses").is_empty());
    }

    #[test]
    fn string_mentions_count_in_test_files() {
        let f = unit("fn t() { assert!(json.contains(\"gossip_imports\")); }");
        let mut mentions = BTreeSet::new();
        test_mentions(&f, true, &mut mentions);
        assert!(mentions.contains("gossip_imports"));
    }

    #[test]
    fn cfg_feature_checks_declarations() {
        let f = unit(
            "#[cfg(feature = \"simd\")]\nfn a() {}\n\
             #[cfg(all(test, feature = \"parralel\"))]\nfn b() {}\n\
             #[cfg(target_arch = \"x86_64\")]\nfn c() {}",
        );
        let declared: BTreeSet<String> =
            ["simd", "parallel"].iter().map(|s| s.to_string()).collect();
        let found = cfg_feature(&f, &declared);
        assert_eq!(found.len(), 1);
        assert!(found[0].msg.contains("parralel"));
    }

    #[test]
    fn cfg_feature_ignores_non_cfg_attributes() {
        let f = unit("#[doc = \"feature = \\\"nope\\\"\"]\nfn a() {}");
        assert!(cfg_feature(&f, &BTreeSet::new()).is_empty());
    }
}

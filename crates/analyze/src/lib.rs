//! `prosperity-analyze`: a self-contained static analyzer for this
//! workspace's load-bearing invariants.
//!
//! Nine PRs of serving-runtime growth accumulated invariants that lived
//! only as prose in ARCHITECTURE.md. This crate turns five of them into
//! machine-checked rules (see [`report::Rule`]):
//!
//! 1. **lock-discipline** — no planning / snapshot codec / file IO inside
//!    a `lock_shard`/`lock_recovering` guard scope (PR 3: "misses are
//!    planned outside the shard lock").
//! 2. **hot-path-panic** — no `unwrap`/`expect`/`panic!`/non-literal
//!    indexing inside `// analyze: hot-path` regions (PR 7: "zero
//!    allocations and no panic paths in the warm step loop").
//! 3. **unsafe-hygiene** — `unsafe` confined to the SIMD/allocator files,
//!    always with `// SAFETY:` comments and `# Safety` docs (PR 7:
//!    "scalar code is the reference semantics for every unsafe path").
//! 4. **counter-coverage** — every stats field observed by a test or the
//!    bench JSON contract script (PR 6: "every absorbed fault shows up in
//!    a counter").
//! 5. **cfg-feature** — every `#[cfg(feature = "...")]` names a declared
//!    feature (keeps the `parallel`/`simd`/`fault-injection` forwarding
//!    chains honest).
//!
//! Like the repo's `trace_io` codec, the crate has **zero dependencies**:
//! the lexer, scope tracker, and TOML-subset allowlist parser are all
//! hand-rolled here.

pub mod allowlist;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scopes;

use report::Finding;
use rules::FileUnit;
use scopes::Scoped;
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", "node_modules"];

/// Root-relative subtrees never analyzed (the rule fixtures contain
/// intentional violations).
const SKIP_SUBTREES: [&str; 1] = ["crates/analyze/tests/fixtures"];

/// Runs every rule pass over the workspace rooted at `root` and returns
/// the sorted findings (before allowlist screening).
pub fn analyze_root(root: &Path) -> Result<Vec<Finding>, String> {
    let mut rs_files = Vec::new();
    let mut manifest_dirs = Vec::new();
    walk(root, String::new(), &mut rs_files, &mut manifest_dirs)?;
    rs_files.sort();
    manifest_dirs.sort();

    let features: Vec<(String, BTreeSet<String>)> = manifest_dirs
        .iter()
        .map(|dir| {
            let path = if dir.is_empty() {
                root.join("Cargo.toml")
            } else {
                root.join(dir).join("Cargo.toml")
            };
            let text = fs::read_to_string(&path).unwrap_or_default();
            (dir.clone(), declared_features(&text))
        })
        .collect();

    let script_text =
        fs::read_to_string(root.join("scripts/check_bench_json.sh")).unwrap_or_default();

    let mut findings = Vec::new();
    let mut fields = Vec::new();
    let mut mentions = BTreeSet::new();
    for rel in &rs_files {
        let text =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: read failed: {e}"))?;
        let unit = FileUnit {
            rel: rel.clone(),
            scoped: Scoped::new(lexer::lex(&text)),
        };
        findings.extend(rules::lock_discipline(&unit));
        findings.extend(rules::hot_path(&unit));
        findings.extend(rules::unsafe_hygiene(&unit));
        findings.extend(rules::cfg_feature(&unit, features_for(&features, rel)));
        fields.extend(rules::stats_fields(&unit));
        rules::test_mentions(&unit, is_test_file(rel), &mut mentions);
    }
    findings.extend(rules::counter_coverage(&fields, &mentions, &script_text));

    report::sort_findings(&mut findings);
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    Ok(findings)
}

/// Finds the workspace root at or above `start`: the nearest directory
/// whose `Cargo.toml` contains a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn walk(
    root: &Path,
    rel: String,
    rs_files: &mut Vec<String>,
    manifest_dirs: &mut Vec<String>,
) -> Result<(), String> {
    let dir = if rel.is_empty() {
        root.to_path_buf()
    } else {
        root.join(&rel)
    };
    let entries =
        fs::read_dir(&dir).map_err(|e| format!("{}: read_dir failed: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let child_rel = if rel.is_empty() {
            name.clone()
        } else {
            format!("{rel}/{name}")
        };
        let ty = entry.file_type().map_err(|e| format!("{child_rel}: {e}"))?;
        if ty.is_dir() {
            if name.starts_with('.')
                || SKIP_DIRS.contains(&name.as_str())
                || SKIP_SUBTREES.contains(&child_rel.as_str())
            {
                continue;
            }
            walk(root, child_rel, rs_files, manifest_dirs)?;
        } else if ty.is_file() {
            if name == "Cargo.toml" {
                manifest_dirs.push(rel.clone());
            } else if name.ends_with(".rs") {
                rs_files.push(child_rel);
            }
        }
    }
    Ok(())
}

/// The features the crate owning `rel` declares: the longest manifest-dir
/// prefix wins (the workspace root manifest has the empty prefix).
fn features_for<'a>(features: &'a [(String, BTreeSet<String>)], rel: &str) -> &'a BTreeSet<String> {
    static EMPTY: BTreeSet<String> = BTreeSet::new();
    features
        .iter()
        .filter(|(dir, _)| dir.is_empty() || rel.starts_with(&format!("{dir}/")))
        .max_by_key(|(dir, _)| dir.len())
        .map(|(_, f)| f)
        .unwrap_or(&EMPTY)
}

/// Whether `rel` is test code in its entirety (integration tests and
/// `_tests.rs` modules); `#[cfg(test)]` regions are handled separately.
fn is_test_file(rel: &str) -> bool {
    rel.starts_with("tests/") || rel.contains("/tests/") || rel.ends_with("_tests.rs")
}

/// Parses the features a `Cargo.toml` declares: `[features]` keys plus
/// `optional = true` dependencies (whose names double as features).
fn declared_features(toml: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut section = String::new();
    for raw in toml.lines() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(|c| c == '[' || c == ']').to_string();
            continue;
        }
        let Some((key, rest)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let optional_dep = section.split('.').next_back() == Some("dependencies")
            && rest.contains("optional")
            && rest.contains("true");
        if section == "features" || optional_dep {
            out.insert(key.to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_features_from_manifest() {
        let toml = r#"
            [package]
            name = "x"

            [features]
            default = ["parallel"]
            parallel = ["dep:rayon"]
            simd = []
            fault-injection = []

            [dependencies]
            rayon = { path = "../vendor/rayon", optional = true }
            bytes = { path = "../vendor/bytes" }
        "#;
        let f = declared_features(toml);
        assert!(f.contains("parallel"));
        assert!(f.contains("simd"));
        assert!(f.contains("fault-injection"));
        assert!(f.contains("rayon"));
        assert!(!f.contains("bytes"));
    }

    #[test]
    fn longest_manifest_prefix_wins() {
        let features = vec![
            (String::new(), ["root".to_string()].into_iter().collect()),
            (
                "crates/core".to_string(),
                ["core".to_string()].into_iter().collect(),
            ),
        ];
        assert!(features_for(&features, "crates/core/src/lib.rs").contains("core"));
        assert!(features_for(&features, "tests/alloc.rs").contains("root"));
        assert!(features_for(&features, "crates/corelike/src/lib.rs").contains("root"));
    }

    #[test]
    fn test_file_classification() {
        assert!(is_test_file("tests/alloc.rs"));
        assert!(is_test_file("crates/core/tests/engine.rs"));
        assert!(is_test_file("crates/core/src/engine/snapshot_tests.rs"));
        assert!(!is_test_file("crates/core/src/exec.rs"));
    }
}

//! Brace-matched scope tracking over a lexed token stream.
//!
//! [`Scoped`] wraps one file's tokens with the structural indices every
//! rule pass needs: matching `()`/`[]`/`{}` pairs, the innermost enclosing
//! brace of each token, and comment-skipping neighbor lookups. Matching is
//! purely token-based — the lexer already guaranteed that delimiters inside
//! comments, strings, and char literals are not tokens — so an unbalanced
//! file degrades gracefully (unmatched delimiters simply have no partner)
//! instead of derailing the pass.

use crate::lexer::{Tok, TokKind};

/// A lexed file plus its delimiter structure.
pub struct Scoped {
    pub toks: Vec<Tok>,
    /// `match_of[i]` = index of the partner delimiter for an open or close
    /// delimiter at `i`; `usize::MAX` for non-delimiters and unmatched ones.
    match_of: Vec<usize>,
    /// `encl[i]` = token index of the innermost `{` strictly containing
    /// token `i`; `usize::MAX` at top level.
    encl: Vec<usize>,
}

const NONE: usize = usize::MAX;

impl Scoped {
    pub fn new(toks: Vec<Tok>) -> Self {
        let mut match_of = vec![NONE; toks.len()];
        let mut encl = vec![NONE; toks.len()];
        // One stack per delimiter family, so a stray `)` cannot unbalance
        // brace tracking.
        let mut parens = Vec::new();
        let mut brackets = Vec::new();
        let mut braces = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            encl[i] = braces.last().copied().unwrap_or(NONE);
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_bytes().first() {
                Some(b'(') => parens.push(i),
                Some(b'[') => brackets.push(i),
                Some(b'{') => braces.push(i),
                Some(b')') => {
                    if let Some(o) = parens.pop() {
                        match_of[o] = i;
                        match_of[i] = o;
                    }
                }
                Some(b']') => {
                    if let Some(o) = brackets.pop() {
                        match_of[o] = i;
                        match_of[i] = o;
                    }
                }
                Some(b'}') => {
                    if let Some(o) = braces.pop() {
                        match_of[o] = i;
                        match_of[i] = o;
                        // The close brace belongs to the outer scope.
                        encl[i] = braces.last().copied().unwrap_or(NONE);
                    }
                }
                _ => {}
            }
        }
        Self {
            toks,
            match_of,
            encl,
        }
    }

    /// Partner index of the delimiter at `i`, if matched.
    pub fn matching(&self, i: usize) -> Option<usize> {
        let m = *self.match_of.get(i)?;
        (m != NONE).then_some(m)
    }

    /// Index of the innermost `{` strictly containing token `i`.
    pub fn enclosing_brace(&self, i: usize) -> Option<usize> {
        let e = *self.encl.get(i)?;
        (e != NONE).then_some(e)
    }

    /// Next non-comment token at or after `i`.
    pub fn next_code(&self, mut i: usize) -> Option<usize> {
        while let Some(t) = self.toks.get(i) {
            if !t.is_comment() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Previous non-comment token at or before `i`.
    pub fn prev_code(&self, mut i: usize) -> Option<usize> {
        loop {
            let t = self.toks.get(i)?;
            if !t.is_comment() {
                return Some(i);
            }
            i = i.checked_sub(1)?;
        }
    }

    /// End (exclusive) of the statement containing token `i`: scans forward
    /// for a `;` at the same delimiter nesting, stopping early at a `}`
    /// that closes the enclosing scope. Used to bound the lifetime of a
    /// temporary (un-bound) lock guard.
    pub fn statement_end(&self, i: usize) -> usize {
        let mut depth = 0isize;
        for (j, t) in self.toks.iter().enumerate().skip(i) {
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_bytes().first() {
                Some(b'(') | Some(b'[') | Some(b'{') => depth += 1,
                Some(b')') | Some(b']') => depth -= 1,
                Some(b'}') => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                Some(b';') if depth <= 0 => return j + 1,
                _ => {}
            }
        }
        self.toks.len()
    }

    /// First code token of the statement containing `i`: walks back to the
    /// nearest `;`, `{`, or `}` at the same nesting and returns the index
    /// just after it.
    pub fn statement_start(&self, i: usize) -> usize {
        let mut depth = 0isize;
        let mut j = i;
        while j > 0 {
            j -= 1;
            let t = &self.toks[j];
            if t.kind != TokKind::Punct {
                continue;
            }
            match t.text.as_bytes().first() {
                Some(b')') | Some(b']') | Some(b'}') => depth += 1,
                Some(b'(') | Some(b'[') => depth -= 1,
                Some(b'{') => {
                    if depth == 0 {
                        return j + 1;
                    }
                    depth -= 1;
                }
                Some(b';') if depth == 0 => return j + 1,
                _ => {}
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scoped(src: &str) -> Scoped {
        Scoped::new(lex(src))
    }

    #[test]
    fn braces_match_and_enclose() {
        let s = scoped("fn f() { if x { y(); } }");
        let opens: Vec<usize> = s
            .toks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_punct('{'))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(opens.len(), 2);
        let outer_close = s.matching(opens[0]).unwrap();
        let inner_close = s.matching(opens[1]).unwrap();
        assert!(inner_close < outer_close);
        // `y` is enclosed by the inner brace.
        let y = s.toks.iter().position(|t| t.is_ident("y")).unwrap();
        assert_eq!(s.enclosing_brace(y), Some(opens[1]));
    }

    #[test]
    fn statement_bounds() {
        let s = scoped("{ let a = f(b, c); g(); }");
        let f = s.toks.iter().position(|t| t.is_ident("f")).unwrap();
        let start = s.statement_start(f);
        assert!(s.toks[start].is_ident("let"));
        let end = s.statement_end(f);
        assert!(s.toks[end - 1].is_punct(';'));
        // The statement ends before `g`.
        let g = s.toks.iter().position(|t| t.is_ident("g")).unwrap();
        assert!(end <= g);
    }

    #[test]
    fn stray_close_paren_does_not_unbalance_braces() {
        let s = scoped("fn f() { ) let x = 1; }");
        let open = s.toks.iter().position(|t| t.is_punct('{')).unwrap();
        assert!(s.matching(open).is_some());
    }
}

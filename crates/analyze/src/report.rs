//! Findings and diagnostic rendering.

use std::fmt;

/// The five rule passes, used as stable diagnostic identifiers (these are
/// the `rule = "..."` names `analyze.toml` entries reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Planning, snapshot codec, or file IO under a shard/recovery lock.
    LockDiscipline,
    /// `unwrap`/`expect`/`panic!`/non-literal indexing in an
    /// `// analyze: hot-path` region.
    HotPathPanic,
    /// `unsafe` without a `// SAFETY:` comment / `# Safety` doc section,
    /// or outside the allowlisted files.
    UnsafeHygiene,
    /// A stats-struct counter field never read by any test or the bench
    /// JSON contract script.
    CounterCoverage,
    /// `#[cfg(feature = "...")]` naming a feature the owning crate's
    /// `Cargo.toml` does not declare.
    CfgFeature,
}

impl Rule {
    pub const ALL: [Rule; 5] = [
        Rule::LockDiscipline,
        Rule::HotPathPanic,
        Rule::UnsafeHygiene,
        Rule::CounterCoverage,
        Rule::CfgFeature,
    ];

    /// The stable name used in diagnostics and allowlist entries.
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockDiscipline => "lock-discipline",
            Rule::HotPathPanic => "hot-path-panic",
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::CounterCoverage => "counter-coverage",
            Rule::CfgFeature => "cfg-feature",
        }
    }

    /// Parses an allowlist `rule = "..."` name.
    pub fn parse(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: `file:line:rule` plus a human explanation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Path relative to the analyzed root, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    pub rule: Rule,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.rule.name(),
            self.msg
        )
    }
}

/// Sorts findings for stable output: by file, then line, then rule name.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.name()).cmp(&(b.file.as_str(), b.line, b.rule.name()))
    });
}

//! Spiking neuron models and the Spiking Neuron Array.
//!
//! Prosperity's PPU produces the raw input currents of an SNN layer; the
//! *Spiking Neuron Array* (Fig. 4) then integrates those currents into each
//! neuron's membrane potential and fires binary spikes for the next layer.
//! This crate provides:
//!
//! * [`LifNeuron`] / [`LifParams`] — the leaky integrate-and-fire model the
//!   paper adopts (the most widely used neuron, Sec. II-A), with hard or
//!   soft reset.
//! * [`FsNeuron`] — a simplified few-spikes neuron in the spirit of Stellar's
//!   FS model (Stöckl & Maass), used only for the Fig. 11 density
//!   comparison; it trades accuracy for fewer spikes.
//! * [`NeuronArray`] — a batch of neurons applied to a layer's output
//!   currents across time steps, producing the next layer's spike matrix.
//! * [`IzhikevichNeuron`] — the two-variable Izhikevich model, one of the
//!   standard neuron models the paper cites; Prosperity is neuron-agnostic.
//! * [`encode`] — input spike encoders (rate/direct coding).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod encode;
mod fs;
mod izhikevich;
mod lif;

pub use fs::{FsNeuron, FsParams};
pub use izhikevich::{IzhikevichNeuron, IzhikevichParams};
pub use lif::{LifNeuron, LifParams, ResetMode};

use spikemat::SpikeMatrix;

/// A layer-wide array of LIF neurons.
///
/// The array holds one membrane potential per output feature. Feeding it the
/// layer's input currents for successive time steps yields the binary spike
/// rows that form the next layer's (time-unrolled) spike matrix.
#[derive(Debug, Clone)]
pub struct NeuronArray {
    neurons: Vec<LifNeuron>,
}

impl NeuronArray {
    /// Creates `width` neurons with identical parameters.
    pub fn new(width: usize, params: LifParams) -> Self {
        Self {
            neurons: vec![LifNeuron::new(params); width],
        }
    }

    /// Number of neurons (layer output width).
    pub fn width(&self) -> usize {
        self.neurons.len()
    }

    /// Advances every neuron by one time step with the given input currents
    /// and returns the fired spikes as 0/1 bytes.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len() != self.width()`.
    pub fn step(&mut self, currents: &[f32]) -> Vec<u8> {
        assert_eq!(currents.len(), self.width(), "current width mismatch");
        self.neurons
            .iter_mut()
            .zip(currents)
            .map(|(n, &c)| u8::from(n.step(c)))
            .collect()
    }

    /// Runs `time_steps` rows of currents (row-major `T × width`) and packs
    /// the resulting spikes into a `T × width` [`SpikeMatrix`].
    ///
    /// # Panics
    ///
    /// Panics if `currents.len() != time_steps * self.width()`.
    pub fn run(&mut self, currents: &[f32], time_steps: usize) -> SpikeMatrix {
        assert_eq!(
            currents.len(),
            time_steps * self.width(),
            "current buffer size mismatch"
        );
        let mut out = SpikeMatrix::zeros(time_steps, self.width());
        for t in 0..time_steps {
            let row = self.step(&currents[t * self.width()..(t + 1) * self.width()]);
            for (j, &s) in row.iter().enumerate() {
                if s != 0 {
                    out.set(t, j, true);
                }
            }
        }
        out
    }

    /// Resets all membrane potentials (between inference samples).
    pub fn reset(&mut self) {
        for n in &mut self.neurons {
            n.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_runs_time_steps() {
        let params = LifParams {
            threshold: 1.0,
            leak: 0.5,
            reset: ResetMode::Hard(0.0),
        };
        let mut arr = NeuronArray::new(2, params);
        // Neuron 0 gets constant strong input; neuron 1 gets none.
        let currents = [1.5f32, 0.0, 1.5, 0.0, 1.5, 0.0];
        let spikes = arr.run(&currents, 3);
        assert_eq!(spikes.rows(), 3);
        for t in 0..3 {
            assert!(spikes.get(t, 0), "neuron 0 should fire at t={t}");
            assert!(!spikes.get(t, 1), "neuron 1 should stay silent at t={t}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let params = LifParams::default();
        let mut arr = NeuronArray::new(1, params);
        // Accumulate sub-threshold potential.
        arr.step(&[0.6]);
        arr.reset();
        // After reset, the same sub-threshold input must not fire.
        let fired = arr.step(&[0.6]);
        assert_eq!(fired, vec![0]);
    }

    #[test]
    #[should_panic(expected = "current width mismatch")]
    fn width_mismatch_panics() {
        let mut arr = NeuronArray::new(2, LifParams::default());
        let _ = arr.step(&[1.0]);
    }
}

//! The Izhikevich spiking neuron (cited by the paper as one of the standard
//! neuron models, Sec. II-A).
//!
//! Two-variable quadratic model
//!
//! ```text
//! v' = 0.04 v² + 5 v + 140 − u + I
//! u' = a (b v − u)
//! if v ≥ 30 mV: spike, v ← c, u ← u + d
//! ```
//!
//! With the classic parameter presets it reproduces regular-spiking,
//! fast-spiking and bursting cortical behaviours. Prosperity itself is
//! neuron-agnostic — only the emitted binary spikes matter — so this model
//! plugs into the same trace machinery as LIF.

use serde::{Deserialize, Serialize};

/// Izhikevich model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IzhikevichParams {
    /// Recovery time scale `a`.
    pub a: f32,
    /// Recovery sensitivity `b`.
    pub b: f32,
    /// Post-spike reset potential `c` (mV).
    pub c: f32,
    /// Post-spike recovery increment `d`.
    pub d: f32,
    /// Integration step in ms.
    pub dt: f32,
}

impl IzhikevichParams {
    /// Regular-spiking cortical neuron (a=0.02, b=0.2, c=−65, d=8).
    pub fn regular_spiking() -> Self {
        Self {
            a: 0.02,
            b: 0.2,
            c: -65.0,
            d: 8.0,
            dt: 1.0,
        }
    }

    /// Fast-spiking interneuron (a=0.1, b=0.2, c=−65, d=2).
    pub fn fast_spiking() -> Self {
        Self {
            a: 0.1,
            b: 0.2,
            c: -65.0,
            d: 2.0,
            dt: 1.0,
        }
    }

    /// Intrinsically bursting neuron (a=0.02, b=0.2, c=−55, d=4).
    pub fn bursting() -> Self {
        Self {
            a: 0.02,
            b: 0.2,
            c: -55.0,
            d: 4.0,
            dt: 1.0,
        }
    }
}

/// A single Izhikevich neuron.
#[derive(Debug, Clone)]
pub struct IzhikevichNeuron {
    params: IzhikevichParams,
    v: f32,
    u: f32,
}

impl IzhikevichNeuron {
    /// Firing threshold in mV.
    pub const THRESHOLD_MV: f32 = 30.0;

    /// Creates a neuron at the resting state (`v = c`, `u = b·c`).
    pub fn new(params: IzhikevichParams) -> Self {
        Self {
            params,
            v: params.c,
            u: params.b * params.c,
        }
    }

    /// Membrane potential in mV.
    pub fn potential(&self) -> f32 {
        self.v
    }

    /// Recovery variable.
    pub fn recovery(&self) -> f32 {
        self.u
    }

    /// Advances one step with input current `i`; returns `true` on a spike.
    pub fn step(&mut self, i: f32) -> bool {
        let p = self.params;
        // Two half-steps for v improve numerical stability (Izhikevich 2003).
        for _ in 0..2 {
            self.v += 0.5 * p.dt * (0.04 * self.v * self.v + 5.0 * self.v + 140.0 - self.u + i);
        }
        self.u += p.dt * p.a * (p.b * self.v - self.u);
        if self.v >= Self::THRESHOLD_MV {
            self.v = p.c;
            self.u += p.d;
            true
        } else {
            false
        }
    }

    /// Returns the neuron to its resting state.
    pub fn reset(&mut self) {
        self.v = self.params.c;
        self.u = self.params.b * self.params.c;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spike_count(params: IzhikevichParams, current: f32, steps: usize) -> usize {
        let mut n = IzhikevichNeuron::new(params);
        (0..steps).filter(|_| n.step(current)).count()
    }

    #[test]
    fn no_input_no_spikes() {
        assert_eq!(
            spike_count(IzhikevichParams::regular_spiking(), 0.0, 500),
            0
        );
    }

    #[test]
    fn strong_input_fires_repeatedly() {
        let spikes = spike_count(IzhikevichParams::regular_spiking(), 10.0, 500);
        assert!(spikes > 5, "fired {spikes}");
    }

    #[test]
    fn fast_spiking_fires_more_than_regular() {
        let rs = spike_count(IzhikevichParams::regular_spiking(), 10.0, 1000);
        let fs = spike_count(IzhikevichParams::fast_spiking(), 10.0, 1000);
        assert!(fs > rs, "FS {fs} vs RS {rs}");
    }

    #[test]
    fn reset_restores_rest_state() {
        let p = IzhikevichParams::regular_spiking();
        let mut n = IzhikevichNeuron::new(p);
        for _ in 0..50 {
            n.step(10.0);
        }
        n.reset();
        assert_eq!(n.potential(), p.c);
        assert_eq!(n.recovery(), p.b * p.c);
    }

    #[test]
    fn potential_resets_to_c_after_spike() {
        let p = IzhikevichParams::regular_spiking();
        let mut n = IzhikevichNeuron::new(p);
        let mut spiked = false;
        for _ in 0..1000 {
            if n.step(15.0) {
                spiked = true;
                assert_eq!(n.potential(), p.c);
                break;
            }
        }
        assert!(spiked, "neuron never fired");
    }
}

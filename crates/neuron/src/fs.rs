//! A simplified few-spikes (FS) neuron, after Stöckl & Maass (the neuron
//! model Stellar co-designs for).
//!
//! The FS neuron replaces rate coding by a short temporal code: within a
//! `T`-step window it emits at most a handful of spikes whose *positions*
//! carry a binary expansion of the activation value. The consequence the
//! paper cares about (Fig. 11) is simply that FS activations are sparser
//! than LIF activations for the same signal. This implementation is a
//! faithful functional model of that coding scheme, not of Stellar's RTL.

use serde::{Deserialize, Serialize};

/// FS neuron parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FsParams {
    /// Length of the coding window (number of time steps / code bits).
    pub window: usize,
    /// Full-scale value represented by the all-ones code.
    pub full_scale: f32,
    /// Maximum number of spikes allowed per window (the "few" in few-spikes;
    /// Stellar's neuron uses 2).
    pub max_spikes: usize,
}

impl Default for FsParams {
    fn default() -> Self {
        Self {
            window: 4,
            full_scale: 2.0,
            max_spikes: 2,
        }
    }
}

/// A few-spikes neuron: encodes one activation value per window.
#[derive(Debug, Clone)]
pub struct FsNeuron {
    params: FsParams,
}

impl FsNeuron {
    /// Creates an FS neuron.
    pub fn new(params: FsParams) -> Self {
        assert!(params.window > 0, "window must be positive");
        Self { params }
    }

    /// Encodes `value` into its spike train of length `window`.
    ///
    /// The value is quantized against binary-weighted thresholds
    /// `full_scale/2, full_scale/4, …` (greedy binary expansion), and only
    /// the `max_spikes` most significant spikes are kept.
    pub fn encode(&self, value: f32) -> Vec<u8> {
        let mut residual = value.clamp(0.0, self.params.full_scale);
        let mut spikes = vec![0u8; self.params.window];
        let mut emitted = 0;
        let mut weight = self.params.full_scale / 2.0;
        for slot in spikes.iter_mut() {
            if emitted >= self.params.max_spikes {
                break;
            }
            if residual >= weight {
                *slot = 1;
                residual -= weight;
                emitted += 1;
            }
            weight /= 2.0;
        }
        spikes
    }

    /// Decodes a spike train back to its represented value.
    pub fn decode(&self, spikes: &[u8]) -> f32 {
        let mut value = 0.0;
        let mut weight = self.params.full_scale / 2.0;
        for &s in spikes.iter().take(self.params.window) {
            if s != 0 {
                value += weight;
            }
            weight /= 2.0;
        }
        value
    }

    /// Expected number of spikes for `value` — the quantity driving the FS
    /// density in Fig. 11.
    pub fn spike_count(&self, value: f32) -> usize {
        self.encode(value).iter().map(|&s| s as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_value_emits_no_spikes() {
        let n = FsNeuron::new(FsParams::default());
        assert_eq!(n.spike_count(0.0), 0);
    }

    #[test]
    fn at_most_max_spikes() {
        let n = FsNeuron::new(FsParams {
            window: 8,
            full_scale: 2.0,
            max_spikes: 2,
        });
        // Full scale would need many bits, but the cap holds.
        assert!(n.spike_count(1.999) <= 2);
        for v in [0.1f32, 0.4, 0.9, 1.3, 1.7] {
            assert!(n.spike_count(v) <= 2, "value {v}");
        }
    }

    #[test]
    fn encode_decode_roundtrip_within_quantization() {
        let n = FsNeuron::new(FsParams {
            window: 6,
            full_scale: 2.0,
            max_spikes: 6,
        });
        for v in [0.0f32, 0.25, 0.5, 1.0, 1.5, 1.9] {
            let decoded = n.decode(&n.encode(v));
            // Quantization step is full_scale / 2^window.
            assert!(
                (decoded - v).abs() <= 2.0 / 32.0 + 1e-6,
                "value {v} decoded {decoded}"
            );
        }
    }

    #[test]
    fn fs_is_sparser_than_rate_code() {
        // A rate code of value v over T steps needs ≈ v·T/full_scale spikes;
        // FS needs ≤ max_spikes.
        let n = FsNeuron::new(FsParams::default());
        let v = 1.8f32;
        let rate_spikes = (v / 2.0 * 4.0).round() as usize; // ≈ 4
        assert!(n.spike_count(v) < rate_spikes);
    }

    #[test]
    fn msb_first_coding() {
        let n = FsNeuron::new(FsParams {
            window: 4,
            full_scale: 2.0,
            max_spikes: 4,
        });
        // 1.0 = full_scale/2 → single spike at slot 0.
        assert_eq!(n.encode(1.0), vec![1, 0, 0, 0]);
        // 0.5 = full_scale/4 → spike at slot 1.
        assert_eq!(n.encode(0.5), vec![0, 1, 0, 0]);
        // 1.5 → spikes at slots 0 and 1.
        assert_eq!(n.encode(1.5), vec![1, 1, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = FsNeuron::new(FsParams {
            window: 0,
            full_scale: 1.0,
            max_spikes: 1,
        });
    }
}

//! The leaky integrate-and-fire (LIF) neuron.

use serde::{Deserialize, Serialize};

/// How the membrane potential is reset after a spike.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResetMode {
    /// Reset to a fixed value (`V ← V_reset`).
    Hard(f32),
    /// Subtract the threshold (`V ← V − V_th`), preserving the overshoot.
    Soft,
}

/// LIF parameters.
///
/// The update per time step is
///
/// ```text
/// V ← leak · V + I          (integrate with decay)
/// if V ≥ threshold: spike, then reset per `reset`
/// ```
///
/// `leak = 1.0` gives a plain integrate-and-fire neuron; `leak = 1 − 1/τ`
/// approximates the SpikingJelly LIF with membrane time constant `τ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Firing threshold `V_th`.
    pub threshold: f32,
    /// Multiplicative decay applied to the potential each step, in `[0, 1]`.
    pub leak: f32,
    /// Reset behaviour.
    pub reset: ResetMode,
}

impl Default for LifParams {
    /// Threshold 1.0, leak 0.5 (τ = 2, the SpikingJelly default), hard reset
    /// to 0 — the configuration used throughout the paper's model suite.
    fn default() -> Self {
        Self {
            threshold: 1.0,
            leak: 0.5,
            reset: ResetMode::Hard(0.0),
        }
    }
}

/// A single LIF neuron holding its membrane potential.
#[derive(Debug, Clone)]
pub struct LifNeuron {
    params: LifParams,
    potential: f32,
}

impl LifNeuron {
    /// Creates a neuron at resting potential 0.
    pub fn new(params: LifParams) -> Self {
        Self {
            params,
            potential: 0.0,
        }
    }

    /// Current membrane potential.
    pub fn potential(&self) -> f32 {
        self.potential
    }

    /// Advances one time step with input current `i`; returns `true` iff the
    /// neuron fires.
    pub fn step(&mut self, i: f32) -> bool {
        self.potential = self.params.leak * self.potential + i;
        if self.potential >= self.params.threshold {
            match self.params.reset {
                ResetMode::Hard(v) => self.potential = v,
                ResetMode::Soft => self.potential -= self.params.threshold,
            }
            true
        } else {
            false
        }
    }

    /// Returns the potential to rest (0, or the hard-reset value).
    pub fn reset(&mut self) {
        self.potential = match self.params.reset {
            ResetMode::Hard(v) => v,
            ResetMode::Soft => 0.0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_until_threshold() {
        let mut n = LifNeuron::new(LifParams {
            threshold: 1.0,
            leak: 1.0,
            reset: ResetMode::Hard(0.0),
        });
        assert!(!n.step(0.4));
        assert!(!n.step(0.4));
        assert!(n.step(0.4)); // 1.2 ≥ 1.0
        assert_eq!(n.potential(), 0.0); // hard reset
    }

    #[test]
    fn soft_reset_keeps_overshoot() {
        let mut n = LifNeuron::new(LifParams {
            threshold: 1.0,
            leak: 1.0,
            reset: ResetMode::Soft,
        });
        assert!(n.step(1.3));
        assert!((n.potential() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn leak_decays_potential() {
        let mut n = LifNeuron::new(LifParams {
            threshold: 10.0,
            leak: 0.5,
            reset: ResetMode::Hard(0.0),
        });
        n.step(1.0); // V = 1.0
        n.step(0.0); // V = 0.5
        assert!((n.potential() - 0.5).abs() < 1e-6);
        n.step(0.0); // V = 0.25
        assert!((n.potential() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn constant_drive_fires_periodically() {
        let mut n = LifNeuron::new(LifParams::default());
        let mut fired = 0;
        for _ in 0..8 {
            if n.step(0.6) {
                fired += 1;
            }
        }
        // With leak 0.5 and input 0.6: V approaches 1.2 > 1 → periodic firing.
        assert!(fired >= 2, "fired {fired}");
        assert!(fired < 8);
    }

    #[test]
    fn negative_current_inhibits() {
        let mut n = LifNeuron::new(LifParams::default());
        assert!(!n.step(-0.5));
        assert!(n.potential() < 0.0);
    }
}

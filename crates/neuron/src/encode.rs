//! Input spike encoders.
//!
//! The first layer of an SNN must convert real-valued inputs (pixels, token
//! embeddings) into spike trains. The two standard schemes are *rate coding*
//! (spike probability proportional to intensity, independent across time
//! steps) and *direct coding* (the analog value is fed to the first spiking
//! layer every step; spikes appear after the first LIF layer). Both are used
//! by the paper's model suite.

use crate::lif::{LifNeuron, LifParams};
use spikemat::SpikeMatrix;

/// Rate (Bernoulli/Poisson) coding: emits a `T × width` spike matrix where
/// each bit fires with probability `intensity[j]` (clamped to `[0, 1]`),
/// independently per time step.
///
/// The deterministic-looking `rng` closure decouples this crate from a
/// specific RNG; pass e.g. `|| rng.gen::<f64>()`.
pub fn rate_code(
    intensities: &[f32],
    time_steps: usize,
    mut rng: impl FnMut() -> f64,
) -> SpikeMatrix {
    let mut out = SpikeMatrix::zeros(time_steps, intensities.len());
    for t in 0..time_steps {
        for (j, &v) in intensities.iter().enumerate() {
            if rng() < f64::from(v.clamp(0.0, 1.0)) {
                out.set(t, j, true);
            }
        }
    }
    out
}

/// Direct coding through a LIF front end: the analog intensities are applied
/// as constant input current for `time_steps` steps to a fresh LIF layer and
/// the resulting spikes are returned.
pub fn direct_code(intensities: &[f32], time_steps: usize, params: LifParams) -> SpikeMatrix {
    let mut neurons: Vec<LifNeuron> = intensities.iter().map(|_| LifNeuron::new(params)).collect();
    let mut out = SpikeMatrix::zeros(time_steps, intensities.len());
    for t in 0..time_steps {
        for (j, n) in neurons.iter_mut().enumerate() {
            if n.step(intensities[j]) {
                out.set(t, j, true);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_code_density_tracks_intensity() {
        // Deterministic "rng": cycles through quantiles.
        let mut i = 0u32;
        let rng = move || {
            i = (i + 1) % 100;
            f64::from(i) / 100.0
        };
        let m = rate_code(&[0.3; 100], 10, rng);
        let d = m.density();
        assert!((d - 0.3).abs() < 0.05, "density {d}");
    }

    #[test]
    fn rate_code_extremes() {
        let m0 = rate_code(&[0.0; 16], 4, || 0.5);
        assert_eq!(m0.total_spikes(), 0);
        let m1 = rate_code(&[1.5; 16], 4, || 0.999); // clamped to 1.0
        assert_eq!(m1.total_spikes(), 4 * 16);
    }

    #[test]
    fn direct_code_strong_inputs_fire_every_step() {
        let m = direct_code(&[2.0, 0.0], 4, LifParams::default());
        for t in 0..4 {
            assert!(m.get(t, 0));
            assert!(!m.get(t, 1));
        }
    }

    #[test]
    fn direct_code_weak_input_fires_sparsely() {
        let m = direct_code(&[0.55], 8, LifParams::default());
        let fired = m.total_spikes();
        // 0.55 with leak 0.5 → steady-state potential 1.1 crosses threshold
        // intermittently: some spikes but not every step.
        assert!(fired > 0 && fired < 8, "fired {fired}");
    }
}

//! Shared harness utilities for the table/figure reproduction benches.
//!
//! Every table and figure of the paper's evaluation has a `harness = false`
//! bench target in `benches/` that prints the paper's reported values next
//! to the values measured on this reproduction. The helpers here provide the
//! common plumbing: workload-scale selection, the accelerator ensemble, and
//! table formatting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use prosperity_baselines::a100::A100;
use prosperity_baselines::eyeriss::Eyeriss;
use prosperity_baselines::mint::Mint;
use prosperity_baselines::ptb::Ptb;
use prosperity_baselines::sato::Sato;
use prosperity_baselines::stellar::Stellar;
use prosperity_baselines::BaselinePerf;
use prosperity_models::workload::ModelTrace;
use prosperity_sim::{simulate_model, EnergyModel, ModelPerf, ProsperityConfig};

/// Best-of-`reps` wall time of `f`, in milliseconds — the one timing
/// methodology every harness-less bench (`kernels`, `e2e`, `serving`)
/// shares, so BENCH_*.json files stay comparable.
pub fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let r = f();
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(r);
        best = best.min(dt);
    }
    best
}

/// Workload scale factor for trace generation, from `PROSPERITY_SCALE`
/// (default 0.25: rows are subsampled to keep the full 16-workload suite
/// to minutes; set `PROSPERITY_SCALE=1.0` for paper-size runs).
pub fn scale() -> f64 {
    std::env::var("PROSPERITY_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25)
}

/// Results of running one workload across the whole accelerator ensemble.
#[derive(Debug, Clone)]
pub struct Ensemble {
    /// Workload display name.
    pub name: String,
    /// Prosperity (full mode) simulation result.
    pub prosperity: ModelPerf,
    /// Prosperity latency/energy as a [`BaselinePerf`] for uniform math.
    pub prosperity_perf: BaselinePerf,
    /// Dense baseline.
    pub eyeriss: BaselinePerf,
    /// Structured bit sparsity.
    pub ptb: BaselinePerf,
    /// Bucket-sorted bit sparsity.
    pub sato: BaselinePerf,
    /// Quantized bit sparsity.
    pub mint: BaselinePerf,
    /// FS-neuron co-design (CNNs only).
    pub stellar: Option<BaselinePerf>,
    /// GPU baseline.
    pub a100: BaselinePerf,
}

/// Runs one trace across Prosperity and every baseline.
pub fn run_ensemble(name: &str, trace: &ModelTrace) -> Ensemble {
    let config = ProsperityConfig::default();
    let perf = simulate_model(trace, &config);
    let energy = EnergyModel::default().energy(&perf.events);
    let prosperity_perf = BaselinePerf {
        name: "Prosperity".into(),
        time_s: perf.time_seconds(),
        energy_j: energy.total(),
        effective_ops: perf.effective_ops,
    };
    Ensemble {
        name: name.to_string(),
        prosperity: perf,
        prosperity_perf,
        eyeriss: Eyeriss::default().simulate(trace),
        ptb: Ptb::default().simulate(trace),
        sato: Sato::default().simulate(trace),
        mint: Mint::default().simulate(trace),
        stellar: Stellar::default().simulate(trace),
        a100: A100::default().simulate(trace),
    }
}

/// Geometric mean of a non-empty slice (1.0 for an empty one).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Formats a fraction as a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Prints a horizontal rule sized for the bench tables.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints the standard bench header with paper context.
pub fn header(id: &str, title: &str) {
    rule(78);
    println!("{id}: {title}");
    println!(
        "(scale = {} — set PROSPERITY_SCALE=1.0 for paper-size runs)",
        scale()
    );
    rule(78);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn geomean_mixes_multiplicatively() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.3421), "34.21%");
    }

    #[test]
    fn ensemble_runs_all_accelerators() {
        use prosperity_models::{Architecture, Dataset, Workload};
        let t =
            Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 3).generate_trace(0.25);
        let e = run_ensemble("LN5/MNIST", &t);
        assert!(e.prosperity_perf.time_s > 0.0);
        assert!(e.eyeriss.time_s > e.prosperity_perf.time_s);
        assert!(e.stellar.is_some()); // CNN → supported
    }
}

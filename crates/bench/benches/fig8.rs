//! Fig. 8 — end-to-end speedup and energy efficiency of Prosperity vs
//! Eyeriss / PTB / SATO / MINT / Stellar / A100 over the 16-workload suite,
//! all normalized to Eyeriss.
//!
//! Paper reference points: geomean speedup 7.4× over PTB and 1.8× over
//! A100; geomean energy-efficiency gains 8.0× and 193×.

use prosperity_bench::{geomean, header, rule, run_ensemble, scale, Ensemble};
use prosperity_models::Workload;

fn main() {
    header(
        "Fig. 8",
        "End-to-end speedup & energy efficiency (norm. to Eyeriss)",
    );
    let workloads = Workload::fig8_suite();
    let s = scale();

    let mut results: Vec<Ensemble> = Vec::with_capacity(workloads.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(move |_| {
                    let trace = w.generate_trace(s);
                    run_ensemble(&w.name(), &trace)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("workload thread panicked"));
        }
    })
    .expect("crossbeam scope");

    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "workload (speedup)", "PTB", "SATO", "MINT", "Stellar", "A100", "Prosperity"
    );
    rule(78);
    let mut sp = Agg::default();
    for e in &results {
        let base = &e.eyeriss;
        let spd = |p: &prosperity_baselines::BaselinePerf| base.time_s / p.time_s;
        let stellar = e.stellar.as_ref().map(spd);
        println!(
            "{:<22} {:>8.2} {:>8.2} {:>8.2} {:>8} {:>8.2} {:>10.2}",
            e.name,
            spd(&e.ptb),
            spd(&e.sato),
            spd(&e.mint),
            stellar.map_or("-".to_string(), |v| format!("{v:.2}")),
            spd(&e.a100),
            spd(&e.prosperity_perf),
        );
        sp.push_time(e);
    }
    rule(78);
    sp.print_geomeans("geomean speedup");

    println!();
    println!(
        "{:<22} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "workload (energy)", "PTB", "SATO", "MINT", "Stellar", "A100", "Prosperity"
    );
    rule(78);
    let mut en = Agg::default();
    for e in &results {
        let base = &e.eyeriss;
        let gain = |p: &prosperity_baselines::BaselinePerf| base.energy_j / p.energy_j;
        let stellar = e.stellar.as_ref().map(gain);
        println!(
            "{:<22} {:>8.2} {:>8.2} {:>8.2} {:>8} {:>8.2} {:>10.2}",
            e.name,
            gain(&e.ptb),
            gain(&e.sato),
            gain(&e.mint),
            stellar.map_or("-".to_string(), |v| format!("{v:.2}")),
            gain(&e.a100),
            gain(&e.prosperity_perf),
        );
        en.push_energy(e);
    }
    rule(78);
    en.print_geomeans("geomean energy gain");

    let vs = |f: &dyn Fn(&Ensemble) -> f64| -> f64 {
        geomean(&results.iter().map(f).collect::<Vec<_>>())
    };
    println!();
    println!("headline (measured vs paper):");
    println!(
        "  speedup over PTB : {:>6.2}x   (paper: 7.4x)",
        vs(&|e| e.ptb.time_s / e.prosperity_perf.time_s)
    );
    println!(
        "  speedup over A100: {:>6.2}x   (paper: 1.8x)",
        vs(&|e| e.a100.time_s / e.prosperity_perf.time_s)
    );
    println!(
        "  energy over PTB  : {:>6.2}x   (paper: 8.0x)",
        vs(&|e| e.ptb.energy_j / e.prosperity_perf.energy_j)
    );
    println!(
        "  energy over A100 : {:>6.1}x   (paper: 193x)",
        vs(&|e| e.a100.energy_j / e.prosperity_perf.energy_j)
    );
}

#[derive(Default)]
struct Agg {
    ptb: Vec<f64>,
    sato: Vec<f64>,
    mint: Vec<f64>,
    stellar: Vec<f64>,
    a100: Vec<f64>,
    prosperity: Vec<f64>,
}

impl Agg {
    fn push_time(&mut self, e: &Ensemble) {
        let base = e.eyeriss.time_s;
        self.ptb.push(base / e.ptb.time_s);
        self.sato.push(base / e.sato.time_s);
        self.mint.push(base / e.mint.time_s);
        if let Some(s) = &e.stellar {
            self.stellar.push(base / s.time_s);
        }
        self.a100.push(base / e.a100.time_s);
        self.prosperity.push(base / e.prosperity_perf.time_s);
    }

    fn push_energy(&mut self, e: &Ensemble) {
        let base = e.eyeriss.energy_j;
        self.ptb.push(base / e.ptb.energy_j);
        self.sato.push(base / e.sato.energy_j);
        self.mint.push(base / e.mint.energy_j);
        if let Some(s) = &e.stellar {
            self.stellar.push(base / s.energy_j);
        }
        self.a100.push(base / e.a100.energy_j);
        self.prosperity.push(base / e.prosperity_perf.energy_j);
    }

    fn print_geomeans(&self, label: &str) {
        println!(
            "{:<22} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>10.2}",
            label,
            geomean(&self.ptb),
            geomean(&self.sato),
            geomean(&self.mint),
            geomean(&self.stellar),
            geomean(&self.a100),
            geomean(&self.prosperity),
        );
    }
}

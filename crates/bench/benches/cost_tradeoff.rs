//! Sec. VII-G — quantitative cost trade-off of ProSparsity processing:
//! TCAM search cost vs saved floating-point additions.
//!
//! Paper reference: break-even sparsity increase ΔS* = 4.4 %; at the
//! measured average ΔS = 13.35 % the benefit-cost ratio is 3.0×.

use prosperity_bench::{header, pct, rule, scale};
use prosperity_models::Workload;
use prosperity_sim::cost_model::CostInputs;

fn main() {
    header("Sec. VII-G", "ProSparsity benefit/cost trade-off");
    let c = CostInputs::paper_default();
    println!("tile m={} k={} n={}", c.m, c.k, c.n);
    println!(
        "break-even dS*      : {}   (paper: 4.4%)",
        pct(c.break_even_delta_s())
    );
    println!(
        "ratio @ paper dS    : {:.2}x   (paper: 3.0x at dS = 13.35%)",
        c.benefit_cost_ratio()
    );
    println!();

    // Measured ΔS across the Fig. 8 suite (bit density − product density).
    let s = scale();
    let mut deltas = Vec::new();
    println!("{:<24} {:>10} {:>14}", "workload", "dS", "benefit/cost");
    rule(52);
    for w in Workload::fig8_suite() {
        let trace = w.generate_trace(s * 0.5);
        let mut bit = 0u64;
        let mut pro = 0u64;
        let mut dense = 0u64;
        for l in &trace.layers {
            let plan = prosperity_core::ProSparsityPlan::build_tiled(
                &l.spikes,
                spikemat::TileShape::prosperity_default(),
            );
            bit += plan.stats().bit_ops;
            pro += plan.stats().pro_ops;
            dense += plan.stats().dense_ops;
        }
        let ds = (bit as f64 - pro as f64) / dense as f64;
        let inputs = CostInputs { delta_s: ds, ..c };
        println!(
            "{:<24} {:>10} {:>13.2}x",
            w.name(),
            pct(ds),
            inputs.benefit_cost_ratio()
        );
        deltas.push(ds);
    }
    rule(52);
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    let mean_inputs = CostInputs { delta_s: mean, ..c };
    println!(
        "mean dS {} -> ratio {:.2}x   (paper: 13.35% -> 3.0x)",
        pct(mean),
        mean_inputs.benefit_cost_ratio()
    );
}

//! End-to-end trace execution benchmark: the reusable [`Engine`] (tile plan
//! cache + scratch reuse + buffer pooling) against the naive loop that calls
//! [`prosparsity_gemm`] once per layer/timestep, re-planning and
//! re-allocating everything each time.
//!
//! Three scenarios:
//!
//! * `correlated_trace` — a temporally-correlated timestep stream from
//!   `tracegen::generate_timesteps`: most rows persist between adjacent
//!   timesteps, so whole spike tiles repeat and the engine's plan cache
//!   skips the Detector/Pruner/Dispatcher for them. This is the acceptance
//!   scenario (target ≥ 1.5× single-threaded).
//! * `fig8_spikingbert` — a calibrated fig8-suite model trace executed
//!   layer-by-layer with synthetic weights; measures the engine on a
//!   realistic layer mix where cross-layer tile repetition is rare. Runs
//!   with the adaptive insertion-bypass admission policy, which erases the
//!   cache-bookkeeping cost this scenario used to document.
//! * `attention_stream` — `Q·Kᵀ` spiking attention over a correlated query
//!   stream, engine-routed vs per-call lowering.
//!
//! Every scenario gates on bit-identical outputs before timing anything.
//! Results are printed and written to `BENCH_e2e.json` (override with
//! `BENCH_E2E_OUT`); `PROSPERITY_E2E_SMOKE=1` shrinks sizes for CI. Run:
//!
//! ```text
//! cargo bench -p prosperity-bench --bench e2e
//! ```

use prosperity_bench::time_ms;
use prosperity_core::attention::{lower_keys, spiking_qk, spiking_qk_prelowered, spiking_qk_with};
use prosperity_core::engine::{AdmissionConfig, Engine, EngineConfig, EngineStats};
use prosperity_core::exec::prosparsity_gemm;
use prosperity_models::tracegen::{TraceGen, TraceGenParams};
use prosperity_models::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikemat::gemm::{OutputMatrix, WeightMatrix};
use spikemat::{SpikeMatrix, TileShape};

/// One scenario's measurements.
struct ScenarioOut {
    name: &'static str,
    /// GeMM calls per end-to-end pass.
    gemms: usize,
    naive_ms: f64,
    engine_ms: f64,
    engine_serial_ms: f64,
    stats: EngineStats,
}

impl ScenarioOut {
    fn speedup(&self) -> f64 {
        self.naive_ms / self.engine_ms
    }
    fn speedup_serial(&self) -> f64 {
        self.naive_ms / self.engine_serial_ms
    }
}

/// The acceptance scenario: a temporally-correlated timestep stream.
fn correlated_trace(smoke: bool, reps: usize) -> ScenarioOut {
    let (steps, rows, k, n) = if smoke {
        (6, 512, 128, 8)
    } else {
        (12, 1024, 256, 16)
    };
    // Per-tile hit probability compounds the per-row persistence over the
    // tile height (256 rows at the default geometry): 0.9995^256 ≈ 0.88.
    let persistence = 0.9995;
    let tile = TileShape::prosperity_default();
    let gen = TraceGen::new(TraceGenParams::uncorrelated(0.30));
    let mut rng = StdRng::seed_from_u64(0xE2E);
    let spikes = gen.generate_timesteps(steps, rows, k, persistence, &mut rng);
    let weights = WeightMatrix::from_fn(k, n, |r, c| (r * 31 + c * 7) as i64 % 255 - 127);
    let config = EngineConfig::new(tile, 4096);

    // Correctness gate + stats capture: a fresh engine must reproduce the
    // naive loop bit-for-bit on every timestep.
    let mut engine = Engine::new(config);
    let mut out = OutputMatrix::zeros(0, 0);
    for s in &spikes {
        engine.gemm_into(s, &weights, &mut out);
        assert_eq!(out, prosparsity_gemm(s, &weights, tile), "engine lost bits");
    }
    let stats = engine.stats();

    let naive_ms = time_ms(reps, || {
        let mut acc = 0i64;
        for s in &spikes {
            let o = prosparsity_gemm(s, &weights, tile);
            acc ^= o.as_slice().first().copied().unwrap_or(0);
        }
        acc
    });
    // Fresh engine per rep: the measurement includes the cold first
    // timestep and the warm remainder — the whole trace, end to end.
    let engine_ms = time_ms(reps, || {
        let mut e = Engine::new(config);
        let mut o = OutputMatrix::zeros(0, 0);
        for s in &spikes {
            e.gemm_into(s, &weights, &mut o);
        }
        o.as_slice().first().copied().unwrap_or(0)
    });
    let engine_serial_ms = time_ms(reps, || {
        let mut e = Engine::new(config);
        let mut o = OutputMatrix::zeros(0, 0);
        for s in &spikes {
            e.gemm_into_serial(s, &weights, &mut o);
        }
        o.as_slice().first().copied().unwrap_or(0)
    });

    ScenarioOut {
        name: "correlated_trace",
        gemms: steps,
        naive_ms,
        engine_ms,
        engine_serial_ms,
        stats,
    }
}

/// A calibrated fig8-suite model trace, layer by layer.
fn fig8_trace(smoke: bool, reps: usize) -> ScenarioOut {
    let workload = Workload::spikingbert_sst2();
    let scale = if smoke { 0.02 } else { 0.06 };
    let trace = workload.generate_trace(scale);
    let tile = TileShape::prosperity_default();
    let weights: Vec<WeightMatrix<i64>> = trace
        .layers
        .iter()
        .map(|l| l.synthetic_weights(7))
        .collect();
    // Cross-layer tile repetition is rare here, so the adaptive admission
    // policy bypasses most insertions — the engine stops paying cache
    // bookkeeping for reuse that never materializes (the former 0.9x row).
    let config = EngineConfig::new(tile, 2048).with_admission(AdmissionConfig::default());

    let mut engine = Engine::new(config);
    let mut out = OutputMatrix::zeros(0, 0);
    for (layer, w) in trace.layers.iter().zip(&weights) {
        engine.gemm_into(&layer.spikes, w, &mut out);
        assert_eq!(
            out,
            prosparsity_gemm(&layer.spikes, w, tile),
            "engine lost bits on {}",
            layer.spec.name
        );
    }
    let stats = engine.stats();

    let naive_ms = time_ms(reps, || {
        let mut acc = 0i64;
        for (layer, w) in trace.layers.iter().zip(&weights) {
            let o = prosparsity_gemm(&layer.spikes, w, tile);
            acc ^= o.as_slice().first().copied().unwrap_or(0);
        }
        acc
    });
    let engine_ms = time_ms(reps, || {
        let mut e = Engine::new(config);
        let mut o = OutputMatrix::zeros(0, 0);
        for (layer, w) in trace.layers.iter().zip(&weights) {
            e.gemm_into(&layer.spikes, w, &mut o);
        }
        o.as_slice().first().copied().unwrap_or(0)
    });
    let engine_serial_ms = time_ms(reps, || {
        let mut e = Engine::new(config);
        let mut o = OutputMatrix::zeros(0, 0);
        for (layer, w) in trace.layers.iter().zip(&weights) {
            e.gemm_into_serial(&layer.spikes, w, &mut o);
        }
        o.as_slice().first().copied().unwrap_or(0)
    });

    ScenarioOut {
        name: "fig8_spikingbert",
        gemms: trace.layers.len(),
        naive_ms,
        engine_ms,
        engine_serial_ms,
        stats,
    }
}

/// `Q·Kᵀ` spiking attention over a temporally-correlated query stream.
fn attention_stream(smoke: bool, reps: usize) -> ScenarioOut {
    let (steps, l, d) = if smoke { (4, 128, 64) } else { (8, 256, 128) };
    let tile = TileShape::prosperity_default();
    let gen = TraceGen::new(TraceGenParams::uncorrelated(0.20));
    let mut rng = StdRng::seed_from_u64(0xA77);
    let queries = gen.generate_timesteps(steps, l, d, 0.9995, &mut rng);
    let keys = SpikeMatrix::random(64, d, 0.2, &mut rng);
    let config = EngineConfig::new(tile, 2048);

    let mut engine = Engine::new(config);
    let mut out = OutputMatrix::zeros(0, 0);
    for q in &queries {
        spiking_qk_with(&mut engine, q, &keys, &mut out);
        assert_eq!(out, spiking_qk(q, &keys, tile), "attention lost bits");
    }
    let stats = engine.stats();

    // Naive serving style: per-call lowering, per-call planning. Engine
    // serving style: keys lowered once, scores through the plan cache.
    let naive_ms = time_ms(reps, || {
        let mut acc = 0i64;
        for q in &queries {
            let o = spiking_qk(q, &keys, tile);
            acc ^= o.as_slice().first().copied().unwrap_or(0);
        }
        acc
    });
    let kt_weights = lower_keys(&keys);
    let engine_ms = time_ms(reps, || {
        let mut e = Engine::new(config);
        let mut o = OutputMatrix::zeros(0, 0);
        for q in &queries {
            spiking_qk_prelowered(&mut e, q, &kt_weights, &mut o);
        }
        o.as_slice().first().copied().unwrap_or(0)
    });
    let engine_serial_ms = time_ms(reps, || {
        let mut e = Engine::new(config);
        let mut o = OutputMatrix::zeros(0, 0);
        for q in &queries {
            e.gemm_into_serial(q, &kt_weights, &mut o);
        }
        o.as_slice().first().copied().unwrap_or(0)
    });

    ScenarioOut {
        name: "attention_stream",
        gemms: steps,
        naive_ms,
        engine_ms,
        engine_serial_ms,
        stats,
    }
}

fn json_scenario(r: &ScenarioOut) -> String {
    format!(
        concat!(
            "    {{\"name\": \"{}\", \"gemms\": {}, \"tiles\": {}, ",
            "\"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}, ",
            "\"cache_bypasses\": {}, ",
            "\"hit_rate\": {:.4}, ",
            "\"naive_ms\": {:.3}, \"engine_ms\": {:.3}, \"engine_serial_ms\": {:.3}, ",
            "\"speedup\": {:.2}, \"speedup_serial\": {:.2}}}"
        ),
        r.name,
        r.gemms,
        r.stats.tiles,
        r.stats.cache_hits,
        r.stats.cache_misses,
        r.stats.cache_evictions,
        r.stats.cache_bypasses,
        r.stats.hit_rate(),
        r.naive_ms,
        r.engine_ms,
        r.engine_serial_ms,
        r.speedup(),
        r.speedup_serial(),
    )
}

fn main() {
    let smoke = std::env::var("PROSPERITY_E2E_SMOKE").is_ok_and(|v| v != "0");
    let reps = if smoke { 2 } else { 5 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "End-to-end engine benchmark (best-of-{reps} wall time, {threads} HW threads{})",
        if smoke { ", SMOKE" } else { "" }
    );
    println!(
        "{:<20} {:>7} {:>11} {:>11} {:>11} {:>9} {:>9}",
        "scenario", "gemms", "naive ms", "engine ms", "serial ms", "speedup", "hit rate"
    );
    let results = vec![
        correlated_trace(smoke, reps),
        fig8_trace(smoke, reps),
        attention_stream(smoke, reps),
    ];
    for r in &results {
        println!(
            "{:<20} {:>7} {:>11.2} {:>11.2} {:>11.2} {:>8.2}x {:>8.1}%",
            r.name,
            r.gemms,
            r.naive_ms,
            r.engine_ms,
            r.engine_serial_ms,
            r.speedup(),
            100.0 * r.stats.hit_rate(),
        );
    }

    let out_path = std::env::var("BENCH_E2E_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e2e.json").to_string()
    });
    let body: Vec<String> = results.iter().map(json_scenario).collect();
    let json = format!(
        "{{\n  \"bench\": \"e2e\",\n  \"unit\": \"ms\",\n  \"timing\": \
         \"best_of_reps\",\n  \"smoke\": {},\n  \"threads\": {},\n  \
         \"parallel_feature\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        smoke,
        threads,
        prosperity_core::parallel_enabled(),
        body.join(",\n")
    );
    if smoke {
        println!("\nsmoke mode: not overwriting {out_path}");
    } else {
        std::fs::write(&out_path, &json).expect("write bench json");
        println!("\nwrote {out_path}");
    }
}

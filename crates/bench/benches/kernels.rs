//! Criterion micro-benchmarks of the ProSparsity software kernels: TCAM
//! detection, pruning, order generation, whole-tile planning, and the
//! lossless ProSparsity GeMM against the bit-sparse reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prosperity_core::detect::{detect_tile, naive_subsets};
use prosperity_core::exec::prosparsity_gemm;
use prosperity_core::order::BitonicSorter;
use prosperity_core::plan::TileMeta;
use prosperity_core::prune::prune_tile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikemat::gemm::{spiking_gemm, WeightMatrix};
use spikemat::{SpikeMatrix, TileShape};

fn tile(m: usize, k: usize, density: f64, seed: u64) -> SpikeMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    SpikeMatrix::random(m, k, density, &mut rng)
}

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection");
    for &m in &[64usize, 256] {
        let t = tile(m, 16, 0.3, 1);
        g.throughput(Throughput::Elements(m as u64));
        g.bench_with_input(BenchmarkId::new("tcam", m), &t, |b, t| {
            b.iter(|| detect_tile(t))
        });
        g.bench_with_input(BenchmarkId::new("naive", m), &t, |b, t| {
            b.iter(|| naive_subsets(t))
        });
    }
    g.finish();
}

fn bench_prune_and_sort(c: &mut Criterion) {
    let t = tile(256, 16, 0.3, 2);
    let d = detect_tile(&t);
    c.bench_function("prune/256x16", |b| b.iter(|| prune_tile(&t, &d)));
    c.bench_function("bitonic_sort/256", |b| {
        b.iter(|| BitonicSorter::sort(&d.popcounts))
    });
}

fn bench_plan(c: &mut Criterion) {
    let t = tile(256, 16, 0.3, 3);
    c.bench_function("tile_meta/256x16", |b| {
        b.iter(|| TileMeta::build(&t, 0, 0))
    });
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    let s = tile(256, 64, 0.3, 4);
    let w = WeightMatrix::from_fn(64, 128, |r, col| (r * 131 + col * 17) as i64 % 255 - 127);
    let shape = TileShape::new(256, 16);
    g.throughput(Throughput::Elements((256 * 64 * 128) as u64));
    g.bench_function("bit_sparse_reference", |b| b.iter(|| spiking_gemm(&s, &w)));
    g.bench_function("prosparsity", |b| {
        b.iter(|| prosparsity_gemm(&s, &w, shape))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_detection, bench_prune_and_sort, bench_plan, bench_gemm
}
criterion_main!(benches);

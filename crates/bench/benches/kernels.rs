//! Micro-benchmark of the ProSparsity software kernels: whole-GeMM planning
//! (Detector → Pruner → Dispatcher) and lossless plan execution, measured
//! against the **pre-optimization** implementation that shipped before the
//! word-parallel / zero-allocation rewrite.
//!
//! The legacy kernels are embedded here verbatim-in-structure so the
//! before/after comparison stays honest as the library evolves:
//!
//! * bit-by-bit tile extraction (one `get`/`set` pair per bit),
//! * staged detection that materializes a `Vec<bool>` SI vector per query
//!   and a candidate list per row,
//! * a `Vec<Vec<T>>` tile-local accumulator with a `.clone()` per prefix
//!   load.
//!
//! Results are printed as a table and written to `BENCH_kernels.json`
//! (override the path with `BENCH_KERNELS_OUT`); the file is regenerated
//! per run and checked in, so the perf trajectory lives in its git
//! history. Run with:
//!
//! ```text
//! cargo bench -p prosperity-bench --bench kernels
//! ```

use prosperity_bench::time_ms;
use prosperity_core::exec::{execute_plan, execute_plan_serial};
use prosperity_core::plan::ProSparsityPlan;
use prosperity_core::ProStats;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikemat::gemm::{spiking_gemm, WeightMatrix};
use spikemat::{SpikeMatrix, TileShape};

/// The pre-optimization (seed) kernels, kept as the benchmark baseline.
mod legacy {
    use prosperity_core::detect::{DetectedTile, TcamDetector};
    use prosperity_core::order::BitonicSorter;
    use prosperity_core::plan::{RowMeta, TileMeta};
    use prosperity_core::prune::{prune_tile, PrunedRow};
    use spikemat::gemm::{OutputMatrix, WeightMatrix};
    use spikemat::{BitRow, SpikeMatrix, TileShape};
    use std::ops::AddAssign;

    /// Bit-by-bit zero-padded tile extraction (the original
    /// `BitRow::slice`-based path: one get/set pair per bit).
    fn submatrix_bitwise(
        src: &SpikeMatrix,
        row_start: usize,
        col_start: usize,
        n_rows: usize,
        n_cols: usize,
    ) -> SpikeMatrix {
        let mut out = SpikeMatrix::zeros(n_rows, n_cols);
        for r in 0..n_rows {
            if row_start + r >= src.rows() {
                continue;
            }
            for c in 0..n_cols {
                if col_start + c < src.cols() && src.get(row_start + r, col_start + c) {
                    out.set(r, c, true);
                }
            }
        }
        out
    }

    /// Staged detection allocating one SI `Vec<bool>` per query row.
    fn detect_tile_staged(tile: &SpikeMatrix) -> DetectedTile {
        let tcam = TcamDetector::load(tile);
        let popcounts: Vec<usize> = tile.row_slice().iter().map(BitRow::popcount).collect();
        let subset_candidates = (0..tile.rows())
            .map(|i| {
                tcam.query(tile.row(i))
                    .into_iter()
                    .enumerate()
                    .filter(|&(j, matched)| matched && j != i && popcounts[j] > 0)
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        DetectedTile {
            subset_candidates,
            popcounts,
        }
    }

    /// The original serial planner: staged detect → prune → sort per tile,
    /// fresh allocations throughout.
    pub fn build_tiled(spikes: &SpikeMatrix, shape: TileShape) -> Vec<TileMeta> {
        let (gm, gk) = shape.grid(spikes.rows(), spikes.cols());
        let mut tiles = Vec::new();
        for ti in 0..gm {
            for tj in 0..gk {
                let row_start = ti * shape.m;
                let col_start = tj * shape.k;
                let data = submatrix_bitwise(spikes, row_start, col_start, shape.m, shape.k);
                let detected = detect_tile_staged(&data);
                let pruned = prune_tile(&data, &detected);
                let (order, sorter) = BitonicSorter::sort(&detected.popcounts);
                let rows: Vec<RowMeta> = pruned
                    .into_iter()
                    .map(
                        |PrunedRow {
                             prefix,
                             kind,
                             pattern,
                         }| RowMeta {
                            prefix,
                            kind,
                            pattern,
                        },
                    )
                    .collect();
                // Packed patterns did not exist pre-optimization; populate
                // the (required) field outside any measured behavior the
                // legacy executor exercises.
                let pattern_limbs = rows
                    .iter()
                    .flat_map(|r| r.pattern.limbs().iter().copied())
                    .collect();
                tiles.push(TileMeta {
                    row_start,
                    col_start,
                    valid_rows: (spikes.rows() - row_start).min(shape.m),
                    valid_cols: (spikes.cols() - col_start).min(shape.k),
                    rows,
                    pattern_limbs,
                    order,
                    sorter_stages: sorter.stages(),
                });
            }
        }
        tiles
    }

    /// The original executor: one heap row per tile row plus a `.clone()`
    /// per prefix load.
    pub fn execute<T: Copy + Default + AddAssign>(
        tiles: &[TileMeta],
        m: usize,
        weights: &WeightMatrix<T>,
    ) -> OutputMatrix<T> {
        let n = weights.cols();
        let mut out = OutputMatrix::zeros(m, n);
        for tile in tiles {
            let tile_rows = tile.rows.len();
            let mut local: Vec<Vec<T>> = vec![vec![T::default(); n]; tile_rows];
            for &r in &tile.order {
                let meta = &tile.rows[r];
                let mut acc = match meta.prefix {
                    Some(p) => local[p].clone(),
                    None => vec![T::default(); n],
                };
                for bit in meta.pattern.ones() {
                    let wk = tile.col_start + bit;
                    if wk >= weights.rows() {
                        continue;
                    }
                    for (a, &w) in acc.iter_mut().zip(weights.row(wk)) {
                        *a += w;
                    }
                }
                local[r] = acc;
            }
            #[allow(clippy::needless_range_loop)]
            for r in 0..tile.valid_rows {
                out.accumulate_row(tile.row_start + r, &local[r]);
            }
        }
        out
    }
}

/// One benchmark configuration.
struct Scenario {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    density: f64,
    tile: TileShape,
    reps: usize,
}

/// Measured milliseconds for one kernel variant.
struct Measurement {
    plan_ms: f64,
    exec_ms: f64,
}

impl Measurement {
    fn total_ms(&self) -> f64 {
        self.plan_ms + self.exec_ms
    }
}

/// Results of one scenario across all variants.
struct ScenarioResult {
    scenario: Scenario,
    legacy: Measurement,
    optimized: Measurement,
    optimized_serial: Measurement,
    stats: ProStats,
}

fn run_scenario(scenario: Scenario) -> ScenarioResult {
    let mut rng = StdRng::seed_from_u64(0x5EED ^ scenario.m as u64 ^ scenario.k as u64);
    let spikes = SpikeMatrix::random(scenario.m, scenario.k, scenario.density, &mut rng);
    let weights = WeightMatrix::from_fn(scenario.k, scenario.n, |r, c| {
        (r * 131 + c * 17) as i32 % 255 - 127
    });
    let reps = scenario.reps;
    let shape = scenario.tile;

    // Correctness gate before timing anything: every variant must be
    // bit-identical to the bit-sparse reference.
    let reference = spiking_gemm(&spikes, &weights);
    let legacy_tiles = legacy::build_tiled(&spikes, shape);
    let legacy_out = legacy::execute(&legacy_tiles, spikes.rows(), &weights);
    let plan = ProSparsityPlan::build_tiled(&spikes, shape);
    assert_eq!(legacy_out, reference, "legacy kernel lost bits");
    assert_eq!(execute_plan(&plan, &weights), reference, "kernel lost bits");
    assert_eq!(
        execute_plan_serial(&plan, &weights),
        reference,
        "serial kernel lost bits"
    );

    let legacy = Measurement {
        plan_ms: time_ms(reps, || legacy::build_tiled(&spikes, shape)),
        exec_ms: time_ms(reps, || {
            legacy::execute(&legacy_tiles, spikes.rows(), &weights)
        }),
    };
    let optimized = Measurement {
        plan_ms: time_ms(reps, || ProSparsityPlan::build_tiled(&spikes, shape)),
        exec_ms: time_ms(reps, || execute_plan(&plan, &weights)),
    };
    let optimized_serial = Measurement {
        plan_ms: time_ms(reps, || ProSparsityPlan::build_tiled_serial(&spikes, shape)),
        exec_ms: time_ms(reps, || execute_plan_serial(&plan, &weights)),
    };
    let stats = *plan.stats();
    ScenarioResult {
        scenario,
        legacy,
        optimized,
        optimized_serial,
        stats,
    }
}

fn json_scenario(r: &ScenarioResult) -> String {
    let s = &r.scenario;
    format!(
        concat!(
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, ",
            "\"density\": {}, \"tile_m\": {}, \"tile_k\": {}, ",
            "\"bit_density\": {:.5}, \"pro_density\": {:.5}, ",
            "\"legacy_plan_ms\": {:.3}, \"legacy_exec_ms\": {:.3}, ",
            "\"legacy_total_ms\": {:.3}, ",
            "\"opt_plan_ms\": {:.3}, \"opt_exec_ms\": {:.3}, ",
            "\"opt_total_ms\": {:.3}, ",
            "\"opt_serial_plan_ms\": {:.3}, \"opt_serial_exec_ms\": {:.3}, ",
            "\"opt_serial_total_ms\": {:.3}, ",
            "\"speedup_plan\": {:.2}, \"speedup_exec\": {:.2}, ",
            "\"speedup_total\": {:.2}, \"speedup_total_serial\": {:.2}}}"
        ),
        s.name,
        s.m,
        s.k,
        s.n,
        s.density,
        s.tile.m,
        s.tile.k,
        r.stats.bit_density(),
        r.stats.pro_density(),
        r.legacy.plan_ms,
        r.legacy.exec_ms,
        r.legacy.total_ms(),
        r.optimized.plan_ms,
        r.optimized.exec_ms,
        r.optimized.total_ms(),
        r.optimized_serial.plan_ms,
        r.optimized_serial.exec_ms,
        r.optimized_serial.total_ms(),
        r.legacy.plan_ms / r.optimized.plan_ms,
        r.legacy.exec_ms / r.optimized.exec_ms,
        r.legacy.total_ms() / r.optimized.total_ms(),
        r.legacy.total_ms() / r.optimized_serial.total_ms(),
    )
}

fn main() {
    let scenarios = vec![
        Scenario {
            name: "tile_default_256x16",
            m: 1024,
            k: 128,
            n: 64,
            density: 0.30,
            tile: TileShape::prosperity_default(),
            reps: 5,
        },
        Scenario {
            name: "mid_1024x256",
            m: 1024,
            k: 256,
            n: 64,
            density: 0.15,
            tile: TileShape::new(128, 16),
            reps: 5,
        },
        Scenario {
            name: "acceptance_4096x1024",
            m: 4096,
            k: 1024,
            n: 16,
            density: 0.10,
            tile: TileShape::new(128, 128),
            reps: 6,
        },
    ];

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("ProSparsity kernel micro-benchmark (best-of-N wall time, {threads} HW threads)");
    println!(
        "{:<24} {:>13} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "scenario", "legacy ms", "opt ms", "opt-ser ms", "legacy/opt", "plan x", "exec x"
    );
    let mut results = Vec::new();
    for scenario in scenarios {
        let r = run_scenario(scenario);
        println!(
            "{:<24} {:>13.2} {:>13.2} {:>13.2} {:>12.2}x {:>8.2}x {:>8.2}x",
            r.scenario.name,
            r.legacy.total_ms(),
            r.optimized.total_ms(),
            r.optimized_serial.total_ms(),
            r.legacy.total_ms() / r.optimized.total_ms(),
            r.legacy.plan_ms / r.optimized.plan_ms,
            r.legacy.exec_ms / r.optimized.exec_ms,
        );
        results.push(r);
    }

    // Default to the workspace root regardless of the bench's working dir.
    let out_path = std::env::var("BENCH_KERNELS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").to_string()
    });
    let body: Vec<String> = results.iter().map(json_scenario).collect();
    // `threads_effective` is what the parallel paths actually get (rayon
    // pool size, 1 without the feature): the JSON checker only holds
    // parallel timings to the ≥serial bar when it exceeds 1.
    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"unit\": \"ms\",\n  \"timing\": \
         \"best_of_reps\",\n  \"threads\": {},\n  \"threads_effective\": {},\n  \
         \"parallel_feature\": {},\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        threads,
        prosperity_core::parallel_threads(),
        prosperity_core::parallel_enabled(),
        body.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");
}

//! Table IV — accelerator comparison on VGG-16 / CIFAR-100: throughput
//! (GOP/s), energy efficiency (GOP/J) and area efficiency (GOP/s/mm²).
//!
//! Paper reference: Eyeriss 29.40 / 16.67 / 27.53, SATO 33.63 / 49.70 /
//! 29.76, PTB 41.37 / 34.15, MINT 62.07 / 75.61, Stellar 190.44 / 142.98 /
//! 247.97, Prosperity 390.10 / 299.80 / 737.17 (areas 1.068, 1.13, –, –,
//! 0.768, 0.529 mm²).

use prosperity_baselines::BaselinePerf;
use prosperity_bench::{header, rule, run_ensemble, scale};
use prosperity_models::Workload;
use prosperity_sim::{AreaModel, ProsperityConfig};

fn main() {
    header("Table IV", "Accelerator comparison on VGG-16 / CIFAR-100");
    let w = Workload::vgg16_cifar100();
    let trace = w.generate_trace(scale());
    let e = run_ensemble(&w.name(), &trace);

    let prosperity_area = AreaModel::default()
        .area(&ProsperityConfig::default())
        .total();
    let rows: Vec<(&str, &BaselinePerf, Option<f64>)> = vec![
        ("Eyeriss", &e.eyeriss, Some(1.068)),
        ("SATO", &e.sato, Some(1.13)),
        ("PTB", &e.ptb, None),
        ("MINT", &e.mint, None),
        (
            "Stellar",
            e.stellar.as_ref().expect("VGG-16 is a CNN"),
            Some(0.768),
        ),
        ("Prosperity", &e.prosperity_perf, Some(prosperity_area)),
    ];

    println!(
        "{:<12} {:>12} {:>14} {:>12} {:>16}",
        "accel", "GOP/s", "GOP/J", "area mm2", "GOP/s/mm2"
    );
    rule(70);
    for (name, p, area) in &rows {
        let area_eff = area.map(|a| p.throughput_gops() / a);
        println!(
            "{:<12} {:>12.2} {:>14.2} {:>12} {:>16}",
            name,
            p.throughput_gops(),
            p.energy_eff_gopj(),
            area.map_or("-".to_string(), |a| format!("{a:.3}")),
            area_eff.map_or("-".to_string(), |a| format!("{a:.2}")),
        );
    }
    rule(70);
    println!("paper reference (GOP/s | GOP/J | GOP/s/mm2):");
    println!("  Eyeriss 29.40 | 16.67 | 27.53      SATO 33.63 | 49.70 | 29.76");
    println!("  PTB 41.37 | 34.15                  MINT 62.07 | 75.61");
    println!("  Stellar 190.44 | 142.98 | 247.97   Prosperity 390.10 | 299.80 | 737.17");
}

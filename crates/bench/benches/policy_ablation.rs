//! Design-choice ablation: the Pruner's prefix-selection policy.
//!
//! DESIGN.md calls out the argmax-popcount pruning rule as a key decision;
//! this bench quantifies it against cheaper Pruner designs and splits the
//! Exact-Match / Partial-Match contributions across the workload suite.

use prosperity_bench::{header, pct, rule, scale};
use prosperity_core::policy::{analyze_matrix_with_policy, PrefixPolicy};
use prosperity_core::ProStats;
use prosperity_models::Workload;
use spikemat::TileShape;

fn main() {
    header("Ablation", "Prefix-selection policy (Pruner design choice)");
    let s = scale() * 0.5;
    let tile = TileShape::prosperity_default();
    // A CNN and a transformer representative.
    let workloads = [Workload::vgg16_cifar100(), Workload::spikingbert_sst2()];
    for w in workloads {
        let trace = w.generate_trace(s);
        println!("{}", w.name());
        println!(
            "{:<16} {:>12} {:>10} {:>8} {:>8}",
            "policy", "pro density", "reduction", "EM rows", "PM rows"
        );
        rule(60);
        for policy in PrefixPolicy::all() {
            let mut total = ProStats::default();
            for l in &trace.layers {
                total += analyze_matrix_with_policy(&l.spikes, tile, policy);
            }
            println!(
                "{:<16} {:>12} {:>9.2}x {:>7.1}% {:>7.1}%",
                format!("{policy:?}"),
                pct(total.pro_density()),
                total.reduction(),
                100.0 * total.em_rows as f64 / total.rows.max(1) as f64,
                100.0 * total.pm_rows as f64 / total.rows.max(1) as f64,
            );
        }
        println!();
    }
    println!("LargestSubset (the paper's rule) dominates every cheaper policy;");
    println!("EM-only (duplicate elimination) captures only part of the benefit,");
    println!("confirming that Partial-Match reuse is load-bearing.");
}

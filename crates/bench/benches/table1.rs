//! Table I — comparison with previous work on VGG-16 (CIFAR-100): bit and
//! product density plus speedup over dense execution for PTB, Stellar and
//! Prosperity.
//!
//! Paper reference: bit density 34.21 %, product density 2.79 %; speedups
//! over dense 1.86× (PTB), 5.97× (Stellar), 17.55× (Prosperity).

use prosperity_bench::{header, pct, rule, run_ensemble, scale};
use prosperity_models::Workload;

fn main() {
    header(
        "Table I",
        "Comparison with previous work on VGG-16 / CIFAR-100",
    );
    let w = Workload::vgg16_cifar100();
    let trace = w.generate_trace(scale());
    let e = run_ensemble(&w.name(), &trace);

    let bit_density = e.prosperity.stats.bit_density();
    let pro_density = e.prosperity.stats.pro_density();
    let dense_t = e.eyeriss.time_s;

    println!(
        "{:<12} {:>14} {:>14} {:>16}",
        "study", "bit density", "pro density", "speedup vs dense"
    );
    rule(60);
    println!("{:<12} {:>14} {:>14} {:>16}", "Dense", "100%", "-", "1.00x");
    println!(
        "{:<12} {:>14} {:>14} {:>16}",
        "PTB",
        pct(bit_density),
        "-",
        format!("{:.2}x", dense_t / e.ptb.time_s)
    );
    if let Some(st) = &e.stellar {
        println!(
            "{:<12} {:>14} {:>14} {:>16}",
            "Stellar",
            pct(prosperity_baselines::stellar::fs_density(bit_density, 4, 2)),
            "-",
            format!("{:.2}x", dense_t / st.time_s)
        );
    }
    println!(
        "{:<12} {:>14} {:>14} {:>16}",
        "Prosperity",
        pct(bit_density),
        pct(pro_density),
        format!("{:.2}x", dense_t / e.prosperity_perf.time_s)
    );
    rule(60);
    println!("paper reference:");
    println!("  bit density 34.21%   pro density 2.79%");
    println!("  speedups: PTB 1.86x  Stellar 5.97x  Prosperity 17.55x");
}

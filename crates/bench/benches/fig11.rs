//! Fig. 11 — activation-density comparison across the workload suite: bit
//! density (PTB/SATO class), FS-neuron density (Stellar class), and product
//! density (ours).
//!
//! Paper reference: product density up to 19.7× and on average 5.0× lower
//! than bit density, and on average 3.2× lower than the FS-neuron density;
//! every workload lands below 5 % product density except LN5.

use prosperity_baselines::stellar::fs_density;
use prosperity_bench::{header, pct, rule, scale};
use prosperity_core::ProSparsityPlan;
use prosperity_models::Workload;
use spikemat::TileShape;

fn main() {
    header("Fig. 11", "Density: bit vs FS neuron vs product");
    let s = scale();
    let workloads = Workload::fig11_suite();
    let tile = TileShape::prosperity_default();

    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>12}",
        "workload", "bit", "FS", "product", "bit/product"
    );
    rule(72);
    let mut reductions = Vec::new();
    let mut fs_ratios = Vec::new();
    let results: Vec<(String, f64, f64, f64)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(move |_| {
                    let trace = w.generate_trace(s);
                    let mut bit = 0u64;
                    let mut pro = 0u64;
                    let mut dense = 0u64;
                    for l in &trace.layers {
                        let plan = ProSparsityPlan::build_tiled(&l.spikes, tile);
                        bit += plan.stats().bit_ops;
                        pro += plan.stats().pro_ops;
                        dense += plan.stats().dense_ops;
                    }
                    let bit_d = bit as f64 / dense as f64;
                    let pro_d = pro as f64 / dense as f64;
                    let fs_d = fs_density(bit_d, 4, 2);
                    (w.name(), bit_d, fs_d, pro_d)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("workload thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    for (name, bit_d, fs_d, pro_d) in &results {
        println!(
            "{:<24} {:>10} {:>10} {:>10} {:>11.2}x",
            name,
            pct(*bit_d),
            pct(*fs_d),
            pct(*pro_d),
            bit_d / pro_d
        );
        reductions.push(bit_d / pro_d);
        fs_ratios.push(fs_d / pro_d);
    }
    rule(72);
    let mean_red = reductions.iter().sum::<f64>() / reductions.len() as f64;
    let max_red = reductions.iter().cloned().fold(0.0f64, f64::max);
    let mean_fs = fs_ratios.iter().sum::<f64>() / fs_ratios.len() as f64;
    println!("bit/product: mean {mean_red:.1}x (paper 5.0x), max {max_red:.1}x (paper 19.7x)");
    println!("FS/product : mean {mean_fs:.1}x (paper 3.2x)");
}

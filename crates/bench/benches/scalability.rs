//! Sec. VIII-A — architecture scalability: intra-PPU issue width and
//! inter-PPU tile parallelism.
//!
//! The paper sketches both axes qualitatively; this bench quantifies them on
//! the reproduction: same-level forest nodes are independent (intra-PPU),
//! and tiles of a layer are independent up to shared DRAM bandwidth
//! (inter-PPU).

use prosperity_bench::{header, rule, scale};
use prosperity_models::Workload;
use prosperity_sim::scale::inter_ppu_layer_cycles;
use prosperity_sim::{simulate_model, ProsperityConfig};

fn main() {
    header(
        "Sec. VIII-A",
        "Scalability: intra-PPU issue width / inter-PPU tiles",
    );
    let w = Workload::vgg16_cifar100();
    let trace = w.generate_trace(scale() * 0.5);
    let config = ProsperityConfig::default();
    let base = simulate_model(&trace, &config);
    println!("baseline (1 PPU): {} cycles\n", base.cycles);

    println!("inter-PPU scaling (shared DRAM):");
    println!("{:<8} {:>14} {:>10}", "PPUs", "cycles", "speedup");
    rule(36);
    for ppus in [1usize, 2, 4, 8, 16] {
        let cycles: u64 = trace
            .layers
            .iter()
            .map(|l| inter_ppu_layer_cycles(&l.spikes, l.spec.shape.n, &config, ppus).cycles)
            .sum();
        println!(
            "{:<8} {:>14} {:>9.2}x",
            ppus,
            cycles,
            base.cycles as f64 / cycles as f64
        );
    }
    rule(36);
    println!("speedup saturates when layers become DRAM-bound — the paper's");
    println!("motivation for pairing inter-PPU scaling with more channels.");
}

//! Fig. 10 — Prosperity area and power breakdown, evaluated (as in the
//! paper) on Spikformer / CIFAR-10.
//!
//! Paper reference — area (mm²): Detector 0.021, Pruner 0.020, Dispatcher
//! 0.088, Processor 0.074, Other 0.022, Buffer 0.303; total 0.529.
//! Power (mW): Detector 268.6, Pruner 3.1, Dispatcher 24.1, Processor 55.0,
//! Other 16.3, Buffer 80.4, DRAM 467.5; total 915.

use prosperity_bench::{header, rule, scale};
use prosperity_models::Workload;
use prosperity_sim::{simulate_model, AreaModel, EnergyModel, ProsperityConfig};

fn main() {
    header(
        "Fig. 10",
        "Prosperity area and power breakdown (Spikformer/CIFAR10)",
    );
    let w = Workload::fig8_suite()[4]; // Spikformer / CIFAR10
    assert_eq!(w.name(), "Spikformer/CIFAR10");
    let trace = w.generate_trace(scale());
    let config = ProsperityConfig::default();
    let perf = simulate_model(&trace, &config);
    let energy = EnergyModel::default().energy(&perf.events);
    let time = perf.time_seconds();
    let area = AreaModel::default().area(&config);

    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>12}",
        "component", "area mm2", "paper", "power mW", "paper"
    );
    rule(68);
    let mw = |j: f64| 1e3 * j / time;
    let rows = [
        ("Detector", area.detector, 0.021, mw(energy.detector), 268.6),
        ("Pruner", area.pruner, 0.020, mw(energy.pruner), 3.1),
        (
            "Dispatcher",
            area.dispatcher,
            0.088,
            mw(energy.dispatcher),
            24.1,
        ),
        (
            "Processor",
            area.processor,
            0.074,
            mw(energy.processor),
            55.0,
        ),
        ("Other", area.other, 0.022, mw(energy.other), 16.3),
        ("Buffer", area.buffer, 0.303, mw(energy.buffer), 80.4),
        ("DRAM", 0.0, 0.0, mw(energy.dram), 467.5),
    ];
    for (name, a, pa, p, pp) in rows {
        let a_str = if name == "DRAM" {
            ("-".to_string(), "-".to_string())
        } else {
            (format!("{a:.3}"), format!("{pa:.3}"))
        };
        println!(
            "{:<12} {:>12} {:>12} {:>14.1} {:>12.1}",
            name, a_str.0, a_str.1, p, pp
        );
    }
    rule(68);
    println!(
        "{:<12} {:>12.3} {:>12} {:>14.1} {:>12}",
        "total",
        area.total(),
        "0.529",
        mw(energy.total()),
        "915.0"
    );
    println!();
    println!("observations: the Dispatcher's product-sparsity table dominates non-buffer");
    println!("area; the Detector's always-on TCAM dominates on-chip power; DRAM dominates");
    println!("total power — matching the paper's Fig. 10 narrative.");
}

//! Fig. 9 — ablation ladder, averaged over all evaluated models:
//!
//! 1. PTB (structured bit sparsity)                      — 1.00× reference
//! 2. + unstructured bit sparsity (row-wise dataflow)    — paper: 2.28×
//! 3. + ProSparsity with high-overhead dispatch          — paper: ×2.16 more
//! 4. + overhead-free dispatch (full Prosperity)         — paper: ×1.49 more
//!
//! (Paper anchors relative to dense Eyeriss: 1.00 → 2.62 → 5.97 → 12.87 →
//! 19.12; note 5.97 here is PTB's dense-relative speedup context.)

use prosperity_baselines::eyeriss::Eyeriss;
use prosperity_baselines::ptb::Ptb;
use prosperity_bench::{geomean, header, rule, scale};
use prosperity_models::Workload;
use prosperity_sim::{simulate_model, ProsperityConfig, SimMode};

fn main() {
    header(
        "Fig. 9",
        "Ablation: bit sparsity -> ProSparsity -> fast dispatch",
    );
    let s = scale();
    let workloads = Workload::fig8_suite();

    let mut vs_dense = vec![Vec::new(); 4]; // ptb, bit, slow, full
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(move |_| {
                    let trace = w.generate_trace(s);
                    let dense = Eyeriss::default().simulate(&trace).time_s;
                    let ptb = Ptb::default().simulate(&trace).time_s;
                    let run = |mode| {
                        simulate_model(&trace, &ProsperityConfig::with_mode(mode)).time_seconds()
                    };
                    (
                        dense / ptb,
                        dense / run(SimMode::BitSparsityOnly),
                        dense / run(SimMode::ProSparsitySlowDispatch),
                        dense / run(SimMode::Full),
                    )
                })
            })
            .collect();
        for h in handles {
            let (a, b, c, d) = h.join().expect("workload thread panicked");
            vs_dense[0].push(a);
            vs_dense[1].push(b);
            vs_dense[2].push(c);
            vs_dense[3].push(d);
        }
    })
    .expect("crossbeam scope");

    let g: Vec<f64> = vs_dense.iter().map(|v| geomean(v)).collect();
    println!(
        "{:<46} {:>10} {:>10}",
        "configuration", "vs dense", "step gain"
    );
    rule(70);
    let labels = [
        "PTB (structured bit sparsity)",
        "Prosperity: unstructured bit sparsity",
        "+ ProSparsity, high-overhead dispatch",
        "+ overhead-free dispatch (full Prosperity)",
    ];
    let mut prev = 1.0;
    for (label, &gm) in labels.iter().zip(&g) {
        println!("{:<46} {:>9.2}x {:>9.2}x", label, gm, gm / prev);
        prev = gm;
    }
    rule(70);
    println!("paper step gains: 2.28x (unstructured), 2.16x (ProSparsity),");
    println!("                  1.49x (overhead-free dispatch); 3.2x bit->pro overall.");
}

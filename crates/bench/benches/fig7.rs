//! Fig. 7 — tile-size design-space exploration: latency (normalized to the
//! bit-sparsity baseline) and product density against tile `m` (left, with
//! area/power cost curves) and tile `k` (right).
//!
//! Paper findings: larger `m` monotonically improves density but hardware
//! cost grows super-linearly; `k` has an interior optimum near 16; the
//! selected point is `m = 256`, `k = 16`.

use prosperity_bench::{header, pct, rule, scale};
use prosperity_models::workload::ModelTrace;
use prosperity_models::{Architecture, Dataset, Workload};
use prosperity_sim::dse::{sweep_k, sweep_m};

fn traces(s: f64) -> Vec<ModelTrace> {
    // A CNN and a transformer representative keep the sweep affordable.
    vec![
        Workload::vgg16_cifar100().generate_trace(s * 0.5),
        Workload::new(Architecture::Sdt, Dataset::Cifar10, 0.15, 0.03, 108).generate_trace(s),
    ]
}

fn main() {
    header(
        "Fig. 7",
        "Tile-size exploration (latency, density, area, power)",
    );
    let t = traces(scale());

    println!("sweep of m (k = 16):");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "m", "norm lat", "pro density", "norm area", "norm power"
    );
    rule(62);
    for p in sweep_m(&t, &[4, 8, 16, 32, 64, 128, 256], 16) {
        println!(
            "{:<8} {:>12.3} {:>12} {:>12.3} {:>12.3}",
            p.m,
            p.norm_latency,
            pct(p.pro_density),
            p.norm_area,
            p.norm_power
        );
    }

    println!();
    println!("sweep of k (m = 256):");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12}",
        "k", "norm lat", "pro density", "norm area", "norm power"
    );
    rule(62);
    for p in sweep_k(&t, 256, &[4, 8, 16, 32, 64, 128]) {
        println!(
            "{:<8} {:>12.3} {:>12} {:>12.3} {:>12.3}",
            p.k,
            p.norm_latency,
            pct(p.pro_density),
            p.norm_area,
            p.norm_power
        );
    }
    rule(62);
    println!("paper: density improves monotonically with m; k has an interior");
    println!("optimum near 16; hardware cost grows super-linearly with m.");
    println!("selected operating point: m = 256, k = 16.");
}

//! Table II — preliminary one-prefix vs two-prefix experiment on
//! SpikingBERT/SST-2 and VGG-16/CIFAR-100.
//!
//! Paper reference: SpikingBERT 20.49 % bit → 2.98 % (one prefix) → 2.30 %
//! (two prefixes), prefix ratios 56 %×1 vs 53 %×1 + 3 %×2; VGG-16 34.21 % →
//! 2.79 % → 1.97 %, ratios 26 %×1 vs 20 %×1 + 6 %×2. The takeaway the
//! hardware design rests on: the second prefix buys little extra sparsity.

use prosperity_bench::{header, pct, rule, scale};
use prosperity_core::multi_prefix::{analyze_matrix, MultiPrefixStats};
use prosperity_models::Workload;
use spikemat::TileShape;

fn main() {
    header("Table II", "One-prefix vs two-prefix ProSparsity");
    let tile = TileShape::prosperity_default();
    for w in [Workload::spikingbert_sst2(), Workload::vgg16_cifar100()] {
        let trace = w.generate_trace(scale());
        let mut total = MultiPrefixStats::default();
        for l in &trace.layers {
            let mut s = analyze_matrix(&l.spikes, tile);
            total += std::mem::take(&mut s);
        }
        println!("{}", w.name());
        rule(64);
        println!("  bit density        : {}", pct(total.bit_density()));
        println!("  one-prefix density : {}", pct(total.one_prefix_density()));
        println!("  two-prefix density : {}", pct(total.two_prefix_density()));
        println!(
            "  prefix ratio       : {} x1  +  {} x2",
            pct(total.one_prefix_ratio()),
            pct(total.two_prefix_ratio())
        );
        println!();
    }
    println!("paper reference:");
    println!("  SpikingBERT SST-2: 20.49% bit, 2.98% one-prefix, 2.30% two-prefix");
    println!("                     ratios 56%x1  vs  53%x1 + 3%x2");
    println!("  VGG-16 CIFAR-100 : 34.21% bit, 2.79% one-prefix, 1.97% two-prefix");
    println!("                     ratios 26%x1  vs  20%x1 + 6%x2");
}

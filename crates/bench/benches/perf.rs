//! Perf regression bench for the SIMD limb kernels and the allocation-free
//! serving hot path.
//!
//! Four scenario families, written to `BENCH_perf.json` (override with
//! `BENCH_PERF_OUT`) and held to thresholds by
//! `scripts/check_bench_json.sh`:
//!
//! * `intersect_popcount` — the planner's superset-intersect fold and the
//!   Detector's popcount, routed ([`spikemat::simd`] dispatch) vs the
//!   scalar oracles. With SIMD compiled in and AVX2 present
//!   (`simd_active`), the routed path must be ≥ 1.2× the scalar one.
//! * `transpose64` — the 64×64 block bit-transpose, routed vs scalar.
//! * `alloc_steady_state` — warm serial GeMM steps under a counting
//!   `#[global_allocator]`; steady-state allocations per step must be 0.
//! * `snapshot_encode` — warm-buffer [`PlanSnapshot::encode_into`]
//!   throughput in MB/s (and its steady-state allocation count, also 0).
//!
//! Run with:
//!
//! ```text
//! cargo bench -p prosperity-bench --bench perf --features simd
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use prosperity_bench::time_ms;
use prosperity_core::engine::{Engine, EngineConfig, PlanSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikemat::gemm::{OutputMatrix, WeightMatrix};
use spikemat::{simd, SpikeMatrix, TileShape};

/// Counts allocations (alloc, alloc_zeroed, realloc) while armed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);

// SAFETY: pure pass-through to `System`; the wrapper adds only atomic
// counter updates and upholds `GlobalAlloc`'s contract by delegation.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System::alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    // SAFETY: delegates to `System::alloc_zeroed` with the caller's layout.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    // SAFETY: delegates to `System::realloc`; ptr/layout come from `alloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: delegates to `System::dealloc`; ptr/layout come from `alloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Runs `f` with the allocation counter armed, returning its count.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// Deterministic limb stream (splitmix-style), avoiding rand in the timed
/// setup so buffers are reproducible across runs.
fn fill_limbs(seed: u64, out: &mut [u64]) {
    let mut state = seed;
    for limb in out.iter_mut() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *limb = state ^ (state >> 31);
    }
}

/// Planner-shaped intersect workload: `masks` column masks of `words`
/// limbs each folded into an accumulator that is re-seeded every `cols`
/// steps (one candidate row's worth of one-columns).
fn intersect_pass(
    acc: &mut [u64],
    masks: &[u64],
    words: usize,
    cols: usize,
    fold: impl Fn(&mut [u64], &[u64], usize, u64) -> u64,
) -> u64 {
    let mut sink = 0u64;
    for (i, mask) in masks.chunks_exact(words).enumerate() {
        if i % cols == 0 {
            acc.fill(!0);
        }
        sink ^= fold(acc, mask, i % words, 1u64 << (i % 64));
    }
    sink
}

const REPS: usize = 25;

/// One routed-vs-scalar kernel row: per-call ns and speedup.
struct KernelRow {
    name: &'static str,
    scalar_ns: f64,
    simd_ns: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.simd_ns
    }

    fn json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"scalar_ns\": {:.2}, \"simd_ns\": {:.2}, \
             \"speedup\": {:.3}}}",
            self.name,
            self.scalar_ns,
            self.simd_ns,
            self.speedup()
        )
    }
}

fn bench_intersect_popcount() -> KernelRow {
    // 2048-row masks (32 limbs) — the geometry at which intersect
    // dispatch engages the AVX2 fold (see `MIN_INTERSECT_LIMBS`); 256
    // column folds per pass.
    const WORDS: usize = 32;
    const FOLDS: usize = 256;
    const COLS: usize = 32;
    let mut masks = vec![0u64; WORDS * FOLDS];
    fill_limbs(0x1A7E5EC7, &mut masks);
    let mut acc = vec![0u64; WORDS];
    // Popcount half: a 4096-limb spike buffer counted per pass.
    let mut limbs = vec![0u64; 4096];
    fill_limbs(0x90BC0047, &mut limbs);

    let scalar_ms = time_ms(REPS, || {
        let s = intersect_pass(&mut acc, &masks, WORDS, COLS, simd::intersect_fold_scalar);
        s ^ simd::popcount_scalar(&limbs)
    });
    let simd_ms = time_ms(REPS, || {
        let s = intersect_pass(&mut acc, &masks, WORDS, COLS, simd::intersect_fold);
        s ^ simd::popcount(&limbs)
    });
    // ns per pass (both halves); the ratio is what the checker enforces.
    KernelRow {
        name: "intersect_popcount",
        scalar_ns: scalar_ms * 1e6,
        simd_ns: simd_ms * 1e6,
    }
}

fn bench_transpose() -> KernelRow {
    const BLOCKS: usize = 256;
    let mut seed_blocks = vec![[0u64; 64]; BLOCKS];
    for (i, b) in seed_blocks.iter_mut().enumerate() {
        fill_limbs(0x7A05 + i as u64, &mut b[..]);
    }
    let mut work = seed_blocks.clone();
    let scalar_ms = time_ms(REPS, || {
        for b in work.iter_mut() {
            spikemat::bitops::transpose64_scalar(b);
        }
    });
    work.clone_from(&seed_blocks);
    let simd_ms = time_ms(REPS, || {
        for b in work.iter_mut() {
            spikemat::bitops::transpose64(b);
        }
    });
    KernelRow {
        name: "transpose64",
        scalar_ns: scalar_ms * 1e6 / BLOCKS as f64,
        simd_ns: simd_ms * 1e6 / BLOCKS as f64,
    }
}

fn main() {
    let simd_active = prosperity_core::simd_active();
    println!(
        "ProSparsity perf bench (simd feature: {}, simd active: {})",
        cfg!(feature = "simd"),
        simd_active
    );

    let intersect = bench_intersect_popcount();
    let transpose = bench_transpose();
    for row in [&intersect, &transpose] {
        println!(
            "{:<20} scalar {:>10.1} ns   simd {:>10.1} ns   {:>5.2}x",
            row.name,
            row.scalar_ns,
            row.simd_ns,
            row.speedup()
        );
    }

    // --- Steady-state serving steps under the counting allocator.
    let mut rng = StdRng::seed_from_u64(0xA110C);
    let mut engine = Engine::<i64>::new(EngineConfig::new(TileShape::new(64, 64), 256));
    let weights = WeightMatrix::from_fn(192, 32, |r, c| (r * 7 + c) as i64 - 100);
    let inputs: Vec<SpikeMatrix> = (0..4)
        .map(|_| SpikeMatrix::random(128, 192, 0.2, &mut rng))
        .collect();
    let mut out = OutputMatrix::zeros(0, 0);
    for s in &inputs {
        engine.gemm_into_serial(s, &weights, &mut out);
        engine.gemm_into_serial(s, &weights, &mut out);
    }
    const STEPS: usize = 64;
    let step_allocs = count_allocs(|| {
        for i in 0..STEPS {
            engine.gemm_into_serial(&inputs[i % inputs.len()], &weights, &mut out);
        }
    });
    let step_ms = time_ms(REPS, || {
        for i in 0..STEPS {
            engine.gemm_into_serial(&inputs[i % inputs.len()], &weights, &mut out);
        }
    }) / STEPS as f64;
    println!(
        "alloc_steady_state   {} allocs over {} steps ({:.4} ms/step)",
        step_allocs, STEPS, step_ms
    );

    // --- Warm-buffer snapshot encode throughput.
    let snapshot: PlanSnapshot = engine.export_snapshot(256);
    assert!(!snapshot.is_empty(), "warmup must leave cached plans");
    let mut buf = bytes::BytesMut::new();
    snapshot.encode_into(&mut buf); // warm the buffer
    let image_bytes = buf.len();
    let encode_allocs = count_allocs(|| snapshot.encode_into(&mut buf));
    let encode_ms = time_ms(REPS, || snapshot.encode_into(&mut buf));
    let mb_per_s = image_bytes as f64 / 1e6 / (encode_ms / 1e3);
    println!(
        "snapshot_encode      {} bytes, {} plans, {:.3} ms ({:.0} MB/s, {} allocs warm)",
        image_bytes,
        snapshot.len(),
        encode_ms,
        mb_per_s,
        encode_allocs
    );

    let out_path = std::env::var("BENCH_PERF_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_perf.json").to_string()
    });
    let json = format!(
        "{{\n  \"bench\": \"perf\",\n  \"unit\": \"ms\",\n  \"timing\": \"best_of_reps\",\n  \
         \"simd_feature\": {simd_feature},\n  \"simd_active\": {simd_active},\n  \
         \"threads_effective\": {threads},\n  \"scenarios\": [\n{intersect},\n{transpose},\n    \
         {{\"name\": \"alloc_steady_state\", \"steps\": {steps}, \"allocs_total\": {allocs}, \
         \"allocs_per_step\": {per_step:.1}, \"step_ms\": {step_ms:.4}}},\n    \
         {{\"name\": \"snapshot_encode\", \"bytes\": {bytes}, \"plans\": {plans}, \
         \"encode_ms\": {encode_ms:.4}, \"mb_per_s\": {mbps:.1}, \
         \"allocs_warm\": {encode_allocs}}}\n  ]\n}}\n",
        simd_feature = cfg!(feature = "simd"),
        simd_active = simd_active,
        threads = prosperity_core::parallel_threads(),
        intersect = intersect.json(),
        transpose = transpose.json(),
        steps = STEPS,
        allocs = step_allocs,
        per_step = step_allocs as f64 / STEPS as f64,
        step_ms = step_ms,
        bytes = image_bytes,
        plans = snapshot.len(),
        encode_ms = encode_ms,
        mbps = mb_per_s,
        encode_allocs = encode_allocs,
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("\nwrote {out_path}");
}

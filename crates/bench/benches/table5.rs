//! Table V — ProSparsity on top of LoAS dual-side-sparse (weight-pruned)
//! SNNs: weight density, activation density, and activation density after
//! ProSparsity.
//!
//! Paper reference: AlexNet 1.8 % / 29.32 % → 9.12 % (3.21×), VGG-16 1.8 % /
//! 31.07 % → 7.68 % (4.05×), ResNet-19 4.0 % / 35.68 % → 6.96 % (5.13×);
//! average activation-density reduction 4.1×.

use prosperity_baselines::loas::{evaluate, table5_models};
use prosperity_bench::{header, pct, rule};

fn main() {
    header("Table V", "LoAS dual-side sparsity + ProSparsity");
    println!(
        "{:<12} {:>12} {:>16} {:>18} {:>8}",
        "model", "wgt density", "act density", "act +Prosperity", "ratio"
    );
    rule(70);
    let mut ratios = Vec::new();
    for (i, m) in table5_models().iter().enumerate() {
        let r = evaluate(m, 400 + i as u64);
        println!(
            "{:<12} {:>12} {:>16} {:>18} {:>7.2}x",
            r.name,
            pct(r.weight_density),
            pct(r.activation_density),
            pct(r.pro_density),
            r.ratio()
        );
        ratios.push(r.ratio());
    }
    rule(70);
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("average activation-density reduction: {avg:.2}x  (paper: 4.1x)");
    println!("paper rows: AlexNet 29.32%->9.12% (3.21x)  VGG-16 31.07%->7.68% (4.05x)");
    println!("            ResNet-19 35.68%->6.96% (5.13x)");
}

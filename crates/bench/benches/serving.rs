//! Shared-cache serving benchmark: N concurrent correlated traces through
//! one [`SharedPlanCache`]-backed [`BatchScheduler`] versus the same
//! traces each served by a session with its own private cache.
//!
//! Spike tiles repeat across concurrent requests running the same model,
//! so a shared cache turns N independent sessions into one amortized
//! planning workload: whichever session plans a tile first warms it for
//! every sibling. Scenarios:
//!
//! * `shared_cache_{2,4,8}` — multi-tenant correlated timestep streams
//!   (`tracegen::generate_tenant_streams`): aggregate wall time of
//!   per-session private caches vs one shared cache under the round-robin
//!   and cache-affinity scheduling policies. The acceptance row is 4
//!   tenants: shared ≥ 1.3× aggregate over private.
//! * `fig8_admission` — the fig8 SpikingBERT trace (rare tile repetition)
//!   with the adaptive insertion-bypass admission policy on vs off: the
//!   row that used to document the cache-bookkeeping regression.
//! * `warm_start` — cache warm-up persistence: one correlated stream
//!   served cold (fresh cache) vs by a process restored from the cold
//!   run's [`PlanSnapshot`] (encoded → decoded → imported, the full
//!   restart path). Records the per-timestep hit-rate curve of both
//!   passes: the restored process starts at the exporting process's
//!   steady-state hit rate instead of 0 %.
//! * `qos` — the scheduling policies beyond throughput: a weighted 1:1:4
//!   tenant mix (deficit round robin must hand the weight-4 tenant ≥2.5×
//!   the step share of a weight-1 tenant while all lanes are runnable, at
//!   unchanged aggregate throughput vs round-robin), a feasible deadline
//!   mix (EDF must record zero misses where round-robin misses the tight
//!   budgets), and a skewed-length round-robin guard (1000:10:10 — the
//!   live-lane list keeps long-tail batches linear in executed steps).
//! * `preemption` — the scheduling quantum sliced below the GeMM: a
//!   1000:10:10 size-skewed mix (one lane of 16-row-tile monster GeMMs,
//!   two lanes of single-row-tile GeMMs) dispatched whole-GeMM vs in
//!   row-tile slice quanta {1, 2, 4, 8}. Records wall time until both
//!   short tenants complete and until the batch drains, per quantum, plus
//!   the knee of the sweep. Acceptance: ≥ 2× short-tenant completion
//!   improvement at ≥ 0.95× aggregate throughput.
//! * `shard_tuning` — the shared cache's measured `lock_hold_ns` and wall
//!   time across shard counts {1, 2, 4, 8, 16} on the 4-tenant correlated
//!   workload, plus the capacity/thread-derived default
//!   (`SharedPlanCache::recommended_shards`) the builders now pick.
//! * `resilience` — the fault-tolerance layer under load: one lane of a
//!   3-tenant mix panics on its first step (the panic unwinds out of the
//!   scheduler's isolation region, quarantining the lane), and the
//!   surviving lanes must serve bit-exact at ≥ 0.9× the throughput of the
//!   same two tenants with no fault at all; plus the crash-safe
//!   [`SnapshotStore`] path — saves, a hand-corrupted newest file, and the
//!   checksum-verified loader quarantining it and recovering the previous
//!   good snapshot.
//! * `fleet` — fleet mode: a cold process joining a warm fleet via
//!   snapshot gossip ([`ServiceConfig::with_gossip`] over the members'
//!   [`SnapshotStore`] directories, the layout shared with
//!   `examples/fleet.rs`). Two members serve correlated tenant streams
//!   and export; the joiner gossip-bootstraps from their directories and
//!   serves a fresh tenant. Records per-step hit-rate curves and the
//!   steps until steady state (hit rate ≥ 0.9) for the warm join vs the
//!   same process starting alone, plus the cross-process duplicate-plan
//!   savings (plans the joiner adopted instead of recomputing).
//!   Acceptance: warm-join steps-to-steady strictly below cold-alone.
//!
//! Every scenario gates on bit-identical outputs against the serial
//! private-cache oracle before timing anything. Per-session stats and the
//! shared-cache aggregate are serialized into every row so hit / miss /
//! eviction / bypass behaviour is auditable per scenario. Results are
//! printed and written to `BENCH_serving.json` (override with
//! `BENCH_SERVING_OUT`); `PROSPERITY_SERVING_SMOKE=1` shrinks sizes for
//! CI, and `PROSPERITY_SERVING_ONLY=<substring>` runs just the matching
//! scenarios (correctness gates included, JSON write skipped). Run:
//!
//! ```text
//! cargo bench -p prosperity-bench --bench serving
//! ```

use prosperity_bench::time_ms;
use prosperity_core::engine::{
    AdmissionConfig, BatchPolicy, BatchScheduler, Engine, EngineConfig, EngineStats, FleetHarness,
    PlanSnapshot, ServiceConfig, ServingLoop, Session, SharedCacheStats, SharedPlanCache,
    SnapshotStore, TraceStep,
};
use prosperity_models::tracegen::{TraceGen, TraceGenParams};
use prosperity_models::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spikemat::gemm::{OutputMatrix, WeightMatrix};
use spikemat::{SpikeMatrix, TileShape};

/// One multi-tenant scenario's measurements.
struct ServingOut {
    name: String,
    tenants: usize,
    /// GeMMs across all tenants per end-to-end pass.
    gemms: usize,
    /// Aggregate wall time, per-session private caches (serial sweep).
    private_ms: f64,
    /// Aggregate wall time, shared cache, round-robin interleave.
    shared_rr_ms: f64,
    /// Aggregate wall time, shared cache, greedy cache-affinity.
    shared_aff_ms: f64,
    /// Fleet-merged session stats of the shared round-robin pass.
    merged: EngineStats,
    /// Per-tenant session stats of the shared round-robin pass.
    per_session: Vec<EngineStats>,
    /// Shared-cache aggregate of the shared round-robin pass.
    cache: SharedCacheStats,
    /// Merged stats of the private-cache baseline (for the audit trail).
    private_merged: EngineStats,
}

impl ServingOut {
    fn speedup_rr(&self) -> f64 {
        self.private_ms / self.shared_rr_ms
    }
    fn speedup_aff(&self) -> f64 {
        self.private_ms / self.shared_aff_ms
    }
}

/// Builds the tenant streams + per-tenant weights for one tenant count.
struct TenantCase {
    streams: Vec<Vec<SpikeMatrix>>,
    weights: Vec<WeightMatrix<i64>>,
}

impl TenantCase {
    fn traces(&self) -> Vec<Vec<TraceStep<'_, i64>>> {
        self.streams
            .iter()
            .zip(&self.weights)
            .map(|(stream, w)| stream.iter().map(|s| (s, w)).collect())
            .collect()
    }
}

fn tenant_case(tenants: usize, smoke: bool) -> TenantCase {
    let (steps, rows, k, n) = if smoke {
        (4, 512, 128, 8)
    } else {
        (6, 1024, 256, 8)
    };
    // Concurrent requests to one model are more alike *across tenants* than
    // across time: per-row cross-tenant correlation 0.9995 compounds over
    // the 256-row tile height to ≈ 0.88 of tiles shared tenant-to-tenant,
    // while temporal persistence 0.999 leaves ≈ 0.77 shared step-to-step —
    // so a private cache re-plans the temporal churn once per tenant, a
    // shared cache once for the whole fleet.
    let gen = TraceGen::new(TraceGenParams::uncorrelated(0.30));
    let mut rng = StdRng::seed_from_u64(0x5E41 + tenants as u64);
    let streams = gen.generate_tenant_streams(tenants, steps, rows, k, 0.999, 0.9995, &mut rng);
    let weights = (0..tenants)
        .map(|t| WeightMatrix::from_fn(k, n, |r, c| (r * 31 + c * 7 + t * 13) as i64 % 255 - 127))
        .collect();
    TenantCase { streams, weights }
}

/// Serial per-tenant private-cache oracle outputs (the correctness gate).
fn oracle(case: &TenantCase, config: EngineConfig) -> Vec<Vec<OutputMatrix<i64>>> {
    case.streams
        .iter()
        .zip(&case.weights)
        .map(|(stream, w)| {
            let mut engine = Engine::new(config);
            stream
                .iter()
                .map(|s| {
                    let mut out = OutputMatrix::zeros(0, 0);
                    engine.gemm_into_serial(s, w, &mut out);
                    out
                })
                .collect()
        })
        .collect()
}

/// Shared vs private at one tenant count.
fn shared_vs_private(tenants: usize, smoke: bool, reps: usize) -> ServingOut {
    let case = tenant_case(tenants, smoke);
    let tile = TileShape::prosperity_default();
    let config = EngineConfig::new(tile, 4096);
    let traces = case.traces();
    let gemms: usize = traces.iter().map(Vec::len).sum();

    // Correctness gate + stats capture for both shared policies.
    let want = oracle(&case, config);
    let mut sched = BatchScheduler::new(config, BatchPolicy::RoundRobin);
    sched.run(&traces, |t, s, out| {
        assert_eq!(out, &want[t][s], "shared rr lost bits: tenant {t} step {s}");
    });
    let merged = sched.merged_stats();
    let per_session = sched.session_stats();
    let cache = sched.shared_cache().stats();
    let mut aff = BatchScheduler::new(config, BatchPolicy::CacheAffinity);
    aff.run(&traces, |t, s, out| {
        assert_eq!(
            out, &want[t][s],
            "shared aff lost bits: tenant {t} step {s}"
        );
    });

    // Private baseline stats (fresh engines, same aggregate work).
    let mut private_merged = EngineStats::default();
    for (stream, w) in case.streams.iter().zip(&case.weights) {
        let mut e = Engine::new(config);
        let mut o = OutputMatrix::zeros(0, 0);
        for s in stream {
            e.gemm_into(s, w, &mut o);
        }
        private_merged.merge(&e.stats());
    }

    // Timed passes: fresh caches per rep — each measurement is the whole
    // cold-to-warm batch, end to end.
    let private_ms = time_ms(reps, || {
        let mut acc = 0i64;
        for (stream, w) in case.streams.iter().zip(&case.weights) {
            let mut e = Engine::new(config);
            let mut o = OutputMatrix::zeros(0, 0);
            for s in stream {
                e.gemm_into(s, w, &mut o);
            }
            acc ^= o.as_slice().first().copied().unwrap_or(0);
        }
        acc
    });
    let shared_rr_ms = time_ms(reps, || {
        let mut sched = BatchScheduler::new(config, BatchPolicy::RoundRobin);
        let mut acc = 0i64;
        sched.run(&traces, |_, _, out| {
            acc ^= out.as_slice().first().copied().unwrap_or(0);
        });
        acc
    });
    let shared_aff_ms = time_ms(reps, || {
        let mut sched = BatchScheduler::new(config, BatchPolicy::CacheAffinity);
        let mut acc = 0i64;
        sched.run(&traces, |_, _, out| {
            acc ^= out.as_slice().first().copied().unwrap_or(0);
        });
        acc
    });

    ServingOut {
        name: format!("shared_cache_{tenants}"),
        tenants,
        gemms,
        private_ms,
        shared_rr_ms,
        shared_aff_ms,
        merged,
        per_session,
        cache,
        private_merged,
    }
}

/// The fig8 row re-run: admission on vs off on a miss-heavy model trace.
struct AdmissionOut {
    gemms: usize,
    off_ms: f64,
    on_ms: f64,
    stats_off: EngineStats,
    stats_on: EngineStats,
}

impl AdmissionOut {
    fn speedup(&self) -> f64 {
        self.off_ms / self.on_ms
    }
}

fn fig8_admission(smoke: bool, reps: usize) -> AdmissionOut {
    let workload = Workload::spikingbert_sst2();
    let scale = if smoke { 0.02 } else { 0.06 };
    let trace = workload.generate_trace(scale);
    let tile = TileShape::prosperity_default();
    let weights: Vec<WeightMatrix<i64>> = trace
        .layers
        .iter()
        .map(|l| l.synthetic_weights(7))
        .collect();
    let off = EngineConfig::new(tile, 2048);
    let on = off.with_admission(AdmissionConfig::default());

    // Correctness gate: admission decisions cannot change results.
    let mut e_off = Engine::new(off);
    let mut e_on = Engine::new(on);
    let mut a = OutputMatrix::zeros(0, 0);
    let mut b = OutputMatrix::zeros(0, 0);
    for (layer, w) in trace.layers.iter().zip(&weights) {
        e_off.gemm_into(&layer.spikes, w, &mut a);
        e_on.gemm_into(&layer.spikes, w, &mut b);
        assert_eq!(a, b, "admission lost bits on {}", layer.spec.name);
    }
    let (stats_off, stats_on) = (e_off.stats(), e_on.stats());

    let run = |config: EngineConfig| {
        let mut e = Engine::new(config);
        let mut o = OutputMatrix::zeros(0, 0);
        for (layer, w) in trace.layers.iter().zip(&weights) {
            e.gemm_into(&layer.spikes, w, &mut o);
        }
        o.as_slice().first().copied().unwrap_or(0)
    };
    let off_ms = time_ms(reps, || run(off));
    let on_ms = time_ms(reps, || run(on));

    AdmissionOut {
        gemms: trace.layers.len(),
        off_ms,
        on_ms,
        stats_off,
        stats_on,
    }
}

/// Cold vs snapshot-restored serving of one correlated stream.
struct WarmStartOut {
    steps: usize,
    /// Plans in the snapshot / bytes of its encoded form.
    snapshot_plans: usize,
    snapshot_bytes: usize,
    /// Wall time of a full restart-to-served pass: cold constructs a fresh
    /// session, warm imports the snapshot first (import cost included).
    cold_ms: f64,
    warm_ms: f64,
    /// Per-timestep hit rate of each pass (fraction of the step's tiles
    /// served from the cache).
    cold_curve: Vec<f64>,
    warm_curve: Vec<f64>,
    stats_cold: EngineStats,
    stats_warm: EngineStats,
}

impl WarmStartOut {
    fn speedup(&self) -> f64 {
        self.cold_ms / self.warm_ms
    }
}

fn warm_start(smoke: bool, reps: usize) -> WarmStartOut {
    let (steps, rows, k, n) = if smoke {
        (6, 512, 128, 8)
    } else {
        (10, 1024, 256, 8)
    };
    let gen = TraceGen::new(TraceGenParams::uncorrelated(0.30));
    let mut rng = StdRng::seed_from_u64(0x4A11);
    let stream = gen.generate_timesteps(steps, rows, k, 0.999, &mut rng);
    let weights = WeightMatrix::from_fn(k, n, |r, c| (r * 31 + c * 7) as i64 % 255 - 127);
    let config = EngineConfig::new(TileShape::prosperity_default(), 4096);

    // Correctness gate + per-step hit curves. The hit rate of step `s` is
    // the fraction of its tiles served from the cache.
    let curve_of = |engine: &mut Session<i64>, want: Option<&[OutputMatrix<i64>]>| {
        let mut curve = Vec::with_capacity(steps);
        let mut outs = Vec::with_capacity(steps);
        let mut out = OutputMatrix::zeros(0, 0);
        for (s, spikes) in stream.iter().enumerate() {
            let before = engine.stats();
            engine.gemm_into(spikes, &weights, &mut out);
            let after = engine.stats();
            let tiles = (after.tiles - before.tiles).max(1);
            curve.push((after.cache_hits - before.cache_hits) as f64 / tiles as f64);
            if let Some(want) = want {
                assert_eq!(out, want[s], "warm start lost bits at step {s}");
            }
            outs.push(out.clone());
        }
        (curve, outs)
    };
    let mut cold = Engine::new(config);
    let (cold_curve, want) = curve_of(&mut cold, None);
    let stats_cold = cold.stats();

    // The full restart path: export at "shutdown", encode to bytes, decode
    // in the "new process", import, serve the same stream again.
    let snapshot = cold.export_snapshot(config.cache_capacity);
    let bytes = snapshot.encode();
    let snapshot_bytes = bytes.len();
    let restored = PlanSnapshot::decode(bytes).expect("snapshot roundtrip");
    let (mut warm, report) = Session::warm_start(config, &restored);
    assert_eq!(report.restored, snapshot.len(), "restore must be total");
    let (warm_curve, _) = curve_of(&mut warm, Some(&want));
    let stats_warm = warm.stats();
    assert_eq!(
        stats_warm.restored_hits, stats_warm.cache_hits,
        "every warm hit comes from the snapshot"
    );

    // Timed passes measure restart-to-served wall time: session
    // construction (cold) or snapshot import (warm) plus the whole stream.
    let serve = |engine: &mut Session<i64>| {
        let mut out = OutputMatrix::zeros(0, 0);
        let mut acc = 0i64;
        for spikes in &stream {
            engine.gemm_into(spikes, &weights, &mut out);
            acc ^= out.as_slice().first().copied().unwrap_or(0);
        }
        acc
    };
    let cold_ms = time_ms(reps, || {
        let mut engine = Engine::new(config);
        serve(&mut engine)
    });
    let warm_ms = time_ms(reps, || {
        let (mut engine, _) = Session::warm_start(config, &restored);
        serve(&mut engine)
    });

    WarmStartOut {
        steps,
        snapshot_plans: snapshot.len(),
        snapshot_bytes,
        cold_ms,
        warm_ms,
        cold_curve,
        warm_curve,
        stats_cold,
        stats_warm,
    }
}

/// The `qos` scenario's measurements: weighted share, deadline misses,
/// and the skewed round-robin guard.
struct QosOut {
    /// GeMMs per tenant in the weighted/deadline mixes (3 equal traces).
    steps: usize,
    weights: Vec<u32>,
    /// Wall time of the same 3-tenant mix under each policy.
    rr_ms: f64,
    weighted_ms: f64,
    deadline_ms: f64,
    /// Step share of the weight-4 lane relative to the mean weight-1 lane,
    /// measured while every lane was still runnable.
    weighted_share_ratio: f64,
    rr_share_ratio: f64,
    /// Total steps per lane of the weighted pass (everything completes).
    weighted_lane_steps: Vec<u64>,
    /// The feasible deadline mix (global-step budgets per lane).
    budgets: Vec<u64>,
    edf_misses: u64,
    rr_misses: u64,
    edf_completion: Vec<u64>,
    rr_completion: Vec<u64>,
    /// Skewed-length round-robin guard.
    skew_lengths: Vec<usize>,
    skew_gemms: usize,
    skew_rr_ms: f64,
}

fn qos(smoke: bool, reps: usize) -> QosOut {
    let case = tenant_case(3, smoke);
    let tile = TileShape::prosperity_default();
    let config = EngineConfig::new(tile, 4096);
    let traces = case.traces();
    let steps = traces[0].len();
    let want = oracle(&case, config);

    let weights = vec![1u32, 1, 4];
    let weighted = BatchPolicy::Weighted {
        weights: weights.clone(),
    };

    // Correctness gate + live-window share accounting: per-lane step
    // counts captured at the moment the first lane completes (while every
    // lane was still contending for steps).
    let share_of = |policy: BatchPolicy| {
        let mut sched = BatchScheduler::new(config, policy);
        let mut counts = vec![0u64; traces.len()];
        let mut live = None;
        sched.run(&traces, |t, s, out| {
            assert_eq!(out, &want[t][s], "qos lost bits: tenant {t} step {s}");
            counts[t] += 1;
            if s + 1 == traces[t].len() && live.is_none() {
                live = Some(counts.clone());
            }
        });
        (
            live.expect("some lane completes"),
            sched.scheduler_stats().clone(),
        )
    };
    let share_ratio = |live: &[u64]| live[2] as f64 / ((live[0] + live[1]) as f64 / 2.0);
    let (w_live, w_stats) = share_of(weighted.clone());
    let (rr_live, rr_stats) = share_of(BatchPolicy::RoundRobin);
    let weighted_share_ratio = share_ratio(&w_live);
    let rr_share_ratio = share_ratio(&rr_live);
    assert!(
        weighted_share_ratio >= 2.5,
        "weight-4 tenant must receive >= 2.5x the weight-1 share while \
         contended, got {weighted_share_ratio:.2} ({w_live:?})"
    );

    // Feasible deadline mix: EDF serves the tightest budget first and
    // meets all three; round-robin drags every completion to the end and
    // must miss the tight ones. Budgets are in global executed steps.
    let l = steps as u64;
    let budgets = vec![l + 1, 2 * l + 1, 3 * l];
    let mut edf = BatchScheduler::new(
        config,
        BatchPolicy::Deadline {
            budgets: budgets.clone(),
        },
    );
    edf.run(&traces, |t, s, out| {
        assert_eq!(out, &want[t][s], "qos edf lost bits: tenant {t} step {s}");
    });
    let edf_stats = edf.scheduler_stats().clone();
    let edf_misses = edf_stats.deadline_misses;
    let rr_misses = rr_stats.misses_against(&budgets);
    assert_eq!(edf_misses, 0, "EDF must meet a feasible budget mix");
    assert!(
        rr_misses >= 1,
        "round robin must miss the tight budget: {:?} vs {budgets:?}",
        rr_stats.completion_steps
    );

    // Timed passes: the same mix, fresh caches per rep, under each policy
    // (aggregate throughput must be policy-independent on this workload).
    let time_policy = |policy: &BatchPolicy| {
        time_ms(reps, || {
            let mut sched = BatchScheduler::new(config, policy.clone());
            let mut acc = 0i64;
            sched.run(&traces, |_, _, out| {
                acc ^= out.as_slice().first().copied().unwrap_or(0);
            });
            acc
        })
    };
    let rr_ms = time_policy(&BatchPolicy::RoundRobin);
    let weighted_ms = time_policy(&weighted);
    let deadline_ms = time_policy(&BatchPolicy::Deadline {
        budgets: budgets.clone(),
    });

    // Skewed-length guard: one long-tail trace among finished ones. The
    // live-lane list keeps the scheduling loop linear in executed steps
    // (exhausted lanes used to be re-scanned every round).
    let (long, short) = if smoke { (120, 3) } else { (1000, 10) };
    let skew_lengths = vec![long, short, short];
    let mut rng = StdRng::seed_from_u64(0x5E3A);
    let skew_spikes: Vec<SpikeMatrix> = (0..3)
        .map(|_| SpikeMatrix::random(64, 64, 0.3, &mut rng))
        .collect();
    let skew_w = WeightMatrix::from_fn(64, 4, |r, c| (r * 5 + c) as i64 - 9);
    let skew_traces: Vec<Vec<TraceStep<'_, i64>>> = skew_spikes
        .iter()
        .zip(&skew_lengths)
        .map(|(s, &len)| vec![(s, &skew_w); len])
        .collect();
    let skew_gemms: usize = skew_lengths.iter().sum();
    let skew_config = EngineConfig::new(TileShape::new(16, 16), 1024);
    {
        // Gate once: skewed lengths must still cover every step exactly.
        let mut sched = BatchScheduler::new(skew_config, BatchPolicy::RoundRobin);
        let mut count = 0usize;
        sched.run(&skew_traces, |_, _, _| count += 1);
        assert_eq!(count, skew_gemms, "skewed batch must complete exactly");
    }
    let skew_rr_ms = time_ms(reps, || {
        let mut sched = BatchScheduler::new(skew_config, BatchPolicy::RoundRobin);
        let mut acc = 0i64;
        sched.run(&skew_traces, |_, _, out| {
            acc ^= out.as_slice().first().copied().unwrap_or(0);
        });
        acc
    });

    QosOut {
        steps,
        weights,
        rr_ms,
        weighted_ms,
        deadline_ms,
        weighted_share_ratio,
        rr_share_ratio,
        weighted_lane_steps: w_stats.lane_steps,
        budgets,
        edf_misses,
        rr_misses,
        edf_completion: edf_stats.completion_steps,
        rr_completion: rr_stats.completion_steps,
        skew_lengths,
        skew_gemms,
        skew_rr_ms,
    }
}

/// The `resilience` scenario's measurements: lane quarantine under load
/// and crash-safe snapshot recovery.
struct ResilienceOut {
    /// GeMMs the two surviving tenants execute per pass.
    survivor_gemms: usize,
    /// Wall time of the survivors' work with no fault anywhere.
    clean_ms: f64,
    /// Wall time of the same work while lane 0 panics and is quarantined.
    faulted_ms: f64,
    /// Scheduler fault counters of the faulted gate pass.
    lane_faults: u64,
    shard_resets: u64,
    /// Crash-safe store leg: saves performed, corrupt files quarantined by
    /// the loader, and plans recovered from the newest *valid* snapshot.
    snapshot_saves: usize,
    snapshots_quarantined: u64,
    recovered_plans: usize,
}

impl ResilienceOut {
    /// Survivor throughput under a fault relative to a fault-free fleet.
    fn surviving_throughput_ratio(&self) -> f64 {
        self.clean_ms / self.faulted_ms
    }
}

fn resilience(smoke: bool, reps: usize) -> ResilienceOut {
    let case = tenant_case(3, smoke);
    let tile = TileShape::prosperity_default();
    let config = EngineConfig::new(tile, 4096);
    let traces = case.traces();
    let want = oracle(&case, config);

    // The injected fault needs no hook: the sink runs inside the
    // scheduler's per-step isolation region, so a panic raised there is
    // exactly a lane crash. Silence the default hook's backtrace for these
    // expected panics (delegating everything else).
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info.payload();
        let expected = payload
            .downcast_ref::<&str>()
            .map(|s| s.contains("bench fault"))
            .or_else(|| {
                payload
                    .downcast_ref::<String>()
                    .map(|s| s.contains("bench fault"))
            })
            .unwrap_or(false);
        if !expected {
            prev_hook(info);
        }
    }));

    // Gate: lane 0 crashes on its first step; the fleet must not abort,
    // lane 0 must be quarantined and counted, and the survivors must stay
    // bit-identical to the serial private-cache oracle.
    let mut sched = BatchScheduler::new(config, BatchPolicy::RoundRobin);
    let mut seen = vec![0usize; traces.len()];
    sched.run(&traces, |t, s, out| {
        if t == 0 {
            panic!("bench fault: lane 0 crashes at step {s}");
        }
        assert_eq!(out, &want[t][s], "survivor lost bits: tenant {t} step {s}");
        seen[t] += 1;
    });
    let stats = sched.scheduler_stats().clone();
    assert_eq!(stats.lane_faults, 1, "lane 0 must be quarantined");
    assert_eq!(seen[1], traces[1].len(), "survivor 1 must complete");
    assert_eq!(seen[2], traces[2].len(), "survivor 2 must complete");
    let survivor_gemms = traces[1].len() + traces[2].len();

    // Timed passes: identical survivor work with and without the crash.
    let survivor_traces: Vec<Vec<TraceStep<'_, i64>>> = vec![traces[1].clone(), traces[2].clone()];
    let clean_ms = time_ms(reps, || {
        let mut sched = BatchScheduler::new(config, BatchPolicy::RoundRobin);
        let mut acc = 0i64;
        sched.run(&survivor_traces, |_, _, out| {
            acc ^= out.as_slice().first().copied().unwrap_or(0);
        });
        acc
    });
    let faulted_ms = time_ms(reps, || {
        let mut sched = BatchScheduler::new(config, BatchPolicy::RoundRobin);
        let mut acc = 0i64;
        sched.run(&traces, |t, s, out| {
            if t == 0 {
                panic!("bench fault: lane 0 crashes at step {s}");
            }
            acc ^= out.as_slice().first().copied().unwrap_or(0);
        });
        acc
    });

    // Crash-safe store leg: persist the warmed cache a few times, rot one
    // byte of the newest file on disk, and let the checksum-verified loader
    // quarantine it and fall back to the previous good snapshot.
    let dir = std::env::temp_dir().join(format!(
        "prosperity_bench_resilience_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SnapshotStore::new(&dir, 8).expect("snapshot store");
    let snapshot = sched.shared_cache().export_hottest(256);
    let snapshot_saves = 3;
    let mut newest = std::path::PathBuf::new();
    for _ in 0..snapshot_saves {
        newest = store.save(&snapshot).expect("save snapshot");
    }
    let mut bytes = std::fs::read(&newest).expect("read newest snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).expect("write rotted snapshot");
    let recovered = store
        .load_latest_valid()
        .expect("recovery must not error")
        .expect("an older good snapshot must survive");
    assert_eq!(recovered.len(), snapshot.len(), "recovery must be total");
    let snapshots_quarantined = store.quarantined();
    assert!(snapshots_quarantined >= 1, "rot must be quarantined");
    let _ = std::fs::remove_dir_all(&dir);

    ResilienceOut {
        survivor_gemms,
        clean_ms,
        faulted_ms,
        lane_faults: stats.lane_faults,
        shard_resets: stats.shard_resets,
        snapshot_saves,
        snapshots_quarantined,
        recovered_plans: recovered.len(),
    }
}

/// The `fleet` scenario's measurements: a cold process joining a warm
/// fleet through snapshot gossip vs the same process starting alone.
struct FleetOut {
    /// Warm fleet members (the joiner is on top of these).
    nodes: usize,
    /// Timesteps of the joiner's stream.
    steps: usize,
    /// The steady-state bar: a step counts as steady when ≥ this fraction
    /// of its tile lookups hit the cache.
    steady_hit_rate: f64,
    /// Steps before the first steady step, starting alone vs joining.
    cold_alone_steps_to_steady: usize,
    warm_join_steps_to_steady: usize,
    /// Per-step hit-rate curves of both passes.
    cold_curve: Vec<f64>,
    warm_curve: Vec<f64>,
    /// Cross-process duplicate-plan savings: plans the cold-alone pass
    /// computed that the warm join did not (cold misses − warm misses).
    duplicate_plans_saved: u64,
    /// Gossip accounting of the warm join.
    gossip_imports: u64,
    gossip_plans_adopted: u64,
    /// Joiner lookups served by plans a *peer* computed.
    restored_hits: u64,
    /// Restart-to-served wall time: fresh loop + whole stream, with the
    /// gossip bootstrap (warm) or without (cold).
    cold_ms: f64,
    warm_ms: f64,
    /// The gossip bootstrap alone (fresh loop, scan + decode + import of
    /// every peer snapshot, zero steps served) — the one-time price of
    /// joining warm, paid inside `warm_ms` too. Fleet mode buys hit-rate
    /// warmth from step 0 and fleet-wide deduplicated planning; on a
    /// stream this short the bootstrap is not amortized, so `warm_ms` may
    /// exceed `cold_ms` — the contract metrics are the steady-state steps
    /// and the duplicate-plan savings.
    bootstrap_ms: f64,
}

fn fleet(smoke: bool, reps: usize) -> FleetOut {
    let (steps, rows, k, n) = if smoke {
        (4, 512, 128, 8)
    } else {
        (6, 1024, 256, 8)
    };
    // Same shape as `tenant_case`, but tighter cross-tenant correlation:
    // 0.99995 per row compounds to ≈ 0.99 of tiles shared tenant-to-tenant
    // over the 256-row tile height — the fleet's caches cover nearly every
    // tile the joiner is about to serve, which is the regime fleet mode
    // exists for (same model replicated across processes).
    let gen = TraceGen::new(TraceGenParams::uncorrelated(0.30));
    let mut rng = StdRng::seed_from_u64(0xF1EE7);
    let streams = gen.generate_tenant_streams(3, steps, rows, k, 0.999, 0.99995, &mut rng);
    let weights = WeightMatrix::from_fn(k, n, |r, c| (r * 31 + c * 7) as i64 % 255 - 127);
    let tile = TileShape::prosperity_default();
    let config = EngineConfig::new(tile, 4096);
    let steady_hit_rate = 0.9;

    // Serial private-cache oracle for the joiner's stream (the bit gate).
    let want: Vec<OutputMatrix<i64>> = {
        let mut engine = Engine::new(config);
        streams[2]
            .iter()
            .map(|s| {
                let mut out = OutputMatrix::zeros(0, 0);
                engine.gemm_into_serial(s, &weights, &mut out);
                out
            })
            .collect()
    };

    // The warm fleet: two members serve their tenants and export their
    // hottest plans to their store directories (the `node-<id>` layout the
    // multi-process example shares).
    let root = std::env::temp_dir().join(format!("prosperity_bench_fleet_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let service = ServiceConfig::default().with_gossip(1, Vec::new());
    let mut fleet: FleetHarness<i64> =
        FleetHarness::new(&root, config, BatchPolicy::RoundRobin, service);
    for id in [0u64, 1] {
        fleet.join(id).expect("join fleet");
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            vec![streams[id as usize].iter().map(|s| (s, &weights)).collect()];
        fleet.node_mut(id).unwrap().run(&traces, |_, _, _| {});
        fleet.export_now(id, 4096).expect("export");
    }
    let peer_dirs = vec![
        FleetHarness::<i64>::store_dir(&root, 0),
        FleetHarness::<i64>::store_dir(&root, 1),
    ];

    // Per-step hit-rate curve of one serving loop over the joiner stream,
    // gated bit-identical against the serial oracle.
    let curve_of = |serving: &mut ServingLoop<i64>| {
        let mut curve = Vec::with_capacity(steps);
        let mut misses_total = 0u64;
        for (s, spikes) in streams[2].iter().enumerate() {
            let before = serving.shared_cache().stats();
            let trace: Vec<Vec<TraceStep<'_, i64>>> = vec![vec![(spikes, &weights)]];
            serving.run(&trace, |_, _, out| {
                assert_eq!(out, &want[s], "fleet lost bits at step {s}");
            });
            let after = serving.shared_cache().stats();
            let hits = after.hits - before.hits;
            let misses = after.misses - before.misses;
            misses_total += misses;
            curve.push(hits as f64 / (hits + misses).max(1) as f64);
        }
        (curve, misses_total)
    };
    let steps_to_steady = |curve: &[f64]| {
        curve
            .iter()
            .position(|&r| r >= steady_hit_rate)
            .unwrap_or(curve.len())
    };

    // Cold alone: the joiner with no fleet behind it.
    let mut cold =
        ServingLoop::<i64>::new(config, BatchPolicy::RoundRobin, ServiceConfig::default());
    let (cold_curve, cold_misses) = curve_of(&mut cold);

    // Warm join: same process shape, but gossip-bootstrapped from the
    // fleet's directories before its first step.
    fleet.join(2).expect("join fleet");
    let joiner = fleet.node_mut(2).unwrap();
    let (warm_curve, warm_misses) = curve_of(joiner);
    let stats = joiner.stats();
    let cache = joiner.shared_cache().stats();
    assert!(
        stats.gossip_plans_adopted > 0,
        "gossip must adopt: {stats:?}"
    );

    let cold_alone_steps_to_steady = steps_to_steady(&cold_curve);
    let warm_join_steps_to_steady = steps_to_steady(&warm_curve);
    assert!(
        warm_join_steps_to_steady < cold_alone_steps_to_steady,
        "joining a warm fleet must reach steady state sooner: \
         warm {warm_curve:?} vs cold {cold_curve:?}"
    );
    assert!(
        warm_misses < cold_misses,
        "the warm join must recompute fewer plans ({warm_misses} vs {cold_misses})"
    );

    // Timed restart-to-served passes: fresh loop per rep; the warm pass
    // pays the gossip bootstrap (scan + decode + import) inside the
    // measurement.
    let whole: Vec<Vec<TraceStep<'_, i64>>> =
        vec![streams[2].iter().map(|s| (s, &weights)).collect()];
    let cold_ms = time_ms(reps, || {
        let mut serving =
            ServingLoop::<i64>::new(config, BatchPolicy::RoundRobin, ServiceConfig::default());
        let mut acc = 0i64;
        serving.run(&whole, |_, _, out| {
            acc ^= out.as_slice().first().copied().unwrap_or(0);
        });
        acc
    });
    let warm_ms = time_ms(reps, || {
        let service = ServiceConfig::default().with_gossip(1, peer_dirs.clone());
        let mut serving = ServingLoop::<i64>::new(config, BatchPolicy::RoundRobin, service);
        let mut acc = 0i64;
        serving.run(&whole, |_, _, out| {
            acc ^= out.as_slice().first().copied().unwrap_or(0);
        });
        acc
    });
    let bootstrap_ms = time_ms(reps, || {
        let service = ServiceConfig::default().with_gossip(1, peer_dirs.clone());
        let mut serving = ServingLoop::<i64>::new(config, BatchPolicy::RoundRobin, service);
        // Zero steps: the run does nothing but the bootstrap sweep.
        serving.run(&[Vec::<TraceStep<'_, i64>>::new()], |_, _, _| {});
        serving.shared_cache().stats().resident
    });
    let _ = std::fs::remove_dir_all(&root);

    FleetOut {
        nodes: 2,
        steps,
        steady_hit_rate,
        cold_alone_steps_to_steady,
        warm_join_steps_to_steady,
        cold_curve,
        warm_curve,
        duplicate_plans_saved: cold_misses - warm_misses,
        gossip_imports: stats.gossip_imports,
        gossip_plans_adopted: stats.gossip_plans_adopted,
        restored_hits: cache.restored_hits,
        cold_ms,
        warm_ms,
        bootstrap_ms,
    }
}

/// The `preemption` scenario's measurements: the scheduling quantum sliced
/// below the GeMM under a size-skewed 1000:10:10 tenant mix.
struct PreemptionOut {
    /// Trace lengths: one long monster-GeMM lane, two short small-GeMM lanes.
    long_steps: usize,
    short_steps: usize,
    /// Row-tiles per monster GeMM (how divisible the quantum makes it).
    monster_row_tiles: usize,
    /// Whole-GeMM baseline (quantum 0): wall time until both short lanes
    /// complete, and until the whole batch drains.
    whole_short_ms: f64,
    whole_total_ms: f64,
    /// Quantum sweep: (row-tiles per visit, short-completion ms, total ms).
    sweep: Vec<(usize, f64, f64)>,
    /// The knee: the largest (cheapest) quantum still within 10 % of the
    /// sweep's best short-tenant completion latency.
    knee_quantum: usize,
    knee_short_ms: f64,
    knee_total_ms: f64,
}

impl PreemptionOut {
    /// Short-tenant completion speedup of the knee quantum over whole-GeMM
    /// dispatch.
    fn latency_improvement(&self) -> f64 {
        self.whole_short_ms / self.knee_short_ms
    }
    /// Aggregate throughput of the knee quantum relative to whole-GeMM
    /// dispatch (≥ 1 means slicing costs nothing end to end).
    fn throughput_ratio(&self) -> f64 {
        self.whole_total_ms / self.knee_total_ms
    }
}

fn preemption(smoke: bool, reps: usize) -> PreemptionOut {
    use std::sync::Arc;
    let (long_steps, short_steps) = if smoke { (120, 3) } else { (1000, 10) };
    // A 16-row tile makes the 256-row monster GeMM 16 preemption points
    // while the 16-row short GeMMs stay single-slice; k = 128 keeps each
    // row-tile wide enough (8 column-tiles) that per-visit overhead is
    // amortized over real work.
    let tile = TileShape::new(16, 16);
    let config = EngineConfig::new(tile, 4096);
    let mut rng = StdRng::seed_from_u64(0x9EE3);
    let monster = SpikeMatrix::random(256, 128, 0.3, &mut rng);
    let small = SpikeMatrix::random(16, 128, 0.35, &mut rng);
    let w = WeightMatrix::from_fn(128, 8, |r, c| (r * 17 + c * 3) as i64 % 255 - 127);
    let monster_row_tiles = monster.rows().div_ceil(tile.m);
    let traces: Vec<Vec<TraceStep<'_, i64>>> = vec![
        vec![(&monster, &w); long_steps],
        vec![(&small, &w); short_steps],
        vec![(&small, &w); short_steps],
    ];

    // Correctness gate: whole-GeMM and sliced dispatch are bit-identical
    // to the serial private-cache oracle at every swept quantum.
    let want = {
        let mut engine = Engine::new(config);
        let mut want_monster = OutputMatrix::zeros(0, 0);
        engine.gemm_into_serial(&monster, &w, &mut want_monster);
        let mut want_small = OutputMatrix::zeros(0, 0);
        engine.gemm_into_serial(&small, &w, &mut want_small);
        (want_monster, want_small)
    };
    let quanta = [1usize, 2, 4, 8];
    for quantum in std::iter::once(0).chain(quanta) {
        let mut sched =
            BatchScheduler::new(config, BatchPolicy::RoundRobin).with_slice_quantum(quantum);
        let mut count = 0usize;
        sched.run(&traces, |lane, step, out| {
            let want = if lane == 0 { &want.0 } else { &want.1 };
            assert_eq!(
                out, want,
                "preemption lost bits: q{quantum} l{lane} s{step}"
            );
            count += 1;
        });
        assert_eq!(count, long_steps + 2 * short_steps, "q{quantum}");
    }

    // Timed passes: wall time until *both* short lanes complete (the
    // latency the quantum exists to shrink) and until the batch drains
    // (the throughput it must not cost). Preemption is a steady-state
    // serving property, so every pass plans through one pre-warmed shared
    // cache (the monster's 128-tile cold plan on its first visit would
    // otherwise dominate short-lane completion identically in every mode);
    // fresh scheduler per rep, best of reps per metric.
    let warm_cache = Arc::new(SharedPlanCache::with_shards(
        config.cache_capacity,
        SharedPlanCache::recommended_shards(config.cache_capacity),
        None,
    ));
    {
        let mut sched =
            BatchScheduler::with_cache(config, BatchPolicy::RoundRobin, Arc::clone(&warm_cache));
        let warm_traces: Vec<Vec<TraceStep<'_, i64>>> =
            vec![vec![(&monster, &w); 1], vec![(&small, &w); 1]];
        sched.run(&warm_traces, |_, _, _| {});
    }
    let measure = |quantum: usize| -> (f64, f64) {
        let (mut best_short, mut best_total) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            let mut sched = BatchScheduler::with_cache(
                config,
                BatchPolicy::RoundRobin,
                Arc::clone(&warm_cache),
            )
            .with_slice_quantum(quantum);
            let mut shorts_done = 0usize;
            let mut short_ms = None;
            let start = std::time::Instant::now();
            sched.run(&traces, |lane, step, _| {
                if lane > 0 && step + 1 == short_steps {
                    shorts_done += 1;
                    if shorts_done == 2 {
                        short_ms = Some(start.elapsed().as_secs_f64() * 1e3);
                    }
                }
            });
            let total = start.elapsed().as_secs_f64() * 1e3;
            best_short = best_short.min(short_ms.expect("short lanes complete"));
            best_total = best_total.min(total);
        }
        (best_short, best_total)
    };
    let (whole_short_ms, whole_total_ms) = measure(0);
    let sweep: Vec<(usize, f64, f64)> = quanta
        .iter()
        .map(|&q| {
            let (s, t) = measure(q);
            (q, s, t)
        })
        .collect();

    // The knee: short-tenant latency is flat near its minimum across small
    // quanta, then climbs toward the whole-GeMM figure; take the largest
    // quantum still within 10 % of the best latency (fewest preemption
    // points that still buys the full win).
    let best_short = sweep
        .iter()
        .map(|&(_, s, _)| s)
        .fold(f64::INFINITY, f64::min);
    let &(knee_quantum, knee_short_ms, knee_total_ms) = sweep
        .iter()
        .rev()
        .find(|&&(_, s, _)| s <= best_short * 1.10)
        .expect("sweep is non-empty");

    let out = PreemptionOut {
        long_steps,
        short_steps,
        monster_row_tiles,
        whole_short_ms,
        whole_total_ms,
        sweep,
        knee_quantum,
        knee_short_ms,
        knee_total_ms,
    };
    assert!(
        out.latency_improvement() >= 2.0,
        "sliced dispatch must at least halve short-tenant completion: \
         whole {:.3} ms vs knee(q{}) {:.3} ms",
        out.whole_short_ms,
        out.knee_quantum,
        out.knee_short_ms,
    );
    assert!(
        out.throughput_ratio() >= 0.95,
        "slice overhead must stay within 5 % of whole-GeMM throughput: \
         whole {:.3} ms vs knee(q{}) {:.3} ms",
        out.whole_total_ms,
        out.knee_quantum,
        out.knee_total_ms,
    );
    out
}

/// The `shard_tuning` row's measurements: wall time and measured lock-hold
/// time of the 4-tenant correlated workload per shard count, plus what
/// [`SharedPlanCache::recommended_shards`] would pick (PR 7 left the shard
/// count "not yet tuned against" this contention counter).
struct ShardTuningOut {
    gemms: usize,
    /// (shards, wall ms, lock_hold_ns of one full gate pass).
    sweep: Vec<(usize, f64, u64)>,
    recommended: usize,
}

fn shard_tuning(smoke: bool, reps: usize) -> ShardTuningOut {
    use std::sync::Arc;
    let case = tenant_case(4, smoke);
    let tile = TileShape::prosperity_default();
    let capacity = 4096;
    let config = EngineConfig::new(tile, capacity);
    let traces = case.traces();
    let want = oracle(&case, config);
    let gemms: usize = traces.iter().map(Vec::len).sum();
    let sweep = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&shards| {
            // Gate pass: exact results, and the shard-lock hold time of
            // one cold-cache pass (planning + lookups) for this layout.
            let cache = Arc::new(SharedPlanCache::with_shards(capacity, shards, None));
            let mut sched = BatchScheduler::with_cache(config, BatchPolicy::RoundRobin, cache);
            sched.run(&traces, |t, s, out| {
                assert_eq!(out, &want[t][s], "shard_tuning lost bits: {shards} shards");
            });
            let lock_hold_ns = sched.shared_cache().stats().lock_hold_ns;
            let ms = time_ms(reps, || {
                let cache = Arc::new(SharedPlanCache::with_shards(capacity, shards, None));
                let mut sched = BatchScheduler::with_cache(config, BatchPolicy::RoundRobin, cache);
                let mut acc = 0i64;
                sched.run(&traces, |_, _, out| {
                    acc ^= out.as_slice().first().copied().unwrap_or(0);
                });
                acc
            });
            (shards, ms, lock_hold_ns)
        })
        .collect();
    ShardTuningOut {
        gemms,
        sweep,
        recommended: SharedPlanCache::recommended_shards(capacity),
    }
}

fn json_stats(s: &EngineStats) -> String {
    format!(
        concat!(
            "{{\"gemms\": {}, \"tiles\": {}, \"hits\": {}, \"misses\": {}, ",
            "\"evictions\": {}, \"bypasses\": {}, \"restored_hits\": {}, ",
            "\"hit_rate\": {:.4}}}"
        ),
        s.gemms,
        s.tiles,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
        s.cache_bypasses,
        s.restored_hits,
        s.hit_rate(),
    )
}

fn json_shared(c: &SharedCacheStats) -> String {
    format!(
        concat!(
            "{{\"hits\": {}, \"misses\": {}, \"insertions\": {}, ",
            "\"evictions\": {}, \"bypasses\": {}, \"dedups\": {}, ",
            "\"restored_hits\": {}, \"resident\": {}, \"restored_resident\": {}, ",
            "\"tenants\": {}, \"shards\": {}, \"capacity\": {}, ",
            "\"shard_resets\": {}, \"hit_rate\": {:.4}}}"
        ),
        c.hits,
        c.misses,
        c.insertions,
        c.evictions,
        c.bypasses,
        c.dedups,
        c.restored_hits,
        c.resident,
        c.restored_resident,
        c.tenants,
        c.shards,
        c.capacity,
        c.shard_resets,
        c.hit_rate(),
    )
}

fn json_curve(curve: &[f64]) -> String {
    let points: Vec<String> = curve.iter().map(|v| format!("{v:.4}")).collect();
    format!("[{}]", points.join(", "))
}

fn json_ints<I: std::fmt::Display>(values: &[I]) -> String {
    let items: Vec<String> = values.iter().map(|v| v.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn json_qos(q: &QosOut) -> String {
    format!(
        concat!(
            "    {{\"name\": \"qos\", \"tenants\": 3, \"gemms\": {},\n",
            "     \"weighted\": {{\"weights\": {}, \"rr_ms\": {:.3}, ",
            "\"weighted_ms\": {:.3}, \"throughput_ratio\": {:.3}, ",
            "\"share_ratio\": {:.2}, \"rr_share_ratio\": {:.2}, ",
            "\"lane_steps\": {}}},\n",
            "     \"deadline\": {{\"budgets\": {}, \"deadline_ms\": {:.3}, ",
            "\"edf_misses\": {}, \"rr_misses\": {}, ",
            "\"edf_completion\": {}, \"rr_completion\": {}}},\n",
            "     \"rr_skew\": {{\"lengths\": {}, \"gemms\": {}, ",
            "\"rr_ms\": {:.3}}}}}"
        ),
        q.steps * 3,
        json_ints(&q.weights),
        q.rr_ms,
        q.weighted_ms,
        q.rr_ms / q.weighted_ms,
        q.weighted_share_ratio,
        q.rr_share_ratio,
        json_ints(&q.weighted_lane_steps),
        json_ints(&q.budgets),
        q.deadline_ms,
        q.edf_misses,
        q.rr_misses,
        json_ints(&q.edf_completion),
        json_ints(&q.rr_completion),
        json_ints(&q.skew_lengths),
        q.skew_gemms,
        q.skew_rr_ms,
    )
}

fn json_preemption(p: &PreemptionOut) -> String {
    let sweep: Vec<String> = p
        .sweep
        .iter()
        .map(|&(q, s, t)| {
            format!("{{\"quantum\": {q}, \"short_ms\": {s:.3}, \"total_ms\": {t:.3}}}")
        })
        .collect();
    format!(
        concat!(
            "    {{\"name\": \"preemption\", \"tenants\": 3, \"gemms\": {}, ",
            "\"lengths\": {}, \"monster_row_tiles\": {},\n",
            "     \"whole_short_ms\": {:.3}, \"whole_total_ms\": {:.3},\n",
            "     \"sweep\": [{}],\n",
            "     \"knee_quantum\": {}, \"knee_short_ms\": {:.3}, ",
            "\"knee_total_ms\": {:.3}, \"latency_improvement\": {:.2}, ",
            "\"throughput_ratio\": {:.3}}}"
        ),
        p.long_steps + 2 * p.short_steps,
        json_ints(&[p.long_steps, p.short_steps, p.short_steps]),
        p.monster_row_tiles,
        p.whole_short_ms,
        p.whole_total_ms,
        sweep.join(", "),
        p.knee_quantum,
        p.knee_short_ms,
        p.knee_total_ms,
        p.latency_improvement(),
        p.throughput_ratio(),
    )
}

fn json_shard_tuning(s: &ShardTuningOut) -> String {
    let sweep: Vec<String> = s
        .sweep
        .iter()
        .map(|&(shards, ms, ns)| {
            format!("{{\"shards\": {shards}, \"ms\": {ms:.3}, \"lock_hold_ns\": {ns}}}")
        })
        .collect();
    format!(
        concat!(
            "    {{\"name\": \"shard_tuning\", \"tenants\": 4, \"gemms\": {}, ",
            "\"recommended_shards\": {},\n",
            "     \"sweep\": [{}]}}"
        ),
        s.gemms,
        s.recommended,
        sweep.join(", "),
    )
}

fn json_fleet(f: &FleetOut) -> String {
    format!(
        concat!(
            "    {{\"name\": \"fleet\", \"nodes\": {}, \"tenants\": 3, \"gemms\": {}, ",
            "\"steady_hit_rate\": {:.2}, ",
            "\"cold_alone_steps_to_steady\": {}, \"warm_join_steps_to_steady\": {}, ",
            "\"duplicate_plans_saved\": {}, \"gossip_imports\": {}, ",
            "\"gossip_plans_adopted\": {}, \"restored_hits\": {}, ",
            "\"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"bootstrap_ms\": {:.3},\n",
            "     \"cold_hit_curve\": {},\n",
            "     \"warm_hit_curve\": {}}}"
        ),
        f.nodes,
        f.steps,
        f.steady_hit_rate,
        f.cold_alone_steps_to_steady,
        f.warm_join_steps_to_steady,
        f.duplicate_plans_saved,
        f.gossip_imports,
        f.gossip_plans_adopted,
        f.restored_hits,
        f.cold_ms,
        f.warm_ms,
        f.bootstrap_ms,
        json_curve(&f.cold_curve),
        json_curve(&f.warm_curve),
    )
}

fn json_scenario(r: &ServingOut) -> String {
    let sessions: Vec<String> = r.per_session.iter().map(json_stats).collect();
    format!(
        concat!(
            "    {{\"name\": \"{}\", \"tenants\": {}, \"gemms\": {}, ",
            "\"private_ms\": {:.3}, \"shared_rr_ms\": {:.3}, \"shared_aff_ms\": {:.3}, ",
            "\"speedup_rr\": {:.2}, \"speedup_aff\": {:.2},\n",
            "     \"merged\": {},\n",
            "     \"private_merged\": {},\n",
            "     \"shared_cache\": {},\n",
            "     \"sessions\": [{}]}}"
        ),
        r.name,
        r.tenants,
        r.gemms,
        r.private_ms,
        r.shared_rr_ms,
        r.shared_aff_ms,
        r.speedup_rr(),
        r.speedup_aff(),
        json_stats(&r.merged),
        json_stats(&r.private_merged),
        json_shared(&r.cache),
        sessions.join(", "),
    )
}

fn main() {
    let smoke = std::env::var("PROSPERITY_SERVING_SMOKE").is_ok_and(|v| v != "0");
    // Substring filter over scenario names ("qos", "shared", "warm_start",
    // …): matching scenarios run with their correctness gates; the JSON
    // write is skipped since the file must carry every scenario.
    let only = std::env::var("PROSPERITY_SERVING_ONLY").ok();
    let wanted = |name: &str| only.as_deref().is_none_or(|o| name.contains(o));
    let reps = if smoke { 2 } else { 4 };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Shared-cache serving benchmark (best-of-{reps} wall time, {threads} HW threads{}{})",
        if smoke { ", SMOKE" } else { "" },
        only.as_deref()
            .map(|o| format!(", only '{o}'"))
            .unwrap_or_default(),
    );
    println!(
        "{:<16} {:>7} {:>7} {:>11} {:>11} {:>11} {:>8} {:>8} {:>9}",
        "scenario",
        "tenants",
        "gemms",
        "private ms",
        "rr ms",
        "affinity",
        "rr spd",
        "aff spd",
        "hit rate"
    );
    let results: Vec<ServingOut> = [2usize, 4, 8]
        .iter()
        .filter(|&&t| wanted(&format!("shared_cache_{t}")))
        .map(|&t| shared_vs_private(t, smoke, reps))
        .collect();
    for r in &results {
        println!(
            "{:<16} {:>7} {:>7} {:>11.2} {:>11.2} {:>11.2} {:>7.2}x {:>7.2}x {:>8.1}%",
            r.name,
            r.tenants,
            r.gemms,
            r.private_ms,
            r.shared_rr_ms,
            r.shared_aff_ms,
            r.speedup_rr(),
            r.speedup_aff(),
            100.0 * r.merged.hit_rate(),
        );
    }
    let adm = wanted("fig8_admission").then(|| fig8_admission(smoke, reps));
    if let Some(adm) = &adm {
        println!(
            "{:<16} {:>7} {:>7} {:>11.2} {:>11.2} {:>11} {:>7.2}x {:>8} {:>8.1}%",
            "fig8_admission",
            1,
            adm.gemms,
            adm.off_ms,
            adm.on_ms,
            "-",
            adm.speedup(),
            "-",
            100.0 * adm.stats_on.hit_rate(),
        );
    }
    let ws = wanted("warm_start").then(|| warm_start(smoke, reps));
    if let Some(ws) = &ws {
        println!(
            "{:<16} {:>7} {:>7} {:>11.2} {:>11.2} {:>11} {:>7.2}x {:>8} {:>8.1}%",
            "warm_start",
            1,
            ws.steps,
            ws.cold_ms,
            ws.warm_ms,
            "-",
            ws.speedup(),
            "-",
            100.0 * ws.stats_warm.hit_rate(),
        );
        println!(
            "  warm start: {} plans, {} KiB snapshot; step-0 hit rate {:.0}% cold -> {:.0}% restored",
            ws.snapshot_plans,
            ws.snapshot_bytes / 1024,
            100.0 * ws.cold_curve.first().copied().unwrap_or(0.0),
            100.0 * ws.warm_curve.first().copied().unwrap_or(0.0),
        );
    }
    let q = wanted("qos").then(|| qos(smoke, reps));
    if let Some(q) = &q {
        println!(
            "{:<16} {:>7} {:>7} {:>11.2} {:>11.2} {:>11.2} {:>8} {:>8} {:>9}",
            "qos",
            3,
            q.steps * 3,
            q.rr_ms,
            q.weighted_ms,
            q.deadline_ms,
            "-",
            "-",
            "-",
        );
        println!(
            "  qos: weighted 1:1:4 share {:.2}x (rr {:.2}x), throughput ratio {:.2}; \
             deadline misses edf {} vs rr {}; skew {:?} rr {:.2} ms",
            q.weighted_share_ratio,
            q.rr_share_ratio,
            q.rr_ms / q.weighted_ms,
            q.edf_misses,
            q.rr_misses,
            q.skew_lengths,
            q.skew_rr_ms,
        );
    }

    let pre = wanted("preemption").then(|| preemption(smoke, reps));
    if let Some(pre) = &pre {
        println!(
            "{:<16} {:>7} {:>7} {:>11.2} {:>11.2} {:>11.2} {:>7.2}x {:>8} {:>9}",
            "preemption",
            3,
            pre.long_steps + 2 * pre.short_steps,
            pre.whole_short_ms,
            pre.knee_short_ms,
            pre.knee_total_ms,
            pre.latency_improvement(),
            "-",
            "-",
        );
        let sweep: Vec<String> = pre
            .sweep
            .iter()
            .map(|&(q, s, _)| format!("q{q} {s:.2}"))
            .collect();
        println!(
            "  preemption: {}:{}:{} mix, {}-row-tile monster; short completion \
             {:.2} ms whole -> {:.2} ms at knee q{} ({:.2}x, throughput {:.2}x); \
             sweep [{}] ms",
            pre.long_steps,
            pre.short_steps,
            pre.short_steps,
            pre.monster_row_tiles,
            pre.whole_short_ms,
            pre.knee_short_ms,
            pre.knee_quantum,
            pre.latency_improvement(),
            pre.throughput_ratio(),
            sweep.join(", "),
        );
    }

    let st = wanted("shard_tuning").then(|| shard_tuning(smoke, reps));
    if let Some(st) = &st {
        let sweep: Vec<String> = st
            .sweep
            .iter()
            .map(|&(s, ms, ns)| format!("{s} shards {ms:.2} ms/{ns} ns"))
            .collect();
        println!(
            "  shard_tuning: recommended {} shards for this host; [{}] lock-hold",
            st.recommended,
            sweep.join(", "),
        );
    }

    let rz = wanted("resilience").then(|| resilience(smoke, reps));
    if let Some(rz) = &rz {
        println!(
            "{:<16} {:>7} {:>7} {:>11.2} {:>11.2} {:>11} {:>8} {:>8} {:>9}",
            "resilience", 3, rz.survivor_gemms, rz.clean_ms, rz.faulted_ms, "-", "-", "-", "-",
        );
        println!(
            "  resilience: surviving throughput {:.2}x of fault-free; {} lane fault(s), \
             {} shard reset(s); store quarantined {} of {} saves, recovered {} plans",
            rz.surviving_throughput_ratio(),
            rz.lane_faults,
            rz.shard_resets,
            rz.snapshots_quarantined,
            rz.snapshot_saves,
            rz.recovered_plans,
        );
    }

    let fl = wanted("fleet").then(|| fleet(smoke, reps));
    if let Some(fl) = &fl {
        println!(
            "{:<16} {:>7} {:>7} {:>11.2} {:>11.2} {:>11.2} {:>8} {:>8} {:>9}",
            "fleet", 3, fl.steps, fl.cold_ms, fl.warm_ms, fl.bootstrap_ms, "-", "-", "-",
        );
        println!(
            "  fleet: {} members + joiner; steady (≥{:.0}%) in {} step(s) warm-join \
             vs {} cold-alone; {} duplicate plans saved, {} adopted over {} import(s), \
             {} restored hits; {:.2} ms bootstrap",
            fl.nodes,
            100.0 * fl.steady_hit_rate,
            fl.warm_join_steps_to_steady,
            fl.cold_alone_steps_to_steady,
            fl.duplicate_plans_saved,
            fl.gossip_plans_adopted,
            fl.gossip_imports,
            fl.restored_hits,
            fl.bootstrap_ms,
        );
    }

    let out_path = std::env::var("BENCH_SERVING_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").to_string()
    });
    if only.is_some() {
        println!("\nscenario filter active: not writing {out_path}");
        return;
    }
    let (adm, ws, q, pre, st, rz, fl) = (
        adm.expect("unfiltered run has fig8_admission"),
        ws.expect("unfiltered run has warm_start"),
        q.expect("unfiltered run has qos"),
        pre.expect("unfiltered run has preemption"),
        st.expect("unfiltered run has shard_tuning"),
        rz.expect("unfiltered run has resilience"),
        fl.expect("unfiltered run has fleet"),
    );
    let mut body: Vec<String> = results.iter().map(json_scenario).collect();
    body.push(format!(
        concat!(
            "    {{\"name\": \"fig8_admission\", \"tenants\": 1, \"gemms\": {}, ",
            "\"admission_off_ms\": {:.3}, \"admission_on_ms\": {:.3}, ",
            "\"speedup_admission\": {:.2},\n",
            "     \"stats_off\": {},\n",
            "     \"stats_on\": {}}}"
        ),
        adm.gemms,
        adm.off_ms,
        adm.on_ms,
        adm.speedup(),
        json_stats(&adm.stats_off),
        json_stats(&adm.stats_on),
    ));
    body.push(format!(
        concat!(
            "    {{\"name\": \"warm_start\", \"tenants\": 1, \"gemms\": {}, ",
            "\"snapshot_plans\": {}, \"snapshot_bytes\": {}, ",
            "\"cold_ms\": {:.3}, \"warm_ms\": {:.3}, \"speedup_warm\": {:.2},\n",
            "     \"cold_hit_curve\": {},\n",
            "     \"warm_hit_curve\": {},\n",
            "     \"stats_cold\": {},\n",
            "     \"stats_warm\": {}}}"
        ),
        ws.steps,
        ws.snapshot_plans,
        ws.snapshot_bytes,
        ws.cold_ms,
        ws.warm_ms,
        ws.speedup(),
        json_curve(&ws.cold_curve),
        json_curve(&ws.warm_curve),
        json_stats(&ws.stats_cold),
        json_stats(&ws.stats_warm),
    ));
    body.push(json_qos(&q));
    body.push(json_preemption(&pre));
    body.push(json_shard_tuning(&st));
    body.push(format!(
        concat!(
            "    {{\"name\": \"resilience\", \"tenants\": 3, \"gemms\": {}, ",
            "\"clean_ms\": {:.3}, \"faulted_ms\": {:.3}, ",
            "\"surviving_throughput_ratio\": {:.3},\n",
            "     \"lane_faults\": {}, \"shard_resets\": {}, ",
            "\"snapshot_saves\": {}, \"snapshots_quarantined\": {}, ",
            "\"recovered_plans\": {}}}"
        ),
        rz.survivor_gemms,
        rz.clean_ms,
        rz.faulted_ms,
        rz.surviving_throughput_ratio(),
        rz.lane_faults,
        rz.shard_resets,
        rz.snapshot_saves,
        rz.snapshots_quarantined,
        rz.recovered_plans,
    ));
    body.push(json_fleet(&fl));
    // `threads_effective` is what the parallel row-tile paths actually get
    // (rayon pool size, or 1 without the feature), as in BENCH_kernels.json
    // — it makes intra-GeMM parallel numbers interpretable on 1-core hosts.
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"unit\": \"ms\",\n  \"timing\": \
         \"best_of_reps\",\n  \"smoke\": {},\n  \"threads\": {},\n  \
         \"threads_effective\": {},\n  \
         \"parallel_feature\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        smoke,
        threads,
        prosperity_core::parallel_threads(),
        prosperity_core::parallel_enabled(),
        body.join(",\n")
    );
    if smoke {
        println!("\nsmoke mode: not overwriting {out_path}");
    } else {
        std::fs::write(&out_path, &json).expect("write bench json");
        println!("\nwrote {out_path}");
    }
}

//! Property test: the SIMD limb kernels are bit-identical to their scalar
//! oracles across ragged tilings and the full density sweep.
//!
//! Runs in two CI legs — `--features simd` (routed kernels take the AVX2
//! path on capable CPUs) and `--no-default-features` (routed == scalar by
//! construction) — so a divergence in either mode fails the same test.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spikemat::bitops::{gather_block, transpose64, transpose64_scalar};
use spikemat::{simd, SpikeMatrix};

/// Ragged shapes: limb counts from 1 up past the intersect dispatch
/// threshold (32 limbs), edges straddling limb boundaries.
const SHAPES: &[(usize, usize)] = &[
    (1, 1),
    (7, 63),
    (64, 64),
    (65, 64),
    (64, 65),
    (100, 129),
    (128, 256),
    (130, 257),
    (96, 1024),
    (33, 1000),
    (40, 2113),
    (16, 4096),
];

const DENSITIES: &[f64] = &[0.01, 0.1, 0.3, 0.5];

#[test]
fn simd_kernels_match_scalar_oracles() {
    let mut rng = StdRng::seed_from_u64(0xD15_BA7C);
    for &(rows, cols) in SHAPES {
        for &density in DENSITIES {
            let m = SpikeMatrix::random(rows, cols, density, &mut rng);
            check_popcount(&m, rows, cols, density);
            check_subset(&m, rows, cols, density);
            check_intersect_fold(&m, rows, cols, density);
            check_transpose(&m, rows, cols, density);
        }
    }
}

fn check_popcount(m: &SpikeMatrix, rows: usize, cols: usize, density: f64) {
    for row in m.row_slice() {
        let limbs = row.limbs();
        assert_eq!(
            simd::popcount(limbs),
            simd::popcount_scalar(limbs),
            "popcount diverged at {rows}x{cols} d={density}"
        );
    }
}

fn check_subset(m: &SpikeMatrix, rows: usize, cols: usize, density: f64) {
    // All row pairs is O(rows²); sample a stride to keep the sweep fast
    // while still crossing every limb-count class.
    let stride = (rows / 16).max(1);
    for i in (0..rows).step_by(stride) {
        for j in (0..rows).step_by(stride) {
            let a = m.row(i).limbs();
            let b = m.row(j).limbs();
            assert_eq!(
                simd::subset_all(a, b),
                simd::subset_all_scalar(a, b),
                "subset diverged at {rows}x{cols} d={density} pair ({i},{j})"
            );
        }
    }
}

fn check_intersect_fold(m: &SpikeMatrix, rows: usize, cols: usize, density: f64) {
    // Mimic the planner: fold each row's mask into an all-ones accumulator
    // limb-by-limb with the self bit excluded, checking state and fold
    // after every step.
    let words = m.row(0).limbs().len();
    for (i, row) in m.row_slice().iter().enumerate() {
        let (self_word, self_bit) = (i / 64, 1u64 << (i % 64));
        let mut acc_routed = vec![!0u64; words];
        let mut acc_scalar = vec![!0u64; words];
        let fold_r = simd::intersect_fold(&mut acc_routed, row.limbs(), self_word, self_bit);
        let fold_s = simd::intersect_fold_scalar(&mut acc_scalar, row.limbs(), self_word, self_bit);
        assert_eq!(
            fold_r, fold_s,
            "intersect fold diverged at {rows}x{cols} d={density} row {i}"
        );
        assert_eq!(
            acc_routed, acc_scalar,
            "intersect state diverged at {rows}x{cols} d={density} row {i}"
        );
    }
}

fn check_transpose(m: &SpikeMatrix, rows: usize, cols: usize, density: f64) {
    let row_blocks = rows.div_ceil(64);
    let col_blocks = cols.div_ceil(64);
    for rb in 0..row_blocks {
        for cb in 0..col_blocks {
            let mut block = [0u64; 64];
            gather_block(m.row_slice(), rb, cb, &mut block);
            let mut routed = block;
            let mut scalar = block;
            transpose64(&mut routed);
            transpose64_scalar(&mut scalar);
            assert_eq!(
                routed, scalar,
                "transpose diverged at {rows}x{cols} d={density} block ({rb},{cb})"
            );
        }
    }
}

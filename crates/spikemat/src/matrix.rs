//! The binary spike matrix.

use crate::bitrow::BitRow;
use crate::tile::{TileIter, TileShape};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An `M × K` binary spike matrix.
///
/// In an SNN layer, the activations across all `T` time steps are unrolled and
/// concatenated into a single binary matrix (paper Sec. II-A), so `M` is
/// typically `T × L` (transformers) or `T × OH × OW` (convolutions after
/// im2col) and `K` is the input feature dimension.
///
/// # Examples
///
/// ```
/// use spikemat::SpikeMatrix;
///
/// let m = SpikeMatrix::from_rows_of_bits(&[
///     &[1, 0, 1, 0],
///     &[1, 0, 0, 1],
/// ]);
/// assert_eq!((m.rows(), m.cols()), (2, 4));
/// assert_eq!(m.total_spikes(), 4);
/// assert!((m.density() - 0.5).abs() < 1e-9);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpikeMatrix {
    rows: Vec<BitRow>,
    cols: usize,
}

impl SpikeMatrix {
    /// Creates an all-zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows: vec![BitRow::zeros(cols); rows],
            cols,
        }
    }

    /// Builds a matrix from pre-constructed rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: Vec<BitRow>) -> Self {
        let cols = rows.first().map_or(0, BitRow::len);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
        }
        Self { rows, cols }
    }

    /// Builds a matrix from slices of 0/1 bytes, one per row.
    ///
    /// # Panics
    ///
    /// Panics if the slices have differing lengths.
    pub fn from_rows_of_bits(rows: &[&[u8]]) -> Self {
        Self::from_rows(rows.iter().map(|r| BitRow::from_bits(r)).collect())
    }

    /// Samples a matrix where each bit is 1 with probability `density`.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, density: f64, rng: &mut R) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                if rng.gen_bool(density.clamp(0.0, 1.0)) {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Number of rows `M`.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns `K`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the row at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &BitRow {
        &self.rows[i]
    }

    /// All rows in order.
    pub fn row_slice(&self) -> &[BitRow] {
        &self.rows
    }

    /// Reads bit `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i].get(j)
    }

    /// Writes bit `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        self.rows[i].set(j, value);
    }

    /// Total number of 1-bits in the matrix.
    pub fn total_spikes(&self) -> usize {
        self.rows.iter().map(BitRow::popcount).sum()
    }

    /// Fraction of 1-bits: the paper's *bit density* (1 − bit sparsity).
    ///
    /// Returns 0 for an empty matrix.
    pub fn density(&self) -> f64 {
        let cells = self.rows() * self.cols;
        if cells == 0 {
            0.0
        } else {
            self.total_spikes() as f64 / cells as f64
        }
    }

    /// Extracts the sub-matrix at `(row_start, col_start)` of shape
    /// `(n_rows, n_cols)`, zero-padding past the matrix edge.
    pub fn submatrix(
        &self,
        row_start: usize,
        col_start: usize,
        n_rows: usize,
        n_cols: usize,
    ) -> Self {
        let mut out = Self::zeros(0, n_cols);
        self.submatrix_into(row_start, col_start, n_rows, n_cols, &mut out);
        out
    }

    /// Extracts a zero-padded sub-matrix into `out`, reusing its row
    /// allocations when the column count matches.
    ///
    /// This is the zero-allocation tile-extraction path used by the planner:
    /// together with [`BitRow::slice_into`] a steady-state tile extraction
    /// performs no heap allocation at all.
    pub fn submatrix_into(
        &self,
        row_start: usize,
        col_start: usize,
        n_rows: usize,
        n_cols: usize,
        out: &mut Self,
    ) {
        if out.cols != n_cols {
            out.rows.clear();
            out.cols = n_cols;
        }
        out.rows.resize_with(n_rows, || BitRow::zeros(n_cols));
        for (r, dst) in out.rows.iter_mut().enumerate() {
            if row_start + r < self.rows.len() {
                self.rows[row_start + r].slice_into(col_start, dst);
            } else {
                dst.clear();
            }
        }
    }

    /// Iterates over `m × k` tiles in row-major tile order.
    ///
    /// Edge tiles are zero-padded to the full tile shape, matching the
    /// accelerator's fixed-geometry spike buffer and TCAM.
    pub fn tiles(&self, shape: TileShape) -> TileIter<'_> {
        TileIter::new(self, shape)
    }

    /// Resizes this matrix in place to an all-zero `rows × cols`, reusing the
    /// row allocations whenever the column count is unchanged.
    ///
    /// This is the buffer-recycling primitive behind the engine's spike-chain
    /// pooling: a matrix bounced between layers of matching width is cleared
    /// and refilled without touching the heap.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        if self.cols != cols {
            self.rows.clear();
            self.cols = cols;
        }
        self.rows.resize_with(rows, || BitRow::zeros(cols));
        for r in &mut self.rows {
            r.clear();
        }
    }

    /// Returns the transpose (`K × M`) of this matrix.
    ///
    /// Used to lower `Q·Kᵀ` spiking attention onto spiking GeMM. Runs one
    /// 64×64 block at a time through [`crate::bitops::transpose64`], so the
    /// cost is ~6·32 word operations per block instead of one get/set pair
    /// per bit.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows());
        self.transpose_into(&mut t);
        t
    }

    /// Word-parallel [`SpikeMatrix::transpose`] into a caller-owned matrix
    /// (resized in place, so a reused buffer makes transposition
    /// allocation-free).
    pub fn transpose_into(&self, t: &mut Self) {
        t.reset(self.cols, self.rows());
        let row_blocks = self.rows.len().div_ceil(64);
        let col_blocks = self.cols.div_ceil(64);
        let mut block = [0u64; 64];
        for rb in 0..row_blocks {
            for cb in 0..col_blocks {
                crate::bitops::gather_block(&self.rows, rb, cb, &mut block);
                crate::bitops::transpose64(&mut block);
                // Source bits above the valid region are zero (the BitRow
                // invariant), so the transposed block only carries bits that
                // land inside `t`'s valid region.
                for (c, &limb) in block.iter().enumerate() {
                    if limb == 0 {
                        continue;
                    }
                    let col = cb * 64 + c;
                    t.rows[col].limbs_mut()[rb] = limb;
                }
            }
        }
    }

    /// Vertically concatenates matrices (e.g. unrolling time steps).
    ///
    /// # Panics
    ///
    /// Panics if column counts differ or `parts` is empty.
    pub fn vconcat(parts: &[Self]) -> Self {
        assert!(!parts.is_empty(), "vconcat of zero matrices");
        let cols = parts[0].cols;
        let mut rows = Vec::with_capacity(parts.iter().map(Self::rows).sum());
        for p in parts {
            assert_eq!(p.cols, cols, "vconcat column mismatch");
            rows.extend(p.rows.iter().cloned());
        }
        Self { rows, cols }
    }
}

impl std::fmt::Debug for SpikeMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "SpikeMatrix {}x{} [", self.rows(), self.cols)?;
        for r in &self.rows {
            writeln!(f, "  {r:?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_matrix() -> SpikeMatrix {
        // Fig. 1 (b) / Fig. 2 (a) spike matrix.
        SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 1, 0, 1],
            &[1, 1, 0, 1],
        ])
    }

    #[test]
    fn shape_and_density() {
        let m = paper_matrix();
        assert_eq!(m.rows(), 6);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.total_spikes(), 14);
        assert!((m.density() - 14.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn zeros_density_is_zero() {
        assert_eq!(SpikeMatrix::zeros(3, 5).density(), 0.0);
        assert_eq!(SpikeMatrix::zeros(0, 0).density(), 0.0);
    }

    #[test]
    fn submatrix_extracts_and_pads() {
        let m = paper_matrix();
        let s = m.submatrix(4, 2, 3, 3);
        // rows 4,5 cols 2..5 (col 4 padded), row 6 padded.
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 3);
        assert_eq!(s.row(0), &BitRow::from_bits(&[0, 1, 0]));
        assert_eq!(s.row(1), &BitRow::from_bits(&[0, 1, 0]));
        assert!(s.row(2).is_zero());
    }

    #[test]
    fn submatrix_into_reuses_buffers() {
        let m = paper_matrix();
        let mut out = SpikeMatrix::zeros(0, 0);
        // First use resizes; second reuses rows of matching width.
        m.submatrix_into(4, 2, 3, 3, &mut out);
        assert_eq!(out, m.submatrix(4, 2, 3, 3));
        m.submatrix_into(0, 0, 3, 3, &mut out);
        assert_eq!(out, m.submatrix(0, 0, 3, 3));
        // Width change rebuilds rows correctly.
        m.submatrix_into(1, 1, 2, 4, &mut out);
        assert_eq!(out, m.submatrix(1, 1, 2, 4));
    }

    #[test]
    fn random_density_is_close_to_target() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = SpikeMatrix::random(200, 200, 0.2, &mut rng);
        assert!((m.density() - 0.2).abs() < 0.02, "got {}", m.density());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = paper_matrix();
        let t = m.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 6);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn transpose_matches_naive_across_ragged_shapes() {
        // The word-parallel block transpose must agree with the bit-at-a-time
        // reference on every limb-boundary alignment, including empty edges.
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let dims = [0usize, 1, 3, 63, 64, 65, 100, 127, 128, 130];
        for &m in &dims {
            for &k in &dims {
                let s = SpikeMatrix::random(m, k, 0.35, &mut rng);
                let t = s.transpose();
                assert_eq!((t.rows(), t.cols()), (k, m), "{m}x{k}");
                let mut naive = SpikeMatrix::zeros(k, m);
                for i in 0..m {
                    for j in s.row(i).ones() {
                        naive.set(j, i, true);
                    }
                }
                assert_eq!(t, naive, "{m}x{k}");
                assert_eq!(t.transpose(), s, "{m}x{k} roundtrip");
            }
        }
    }

    #[test]
    fn transpose_into_reuses_buffer() {
        let m = paper_matrix();
        let mut t = SpikeMatrix::zeros(9, 9); // stale shape and contents
        t.set(0, 0, true);
        m.transpose_into(&mut t);
        assert_eq!(t, m.transpose());
        // Matching width: reset clears rows in place, result stays correct.
        m.transpose_into(&mut t);
        assert_eq!(t, m.transpose());
    }

    #[test]
    fn reset_clears_and_reshapes() {
        let mut m = paper_matrix();
        m.reset(3, 4);
        assert_eq!((m.rows(), m.cols()), (3, 4));
        assert_eq!(m.total_spikes(), 0);
        m.reset(2, 7);
        assert_eq!((m.rows(), m.cols()), (2, 7));
        assert_eq!(m.total_spikes(), 0);
    }

    #[test]
    fn vconcat_stacks_time_steps() {
        let a = paper_matrix();
        let b = paper_matrix();
        let c = SpikeMatrix::vconcat(&[a.clone(), b]);
        assert_eq!(c.rows(), 12);
        assert_eq!(c.row(6), a.row(0));
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn vconcat_rejects_mismatched_cols() {
        let a = SpikeMatrix::zeros(1, 3);
        let b = SpikeMatrix::zeros(1, 4);
        let _ = SpikeMatrix::vconcat(&[a, b]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_rejects_ragged() {
        let _ = SpikeMatrix::from_rows(vec![BitRow::zeros(3), BitRow::zeros(4)]);
    }
}

//! Word-parallel bit-matrix kernels shared by the planner and substrates.

use crate::bitrow::BitRow;

/// Gathers the 64×64 bit block at `(row_block, col_block)` of `rows` into
/// `block`, zero-padding past the matrix edge — the row-major input layout
/// [`transpose64`] expects. Shared by the matrix transpose and the planner's
/// column-mask builder so block-edge semantics stay in one place.
pub fn gather_block(rows: &[BitRow], row_block: usize, col_block: usize, block: &mut [u64; 64]) {
    for (r, limb) in block.iter_mut().enumerate() {
        let row = row_block * 64 + r;
        *limb = if row < rows.len() {
            rows[row].limbs().get(col_block).copied().unwrap_or(0)
        } else {
            0
        };
    }
}

/// Transposes a 64×64 bit matrix in place.
///
/// `a[r]` holds row `r`, LSB-first (bit `c` ⇔ column `c`); on return
/// `a[c]` holds the original column `c` (bit `r` ⇔ original row `r`).
///
/// Dispatches to the AVX2 swap network when the `simd` feature is
/// compiled in and the CPU supports it ([`crate::simd::active`]);
/// otherwise — and as the property-tested oracle either way — runs
/// [`transpose64_scalar`]. Both produce identical bits.
#[inline]
pub fn transpose64(a: &mut [u64; 64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::active() {
        // SAFETY: `active()` verified AVX2 support on this CPU.
        unsafe { crate::simd::avx2::transpose64(a) };
        return;
    }
    transpose64_scalar(a)
}

/// Portable scalar transpose — the reference semantics of [`transpose64`].
///
/// Classic block-swap network (Hacker's Delight §7-3): log₂64 rounds of
/// exchanging off-diagonal sub-blocks, so the whole transpose costs
/// ~6 × 32 word operations instead of 64 × 64 single-bit moves.
pub fn transpose64_scalar(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & mask;
            a[k] ^= t << j;
            a[k + j] ^= t;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_transpose(a: &[u64; 64]) -> [u64; 64] {
        let mut out = [0u64; 64];
        for (r, &row) in a.iter().enumerate() {
            for (c, dst) in out.iter_mut().enumerate() {
                if (row >> c) & 1 == 1 {
                    *dst |= 1u64 << r;
                }
            }
        }
        out
    }

    #[test]
    fn transpose_matches_naive_on_patterns() {
        // A mix of structured and pseudo-random patterns.
        let mut cases: Vec<[u64; 64]> = vec![[0u64; 64], [u64::MAX; 64]];
        let mut diag = [0u64; 64];
        let mut rows = [0u64; 64];
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut random = [0u64; 64];
        for i in 0..64 {
            diag[i] = 1u64 << i;
            rows[i] = if i % 3 == 0 { u64::MAX } else { 0 };
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            random[i] = state ^ (state >> 31);
        }
        cases.push(diag);
        cases.push(rows);
        cases.push(random);
        for case in cases {
            let mut got = case;
            transpose64(&mut got);
            assert_eq!(got, naive_transpose(&case));
            let mut scalar = case;
            transpose64_scalar(&mut scalar);
            assert_eq!(got, scalar, "routed and scalar paths must agree");
        }
    }

    #[test]
    fn transpose_is_involution() {
        let mut a = [0u64; 64];
        let mut state = 42u64;
        for limb in a.iter_mut() {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            *limb = state;
        }
        let original = a;
        transpose64(&mut a);
        transpose64(&mut a);
        assert_eq!(a, original);
    }
}

//! Bit-packed binary spike matrices and reference spiking-GeMM kernels.
//!
//! This crate is the data-plane substrate of the Prosperity reproduction.
//! Spiking neural networks propagate *binary* spike events; the dominant
//! operation (>98 % of all ops, per the paper) is *spiking GeMM*: a binary
//! `M × K` spike matrix multiplied by a real-valued `K × N` weight matrix.
//! Because operands are bits, the inner product degenerates to a sparse
//! accumulation of the weight rows selected by the 1-bits of each spike row.
//!
//! Provided here:
//!
//! * [`BitRow`] — a bit-packed spike row with O(words) popcount / subset /
//!   XOR operations. `BitRow::is_subset_of` is the software semantic model of
//!   the paper's single-cycle TCAM subset search.
//! * [`SpikeMatrix`] — an `M × K` matrix of [`BitRow`]s with tiling support
//!   ([`SpikeMatrix::tiles`]) matching the accelerator's `m × k` spike tiles.
//! * [`gemm`] — dense, bit-sparse, and operation-counting reference kernels
//!   used as ground truth by every other crate.
//! * [`im2col`] — lowering of spiking convolution onto spiking GeMM.
//! * [`simd`] — runtime-dispatched AVX2 limb kernels (popcount, subset,
//!   superset-intersect, transpose rounds) behind the `simd` cargo
//!   feature, with the portable scalar code kept as the property-tested
//!   oracle.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitops;
mod bitrow;
mod error;
pub mod gemm;
pub mod im2col;
mod matrix;
pub mod simd;
mod tile;

pub use bitrow::BitRow;
pub use error::ShapeError;
pub use matrix::SpikeMatrix;
pub use tile::{Tile, TileIter, TileShape};

/// Number of bits per storage limb of a [`BitRow`].
pub const LIMB_BITS: usize = 64;

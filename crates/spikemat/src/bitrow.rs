//! Bit-packed spike rows.

use crate::LIMB_BITS;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bit-packed binary spike row of fixed length.
///
/// A `BitRow` models one row of the binary spike matrix: bit `j` is 1 iff the
/// neuron at column `j` fired. In the paper's set notation a row `i` is the
/// spike set `S_i = { j | M[i, j] = 1 }`; subset and equality tests on
/// `BitRow`s are exactly the set relations used to define Partial Match and
/// Exact Match product sparsity.
///
/// Bits are stored LSB-first in `u64` limbs, so all set operations run in
/// O(len / 64) words.
///
/// # Invariant
///
/// Bits of the last limb above `len` are always zero. Every constructor and
/// mutator preserves this, and the word-level kernels (`slice_into`,
/// `subset_query`, equality, popcount) rely on it.
///
/// # Examples
///
/// ```
/// use spikemat::BitRow;
///
/// let prefix = BitRow::from_bits(&[1, 0, 0, 1]);
/// let row = BitRow::from_bits(&[1, 1, 0, 1]);
/// assert!(prefix.is_subset_of(&row));
/// let pattern = row.xor(&prefix); // bits still to accumulate
/// assert_eq!(pattern.ones().collect::<Vec<_>>(), vec![1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitRow {
    limbs: Vec<u64>,
    len: usize,
}

impl BitRow {
    /// Creates an all-zero row of `len` bits.
    pub fn zeros(len: usize) -> Self {
        let words = len.div_ceil(LIMB_BITS);
        Self {
            limbs: vec![0; words],
            len,
        }
    }

    /// Creates a row from a slice of 0/1 values.
    ///
    /// Any nonzero byte is treated as a spike.
    pub fn from_bits(bits: &[u8]) -> Self {
        let mut row = Self::zeros(bits.len());
        for (j, &b) in bits.iter().enumerate() {
            if b != 0 {
                row.set(j, true);
            }
        }
        row
    }

    /// Creates a row of `len` bits with spikes at the given column indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_ones(len: usize, ones: &[usize]) -> Self {
        let mut row = Self::zeros(len);
        for &j in ones {
            assert!(j < len, "spike index {j} out of range for row of len {len}");
            row.set(j, true);
        }
        row
    }

    /// Number of bit positions in the row.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the row has zero bit positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len()`.
    pub fn get(&self, j: usize) -> bool {
        assert!(j < self.len, "bit index {j} out of range ({})", self.len);
        (self.limbs[j / LIMB_BITS] >> (j % LIMB_BITS)) & 1 == 1
    }

    /// Sets the bit at column `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len()`.
    pub fn set(&mut self, j: usize, value: bool) {
        assert!(j < self.len, "bit index {j} out of range ({})", self.len);
        let mask = 1u64 << (j % LIMB_BITS);
        if value {
            self.limbs[j / LIMB_BITS] |= mask;
        } else {
            self.limbs[j / LIMB_BITS] &= !mask;
        }
    }

    /// Clears every bit, keeping the row length and allocation.
    pub fn clear(&mut self) {
        self.limbs.fill(0);
    }

    /// Number of spikes in the row (the paper's "Number of Ones", NO).
    ///
    /// This is the popcount computed by the Detector's popcount units and
    /// used as the sort key for temporal-information generation.
    pub fn popcount(&self) -> usize {
        crate::simd::popcount(&self.limbs) as usize
    }

    /// Returns `true` if the row contains no spikes.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Set-inclusion test: `true` iff every spike of `self` is also in `other`.
    ///
    /// This is the semantic model of the TCAM search in the Detector: querying
    /// the TCAM with `other` (1-bits masked to "don't care") returns exactly
    /// the stored entries `e` with `e.is_subset_of(other)`.
    ///
    /// Note that equality counts as inclusion (an Exact Match), and the empty
    /// row is a subset of every row.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        self.check_len(other);
        crate::simd::subset_all(&self.limbs, &other.limbs)
    }

    /// Returns `true` if the rows are a *proper* subset pair (Partial Match).
    pub fn is_proper_subset_of(&self, other: &Self) -> bool {
        self.is_subset_of(other) && self != other
    }

    /// Subset test against a raw limb view: `true` iff every spike of `self`
    /// is present in `query` (the Detector's TCAM semantics).
    ///
    /// This is the borrowed fast path of [`BitRow::is_subset_of`] for callers
    /// that already hold [`BitRow::limbs`] of the query row; it skips the
    /// length bookkeeping entirely and compares word by word.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the limb counts differ.
    #[inline]
    pub fn subset_query(&self, query: &[u64]) -> bool {
        debug_assert_eq!(self.limbs.len(), query.len(), "limb count mismatch");
        crate::simd::subset_all(&self.limbs, query)
    }

    /// Bitwise XOR, producing the ProSparsity pattern `S_q − S_p` when
    /// `self` is the query row and `prefix ⊆ self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor(&self, other: &Self) -> Self {
        self.check_len(other);
        Self {
            limbs: self
                .limbs
                .iter()
                .zip(&other.limbs)
                .map(|(&a, &b)| a ^ b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise AND (set intersection).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and(&self, other: &Self) -> Self {
        self.check_len(other);
        Self {
            limbs: self
                .limbs
                .iter()
                .zip(&other.limbs)
                .map(|(&a, &b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise OR (set union).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn or(&self, other: &Self) -> Self {
        self.check_len(other);
        Self {
            limbs: self
                .limbs
                .iter()
                .zip(&other.limbs)
                .map(|(&a, &b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// In-place bitwise XOR: `self ^= other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &Self) {
        self.check_len(other);
        for (a, &b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a ^= b;
        }
    }

    /// In-place bitwise AND: `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_assign(&mut self, other: &Self) {
        self.check_len(other);
        for (a, &b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a &= b;
        }
    }

    /// In-place bitwise OR: `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn or_assign(&mut self, other: &Self) {
        self.check_len(other);
        for (a, &b) in self.limbs.iter_mut().zip(&other.limbs) {
            *a |= b;
        }
    }

    /// Iterates over the column indices of 1-bits in ascending order.
    ///
    /// The ascending order matches the Processor's address decoder, which
    /// repeatedly applies bit-scan-forward and clears the found bit.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            row: self,
            word: 0,
            bits: self.limbs.first().copied().unwrap_or(0),
        }
    }

    /// Extracts the sub-row covering columns `[start, start + len)`.
    ///
    /// Columns past the end of the row read as 0, so a tile on the ragged
    /// right edge of a matrix is implicitly zero-padded.
    pub fn slice(&self, start: usize, len: usize) -> Self {
        let mut out = Self::zeros(len);
        self.slice_into(start, &mut out);
        out
    }

    /// Overwrites `out` with columns `[start, start + out.len())` of `self`,
    /// zero-padding past the end of the row.
    ///
    /// This is the word-shift kernel behind [`BitRow::slice`]: each output
    /// limb is assembled from at most two source limbs, so extraction costs
    /// O(out.len / 64) instead of one get/set pair per bit. `out` keeps its
    /// length and allocation, making it the zero-allocation path for tile
    /// extraction.
    pub fn slice_into(&self, start: usize, out: &mut BitRow) {
        let n_words = out.limbs.len();
        let word0 = start / LIMB_BITS;
        let shift = start % LIMB_BITS;
        for (w, dst) in out.limbs.iter_mut().enumerate() {
            let lo = self.limbs.get(word0 + w).copied().unwrap_or(0) >> shift;
            let hi = if shift == 0 {
                0
            } else {
                self.limbs.get(word0 + w + 1).copied().unwrap_or(0) << (LIMB_BITS - shift)
            };
            *dst = lo | hi;
        }
        let tail = out.len % LIMB_BITS;
        if tail != 0 && n_words > 0 {
            out.limbs[n_words - 1] &= (1u64 << tail) - 1;
        }
    }

    /// Raw limb view (LSB-first), for hashing and fast comparisons.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Mutable raw limb view for word-level writers inside this crate.
    ///
    /// Callers must uphold the invariant that bits of the last limb above
    /// `len` stay zero.
    pub(crate) fn limbs_mut(&mut self) -> &mut [u64] {
        &mut self.limbs
    }

    fn check_len(&self, other: &Self) {
        assert_eq!(
            self.len, other.len,
            "bit-row length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

impl fmt::Debug for BitRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitRow(\"")?;
        for j in 0..self.len {
            write!(f, "{}", u8::from(self.get(j)))?;
        }
        write!(f, "\")")
    }
}

/// Iterator over the 1-bit column indices of a [`BitRow`].
///
/// Created by [`BitRow::ones`].
#[derive(Debug)]
pub struct Ones<'a> {
    row: &'a BitRow,
    word: usize,
    bits: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1; // clear lowest set bit
                return Some(self.word * LIMB_BITS + tz);
            }
            self.word += 1;
            if self.word >= self.row.limbs.len() {
                return None;
            }
            self.bits = self.row.limbs[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_spikes() {
        let r = BitRow::zeros(100);
        assert_eq!(r.len(), 100);
        assert_eq!(r.popcount(), 0);
        assert!(r.is_zero());
        assert!(!r.is_empty());
    }

    #[test]
    fn set_get_roundtrip_across_limb_boundary() {
        let mut r = BitRow::zeros(130);
        for j in [0, 1, 63, 64, 65, 127, 128, 129] {
            r.set(j, true);
            assert!(r.get(j), "bit {j} should be set");
        }
        assert_eq!(r.popcount(), 8);
        r.set(64, false);
        assert!(!r.get(64));
        assert_eq!(r.popcount(), 7);
    }

    #[test]
    fn from_bits_matches_manual_set() {
        let r = BitRow::from_bits(&[1, 0, 1, 1]);
        assert_eq!(r, BitRow::from_ones(4, &[0, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_ones_rejects_out_of_range() {
        let _ = BitRow::from_ones(4, &[4]);
    }

    #[test]
    fn subset_relations_match_paper_example() {
        // Fig. 2: Row 1 = 1001 is a proper subset of Row 4 = 1101.
        let row1 = BitRow::from_bits(&[1, 0, 0, 1]);
        let row4 = BitRow::from_bits(&[1, 1, 0, 1]);
        let row5 = row4.clone();
        assert!(row1.is_subset_of(&row4));
        assert!(row1.is_proper_subset_of(&row4));
        assert!(row4.is_subset_of(&row5)); // exact match
        assert!(!row4.is_proper_subset_of(&row5));
        assert!(!row4.is_subset_of(&row1));
    }

    #[test]
    fn empty_set_is_subset_of_everything() {
        let zero = BitRow::zeros(8);
        let any = BitRow::from_bits(&[0, 1, 0, 1, 1, 0, 0, 0]);
        assert!(zero.is_subset_of(&any));
        assert!(zero.is_subset_of(&zero));
    }

    #[test]
    fn xor_yields_prosparsity_pattern() {
        // Paper Sec. V-C: 1011 XOR 1001 = 0010.
        let query = BitRow::from_bits(&[1, 0, 1, 1]);
        let prefix = BitRow::from_bits(&[1, 0, 0, 1]);
        assert_eq!(query.xor(&prefix), BitRow::from_bits(&[0, 0, 1, 0]));
    }

    #[test]
    fn ones_iterates_ascending() {
        let r = BitRow::from_ones(200, &[5, 63, 64, 150, 199]);
        assert_eq!(r.ones().collect::<Vec<_>>(), vec![5, 63, 64, 150, 199]);
    }

    #[test]
    fn ones_on_zero_row_is_empty() {
        assert_eq!(BitRow::zeros(77).ones().count(), 0);
    }

    #[test]
    fn slice_zero_pads_past_end() {
        let r = BitRow::from_ones(10, &[8, 9]);
        let s = r.slice(8, 4);
        assert_eq!(s, BitRow::from_bits(&[1, 1, 0, 0]));
    }

    #[test]
    fn slice_matches_bitwise_reference_across_offsets() {
        // Word-shift slicing must agree with a bit-by-bit reference for every
        // (start, len) alignment around limb boundaries.
        let src = BitRow::from_ones(200, &[0, 1, 5, 63, 64, 65, 127, 128, 150, 198, 199]);
        for start in [0, 1, 7, 63, 64, 65, 100, 128, 190, 199, 200, 260] {
            for len in [0, 1, 3, 63, 64, 65, 130, 200] {
                let got = src.slice(start, len);
                let mut expect = BitRow::zeros(len);
                for j in 0..len {
                    if start + j < src.len() && src.get(start + j) {
                        expect.set(j, true);
                    }
                }
                assert_eq!(got, expect, "start={start} len={len}");
            }
        }
    }

    #[test]
    fn slice_into_reuses_and_masks_tail() {
        let src = BitRow::from_ones(100, &[64, 65, 66, 99]);
        let mut out = BitRow::from_ones(5, &[0, 1, 2, 3, 4]); // stale bits
        src.slice_into(64, &mut out);
        assert_eq!(out, BitRow::from_bits(&[1, 1, 1, 0, 0]));
        // The tail bits above len must stay zero so popcount/eq stay honest.
        assert_eq!(out.popcount(), 3);
    }

    #[test]
    fn subset_query_matches_is_subset_of() {
        let a = BitRow::from_ones(130, &[0, 64, 129]);
        let b = BitRow::from_ones(130, &[0, 1, 64, 100, 129]);
        assert!(a.subset_query(b.limbs()));
        assert!(!b.subset_query(a.limbs()));
        assert!(a.subset_query(a.limbs()));
    }

    #[test]
    fn assign_ops_match_pure_ops() {
        let a = BitRow::from_ones(150, &[0, 5, 64, 100, 149]);
        let b = BitRow::from_ones(150, &[5, 64, 65, 149]);
        let mut x = a.clone();
        x.xor_assign(&b);
        assert_eq!(x, a.xor(&b));
        let mut y = a.clone();
        y.and_assign(&b);
        assert_eq!(y, a.and(&b));
        let mut z = a.clone();
        z.or_assign(&b);
        assert_eq!(z, a.or(&b));
    }

    #[test]
    fn clear_zeroes_in_place() {
        let mut r = BitRow::from_ones(90, &[0, 50, 89]);
        r.clear();
        assert!(r.is_zero());
        assert_eq!(r.len(), 90);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assign_length_mismatch_panics() {
        let mut a = BitRow::zeros(4);
        let b = BitRow::zeros(5);
        a.xor_assign(&b);
    }

    #[test]
    fn and_or_behave_as_set_ops() {
        let a = BitRow::from_bits(&[1, 1, 0, 0]);
        let b = BitRow::from_bits(&[0, 1, 1, 0]);
        assert_eq!(a.and(&b), BitRow::from_bits(&[0, 1, 0, 0]));
        assert_eq!(a.or(&b), BitRow::from_bits(&[1, 1, 1, 0]));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let a = BitRow::zeros(4);
        let b = BitRow::zeros(5);
        let _ = a.is_subset_of(&b);
    }

    #[test]
    fn debug_renders_bits() {
        let r = BitRow::from_bits(&[1, 0, 1]);
        assert_eq!(format!("{r:?}"), "BitRow(\"101\")");
    }
}

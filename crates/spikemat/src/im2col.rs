//! Lowering spiking convolution onto spiking GeMM via im2col.
//!
//! The paper (Sec. II-B) lowers spiking CNN layers to spiking GeMM by the
//! classical im2col transform: every output pixel becomes one row of the
//! spike matrix, and every (input-channel, kernel-offset) pair becomes one
//! column. With `T` time steps unrolled, the spike matrix has
//! `M = T × OH × OW` rows and `K = C_in × KH × KW` columns.

use crate::gemm::{spiking_gemm, OutputMatrix, WeightMatrix};
use crate::matrix::SpikeMatrix;
use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Geometry of a 2-D spiking convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Conv2dParams {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Input feature-map height.
    pub in_h: usize,
    /// Input feature-map width.
    pub in_w: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dParams {
    /// Convenience constructor for a square kernel/input.
    pub fn square(
        in_channels: usize,
        out_channels: usize,
        in_size: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            in_channels,
            out_channels,
            in_h: in_size,
            in_w: in_size,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel_h) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel_w) / self.stride + 1
    }

    /// Shape `(M, K, N)` of the lowered spiking GeMM for `time_steps` unrolled
    /// time steps: `M = T·OH·OW`, `K = C_in·KH·KW`, `N = C_out`.
    pub fn gemm_shape(&self, time_steps: usize) -> (usize, usize, usize) {
        (
            time_steps * self.out_h() * self.out_w(),
            self.in_channels * self.kernel_h * self.kernel_w,
            self.out_channels,
        )
    }
}

/// A binary (spiking) feature map of shape `C × H × W` for one time step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpikeFeatureMap {
    /// Channels.
    pub channels: usize,
    /// Height.
    pub height: usize,
    /// Width.
    pub width: usize,
    data: Vec<bool>,
}

impl SpikeFeatureMap {
    /// Creates an all-zero feature map.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
            data: vec![false; channels * height * width],
        }
    }

    /// Reads the spike at `(c, y, x)`.
    pub fn get(&self, c: usize, y: usize, x: usize) -> bool {
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Writes the spike at `(c, y, x)`.
    pub fn set(&mut self, c: usize, y: usize, x: usize, value: bool) {
        self.data[(c * self.height + y) * self.width + x] = value;
    }
}

/// Lowers one time step of a spiking feature map to an im2col spike matrix.
///
/// Row `oy * OW + ox` holds the receptive field of output pixel `(oy, ox)`;
/// column `(c * KH + ky) * KW + kx` holds input `(c, oy·s − p + ky, ox·s − p + kx)`
/// (zero outside the padded input).
///
/// # Panics
///
/// Panics if the feature-map shape disagrees with `params`.
pub fn im2col(input: &SpikeFeatureMap, params: &Conv2dParams) -> SpikeMatrix {
    assert_eq!(input.channels, params.in_channels, "channel mismatch");
    assert_eq!(input.height, params.in_h, "height mismatch");
    assert_eq!(input.width, params.in_w, "width mismatch");
    let (oh, ow) = (params.out_h(), params.out_w());
    let k = params.in_channels * params.kernel_h * params.kernel_w;
    let mut m = SpikeMatrix::zeros(oh * ow, k);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            for c in 0..params.in_channels {
                for ky in 0..params.kernel_h {
                    for kx in 0..params.kernel_w {
                        let iy = (oy * params.stride + ky) as isize - params.padding as isize;
                        let ix = (ox * params.stride + kx) as isize - params.padding as isize;
                        if iy >= 0
                            && ix >= 0
                            && (iy as usize) < params.in_h
                            && (ix as usize) < params.in_w
                            && input.get(c, iy as usize, ix as usize)
                        {
                            let col = (c * params.kernel_h + ky) * params.kernel_w + kx;
                            m.set(row, col, true);
                        }
                    }
                }
            }
        }
    }
    m
}

/// Direct (nested-loop) spiking convolution, used as ground truth for im2col.
///
/// Returns an `OH·OW × C_out` output where row `oy·OW + ox` is the output
/// pixel `(oy, ox)` across output channels. Weight layout matches the im2col
/// GeMM: `weights.row((c·KH + ky)·KW + kx)[co]`.
pub fn direct_conv2d<T: Copy + Default + AddAssign>(
    input: &SpikeFeatureMap,
    weights: &WeightMatrix<T>,
    params: &Conv2dParams,
) -> OutputMatrix<T> {
    let lowered = im2col(input, params);
    // The *definition* of direct convolution, re-derived without the GeMM:
    let (oh, ow) = (params.out_h(), params.out_w());
    let mut out = OutputMatrix::zeros(oh * ow, params.out_channels);
    for oy in 0..oh {
        for ox in 0..ow {
            for c in 0..params.in_channels {
                for ky in 0..params.kernel_h {
                    for kx in 0..params.kernel_w {
                        let iy = (oy * params.stride + ky) as isize - params.padding as isize;
                        let ix = (ox * params.stride + kx) as isize - params.padding as isize;
                        if iy >= 0
                            && ix >= 0
                            && (iy as usize) < params.in_h
                            && (ix as usize) < params.in_w
                            && input.get(c, iy as usize, ix as usize)
                        {
                            let kr = (c * params.kernel_h + ky) * params.kernel_w + kx;
                            out.accumulate_row(oy * ow + ox, weights.row(kr));
                        }
                    }
                }
            }
        }
    }
    debug_assert_eq!(lowered.rows(), out.rows());
    out
}

/// Checks that `im2col` followed by [`spiking_gemm`] equals [`direct_conv2d`].
///
/// Exposed so integration/property tests across crates can reuse it.
pub fn im2col_equals_direct<T: Copy + Default + AddAssign + PartialEq + std::fmt::Debug>(
    input: &SpikeFeatureMap,
    weights: &WeightMatrix<T>,
    params: &Conv2dParams,
) -> bool {
    let lowered = im2col(input, params);
    let via_gemm = spiking_gemm(&lowered, weights);
    let direct = direct_conv2d(input, weights, params);
    via_gemm == direct
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims() {
        let p = Conv2dParams::square(3, 8, 32, 3, 1, 1);
        assert_eq!((p.out_h(), p.out_w()), (32, 32));
        let p2 = Conv2dParams::square(3, 8, 32, 3, 2, 1);
        assert_eq!((p2.out_h(), p2.out_w()), (16, 16));
        let p3 = Conv2dParams::square(1, 1, 5, 3, 1, 0);
        assert_eq!((p3.out_h(), p3.out_w()), (3, 3));
    }

    #[test]
    fn gemm_shape_unrolls_time() {
        let p = Conv2dParams::square(64, 128, 16, 3, 1, 1);
        let (m, k, n) = p.gemm_shape(4);
        assert_eq!(m, 4 * 16 * 16);
        assert_eq!(k, 64 * 9);
        assert_eq!(n, 128);
    }

    fn checkerboard(c: usize, h: usize, w: usize) -> SpikeFeatureMap {
        let mut f = SpikeFeatureMap::zeros(c, h, w);
        for ci in 0..c {
            for y in 0..h {
                for x in 0..w {
                    f.set(ci, y, x, (ci + y + x) % 2 == 0);
                }
            }
        }
        f
    }

    #[test]
    fn im2col_matches_direct_conv_no_padding() {
        let p = Conv2dParams::square(2, 3, 6, 3, 1, 0);
        let input = checkerboard(2, 6, 6);
        let w = WeightMatrix::from_fn(2 * 9, 3, |r, c| (r as i64 + 1) * (c as i64 + 1));
        assert!(im2col_equals_direct(&input, &w, &p));
    }

    #[test]
    fn im2col_matches_direct_conv_with_padding_and_stride() {
        let p = Conv2dParams::square(3, 4, 7, 3, 2, 1);
        let input = checkerboard(3, 7, 7);
        let w = WeightMatrix::from_fn(3 * 9, 4, |r, c| r as i64 * 7 - c as i64 * 3);
        assert!(im2col_equals_direct(&input, &w, &p));
    }

    #[test]
    fn im2col_identity_kernel_1x1() {
        // 1x1 conv: im2col matrix is the input flattened per pixel.
        let p = Conv2dParams::square(2, 2, 4, 1, 1, 0);
        let input = checkerboard(2, 4, 4);
        let m = im2col(&input, &p);
        assert_eq!(m.rows(), 16);
        assert_eq!(m.cols(), 2);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(m.get(y * 4 + x, 0), input.get(0, y, x));
                assert_eq!(m.get(y * 4 + x, 1), input.get(1, y, x));
            }
        }
    }

    #[test]
    fn padding_region_reads_zero() {
        let p = Conv2dParams::square(1, 1, 2, 3, 1, 1);
        let mut input = SpikeFeatureMap::zeros(1, 2, 2);
        input.set(0, 0, 0, true);
        let m = im2col(&input, &p);
        // Output pixel (0,0) kernel covers rows -1..2, cols -1..2; only the
        // center (ky=1,kx=1) hits input (0,0).
        assert!(m.get(0, 4));
        assert_eq!(m.row(0).popcount(), 1);
    }
}

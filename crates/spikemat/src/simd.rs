//! Runtime-dispatched SIMD limb kernels with portable scalar oracles.
//!
//! The planner and executor hot loops are word-parallel but *scalar-limb*:
//! each `u64` of a bit row is combined one at a time. On x86-64 with AVX2
//! the same loops run four limbs per instruction. This module holds the
//! limb-level kernels those loops funnel through:
//!
//! * [`popcount`] — spike counting (the Detector's popcount units);
//! * [`subset_all`] — the TCAM subset test `a ⊆ b` ⇔ `a & !b == 0`;
//! * [`intersect_fold`] — one superset-mask intersection step of the fused
//!   Detector/Pruner, returning the "any other row still qualifies" fold
//!   that drives its early exit;
//! * [`crate::bitops::transpose64`] — the 64×64 block bit-transpose
//!   (vector rounds live here, dispatch lives in `bitops`).
//!
//! # Dispatch & oracle contract
//!
//! Every kernel has a `_scalar` twin that is **the** reference semantics:
//! the SIMD path must be bit-identical for all inputs (property-tested in
//! `tests/simd.rs` across ragged lengths and densities). Dispatch is
//! decided at runtime by [`active`] — compiled in only under the `simd`
//! cargo feature on `x86_64`, and taken only when the CPU reports AVX2
//! (`is_x86_feature_detected!`, cached by `std`). Everywhere else the
//! scalar code *is* the kernel, so non-x86 targets and `--no-default-
//! features` builds lose nothing but the speedup.
//!
//! The vendored-shim constraint rules out external SIMD crates, so the
//! vector paths are hand-written `core::arch` intrinsics behind
//! `#[target_feature(enable = "avx2")]`.

/// Whether the SIMD fast paths are compiled in *and* this CPU supports
/// them (AVX2). Always `false` without the `simd` feature or off x86-64.
///
/// The detection result is cached by `std`, so calling this in a hot loop
/// costs one relaxed atomic load.
#[inline]
pub fn active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        false
    }
}

/// Limb count below which dispatch always stays scalar: one AVX2 vector
/// covers 4 limbs, so shorter slices have no vector body to run.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const MIN_SIMD_LIMBS: usize = 4;

/// Dispatch threshold specific to [`intersect_fold`]. Its vector body is
/// short-lived (a few AND/OR per chunk) and `#[target_feature]` functions
/// cannot inline into non-AVX2 callers, so the call overhead only
/// amortizes on longer masks — measured crossover is ~32 limbs (2048-row
/// tiles); below that the scalar loop wins and routing keeps it.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
const MIN_INTERSECT_LIMBS: usize = 32;

/// Total popcount of a limb slice (the paper's "Number of Ones").
#[inline]
pub fn popcount(limbs: &[u64]) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if limbs.len() >= MIN_SIMD_LIMBS && active() {
        // SAFETY: `active()` verified AVX2 support on this CPU.
        return unsafe { avx2::popcount(limbs) };
    }
    popcount_scalar(limbs)
}

/// Scalar oracle of [`popcount`].
#[inline]
pub fn popcount_scalar(limbs: &[u64]) -> u64 {
    limbs.iter().map(|l| u64::from(l.count_ones())).sum()
}

/// Set-inclusion over raw limbs: `true` iff every 1-bit of `sub` is also
/// set in `sup` (`sub & !sup == 0` word-wise). The Detector's TCAM subset
/// search semantics.
///
/// Compares `min(sub.len(), sup.len())` words; callers keep lengths equal
/// (debug-asserted).
#[inline]
pub fn subset_all(sub: &[u64], sup: &[u64]) -> bool {
    debug_assert_eq!(sub.len(), sup.len(), "limb count mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if sub.len() >= MIN_SIMD_LIMBS && active() {
        // SAFETY: `active()` verified AVX2 support on this CPU.
        return unsafe { avx2::subset_all(sub, sup) };
    }
    subset_all_scalar(sub, sup)
}

/// Scalar oracle of [`subset_all`].
#[inline]
pub fn subset_all_scalar(sub: &[u64], sup: &[u64]) -> bool {
    sub.iter().zip(sup).all(|(&a, &b)| a & !b == 0)
}

/// One column step of the fused Detector/Pruner superset intersection:
/// `acc &= mask` word-wise, returning the OR-fold of the surviving bits
/// with the candidate's own bit (`acc[self_word] & self_bit`) excluded.
///
/// A return of 0 means no row *other than the candidate itself* still
/// qualifies as a superset — the planner's early exit. `self_word` may be
/// `>= acc.len()` (no self bit in range), in which case the fold covers
/// every surviving bit.
///
/// Folds `min(acc.len(), mask.len())` words; callers keep lengths equal
/// (debug-asserted).
#[inline]
pub fn intersect_fold(acc: &mut [u64], mask: &[u64], self_word: usize, self_bit: u64) -> u64 {
    debug_assert_eq!(acc.len(), mask.len(), "limb count mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if acc.len() >= MIN_INTERSECT_LIMBS && active() {
        // SAFETY: `active()` verified AVX2 support on this CPU.
        return unsafe { avx2::intersect_fold(acc, mask, self_word, self_bit) };
    }
    intersect_fold_scalar(acc, mask, self_word, self_bit)
}

/// Scalar oracle of [`intersect_fold`].
#[inline]
pub fn intersect_fold_scalar(
    acc: &mut [u64],
    mask: &[u64],
    self_word: usize,
    self_bit: u64,
) -> u64 {
    let mut others = 0u64;
    for (w, (s, &m)) in acc.iter_mut().zip(mask).enumerate() {
        *s &= m;
        others |= if w == self_word { *s & !self_bit } else { *s };
    }
    others
}

/// AVX2 vector bodies. Every function here carries
/// `#[target_feature(enable = "avx2")]` and is reached only through a
/// successful [`active`] check; the scalar twins above define the
/// semantics they must reproduce bit-for-bit.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub(crate) mod avx2 {
    use std::arch::x86_64::*;

    /// OR-reduce a 256-bit accumulator to one `u64` without a stack
    /// round-trip: high half onto low half, then the two 64-bit lanes.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support ([`super::active`]).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold_or(v: __m256i) -> u64 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        let pair = _mm_or_si128(lo, hi);
        let one = _mm_or_si128(pair, _mm_unpackhi_epi64(pair, pair));
        _mm_cvtsi128_si64(one) as u64
    }

    /// Vector popcount via the nibble-LUT (`pshufb`) method, accumulated
    /// with `psadbw` into four 64-bit lanes.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support ([`super::active`]).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn popcount(limbs: &[u64]) -> u64 {
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low = _mm256_set1_epi8(0x0F);
        let zero = _mm256_setzero_si256();
        let mut acc = zero;
        let mut i = 0usize;
        while i + 4 <= limbs.len() {
            // SAFETY: i + 4 <= len keeps the unaligned load in bounds.
            let v = unsafe { _mm256_loadu_si256(limbs.as_ptr().add(i).cast()) };
            let lo = _mm256_and_si256(v, low);
            let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low);
            let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
            i += 4;
        }
        let mut lanes = [0u64; 4];
        // SAFETY: `lanes` is exactly the store's 32-byte width.
        unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc) };
        let mut total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        while i < limbs.len() {
            total += u64::from(limbs[i].count_ones());
            i += 1;
        }
        total
    }

    /// Vector subset test: accumulate `sub & !sup` and test for any
    /// surviving bit per vector (early exit on the first violation).
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support ([`super::active`]).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn subset_all(sub: &[u64], sup: &[u64]) -> bool {
        let n = sub.len().min(sup.len());
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n keeps both unaligned loads in bounds.
            let (a, b) = unsafe {
                (
                    _mm256_loadu_si256(sub.as_ptr().add(i).cast()),
                    _mm256_loadu_si256(sup.as_ptr().add(i).cast()),
                )
            };
            // andnot(b, a) = !b & a: the bits of `sub` missing from `sup`.
            let viol = _mm256_andnot_si256(b, a);
            if _mm256_testz_si256(viol, viol) == 0 {
                return false;
            }
            i += 4;
        }
        while i < n {
            if sub[i] & !sup[i] != 0 {
                return false;
            }
            i += 1;
        }
        true
    }

    /// Vector intersect + fold. The candidate's own bit is excluded
    /// exactly: the vector chunk containing `self_word` is ANDed with a
    /// lane mask (built once, all-ones in every other lane) that clears
    /// only `self_bit` in that lane, so the fold equals the scalar
    /// oracle's bit-for-bit.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support ([`super::active`]).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn intersect_fold(
        acc: &mut [u64],
        mask: &[u64],
        self_word: usize,
        self_bit: u64,
    ) -> u64 {
        let n = acc.len().min(mask.len());
        let mut facc = _mm256_setzero_si256();
        // First limb index of the vector chunk holding `self_word` (never
        // matched when self_word is past the vector region or the slice).
        let self_base = if self_word < n & !3 {
            self_word & !3
        } else {
            usize::MAX
        };
        let mut lanes = [!0u64; 4];
        lanes[self_word & 3] = !self_bit;
        // SAFETY: `lanes` is exactly the load's 32-byte width.
        let vself = unsafe { _mm256_loadu_si256(lanes.as_ptr().cast()) };
        let mut w = 0usize;
        while w + 4 <= n {
            // SAFETY: w + 4 <= n keeps the loads and the store in bounds.
            let vand = unsafe {
                let pa = acc.as_mut_ptr().add(w).cast::<__m256i>();
                let va = _mm256_loadu_si256(pa);
                let vm = _mm256_loadu_si256(mask.as_ptr().add(w).cast());
                let vand = _mm256_and_si256(va, vm);
                _mm256_storeu_si256(pa, vand);
                vand
            };
            let contrib = if w == self_base {
                _mm256_and_si256(vand, vself)
            } else {
                vand
            };
            facc = _mm256_or_si256(facc, contrib);
            w += 4;
        }
        // SAFETY: same AVX2 requirement as this function.
        let mut others = unsafe { fold_or(facc) };
        while w < n {
            acc[w] &= mask[w];
            others |= if w == self_word {
                acc[w] & !self_bit
            } else {
                acc[w]
            };
            w += 1;
        }
        others
    }

    /// Vector rounds of the 64×64 transpose swap network: for swap
    /// distances `j ∈ {32, 16, 8, 4}` the exchanged index runs are at
    /// least four limbs long and contiguous, so each exchange processes
    /// four rows per instruction. The `j ∈ {2, 1}` rounds interleave
    /// within a vector and stay scalar (see
    /// [`crate::bitops::transpose64_scalar`] for the reference network).
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support ([`super::active`]).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn transpose64(a: &mut [u64; 64]) {
        let mut j = 32usize;
        let mut m = 0x0000_0000_FFFF_FFFFu64;
        while j >= 4 {
            let vmask = _mm256_set1_epi64x(m as i64);
            let cnt = _mm_cvtsi64_si128(j as i64);
            let mut base = 0usize;
            while base < 64 {
                let mut k = base;
                while k < base + j {
                    // SAFETY: k + j + 3 < 64 in every swap round (j >= 4 and
                    // k < base + j), so both 4-limb accesses stay inside
                    // the 64-limb block.
                    unsafe {
                        let pa = a.as_mut_ptr().add(k).cast::<__m256i>();
                        let pb = a.as_mut_ptr().add(k + j).cast::<__m256i>();
                        let va = _mm256_loadu_si256(pa);
                        let vb = _mm256_loadu_si256(pb);
                        let t = _mm256_and_si256(
                            _mm256_xor_si256(_mm256_srl_epi64(va, cnt), vb),
                            vmask,
                        );
                        _mm256_storeu_si256(pa, _mm256_xor_si256(va, _mm256_sll_epi64(t, cnt)));
                        _mm256_storeu_si256(pb, _mm256_xor_si256(vb, t));
                    }
                    k += 4;
                }
                base += 2 * j;
            }
            j >>= 1;
            m ^= m << j;
        }
        while j != 0 {
            let mut k = 0usize;
            while k < 64 {
                let t = ((a[k] >> j) ^ a[k + j]) & m;
                a[k] ^= t << j;
                a[k + j] ^= t;
                k = (k + j + 1) & !j;
            }
            j >>= 1;
            m ^= m << j;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng_limbs(seed: u64, n: usize) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state ^ (state >> 31)
            })
            .collect()
    }

    #[test]
    fn routed_popcount_matches_scalar() {
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 64] {
            let limbs = rng_limbs(n as u64 + 1, n);
            assert_eq!(popcount(&limbs), popcount_scalar(&limbs), "n={n}");
        }
    }

    #[test]
    fn routed_subset_matches_scalar() {
        for n in [1, 3, 4, 7, 8, 16, 33] {
            let a = rng_limbs(n as u64, n);
            // sup ⊇ sub by construction; then violate one word.
            let sup: Vec<u64> = a.iter().map(|&x| x | (x >> 1)).collect();
            let sub: Vec<u64> = sup.iter().map(|&x| x & a[0]).collect();
            assert!(subset_all(&sub, &sup), "n={n}");
            assert_eq!(
                subset_all(&sub, &sup),
                subset_all_scalar(&sub, &sup),
                "n={n}"
            );
            let mut bad = sub.clone();
            bad[n / 2] |= !sup[n / 2];
            if bad[n / 2] & !sup[n / 2] != 0 {
                assert!(!subset_all(&bad, &sup), "n={n}");
            }
        }
    }

    #[test]
    fn routed_intersect_fold_matches_scalar() {
        for n in [1, 2, 4, 5, 8, 16, 17] {
            for self_word in 0..n {
                let mask = rng_limbs(self_word as u64 * 31 + n as u64, n);
                let init = rng_limbs(self_word as u64 + 7, n);
                let self_bit = 1u64 << (self_word % 64);
                let mut a = init.clone();
                let mut b = init.clone();
                let got = intersect_fold(&mut a, &mask, self_word, self_bit);
                let want = intersect_fold_scalar(&mut b, &mask, self_word, self_bit);
                assert_eq!(got, want, "n={n} self_word={self_word}");
                assert_eq!(a, b, "n={n} self_word={self_word}");
            }
        }
    }

    #[test]
    fn active_is_consistent_with_feature() {
        #[cfg(not(feature = "simd"))]
        assert!(!active());
        // With the feature on, active() is a CPU property; just call it.
        let _ = active();
    }
}

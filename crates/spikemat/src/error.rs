//! Error types.

use std::fmt;

/// Error raised when matrix shapes are incompatible for an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl ShapeError {
    /// Creates a shape error with the given description.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.message)
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ShapeError::new("K mismatch: 4 vs 8");
        assert_eq!(e.to_string(), "shape error: K mismatch: 4 vs 8");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ShapeError::new("x"));
    }
}

//! Tiling of spike matrices into accelerator-sized `m × k` tiles.

use crate::matrix::SpikeMatrix;
use serde::{Deserialize, Serialize};

/// The `m × k` geometry of a spike tile (paper Sec. V-A).
///
/// Prosperity decomposes a spiking GeMM into `⌈M/m⌉ × ⌈K/k⌉` spike tiles; the
/// hardware default is `m = 256`, `k = 16` (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TileShape {
    /// Rows per tile (`m`).
    pub m: usize,
    /// Columns per tile (`k`).
    pub k: usize,
}

impl TileShape {
    /// Creates a tile shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(m: usize, k: usize) -> Self {
        assert!(m > 0 && k > 0, "tile dimensions must be positive");
        Self { m, k }
    }

    /// The paper's default Prosperity tile geometry (`m = 256`, `k = 16`).
    pub fn prosperity_default() -> Self {
        Self::new(256, 16)
    }

    /// Number of tiles needed to cover an `M × K` matrix.
    pub fn grid(&self, rows: usize, cols: usize) -> (usize, usize) {
        (rows.div_ceil(self.m), cols.div_ceil(self.k))
    }
}

/// One zero-padded spike tile plus its position in the source matrix.
#[derive(Debug, Clone)]
pub struct Tile {
    /// The `m × k` padded spike sub-matrix.
    pub data: SpikeMatrix,
    /// First source row covered by this tile.
    pub row_start: usize,
    /// First source column covered by this tile.
    pub col_start: usize,
    /// Number of *valid* (non-padding) rows.
    pub valid_rows: usize,
    /// Number of *valid* (non-padding) columns.
    pub valid_cols: usize,
}

/// Row-major iterator over the tiles of a [`SpikeMatrix`].
///
/// Created by [`SpikeMatrix::tiles`].
#[derive(Debug)]
pub struct TileIter<'a> {
    source: &'a SpikeMatrix,
    shape: TileShape,
    grid: (usize, usize),
    next: usize,
}

impl<'a> TileIter<'a> {
    pub(crate) fn new(source: &'a SpikeMatrix, shape: TileShape) -> Self {
        let grid = shape.grid(source.rows(), source.cols());
        Self {
            source,
            shape,
            grid,
            next: 0,
        }
    }

    /// Total number of tiles this iterator will yield.
    pub fn tile_count(&self) -> usize {
        self.grid.0 * self.grid.1
    }
}

impl Iterator for TileIter<'_> {
    type Item = Tile;

    fn next(&mut self) -> Option<Tile> {
        let (gm, gk) = self.grid;
        if self.next >= gm * gk {
            return None;
        }
        let ti = self.next / gk;
        let tj = self.next % gk;
        self.next += 1;
        let row_start = ti * self.shape.m;
        let col_start = tj * self.shape.k;
        let valid_rows = (self.source.rows() - row_start).min(self.shape.m);
        let valid_cols = (self.source.cols() - col_start).min(self.shape.k);
        Some(Tile {
            data: self
                .source
                .submatrix(row_start, col_start, self.shape.m, self.shape.k),
            row_start,
            col_start,
            valid_rows,
            valid_cols,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.tile_count() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for TileIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rounds_up() {
        let s = TileShape::new(256, 16);
        assert_eq!(s.grid(512, 32), (2, 2));
        assert_eq!(s.grid(513, 33), (3, 3));
        assert_eq!(s.grid(1, 1), (1, 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tile_dim_panics() {
        let _ = TileShape::new(0, 16);
    }

    #[test]
    fn tiles_cover_matrix_exactly_once() {
        let mut m = SpikeMatrix::zeros(10, 7);
        for i in 0..10 {
            for j in 0..7 {
                m.set(i, j, (i * 7 + j) % 3 == 0);
            }
        }
        let shape = TileShape::new(4, 3);
        let mut reconstructed = SpikeMatrix::zeros(10, 7);
        let iter = m.tiles(shape);
        assert_eq!(iter.tile_count(), 3 * 3);
        for t in iter {
            for r in 0..t.valid_rows {
                for c in 0..t.valid_cols {
                    if t.data.get(r, c) {
                        reconstructed.set(t.row_start + r, t.col_start + c, true);
                    }
                }
            }
            // Padding must be zero.
            for r in t.valid_rows..shape.m {
                assert!(t.data.row(r).is_zero());
            }
        }
        assert_eq!(m, reconstructed);
    }

    #[test]
    fn exact_size_iterator_agrees() {
        let m = SpikeMatrix::zeros(100, 50);
        let it = m.tiles(TileShape::new(32, 16));
        assert_eq!(it.len(), 4 * 4);
        assert_eq!(it.count(), 16);
    }

    #[test]
    fn prosperity_default_matches_table3() {
        let s = TileShape::prosperity_default();
        assert_eq!((s.m, s.k), (256, 16));
    }
}

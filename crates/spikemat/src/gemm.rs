//! Reference spiking-GeMM kernels and operation counting.
//!
//! All sparsity schemes in this repository (bit sparsity, product sparsity,
//! the baselines' structured variants) must produce output identical to
//! [`spiking_gemm`]; these kernels are the ground truth used by the property
//! tests.

use crate::matrix::SpikeMatrix;
use std::ops::AddAssign;

/// A dense `K × N` weight matrix in row-major storage.
///
/// Row `k` of the weight matrix is the vector "selected" by a spike in column
/// `k` of the spike matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightMatrix<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
}

impl<T: Copy> WeightMatrix<T> {
    /// Builds a weight matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "weight data length {} != {rows}x{cols}",
            data.len()
        );
        Self { data, rows, cols }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { data, rows, cols }
    }

    /// Number of rows `K`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `N`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `k` as a slice of length `N`.
    pub fn row(&self, k: usize) -> &[T] {
        &self.data[k * self.cols..(k + 1) * self.cols]
    }

    /// The whole weight matrix in row-major order (row `k` occupies
    /// `k * cols .. (k + 1) * cols`); the executor's single-bounds-check
    /// row-addressing path.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Element at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> T {
        self.data[row * self.cols + col]
    }
}

/// Dense row-major output accumulator of shape `M × N`.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputMatrix<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
}

impl<T> Default for OutputMatrix<T> {
    /// An empty `0 × 0` output; useful as the initial state of a pooled
    /// buffer that [`OutputMatrix::reset`] will size on first use.
    fn default() -> Self {
        Self {
            data: Vec::new(),
            rows: 0,
            cols: 0,
        }
    }
}

impl<T: Copy + Default + AddAssign> OutputMatrix<T> {
    /// Creates a zeroed output of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![T::default(); rows * cols],
            rows,
            cols,
        }
    }

    /// Resizes this output in place to a zeroed `rows × cols`, reusing the
    /// backing allocation whenever it is already large enough.
    ///
    /// This is the pooling primitive the execution engine uses to recycle
    /// one output buffer across the layers of a model trace.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, T::default());
    }

    /// Number of rows `M`.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns `N`.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice of length `N`.
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> T {
        self.data[row * self.cols + col]
    }

    /// The whole output in row-major order.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major view of the whole output. Rows `a..b` occupy
    /// elements `a * cols .. b * cols`, which is what lets the executor hand
    /// each row-tile a disjoint `&mut` chunk for parallel accumulation.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Accumulates weight row `w` into output row `i` element-wise.
    pub fn accumulate_row(&mut self, i: usize, w: &[T]) {
        let row = self.row_mut(i);
        assert_eq!(row.len(), w.len(), "accumulate width mismatch");
        for (o, &x) in row.iter_mut().zip(w) {
            *o += x;
        }
    }
}

/// Computes the reference spiking GeMM `spikes × weights`.
///
/// For each spike `(i, k)` the weight row `k` is accumulated into output row
/// `i` — the bit-sparse formulation of Sec. II-A. This *is* bit sparsity:
/// zero bits are skipped entirely.
///
/// # Panics
///
/// Panics if `spikes.cols() != weights.rows()`.
pub fn spiking_gemm<T: Copy + Default + AddAssign>(
    spikes: &SpikeMatrix,
    weights: &WeightMatrix<T>,
) -> OutputMatrix<T> {
    assert_eq!(
        spikes.cols(),
        weights.rows(),
        "inner dimension mismatch: K={} vs {}",
        spikes.cols(),
        weights.rows()
    );
    let mut out = OutputMatrix::zeros(spikes.rows(), weights.cols());
    for i in 0..spikes.rows() {
        for k in spikes.row(i).ones() {
            out.accumulate_row(i, weights.row(k));
        }
    }
    out
}

/// Operation counts for one spiking GeMM under different execution schemes.
///
/// "Operation" means one scalar accumulation of a weight element, matching
/// the paper's OP accounting (Fig. 1 counts 24 OPs for the dense 6×4×? case
/// per output column group).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// `M × K × N`: every element processed (dense DNN-style execution).
    pub dense: u64,
    /// `nnz(S) × N`: only 1-bits processed (bit sparsity).
    pub bit_sparse: u64,
}

/// Counts dense and bit-sparse operations for `spikes × (K × n_cols)`.
pub fn op_counts(spikes: &SpikeMatrix, n_cols: usize) -> OpCounts {
    OpCounts {
        dense: (spikes.rows() * spikes.cols() * n_cols) as u64,
        bit_sparse: (spikes.total_spikes() * n_cols) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_spikes() -> SpikeMatrix {
        SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 1, 0, 1],
            &[1, 1, 0, 1],
        ])
    }

    /// Weight column from Fig. 2 (b): K=4, N=1 with values 0.3, -0.1, 0.5, -0.1.
    fn fig2_weights() -> WeightMatrix<f64> {
        WeightMatrix::from_vec(4, 1, vec![0.3, -0.1, 0.5, -0.1])
    }

    #[test]
    fn paper_fig2_inner_products() {
        let out = spiking_gemm(&fig2_spikes(), &fig2_weights());
        let expect = [0.8, 0.2, 0.7, 0.5, 0.1, 0.1];
        for (i, &e) in expect.iter().enumerate() {
            assert!(
                (out.get(i, 0) - e).abs() < 1e-9,
                "row {i}: got {} expected {e}",
                out.get(i, 0)
            );
        }
    }

    #[test]
    fn gemm_matches_naive_integer() {
        let s = fig2_spikes();
        let w = WeightMatrix::from_fn(4, 3, |r, c| (r * 3 + c) as i64 + 1);
        let out = spiking_gemm(&s, &w);
        for i in 0..s.rows() {
            for j in 0..3 {
                let mut acc = 0i64;
                for k in 0..4 {
                    if s.get(i, k) {
                        acc += w.get(k, j);
                    }
                }
                assert_eq!(out.get(i, j), acc);
            }
        }
    }

    #[test]
    fn zero_spike_matrix_gives_zero_output() {
        let s = SpikeMatrix::zeros(5, 8);
        let w = WeightMatrix::from_fn(8, 4, |r, c| (r + c) as i32);
        let out = spiking_gemm(&s, &w);
        for i in 0..5 {
            assert!(out.row(i).iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn op_counts_fig1() {
        // Fig. 1: 6×4 spike matrix, dense = 24 OPs/column, bit sparse = 14.
        let s = fig2_spikes();
        let c = op_counts(&s, 1);
        assert_eq!(c.dense, 24);
        assert_eq!(c.bit_sparse, 14);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn shape_mismatch_panics() {
        let s = SpikeMatrix::zeros(2, 3);
        let w = WeightMatrix::from_fn(4, 2, |_, _| 0i32);
        let _ = spiking_gemm(&s, &w);
    }

    #[test]
    fn weight_matrix_accessors() {
        let w = WeightMatrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(w.rows(), 2);
        assert_eq!(w.cols(), 3);
        assert_eq!(w.row(1), &[4, 5, 6]);
        assert_eq!(w.get(0, 2), 3);
    }

    #[test]
    #[should_panic(expected = "weight data length")]
    fn weight_matrix_rejects_bad_len() {
        let _ = WeightMatrix::from_vec(2, 3, vec![1]);
    }

    #[test]
    fn output_reset_zeroes_and_reshapes() {
        let mut o = OutputMatrix::<i32>::zeros(2, 3);
        o.accumulate_row(0, &[1, 2, 3]);
        o.reset(3, 2);
        assert_eq!((o.rows(), o.cols()), (3, 2));
        assert!(o.as_slice().iter().all(|&x| x == 0));
        o.reset(1, 1);
        assert_eq!(o.as_slice(), &[0]);
    }

    #[test]
    fn output_accumulate_row_adds() {
        let mut o = OutputMatrix::<i32>::zeros(2, 3);
        o.accumulate_row(1, &[1, 2, 3]);
        o.accumulate_row(1, &[10, 20, 30]);
        assert_eq!(o.row(1), &[11, 22, 33]);
        assert_eq!(o.row(0), &[0, 0, 0]);
    }
}

//! Dataset descriptors for the paper's evaluation suite.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The datasets used in the paper's evaluation (Sec. VII-A).
///
/// Only the *geometry* matters for performance simulation: image datasets
/// fix the input resolution of spiking CNNs and vision transformers, NLP
/// datasets fix the sequence length of the spiking language models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// CIFAR-10: 32×32 RGB, 10 classes.
    Cifar10,
    /// CIFAR-100: 32×32 RGB, 100 classes.
    Cifar100,
    /// CIFAR10-DVS: 128×128 event stream, commonly downsampled to 48×48
    /// frames, 10 classes.
    Cifar10Dvs,
    /// MNIST: 28×28 grayscale, 10 classes.
    Mnist,
    /// SST-2 sentiment (GLUE), binary.
    Sst2,
    /// SST-5 fine-grained sentiment, 5 classes.
    Sst5,
    /// Movie Review polarity, binary.
    Mr,
    /// Quora Question Pairs (GLUE), binary.
    Qqp,
    /// MultiNLI (GLUE), 3 classes.
    Mnli,
}

impl Dataset {
    /// `(channels, height, width)` for image datasets; `None` for text.
    pub fn image_shape(&self) -> Option<(usize, usize, usize)> {
        match self {
            Dataset::Cifar10 | Dataset::Cifar100 => Some((3, 32, 32)),
            Dataset::Cifar10Dvs => Some((2, 48, 48)),
            Dataset::Mnist => Some((1, 28, 28)),
            _ => None,
        }
    }

    /// Token sequence length for NLP datasets; `None` for images.
    pub fn seq_len(&self) -> Option<usize> {
        match self {
            Dataset::Sst2 | Dataset::Sst5 | Dataset::Mr => Some(128),
            Dataset::Qqp | Dataset::Mnli => Some(256), // sentence pairs
            _ => None,
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        match self {
            Dataset::Cifar10 | Dataset::Cifar10Dvs | Dataset::Mnist => 10,
            Dataset::Cifar100 => 100,
            Dataset::Sst2 | Dataset::Mr | Dataset::Qqp => 2,
            Dataset::Sst5 => 5,
            Dataset::Mnli => 3,
        }
    }

    /// `true` for image (CV) datasets.
    pub fn is_vision(&self) -> bool {
        self.image_shape().is_some()
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dataset::Cifar10 => "CIFAR10",
            Dataset::Cifar100 => "CIFAR100",
            Dataset::Cifar10Dvs => "CIFAR10DVS",
            Dataset::Mnist => "MNIST",
            Dataset::Sst2 => "SST-2",
            Dataset::Sst5 => "SST-5",
            Dataset::Mr => "MR",
            Dataset::Qqp => "QQP",
            Dataset::Mnli => "MNLI",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vision_datasets_have_image_shape() {
        for d in [
            Dataset::Cifar10,
            Dataset::Cifar100,
            Dataset::Cifar10Dvs,
            Dataset::Mnist,
        ] {
            assert!(d.is_vision());
            assert!(d.image_shape().is_some());
            assert!(d.seq_len().is_none());
        }
    }

    #[test]
    fn nlp_datasets_have_seq_len() {
        for d in [
            Dataset::Sst2,
            Dataset::Sst5,
            Dataset::Mr,
            Dataset::Qqp,
            Dataset::Mnli,
        ] {
            assert!(!d.is_vision());
            assert!(d.seq_len().is_some());
        }
    }

    #[test]
    fn class_counts() {
        assert_eq!(Dataset::Cifar100.classes(), 100);
        assert_eq!(Dataset::Sst5.classes(), 5);
        assert_eq!(Dataset::Mnli.classes(), 3);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Dataset::Cifar10Dvs.to_string(), "CIFAR10DVS");
        assert_eq!(Dataset::Sst2.to_string(), "SST-2");
    }
}

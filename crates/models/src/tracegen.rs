//! Calibrated synthetic spike-activation generation.
//!
//! Real SNN activation traces have two properties that matter to product
//! sparsity: a per-layer firing rate (bit density) and strong inter-row
//! combinatorial similarity — the same neuron tends to fire in adjacent time
//! steps and adjacent spatial positions, so rows of the unrolled spike matrix
//! are frequently subsets or duplicates of nearby rows.
//!
//! [`TraceGen`] reproduces both knobs: each generated row is, with
//! probability [`TraceGenParams::reuse`], *derived* from a recent row (an
//! exact copy or a superset with a few extra bits), and otherwise sampled
//! i.i.d. Bernoulli. [`TraceGenParams::calibrate`] binary-searches `reuse` so
//! that the product density measured under the accelerator's default tile
//! geometry matches the paper's reported per-workload value.

use prosperity_core::ProSparsityPlan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use spikemat::{BitRow, SpikeMatrix, TileShape};

/// Parameters of the synthetic activation generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceGenParams {
    /// Target fraction of 1-bits.
    pub bit_density: f64,
    /// Probability that a row is derived from a recent earlier row.
    pub reuse: f64,
    /// Among derived rows, the fraction that are exact copies (the rest are
    /// supersets with extra bits — Partial Match material).
    pub em_fraction: f64,
    /// Mean number of extra bits added to a superset-derived row, *per 64
    /// columns of row width* (so the pattern density of derived rows is
    /// independent of the layer's `K`).
    pub extra_bits: f64,
    /// How far back (in rows) a derived row may copy from; models the
    /// temporal/spatial locality window (e.g. `T` time steps × row stride).
    pub window: usize,
    /// Maximum derivation-chain depth. Real traces have bounded reuse
    /// chains (a neuron's activity is correlated over at most the `T` time
    /// steps plus local spatial structure); without a cap the generator
    /// would build arbitrarily deep prefix chains that no hardware trace
    /// exhibits.
    pub max_chain: usize,
}

impl TraceGenParams {
    /// Pure i.i.d. Bernoulli activations (no deliberate correlation).
    pub fn uncorrelated(bit_density: f64) -> Self {
        Self {
            bit_density,
            reuse: 0.0,
            em_fraction: 0.3,
            extra_bits: 2.0,
            window: 64,
            max_chain: 6,
        }
    }

    /// Calibrates `reuse` so the generated product density under `tile`
    /// matches `target_pro_density` as closely as the generator allows.
    ///
    /// Product density is monotonically non-increasing in `reuse`, so a
    /// bisection over `[0, 1]` converges; the result is clamped when the
    /// target lies outside the generator's reachable band (e.g. a target
    /// above the intrinsic reuse of random matrices).
    pub fn calibrate(
        bit_density: f64,
        target_pro_density: f64,
        tile: TileShape,
        seed: u64,
    ) -> Self {
        let mut params = Self {
            bit_density,
            reuse: 0.5,
            em_fraction: 0.3,
            extra_bits: 2.0,
            window: 64,
            max_chain: 6,
        };
        let probe = |p: &Self| -> f64 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
            let m = TraceGen::new(*p).generate(768, 64, &mut rng);
            ProSparsityPlan::build_tiled(&m, tile).stats().pro_density()
        };
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..14 {
            params.reuse = 0.5 * (lo + hi);
            if probe(&params) > target_pro_density {
                lo = params.reuse; // need more reuse to lower density
            } else {
                hi = params.reuse;
            }
        }
        params.reuse = 0.5 * (lo + hi);
        params
    }
}

/// The synthetic spike-matrix generator.
#[derive(Debug, Clone)]
pub struct TraceGen {
    params: TraceGenParams,
}

impl TraceGen {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of range.
    pub fn new(params: TraceGenParams) -> Self {
        assert!(
            (0.0..=1.0).contains(&params.bit_density),
            "bit_density must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&params.reuse),
            "reuse must be in [0,1]"
        );
        assert!(
            (0.0..=1.0).contains(&params.em_fraction),
            "em_fraction must be in [0,1]"
        );
        assert!(params.window > 0, "window must be positive");
        assert!(params.max_chain > 0, "max_chain must be positive");
        Self { params }
    }

    /// Generator parameters.
    pub fn params(&self) -> &TraceGenParams {
        &self.params
    }

    /// Generates a temporally-correlated sequence of `steps` per-timestep
    /// spike matrices of shape `rows × k`.
    ///
    /// Step 0 is a fresh [`TraceGen::generate`] sample; in every later step
    /// each row *persists* (is copied verbatim from the previous step) with
    /// probability `persistence`, and is otherwise resampled at the
    /// generator's fresh-row density. This models the dominant temporal
    /// structure of real SNN activations — most neurons keep their firing
    /// pattern across adjacent timesteps — which is exactly the redundancy a
    /// tile-level plan cache exploits: a spike tile whose rows all persisted
    /// is bit-identical to the previous step's tile.
    ///
    /// # Panics
    ///
    /// Panics if `persistence` is outside `[0, 1]`.
    pub fn generate_timesteps<R: Rng + ?Sized>(
        &self,
        steps: usize,
        rows: usize,
        k: usize,
        persistence: f64,
        rng: &mut R,
    ) -> Vec<SpikeMatrix> {
        assert!(
            (0.0..=1.0).contains(&persistence),
            "persistence must be in [0,1]"
        );
        let mut out = Vec::with_capacity(steps);
        if steps == 0 {
            return out;
        }
        out.push(self.generate(rows, k, rng));
        let density = self.params.bit_density;
        for _ in 1..steps {
            let prev = out.last().expect("step 0 exists");
            let mut step = prev.clone();
            for i in 0..rows {
                if rng.gen_bool(persistence) {
                    continue; // row persists bit-for-bit
                }
                for j in 0..k {
                    step.set(i, j, rng.gen_bool(density));
                }
            }
            out.push(step);
        }
        out
    }

    /// Generates `tenants` temporally-correlated timestep streams that are
    /// additionally correlated *across* tenants — the multi-user serving
    /// workload where concurrent requests run the same model on similar
    /// inputs.
    ///
    /// A base stream is sampled with [`TraceGen::generate_timesteps`];
    /// tenant 0 is the base itself, and every other tenant derives each
    /// timestep from the base: a row is copied verbatim with probability
    /// `tenant_correlation` and otherwise resampled at the generator's bit
    /// density. A spike tile whose rows all copied is bit-identical across
    /// tenants, which is exactly the redundancy a shared plan cache turns
    /// into cross-request hits.
    ///
    /// # Panics
    ///
    /// Panics if `persistence` or `tenant_correlation` is outside `[0, 1]`.
    // The stream geometry really is six orthogonal knobs; a params struct
    // would just restate the argument list.
    #[allow(clippy::too_many_arguments)]
    pub fn generate_tenant_streams<R: Rng + ?Sized>(
        &self,
        tenants: usize,
        steps: usize,
        rows: usize,
        k: usize,
        persistence: f64,
        tenant_correlation: f64,
        rng: &mut R,
    ) -> Vec<Vec<SpikeMatrix>> {
        assert!(
            (0.0..=1.0).contains(&tenant_correlation),
            "tenant_correlation must be in [0,1]"
        );
        if tenants == 0 {
            return Vec::new();
        }
        let base = self.generate_timesteps(steps, rows, k, persistence, rng);
        let density = self.params.bit_density;
        let mut out = Vec::with_capacity(tenants);
        for _ in 1..tenants {
            let stream = base
                .iter()
                .map(|b| {
                    let mut step = b.clone();
                    for i in 0..rows {
                        if rng.gen_bool(tenant_correlation) {
                            continue; // row shared with the base tenant
                        }
                        for j in 0..k {
                            step.set(i, j, rng.gen_bool(density));
                        }
                    }
                    step
                })
                .collect();
            out.push(stream);
        }
        out.insert(0, base);
        out
    }

    /// Generates an `m × k` spike matrix.
    pub fn generate<R: Rng + ?Sized>(&self, m: usize, k: usize, rng: &mut R) -> SpikeMatrix {
        let p = &self.params;
        // Fresh-row density compensated for the extra bits added by
        // superset-derived rows, so the matrix-wide density hits the target.
        let extra_mean = p.extra_bits * (k.max(1) as f64 / 64.0);
        // Derivation chains (depth ≤ max_chain) accumulate extra bits over
        // roughly two levels on average, hence the empirical 2.2 factor.
        let extra_per_row = 2.2 * p.reuse * (1.0 - p.em_fraction) * extra_mean / k.max(1) as f64;
        let fresh_density = (p.bit_density - extra_per_row).clamp(0.0, 1.0);
        let mut rows: Vec<BitRow> = Vec::with_capacity(m);
        let mut depth: Vec<usize> = Vec::with_capacity(m);
        for i in 0..m {
            let lo = i.saturating_sub(p.window);
            let src = if i > 0 {
                Some(rng.gen_range(lo..i))
            } else {
                None
            };
            // Derive only while the source's chain is shallow enough.
            let derived = matches!(src, Some(s) if rng.gen_bool(p.reuse) && depth[s] < p.max_chain);
            let row = if derived {
                let src = src.expect("derived implies a source");
                depth.push(depth[src] + 1);
                let mut row = rows[src].clone();
                if !rng.gen_bool(p.em_fraction) {
                    // Superset: sprinkle extra bits on zero positions.
                    let extra = sample_extra(extra_mean, rng);
                    for _ in 0..extra {
                        let j = rng.gen_range(0..k.max(1));
                        if k > 0 {
                            row.set(j, true);
                        }
                    }
                }
                row
            } else {
                depth.push(0);
                let mut row = BitRow::zeros(k);
                for j in 0..k {
                    if rng.gen_bool(fresh_density) {
                        row.set(j, true);
                    }
                }
                row
            };
            rows.push(row);
        }
        SpikeMatrix::from_rows(rows)
    }
}

/// Samples the number of extra bits: geometric-ish around `mean`, ≥ 1.
fn sample_extra<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> usize {
    let mean = mean.max(1.0);
    // 1 + Geometric(p) with expectation `mean`, truncated generously.
    let p = (1.0 / mean).clamp(1e-6, 1.0);
    let cap = (8.0 * mean) as usize;
    let mut count = 1;
    while count < cap && !rng.gen_bool(p) {
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_matches_target() {
        let mut rng = StdRng::seed_from_u64(1);
        for target in [0.1, 0.3, 0.5] {
            let g = TraceGen::new(TraceGenParams {
                bit_density: target,
                reuse: 0.4,
                em_fraction: 0.3,
                extra_bits: 2.0,
                window: 32,
                max_chain: 6,
            });
            let m = g.generate(512, 64, &mut rng);
            assert!(
                (m.density() - target).abs() < 0.05,
                "target {target}, got {}",
                m.density()
            );
        }
    }

    #[test]
    fn reuse_lowers_product_density() {
        let mut rng = StdRng::seed_from_u64(2);
        let tile = TileShape::new(256, 16);
        let mk_density = |reuse: f64, rng: &mut StdRng| {
            let g = TraceGen::new(TraceGenParams {
                bit_density: 0.3,
                reuse,
                em_fraction: 0.3,
                extra_bits: 2.0,
                window: 32,
                max_chain: 6,
            });
            let m = g.generate(512, 64, rng);
            ProSparsityPlan::build_tiled(&m, tile).stats().pro_density()
        };
        let low = mk_density(0.0, &mut rng);
        let high = mk_density(0.9, &mut rng);
        assert!(
            high < low,
            "reuse 0.9 should lower pro density: {high} vs {low}"
        );
    }

    #[test]
    fn calibration_hits_reachable_target() {
        let tile = TileShape::new(256, 16);
        let params = TraceGenParams::calibrate(0.34, 0.06, tile, 7);
        let mut rng = StdRng::seed_from_u64(99);
        let m = TraceGen::new(params).generate(1024, 64, &mut rng);
        let plan = ProSparsityPlan::build_tiled(&m, tile);
        let pro = plan.stats().pro_density();
        assert!(
            (pro - 0.06).abs() < 0.03,
            "calibrated pro density {pro} far from 0.06 (reuse={})",
            params.reuse
        );
        // Bit density must stay near its own target too.
        assert!(
            (m.density() - 0.34).abs() < 0.06,
            "bit density {}",
            m.density()
        );
    }

    #[test]
    fn timesteps_persist_rows_at_the_requested_rate() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = TraceGen::new(TraceGenParams::uncorrelated(0.3));
        let steps = g.generate_timesteps(6, 256, 32, 0.9, &mut rng);
        assert_eq!(steps.len(), 6);
        let mut persisted = 0usize;
        let mut total = 0usize;
        for w in steps.windows(2) {
            for i in 0..256 {
                total += 1;
                if w[0].row(i) == w[1].row(i) {
                    persisted += 1;
                }
            }
        }
        let rate = persisted as f64 / total as f64;
        // Resampled rows occasionally reproduce the old row by chance, so
        // the observed rate sits at or slightly above the target.
        assert!(rate > 0.85 && rate < 0.97, "persistence rate {rate}");
    }

    #[test]
    fn full_persistence_repeats_the_first_step() {
        let mut rng = StdRng::seed_from_u64(22);
        let g = TraceGen::new(TraceGenParams::uncorrelated(0.25));
        let steps = g.generate_timesteps(4, 64, 16, 1.0, &mut rng);
        for s in &steps[1..] {
            assert_eq!(s, &steps[0]);
        }
    }

    #[test]
    fn zero_steps_is_empty() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = TraceGen::new(TraceGenParams::uncorrelated(0.25));
        assert!(g.generate_timesteps(0, 8, 8, 0.5, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "persistence must be in [0,1]")]
    fn invalid_persistence_panics() {
        let mut rng = StdRng::seed_from_u64(24);
        let g = TraceGen::new(TraceGenParams::uncorrelated(0.25));
        let _ = g.generate_timesteps(2, 8, 8, 1.5, &mut rng);
    }

    #[test]
    fn tenant_streams_share_rows_with_the_base() {
        let mut rng = StdRng::seed_from_u64(25);
        let g = TraceGen::new(TraceGenParams::uncorrelated(0.3));
        let streams = g.generate_tenant_streams(4, 3, 128, 32, 0.95, 0.9, &mut rng);
        assert_eq!(streams.len(), 4);
        assert!(streams.iter().all(|s| s.len() == 3));
        let mut shared = 0usize;
        let mut total = 0usize;
        for tenant in &streams[1..] {
            for (t, step) in tenant.iter().enumerate() {
                for i in 0..128 {
                    total += 1;
                    if step.row(i) == streams[0][t].row(i) {
                        shared += 1;
                    }
                }
            }
        }
        let rate = shared as f64 / total as f64;
        assert!(rate > 0.85 && rate < 0.97, "cross-tenant share rate {rate}");
    }

    #[test]
    fn full_tenant_correlation_duplicates_the_base() {
        let mut rng = StdRng::seed_from_u64(26);
        let g = TraceGen::new(TraceGenParams::uncorrelated(0.25));
        let streams = g.generate_tenant_streams(3, 2, 32, 16, 0.9, 1.0, &mut rng);
        for tenant in &streams[1..] {
            assert_eq!(tenant, &streams[0]);
        }
    }

    #[test]
    fn zero_tenants_is_empty() {
        let mut rng = StdRng::seed_from_u64(27);
        let g = TraceGen::new(TraceGenParams::uncorrelated(0.25));
        assert!(g
            .generate_tenant_streams(0, 2, 8, 8, 0.5, 0.5, &mut rng)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "tenant_correlation must be in [0,1]")]
    fn invalid_tenant_correlation_panics() {
        let mut rng = StdRng::seed_from_u64(28);
        let g = TraceGen::new(TraceGenParams::uncorrelated(0.25));
        let _ = g.generate_tenant_streams(2, 2, 8, 8, 0.5, -0.1, &mut rng);
    }

    #[test]
    fn zero_density_produces_empty_matrix() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = TraceGen::new(TraceGenParams::uncorrelated(0.0));
        let m = g.generate(64, 32, &mut rng);
        assert_eq!(m.total_spikes(), 0);
    }

    #[test]
    fn derived_rows_are_supersets_of_sources() {
        // With reuse = 1 every row after the first derives from an earlier
        // one, so every row has a subset predecessor in its window.
        let mut rng = StdRng::seed_from_u64(4);
        let g = TraceGen::new(TraceGenParams {
            bit_density: 0.3,
            reuse: 1.0,
            em_fraction: 0.5,
            extra_bits: 1.0,
            window: 8,
            max_chain: 6,
        });
        let m = g.generate(64, 32, &mut rng);
        let mut with_prefix = 0;
        for i in 1..64usize {
            let lo = i.saturating_sub(8);
            if (lo..i).any(|j| m.row(j).is_subset_of(m.row(i)) && m.row(j).popcount() > 0) {
                with_prefix += 1;
            }
        }
        assert!(with_prefix > 50, "only {with_prefix}/63 rows had a prefix");
    }

    #[test]
    #[should_panic(expected = "reuse must be in [0,1]")]
    fn invalid_reuse_panics() {
        let _ = TraceGen::new(TraceGenParams {
            bit_density: 0.5,
            reuse: 1.5,
            em_fraction: 0.0,
            extra_bits: 1.0,
            window: 1,
            max_chain: 6,
        });
    }
}

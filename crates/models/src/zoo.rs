//! Architecture definitions: every evaluated SNN lowered to its sequence of
//! spiking GeMMs (paper Sec. VII-A model suite).
//!
//! Convolutions are lowered with im2col shape arithmetic
//! ([`spikemat::im2col::Conv2dParams`]); linear and attention layers map
//! directly. `M` always includes the unrolled time steps.

use crate::dataset::Dataset;
use crate::layer::{GemmShape, LayerKind, LayerSpec};
use serde::{Deserialize, Serialize};
use spikemat::im2col::Conv2dParams;
use std::fmt;

/// The eight SNN architectures of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// Spiking VGG-16 (13 conv + classifier).
    Vgg16,
    /// Spiking VGG-9 (6 conv + 2 FC).
    Vgg9,
    /// Spiking LeNet-5 ("LN5" in Fig. 11).
    LeNet5,
    /// Spiking ResNet-18 (basic blocks).
    ResNet18,
    /// Spikformer (4 blocks, dim 384 on CIFAR).
    Spikformer,
    /// Spike-driven Transformer (2 blocks, dim 512).
    Sdt,
    /// SpikeBERT (12 encoder blocks, dim 768).
    SpikeBert,
    /// SpikingBERT (4 encoder blocks, dim 768).
    SpikingBert,
}

impl Architecture {
    /// Default number of SNN time steps `T` (paper model defaults).
    pub fn time_steps(&self) -> usize {
        4
    }

    /// `true` for the spiking-transformer architectures, which contain
    /// attention GeMMs unsupported by prior SNN ASICs.
    pub fn is_transformer(&self) -> bool {
        matches!(
            self,
            Architecture::Spikformer
                | Architecture::Sdt
                | Architecture::SpikeBert
                | Architecture::SpikingBert
        )
    }

    /// Lowers the architecture on `dataset` into its spiking-GeMM layers.
    ///
    /// # Panics
    ///
    /// Panics if the dataset modality does not fit the architecture (e.g. a
    /// CNN on an NLP dataset).
    pub fn layers(&self, dataset: Dataset) -> Vec<LayerSpec> {
        self.layers_scaled(dataset, 1.0)
    }

    /// Like [`Architecture::layers`], but scales every layer's `M` by
    /// `scale` (row subsampling) for fast tests and smoke benches. Shapes in
    /// `K`/`N` are preserved so density behaviour is unchanged.
    pub fn layers_scaled(&self, dataset: Dataset, scale: f64) -> Vec<LayerSpec> {
        let mut layers = match self {
            Architecture::Vgg16 => vgg(dataset, &VGG16_PLAN, self.time_steps()),
            Architecture::Vgg9 => vgg(dataset, &VGG9_PLAN, self.time_steps()),
            Architecture::LeNet5 => lenet5(dataset, self.time_steps()),
            Architecture::ResNet18 => resnet18(dataset, self.time_steps()),
            Architecture::Spikformer => transformer(dataset, &SPIKFORMER_CFG, self.time_steps()),
            Architecture::Sdt => transformer(dataset, &SDT_CFG, self.time_steps()),
            Architecture::SpikeBert => transformer(dataset, &SPIKEBERT_CFG, self.time_steps()),
            Architecture::SpikingBert => transformer(dataset, &SPIKINGBERT_CFG, self.time_steps()),
        };
        if scale < 1.0 {
            for l in &mut layers {
                l.shape.m = ((l.shape.m as f64 * scale).round() as usize).max(1);
            }
        }
        layers
    }

    /// All eight architectures.
    pub fn all() -> [Architecture; 8] {
        [
            Architecture::Vgg16,
            Architecture::Vgg9,
            Architecture::LeNet5,
            Architecture::ResNet18,
            Architecture::Spikformer,
            Architecture::Sdt,
            Architecture::SpikeBert,
            Architecture::SpikingBert,
        ]
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Architecture::Vgg16 => "VGG16",
            Architecture::Vgg9 => "VGG9",
            Architecture::LeNet5 => "LN5",
            Architecture::ResNet18 => "ResNet18",
            Architecture::Spikformer => "Spikformer",
            Architecture::Sdt => "SDT",
            Architecture::SpikeBert => "SpikeBERT",
            Architecture::SpikingBert => "SpikingBERT",
        };
        f.write_str(s)
    }
}

/// One step of a VGG-style plan: `Conv(out_channels)` or a 2×2 max-pool.
enum VggStep {
    Conv(usize),
    Pool,
}

use VggStep::{Conv, Pool};

const VGG16_PLAN: [VggStep; 18] = [
    Conv(64),
    Conv(64),
    Pool,
    Conv(128),
    Conv(128),
    Pool,
    Conv(256),
    Conv(256),
    Conv(256),
    Pool,
    Conv(512),
    Conv(512),
    Conv(512),
    Pool,
    Conv(512),
    Conv(512),
    Conv(512),
    Pool,
];

const VGG9_PLAN: [VggStep; 9] = [
    Conv(64),
    Conv(64),
    Pool,
    Conv(128),
    Conv(128),
    Pool,
    Conv(256),
    Conv(256),
    Pool,
];

fn image_shape(dataset: Dataset) -> (usize, usize, usize) {
    dataset
        .image_shape()
        .unwrap_or_else(|| panic!("{dataset} is not an image dataset"))
}

#[allow(clippy::too_many_arguments)] // mirrors the Conv2dParams fields
fn conv_layer(
    name: String,
    cin: usize,
    cout: usize,
    size: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    t: usize,
) -> (LayerSpec, usize) {
    let p = Conv2dParams::square(cin, cout, size, kernel, stride, padding);
    let (m, k, n) = p.gemm_shape(t);
    (
        LayerSpec::new(name, LayerKind::Conv, GemmShape::new(m, k, n)),
        p.out_h(),
    )
}

fn vgg(dataset: Dataset, plan: &[VggStep], t: usize) -> Vec<LayerSpec> {
    let (c0, h, _) = image_shape(dataset);
    let mut layers = Vec::new();
    let mut cin = c0;
    let mut size = h;
    let mut conv_idx = 0;
    for step in plan {
        match step {
            Conv(cout) => {
                conv_idx += 1;
                let (l, out) = conv_layer(format!("conv{conv_idx}"), cin, *cout, size, 3, 1, 1, t);
                layers.push(l);
                cin = *cout;
                size = out;
            }
            Pool => size /= 2,
        }
    }
    // Classifier: global feature vector per time step.
    let feat = cin * size * size;
    layers.push(LayerSpec::new(
        "fc1",
        LayerKind::Linear,
        GemmShape::new(t, feat, 512),
    ));
    layers.push(LayerSpec::new(
        "fc2",
        LayerKind::Linear,
        GemmShape::new(t, 512, dataset.classes()),
    ));
    layers
}

fn lenet5(dataset: Dataset, t: usize) -> Vec<LayerSpec> {
    let (c0, h, _) = image_shape(dataset);
    let mut layers = Vec::new();
    let (l1, s1) = conv_layer("conv1".into(), c0, 6, h, 5, 1, 2, t);
    layers.push(l1);
    let s1p = s1 / 2;
    let (l2, s2) = conv_layer("conv2".into(), 6, 16, s1p, 5, 1, 0, t);
    layers.push(l2);
    let s2p = s2 / 2;
    let feat = 16 * s2p * s2p;
    layers.push(LayerSpec::new(
        "fc1",
        LayerKind::Linear,
        GemmShape::new(t, feat, 120),
    ));
    layers.push(LayerSpec::new(
        "fc2",
        LayerKind::Linear,
        GemmShape::new(t, 120, 84),
    ));
    layers.push(LayerSpec::new(
        "fc3",
        LayerKind::Linear,
        GemmShape::new(t, 84, dataset.classes()),
    ));
    layers
}

fn resnet18(dataset: Dataset, t: usize) -> Vec<LayerSpec> {
    let (c0, h, _) = image_shape(dataset);
    let mut layers = Vec::new();
    let (stem, mut size) = conv_layer("conv1".into(), c0, 64, h, 3, 1, 1, t);
    layers.push(stem);
    let mut cin = 64;
    for (stage, &cout) in [64usize, 128, 256, 512].iter().enumerate() {
        for block in 0..2 {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            let (l1, out) = conv_layer(
                format!("layer{}.{}.conv1", stage + 1, block),
                cin,
                cout,
                size,
                3,
                stride,
                1,
                t,
            );
            layers.push(l1);
            let (l2, _) = conv_layer(
                format!("layer{}.{}.conv2", stage + 1, block),
                cout,
                cout,
                out,
                3,
                1,
                1,
                t,
            );
            layers.push(l2);
            if stride != 1 || cin != cout {
                let (ds, _) = conv_layer(
                    format!("layer{}.{}.downsample", stage + 1, block),
                    cin,
                    cout,
                    size,
                    1,
                    stride,
                    0,
                    t,
                );
                layers.push(ds);
            }
            cin = cout;
            size = out;
        }
    }
    layers.push(LayerSpec::new(
        "fc",
        LayerKind::Linear,
        GemmShape::new(t, 512, dataset.classes()),
    ));
    layers
}

/// Transformer configuration.
struct TransformerCfg {
    name: &'static str,
    blocks: usize,
    dim: usize,
    ffn_dim: usize,
    heads: usize,
    /// Patch-grid divisor for vision datasets (`L = (h/div)²`).
    patch_div: usize,
    /// Whether the model has a convolutional patch-embedding stem (SPS).
    conv_stem: bool,
}

const SPIKFORMER_CFG: TransformerCfg = TransformerCfg {
    name: "spikformer",
    blocks: 4,
    dim: 384,
    ffn_dim: 4 * 384,
    heads: 12,
    patch_div: 4,
    conv_stem: true,
};

const SDT_CFG: TransformerCfg = TransformerCfg {
    name: "sdt",
    blocks: 2,
    dim: 512,
    ffn_dim: 4 * 512,
    heads: 8,
    patch_div: 4,
    conv_stem: true,
};

const SPIKEBERT_CFG: TransformerCfg = TransformerCfg {
    name: "spikebert",
    blocks: 12,
    dim: 768,
    ffn_dim: 3072,
    heads: 12,
    patch_div: 4,
    conv_stem: false,
};

const SPIKINGBERT_CFG: TransformerCfg = TransformerCfg {
    name: "spikingbert",
    blocks: 4,
    dim: 768,
    ffn_dim: 3072,
    heads: 12,
    patch_div: 4,
    conv_stem: false,
};

fn transformer(dataset: Dataset, cfg: &TransformerCfg, t: usize) -> Vec<LayerSpec> {
    let mut layers = Vec::new();
    let l = match dataset.seq_len() {
        Some(l) => l,
        None => {
            let (_, h, _) = image_shape(dataset);
            (h / cfg.patch_div) * (h / cfg.patch_div)
        }
    };
    if cfg.conv_stem {
        // Spiking patch splitting: a small conv stack halving resolution.
        let (c0, h, _) = image_shape(dataset);
        let mut cin = c0;
        let mut size = h;
        for (i, cout) in [cfg.dim / 8, cfg.dim / 4, cfg.dim / 2, cfg.dim]
            .into_iter()
            .enumerate()
        {
            let (conv, out) = conv_layer(
                format!("{}.sps{}", cfg.name, i),
                cin,
                cout,
                size,
                3,
                1,
                1,
                t,
            );
            layers.push(conv);
            cin = cout;
            if size > h / cfg.patch_div {
                size = out / 2; // max-pool between SPS stages
            }
        }
    }
    let m = t * l;
    let head_dim = cfg.dim / cfg.heads;
    for b in 0..cfg.blocks {
        for proj in ["q", "k", "v"] {
            layers.push(LayerSpec::new(
                format!("{}.block{b}.{proj}_proj", cfg.name),
                LayerKind::Linear,
                GemmShape::new(m, cfg.dim, cfg.dim),
            ));
        }
        // Q·Kᵀ across all heads: Σ_h (T·L × d_h × L)  ⇔  (T·L × dim × L).
        layers.push(LayerSpec::new(
            format!("{}.block{b}.attn_qk", cfg.name),
            LayerKind::Attention,
            GemmShape::new(m, cfg.dim, l),
        ));
        // attn·V across all heads: Σ_h (T·L × L × d_h)  ⇔  (T·L × L·heads, d_h)
        // modelled as (T·L × L × dim/heads) per head aggregated.
        layers.push(LayerSpec::new(
            format!("{}.block{b}.attn_v", cfg.name),
            LayerKind::Attention,
            GemmShape::new(m, l * cfg.heads, head_dim),
        ));
        layers.push(LayerSpec::new(
            format!("{}.block{b}.out_proj", cfg.name),
            LayerKind::Linear,
            GemmShape::new(m, cfg.dim, cfg.dim),
        ));
        layers.push(LayerSpec::new(
            format!("{}.block{b}.ffn1", cfg.name),
            LayerKind::Linear,
            GemmShape::new(m, cfg.dim, cfg.ffn_dim),
        ));
        layers.push(LayerSpec::new(
            format!("{}.block{b}.ffn2", cfg.name),
            LayerKind::Linear,
            GemmShape::new(m, cfg.ffn_dim, cfg.dim),
        ));
    }
    layers.push(LayerSpec::new(
        format!("{}.classifier", cfg.name),
        LayerKind::Linear,
        GemmShape::new(t, cfg.dim, dataset.classes()),
    ));
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_has_13_convs() {
        let layers = Architecture::Vgg16.layers(Dataset::Cifar100);
        let convs = layers.iter().filter(|l| l.kind == LayerKind::Conv).count();
        assert_eq!(convs, 13);
        // First conv: M = 4·32·32, K = 3·9, N = 64.
        assert_eq!(layers[0].shape, GemmShape::new(4096, 27, 64));
        // Final FC maps to 100 classes.
        assert_eq!(layers.last().unwrap().shape.n, 100);
    }

    #[test]
    fn resnet18_has_expected_conv_count() {
        let layers = Architecture::ResNet18.layers(Dataset::Cifar10);
        let convs = layers.iter().filter(|l| l.kind == LayerKind::Conv).count();
        // stem + 16 block convs + 3 downsample 1×1.
        assert_eq!(convs, 20);
    }

    #[test]
    fn spikformer_block_structure() {
        let layers = Architecture::Spikformer.layers(Dataset::Cifar10);
        let attn = layers
            .iter()
            .filter(|l| l.kind == LayerKind::Attention)
            .count();
        assert_eq!(attn, 2 * 4); // 2 attention GeMMs per block, 4 blocks
                                 // QKV projection: M = T·L = 4·64 = 256, K = N = 384.
        let q = layers
            .iter()
            .find(|l| l.name.contains("block0.q_proj"))
            .unwrap();
        assert_eq!(q.shape, GemmShape::new(256, 384, 384));
    }

    #[test]
    fn spikebert_is_large() {
        let layers = Architecture::SpikeBert.layers(Dataset::Sst2);
        let total: u64 = layers.iter().map(|l| l.shape.dense_ops()).sum();
        let small: u64 = Architecture::LeNet5
            .layers(Dataset::Mnist)
            .iter()
            .map(|l| l.shape.dense_ops())
            .sum();
        assert!(total > 50 * small);
        // 12 blocks × 8 GeMMs + classifier.
        assert_eq!(layers.len(), 12 * 8 + 1);
    }

    #[test]
    fn scaling_reduces_m_only() {
        let full = Architecture::Vgg16.layers(Dataset::Cifar10);
        let half = Architecture::Vgg16.layers_scaled(Dataset::Cifar10, 0.5);
        for (f, h) in full.iter().zip(&half) {
            assert_eq!(f.shape.k, h.shape.k);
            assert_eq!(f.shape.n, h.shape.n);
            assert!(h.shape.m <= f.shape.m);
            assert!(h.shape.m >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "not an image dataset")]
    fn cnn_on_text_panics() {
        let _ = Architecture::Vgg16.layers(Dataset::Sst2);
    }

    #[test]
    fn nlp_transformer_on_text_works() {
        let layers = Architecture::SpikingBert.layers(Dataset::Mnli);
        assert!(!layers.is_empty());
        // M = T·L = 4·256.
        let q = layers.iter().find(|l| l.name.contains("q_proj")).unwrap();
        assert_eq!(q.shape.m, 1024);
    }

    #[test]
    fn all_architectures_lower_on_a_valid_dataset() {
        for arch in Architecture::all() {
            let ds = if arch.is_transformer()
                && !matches!(arch, Architecture::Spikformer | Architecture::Sdt)
            {
                Dataset::Sst2
            } else {
                Dataset::Cifar10
            };
            let layers = arch.layers(ds);
            assert!(!layers.is_empty(), "{arch}");
            for l in &layers {
                assert!(
                    l.shape.m > 0 && l.shape.k > 0 && l.shape.n > 0,
                    "{}",
                    l.name
                );
            }
        }
    }
}

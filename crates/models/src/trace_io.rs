//! Compact binary serialization of activation traces.
//!
//! The paper's artifact ships pre-extracted sparse activation matrices and
//! replays them through the simulator. This module provides the equivalent:
//! a versioned, bit-packed on-disk format for [`ModelTrace`]s so expensive
//! calibrated generation can be done once and replayed across experiments.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "PSPT" | version u32 | layer count u32
//! per layer: name len u32 | name bytes | kind u8 | m u64 | k u64 | n u64
//!            | packed row bits (⌈k/64⌉ u64 limbs per row)
//! ```

use crate::layer::{GemmShape, LayerKind, LayerSpec};
use crate::workload::{LayerTrace, ModelTrace, Workload};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use spikemat::{BitRow, SpikeMatrix};
use std::fmt;

const MAGIC: &[u8; 4] = b"PSPT";
const VERSION: u32 = 1;

/// Smallest possible serialized layer: empty name (4-byte length), kind
/// byte, and the three u64 shape fields. Used to bound a declared layer
/// count against the bytes actually present before allocating.
const MIN_LAYER_BYTES: usize = 4 + 1 + 24;

/// Rows a zero-width (`k == 0`) layer may declare. Such rows occupy zero
/// bytes on the wire, so the length check cannot bound them; a hostile
/// header could otherwise demand billions of empty rows.
const MAX_EMPTY_ROWS: usize = 1 << 20;

/// Errors raised while decoding a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceIoError {
    /// The buffer does not start with the `PSPT` magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The buffer ended before the declared contents.
    Truncated,
    /// A field held an invalid value (e.g. unknown layer kind).
    Corrupt(&'static str),
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::BadMagic => write!(f, "not a Prosperity trace (bad magic)"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::Truncated => write!(f, "trace buffer truncated"),
            TraceIoError::Corrupt(what) => write!(f, "corrupt trace field: {what}"),
        }
    }
}

impl std::error::Error for TraceIoError {}

/// Serializes the layers of a trace into the compact binary format.
///
/// The originating [`Workload`] is not embedded; pair the bytes with the
/// workload descriptor (it is `serde`-serializable) in your own container.
pub fn encode_layers(trace: &ModelTrace) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(trace.layers.len() as u32);
    for layer in &trace.layers {
        let name = layer.spec.name.as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
        buf.put_u8(match layer.spec.kind {
            LayerKind::Conv => 0,
            LayerKind::Linear => 1,
            LayerKind::Attention => 2,
        });
        buf.put_u64_le(layer.spec.shape.m as u64);
        buf.put_u64_le(layer.spec.shape.k as u64);
        buf.put_u64_le(layer.spec.shape.n as u64);
        for row in layer.spikes.row_slice() {
            for &limb in row.limbs() {
                buf.put_u64_le(limb);
            }
        }
    }
    buf.freeze()
}

/// Decodes layers previously written by [`encode_layers`], re-attaching the
/// given workload descriptor.
pub fn decode_layers(mut buf: Bytes, workload: Workload) -> Result<ModelTrace, TraceIoError> {
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(TraceIoError::Truncated)
        } else {
            Ok(())
        }
    };
    need(&buf, 4)?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    need(&buf, 8)?;
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    let layer_count = buf.get_u32_le() as usize;
    // Bound the declared count by the bytes actually present before
    // trusting it with an allocation: a hostile header can declare 2^32
    // layers in a 12-byte buffer.
    if layer_count > buf.remaining() / MIN_LAYER_BYTES {
        return Err(TraceIoError::Truncated);
    }
    let mut layers = Vec::with_capacity(layer_count);
    for _ in 0..layer_count {
        need(&buf, 4)?;
        let name_len = buf.get_u32_le() as usize;
        need(&buf, name_len + 1 + 24)?;
        let name_bytes = buf.copy_to_bytes(name_len);
        let name = std::str::from_utf8(&name_bytes)
            .map_err(|_| TraceIoError::Corrupt("layer name"))?
            .to_string();
        let kind = match buf.get_u8() {
            0 => LayerKind::Conv,
            1 => LayerKind::Linear,
            2 => LayerKind::Attention,
            _ => return Err(TraceIoError::Corrupt("layer kind")),
        };
        let m = buf.get_u64_le() as usize;
        let k = buf.get_u64_le() as usize;
        let n = buf.get_u64_le() as usize;
        let limbs_per_row = k.div_ceil(64);
        // `k == 0` rows are zero bytes on the wire, so the byte-count check
        // below is vacuous for them; cap the row count explicitly.
        if limbs_per_row == 0 && m > MAX_EMPTY_ROWS {
            return Err(TraceIoError::Corrupt("row count"));
        }
        let payload = m
            .checked_mul(limbs_per_row)
            .and_then(|limbs| limbs.checked_mul(8))
            .ok_or(TraceIoError::Corrupt("layer geometry"))?;
        need(&buf, payload)?;
        let mut rows = Vec::with_capacity(m);
        for _ in 0..m {
            let mut row = BitRow::zeros(k);
            for limb_idx in 0..limbs_per_row {
                let limb = buf.get_u64_le();
                for bit in 0..64 {
                    let j = limb_idx * 64 + bit;
                    if j < k && (limb >> bit) & 1 == 1 {
                        row.set(j, true);
                    }
                }
            }
            rows.push(row);
        }
        layers.push(LayerTrace {
            spec: LayerSpec::new(name, kind, GemmShape::new(m, k, n)),
            spikes: SpikeMatrix::from_rows(rows),
        });
    }
    Ok(ModelTrace { workload, layers })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo::Architecture;
    use crate::Dataset;

    fn sample_trace() -> ModelTrace {
        Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 21).generate_trace(0.2)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample_trace();
        let bytes = encode_layers(&trace);
        let decoded = decode_layers(bytes, trace.workload).expect("decode");
        assert_eq!(decoded.layers.len(), trace.layers.len());
        for (a, b) in trace.layers.iter().zip(&decoded.layers) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.spikes, b.spikes);
        }
    }

    #[test]
    fn roundtrip_property_over_seeded_random_traces() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Arbitrary layer lists (ragged widths, limb-boundary K values,
        // empty layers, zero-row layers) must survive encode → decode
        // bit-for-bit — not just the shapes the zoo happens to produce.
        let workload = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 1);
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(0xC0DEC ^ seed);
            let n_layers = rng.gen_range(0..5);
            let layers: Vec<LayerTrace> = (0..n_layers)
                .map(|i| {
                    let m = rng.gen_range(0..20);
                    let k = *[0usize, 1, 7, 63, 64, 65, 100]
                        .get(rng.gen_range(0..7))
                        .unwrap();
                    let n = rng.gen_range(0..10);
                    let kind = match rng.gen_range(0..3) {
                        0 => LayerKind::Conv,
                        1 => LayerKind::Linear,
                        _ => LayerKind::Attention,
                    };
                    LayerTrace {
                        spec: LayerSpec::new(format!("layer{i}"), kind, GemmShape::new(m, k, n)),
                        spikes: SpikeMatrix::random(m, k, rng.gen_range(0.0..0.8), &mut rng),
                    }
                })
                .collect();
            let trace = ModelTrace { workload, layers };
            let bytes = encode_layers(&trace);
            let decoded = decode_layers(bytes, workload).expect("decode");
            assert_eq!(decoded.layers.len(), trace.layers.len(), "seed {seed}");
            for (a, b) in trace.layers.iter().zip(&decoded.layers) {
                assert_eq!(a.spec, b.spec, "seed {seed}");
                assert_eq!(a.spikes, b.spikes, "seed {seed}");
            }
        }
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        // Cutting the buffer at *any* byte must yield Err (almost always
        // Truncated; a cut inside the magic gives BadMagic) — never a panic
        // and never a silently short decode.
        use rand::SeedableRng;
        let workload = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let trace = ModelTrace {
            workload,
            layers: vec![LayerTrace {
                spec: LayerSpec::new("l0", LayerKind::Linear, GemmShape::new(3, 70, 2)),
                spikes: SpikeMatrix::random(3, 70, 0.5, &mut rng),
            }],
        };
        let bytes = encode_layers(&trace);
        for cut in 0..bytes.len() {
            let sliced = bytes.slice(0..cut);
            assert!(
                decode_layers(sliced, workload).is_err(),
                "cut at {cut}/{} must fail",
                bytes.len()
            );
        }
        assert!(decode_layers(bytes, workload).is_ok());
    }

    #[test]
    fn bad_magic_rejected() {
        let trace = sample_trace();
        let mut bytes = encode_layers(&trace).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            decode_layers(Bytes::from(bytes), trace.workload),
            Err(TraceIoError::BadMagic)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let trace = sample_trace();
        let mut bytes = encode_layers(&trace).to_vec();
        bytes[4] = 99;
        assert!(matches!(
            decode_layers(Bytes::from(bytes), trace.workload),
            Err(TraceIoError::BadVersion(_))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let trace = sample_trace();
        let bytes = encode_layers(&trace);
        for cut in [3usize, 10, bytes.len() / 2, bytes.len() - 1] {
            let sliced = bytes.slice(0..cut);
            assert!(
                decode_layers(sliced, trace.workload).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupt_kind_rejected() {
        let trace = sample_trace();
        let mut bytes = encode_layers(&trace).to_vec();
        // kind byte sits after magic(4) + version(4) + count(4) + name_len(4)
        // + name.
        let name_len = trace.layers[0].spec.name.len();
        bytes[16 + name_len] = 7;
        assert!(matches!(
            decode_layers(Bytes::from(bytes), trace.workload),
            Err(TraceIoError::Corrupt("layer kind"))
        ));
    }

    #[test]
    fn hostile_layer_count_is_rejected_before_allocating() {
        // A 12-byte header declaring u32::MAX layers must fail fast with
        // Truncated instead of reserving gigabytes.
        let mut bytes = BytesMut::new();
        bytes.put_slice(MAGIC);
        bytes.put_u32_le(VERSION);
        bytes.put_u32_le(u32::MAX);
        let workload = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 3);
        assert!(matches!(
            decode_layers(bytes.freeze(), workload),
            Err(TraceIoError::Truncated)
        ));
    }

    #[test]
    fn hostile_shape_fields_are_rejected_without_overflow_or_oom() {
        // Encode one layer, then rewrite its m/k fields with hostile
        // values: (a) m·⌈k/64⌉·8 overflowing usize must surface as Corrupt,
        // not wrap around and pass the length check; (b) k == 0 with an
        // enormous m must be capped, because empty rows occupy no payload
        // bytes and would otherwise allocate unboundedly.
        let workload = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 4);
        let trace = ModelTrace {
            workload,
            layers: vec![LayerTrace {
                spec: LayerSpec::new("l0", LayerKind::Linear, GemmShape::new(2, 64, 2)),
                spikes: SpikeMatrix::zeros(2, 64),
            }],
        };
        let base = encode_layers(&trace).to_vec();
        // m sits after magic(4)+version(4)+count(4)+name_len(4)+name(2)+kind(1).
        let m_off = 19;
        let k_off = m_off + 8;

        let mut overflowing = base.clone();
        overflowing[m_off..m_off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_layers(Bytes::from(overflowing), workload),
            Err(TraceIoError::Corrupt("layer geometry"))
        ));

        let mut empty_rows = base.clone();
        empty_rows[m_off..m_off + 8].copy_from_slice(&(u64::MAX).to_le_bytes());
        empty_rows[k_off..k_off + 8].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode_layers(Bytes::from(empty_rows), workload),
            Err(TraceIoError::Corrupt("row count"))
        ));
    }

    #[test]
    fn random_header_mutations_never_panic() {
        // Fuzz-lite: flip bytes all over the serialized form. Any result is
        // acceptable except a panic or runaway allocation (the harness would
        // OOM/abort on either).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let trace = sample_trace();
        let base = encode_layers(&trace).to_vec();
        let mut rng = StdRng::seed_from_u64(0xFEED);
        for _ in 0..400 {
            let mut bytes = base.clone();
            for _ in 0..rng.gen_range(1..4) {
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen();
            }
            let _ = decode_layers(Bytes::from(bytes), trace.workload);
        }
    }

    #[test]
    fn encoding_is_compact() {
        // Packed bits: roughly M·K/8 bytes per layer plus headers.
        let trace = sample_trace();
        let bytes = encode_layers(&trace);
        let raw_bits: usize = trace
            .layers
            .iter()
            .map(|l| l.spikes.rows() * l.spikes.cols())
            .sum();
        // Limb padding can cost up to 64 bits per row on narrow layers, so
        // allow ~4 bits per spike bit; a textual/byte format would be ≥ 8.
        assert!(
            bytes.len() < raw_bits / 2,
            "packed format too large: {} bytes for {} bits",
            bytes.len(),
            raw_bits
        );
    }
}

//! The paper's model × dataset evaluation suite.
//!
//! Each [`Workload`] pairs an architecture and dataset with the
//! *paper-reported* bit and product densities ([`PaperRef`]); the trace
//! generator is calibrated against these so the reproduced experiments
//! exercise the same sparsity regime as the paper's measurements. Reference
//! densities are taken from Fig. 11 (read off the chart), anchored by the
//! exact values the text quotes: VGG-16/CIFAR-100 = 34.21 % → 2.79 %,
//! SpikingBERT/SST-2 = 20.49 % → 2.98 %, SpikeBERT mean = 13.19 % → 1.23 %.

use crate::dataset::Dataset;
use crate::layer::LayerSpec;
use crate::tracegen::{TraceGen, TraceGenParams};
use crate::zoo::Architecture;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use spikemat::gemm::WeightMatrix;
use spikemat::{SpikeMatrix, TileShape};

/// Paper-reported reference values for one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperRef {
    /// Bit density of the activations (Fig. 11, blue bars).
    pub bit_density: f64,
    /// Product density under the default tile geometry (Fig. 11, ours).
    pub pro_density: f64,
}

impl PaperRef {
    /// The paper's density-reduction factor (bit / product).
    pub fn reduction(&self) -> f64 {
        self.bit_density / self.pro_density
    }
}

/// One evaluated model × dataset pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Model architecture.
    pub arch: Architecture,
    /// Dataset (fixes input geometry / sequence length).
    pub dataset: Dataset,
    /// Paper-reported densities used for calibration and comparison.
    pub paper: PaperRef,
    /// RNG seed for reproducible trace generation.
    pub seed: u64,
}

/// A generated activation trace for one layer.
#[derive(Debug, Clone)]
pub struct LayerTrace {
    /// The layer's shape descriptor.
    pub spec: LayerSpec,
    /// The generated binary activation matrix (`M × K`).
    pub spikes: SpikeMatrix,
}

impl LayerTrace {
    /// The row range of timestep `t` when `M` is the unrolled concatenation
    /// of `time_steps` per-step blocks (`M = T·L`; a scaled trace whose `M`
    /// is not an exact multiple gets `⌈M/T⌉`-row blocks with a short tail).
    ///
    /// # Panics
    ///
    /// Panics if `t >= time_steps` or `time_steps == 0`.
    pub fn timestep_rows(&self, t: usize, time_steps: usize) -> std::ops::Range<usize> {
        assert!(time_steps > 0, "time_steps must be positive");
        assert!(t < time_steps, "timestep {t} out of range ({time_steps})");
        let m = self.spikes.rows();
        let block = m.div_ceil(time_steps);
        (t * block).min(m)..((t + 1) * block).min(m)
    }

    /// Extracts timestep `t`'s spike block into a caller-owned matrix
    /// (resized in place) — the engine-friendly per-timestep view.
    pub fn timestep_spikes_into(&self, t: usize, time_steps: usize, out: &mut SpikeMatrix) {
        let rows = self.timestep_rows(t, time_steps);
        self.spikes
            .submatrix_into(rows.start, 0, rows.len(), self.spikes.cols(), out);
    }

    /// Deterministic synthetic integer weights for this layer (`K × N` from
    /// the layer shape, values in `[-127, 127]` seeded by `seed` and the
    /// layer name). We cannot ship trained weights; ProSparsity is exact for
    /// any integers, so benches and tests only need reproducibility.
    pub fn synthetic_weights(&self, seed: u64) -> WeightMatrix<i64> {
        let mix = self
            .spec
            .name
            .bytes()
            .fold(seed ^ 0x9E37_79B9_7F4A_7C15, |h, b| {
                (h.rotate_left(7) ^ b as u64).wrapping_mul(0x100_0000_01B3)
            });
        let mut rng = StdRng::seed_from_u64(mix);
        WeightMatrix::from_fn(self.spec.shape.k, self.spec.shape.n, |_, _| {
            rng.gen_range(-127i64..=127)
        })
    }
}

/// A complete model trace: one spike matrix per spiking-GeMM layer.
#[derive(Debug, Clone)]
pub struct ModelTrace {
    /// The originating workload.
    pub workload: Workload,
    /// Per-layer traces in network order.
    pub layers: Vec<LayerTrace>,
}

impl ModelTrace {
    /// Total dense ops `Σ M·K·N` across layers.
    pub fn dense_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.spec.shape.dense_ops()).sum()
    }

    /// Iterates the trace's spiking GeMMs in network order as
    /// `(spec, spikes)` pairs; pair each spec with
    /// [`LayerTrace::synthetic_weights`] (or real weights) to feed an
    /// execution engine.
    pub fn iter_gemms(&self) -> impl Iterator<Item = (&LayerSpec, &SpikeMatrix)> {
        self.layers.iter().map(|l| (&l.spec, &l.spikes))
    }

    /// Number of SNN timesteps unrolled into every layer's `M` dimension.
    pub fn time_steps(&self) -> usize {
        self.workload.arch.time_steps()
    }

    /// A correlated sibling of this trace: per layer, each spike row is
    /// kept verbatim with probability `1 - divergence` and otherwise
    /// resampled at that layer's observed bit density. This models another
    /// tenant running the same model on a similar input — kept rows give a
    /// shared plan cache cross-request hits, resampled rows do not.
    ///
    /// # Panics
    ///
    /// Panics if `divergence` is outside `[0, 1]`.
    pub fn perturbed(&self, divergence: f64, seed: u64) -> ModelTrace {
        assert!(
            (0.0..=1.0).contains(&divergence),
            "divergence must be in [0,1]"
        );
        let layers = self
            .layers
            .iter()
            .enumerate()
            .map(|(li, layer)| {
                let mut rng = StdRng::seed_from_u64(seed ^ (li as u64).wrapping_mul(0x9E37));
                let density = layer.spikes.density();
                let mut spikes = layer.spikes.clone();
                for i in 0..spikes.rows() {
                    if !rng.gen_bool(divergence) {
                        continue;
                    }
                    for j in 0..spikes.cols() {
                        spikes.set(i, j, rng.gen_bool(density));
                    }
                }
                LayerTrace {
                    spec: layer.spec.clone(),
                    spikes,
                }
            })
            .collect();
        ModelTrace {
            workload: self.workload,
            layers,
        }
    }

    /// Matrix-wide bit density across all layers (spike-weighted).
    pub fn bit_density(&self) -> f64 {
        let (mut ones, mut cells) = (0u64, 0u64);
        for l in &self.layers {
            ones += l.spikes.total_spikes() as u64;
            cells += (l.spikes.rows() * l.spikes.cols()) as u64;
        }
        if cells == 0 {
            0.0
        } else {
            ones as f64 / cells as f64
        }
    }
}

impl Workload {
    /// Creates a workload with explicit paper references.
    pub fn new(arch: Architecture, dataset: Dataset, bit: f64, pro: f64, seed: u64) -> Self {
        Self {
            arch,
            dataset,
            paper: PaperRef {
                bit_density: bit,
                pro_density: pro,
            },
            seed,
        }
    }

    /// `"VGG16/CIFAR100"`-style display name.
    pub fn name(&self) -> String {
        format!("{}/{}", self.arch, self.dataset)
    }

    /// The model's layer list at full size.
    pub fn layers(&self) -> Vec<LayerSpec> {
        self.arch.layers(self.dataset)
    }

    /// Calibrated generator parameters for this workload's density regime.
    pub fn gen_params(&self) -> TraceGenParams {
        TraceGenParams::calibrate(
            self.paper.bit_density,
            self.paper.pro_density,
            TileShape::prosperity_default(),
            self.seed,
        )
    }

    /// Generates the full activation trace at `scale` (1.0 = paper size;
    /// smaller values subsample rows for fast tests/smoke runs).
    pub fn generate_trace(&self, scale: f64) -> ModelTrace {
        let params = self.gen_params();
        let gen = TraceGen::new(params);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let layers = self
            .arch
            .layers_scaled(self.dataset, scale)
            .into_iter()
            .map(|spec| {
                let spikes = gen.generate(spec.shape.m, spec.shape.k, &mut rng);
                LayerTrace { spec, spikes }
            })
            .collect();
        ModelTrace {
            workload: *self,
            layers,
        }
    }

    /// A multi-tenant batch of this workload: the base trace plus
    /// `tenants - 1` correlated siblings ([`ModelTrace::perturbed`] with
    /// the given `divergence`), the input set for cross-request batch
    /// serving through one shared plan cache.
    pub fn generate_tenant_traces(
        &self,
        scale: f64,
        tenants: usize,
        divergence: f64,
    ) -> Vec<ModelTrace> {
        if tenants == 0 {
            return Vec::new();
        }
        let base = self.generate_trace(scale);
        let mut out = Vec::with_capacity(tenants);
        for t in 1..tenants {
            out.push(base.perturbed(divergence, self.seed ^ ((t as u64) << 32)));
        }
        out.insert(0, base);
        out
    }

    /// The 16 model × dataset pairs of the end-to-end evaluation (Fig. 8).
    pub fn fig8_suite() -> Vec<Workload> {
        use Architecture as A;
        use Dataset as D;
        vec![
            Workload::new(A::Vgg16, D::Cifar10, 0.320, 0.027, 101),
            Workload::new(A::Vgg16, D::Cifar100, 0.3421, 0.0279, 102),
            Workload::new(A::ResNet18, D::Cifar10, 0.180, 0.026, 103),
            Workload::new(A::ResNet18, D::Cifar100, 0.200, 0.030, 104),
            Workload::new(A::Spikformer, D::Cifar10, 0.250, 0.040, 105),
            Workload::new(A::Spikformer, D::Cifar10Dvs, 0.220, 0.035, 106),
            Workload::new(A::Spikformer, D::Cifar100, 0.260, 0.045, 107),
            Workload::new(A::Sdt, D::Cifar10, 0.150, 0.030, 108),
            Workload::new(A::Sdt, D::Cifar10Dvs, 0.130, 0.028, 109),
            Workload::new(A::Sdt, D::Cifar100, 0.160, 0.033, 110),
            Workload::new(A::SpikeBert, D::Sst2, 0.134, 0.0125, 111),
            Workload::new(A::SpikeBert, D::Mr, 0.132, 0.0130, 112),
            Workload::new(A::SpikeBert, D::Sst5, 0.130, 0.0066, 113),
            Workload::new(A::SpikingBert, D::Sst2, 0.2049, 0.0298, 114),
            Workload::new(A::SpikingBert, D::Qqp, 0.210, 0.031, 115),
            Workload::new(A::SpikingBert, D::Mnli, 0.220, 0.032, 116),
        ]
    }

    /// The density-comparison suite of Fig. 11 (Fig. 8 plus the small CNNs).
    pub fn fig11_suite() -> Vec<Workload> {
        use Architecture as A;
        use Dataset as D;
        let mut suite = vec![
            Workload::new(A::Vgg16, D::Cifar10Dvs, 0.250, 0.034, 120),
            Workload::new(A::Vgg9, D::Cifar10, 0.310, 0.030, 121),
            Workload::new(A::Vgg9, D::Cifar100, 0.330, 0.035, 122),
            Workload::new(A::LeNet5, D::Mnist, 0.480, 0.085, 123),
        ];
        suite.extend(Self::fig8_suite());
        suite
    }

    /// The VGG-16 / CIFAR-100 workload used by Tables I, II and IV.
    pub fn vgg16_cifar100() -> Workload {
        Self::fig8_suite()[1]
    }

    /// The SpikingBERT / SST-2 workload used by Table II.
    pub fn spikingbert_sst2() -> Workload {
        Self::fig8_suite()[13]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_sizes() {
        assert_eq!(Workload::fig8_suite().len(), 16);
        assert_eq!(Workload::fig11_suite().len(), 20);
    }

    #[test]
    fn anchor_densities_match_paper_text() {
        let v = Workload::vgg16_cifar100();
        assert!((v.paper.bit_density - 0.3421).abs() < 1e-9);
        assert!((v.paper.pro_density - 0.0279).abs() < 1e-9);
        let s = Workload::spikingbert_sst2();
        assert!((s.paper.bit_density - 0.2049).abs() < 1e-9);
        assert!((s.paper.pro_density - 0.0298).abs() < 1e-9);
    }

    #[test]
    fn reduction_factors_are_plausible() {
        // Paper: up to 19.7× and average 5.0× density reduction.
        let suite = Workload::fig11_suite();
        let max = suite
            .iter()
            .map(|w| w.paper.reduction())
            .fold(0.0f64, f64::max);
        assert!(max > 15.0 && max < 25.0, "max reduction {max}");
        let mean: f64 = suite.iter().map(|w| w.paper.reduction()).sum::<f64>() / suite.len() as f64;
        assert!(mean > 4.0 && mean < 12.0, "mean reduction {mean}");
    }

    #[test]
    fn trace_generation_is_reproducible() {
        let w = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 42);
        let a = w.generate_trace(0.25);
        let b = w.generate_trace(0.25);
        assert_eq!(a.layers.len(), b.layers.len());
        for (x, y) in a.layers.iter().zip(&b.layers) {
            assert_eq!(x.spikes, y.spikes);
        }
    }

    #[test]
    fn timestep_views_cover_layer_exactly() {
        let w = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 5);
        let t = w.generate_trace(0.3);
        let steps = t.time_steps();
        assert!(steps > 0);
        for layer in &t.layers {
            let mut covered = 0;
            let mut buf = SpikeMatrix::zeros(0, 0);
            for s in 0..steps {
                let range = layer.timestep_rows(s, steps);
                assert_eq!(range.start, covered);
                covered = range.end;
                layer.timestep_spikes_into(s, steps, &mut buf);
                assert_eq!(buf.rows(), range.len());
                assert_eq!(buf.cols(), layer.spikes.cols());
                for (r, src) in range.clone().enumerate() {
                    assert_eq!(buf.row(r), layer.spikes.row(src));
                }
            }
            assert_eq!(covered, layer.spikes.rows());
        }
    }

    #[test]
    fn iter_gemms_matches_layers() {
        let w = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 5);
        let t = w.generate_trace(0.2);
        let pairs: Vec<_> = t.iter_gemms().collect();
        assert_eq!(pairs.len(), t.layers.len());
        assert_eq!(pairs[0].0, &t.layers[0].spec);
    }

    #[test]
    fn synthetic_weights_are_reproducible_and_shaped() {
        let w = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 5);
        let t = w.generate_trace(0.2);
        let l = &t.layers[0];
        let a = l.synthetic_weights(9);
        let b = l.synthetic_weights(9);
        let c = l.synthetic_weights(10);
        assert_eq!((a.rows(), a.cols()), (l.spec.shape.k, l.spec.shape.n));
        assert_eq!(a, b);
        assert_ne!(a, c); // different seed, different weights
    }

    #[test]
    fn perturbed_trace_keeps_most_rows_and_all_shapes() {
        let w = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 31);
        let base = w.generate_trace(0.3);
        let sib = base.perturbed(0.2, 99);
        assert_eq!(sib.layers.len(), base.layers.len());
        let (mut kept, mut total) = (0usize, 0usize);
        for (a, b) in base.layers.iter().zip(&sib.layers) {
            assert_eq!(a.spec, b.spec);
            assert_eq!(a.spikes.rows(), b.spikes.rows());
            assert_eq!(a.spikes.cols(), b.spikes.cols());
            for i in 0..a.spikes.rows() {
                total += 1;
                kept += usize::from(a.spikes.row(i) == b.spikes.row(i));
            }
        }
        let rate = kept as f64 / total as f64;
        assert!(rate > 0.7 && rate < 0.95, "kept-row rate {rate}");
        // Zero divergence is an exact copy.
        let same = base.perturbed(0.0, 7);
        for (a, b) in base.layers.iter().zip(&same.layers) {
            assert_eq!(a.spikes, b.spikes);
        }
    }

    #[test]
    fn tenant_traces_are_reproducible_and_distinct() {
        let w = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.4, 0.1, 31);
        let a = w.generate_tenant_traces(0.25, 3, 0.3);
        let b = w.generate_tenant_traces(0.25, 3, 0.3);
        assert_eq!(a.len(), 3);
        assert!(w.generate_tenant_traces(0.25, 0, 0.3).is_empty());
        for (x, y) in a.iter().zip(&b) {
            for (lx, ly) in x.layers.iter().zip(&y.layers) {
                assert_eq!(lx.spikes, ly.spikes);
            }
        }
        // Tenants differ from the base (divergence > 0 on non-trivial rows).
        let differs = a[1]
            .layers
            .iter()
            .zip(&a[0].layers)
            .any(|(s, b)| s.spikes != b.spikes);
        assert!(differs, "tenant 1 should diverge from the base");
    }

    #[test]
    fn trace_density_tracks_paper_bit_density() {
        let w = Workload::new(Architecture::LeNet5, Dataset::Mnist, 0.45, 0.12, 9);
        let t = w.generate_trace(0.5);
        assert!(
            (t.bit_density() - 0.45).abs() < 0.08,
            "density {}",
            t.bit_density()
        );
        assert!(t.dense_ops() > 0);
    }
}

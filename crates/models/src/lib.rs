//! SNN model zoo and calibrated activation-trace generation.
//!
//! The paper evaluates Prosperity on spiking CNNs (VGG-16, VGG-9, LeNet-5,
//! ResNet-18) and spiking transformers (Spikformer, Spike-driven Transformer,
//! SpikeBERT, SpikingBERT) across CV and NLP datasets, extracting activation
//! traces from PyTorch runs. We cannot ship trained PyTorch models, so this
//! crate substitutes a **calibrated synthetic trace generator**
//! ([`tracegen`]): spike matrices whose bit density matches the paper's
//! reported per-workload densities and whose inter-row combinatorial
//! similarity is tuned so product density lands in the paper's reported band
//! (see DESIGN.md §4 for the substitution argument).
//!
//! Contents:
//!
//! * [`dataset`] — dataset descriptors (input geometry, sequence length).
//! * [`layer`] — per-layer spiking-GeMM shape descriptors.
//! * [`zoo`] — architecture definitions lowering every model to its list of
//!   spiking GeMMs (convolutions via im2col shape arithmetic).
//! * [`tracegen`] — the synthetic spike-matrix generator and its calibrator.
//! * [`trace_io`] — compact binary (de)serialization of generated traces.
//! * [`workload`] — the paper's model × dataset evaluation suite with
//!   per-workload paper-reference densities.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod layer;
pub mod trace_io;
pub mod tracegen;
pub mod workload;
pub mod zoo;

pub use dataset::Dataset;
pub use layer::{GemmShape, LayerKind, LayerSpec};
pub use tracegen::{TraceGen, TraceGenParams};
pub use workload::{PaperRef, Workload};
pub use zoo::Architecture;

//! Per-layer spiking-GeMM shape descriptors.

use serde::{Deserialize, Serialize};

/// The `(M, K, N)` shape of one spiking GeMM.
///
/// `M` already includes the unrolled time steps (`M = T·L` or `T·OH·OW`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmShape {
    /// Spike-matrix rows.
    pub m: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

impl GemmShape {
    /// Creates a shape.
    pub fn new(m: usize, k: usize, n: usize) -> Self {
        Self { m, k, n }
    }

    /// Dense scalar-operation count `M·K·N`.
    pub fn dense_ops(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }
}

/// What kind of network operation a spiking GeMM was lowered from.
///
/// The kind matters for baseline support: prior SNN ASICs handle
/// convolutions and linear projections but not the attention GeMMs of
/// spiking transformers (paper Sec. VII-A runs PTB/SATO/MINT on linear
/// layers only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Convolution lowered by im2col.
    Conv,
    /// Fully connected / linear projection (incl. QKV, FFN).
    Linear,
    /// Spiking attention GeMM (`Q·Kᵀ` or `attn·V`), binary × binary.
    Attention,
}

/// One spiking-GeMM layer of a model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Human-readable layer name (e.g. `conv3_2`, `block5.ffn1`).
    pub name: String,
    /// Operation kind.
    pub kind: LayerKind,
    /// GeMM shape with time steps unrolled into `M`.
    pub shape: GemmShape,
}

impl LayerSpec {
    /// Creates a layer spec.
    pub fn new(name: impl Into<String>, kind: LayerKind, shape: GemmShape) -> Self {
        Self {
            name: name.into(),
            kind,
            shape,
        }
    }

    /// `true` if prior SNN accelerators (PTB/SATO/MINT/Stellar) support this
    /// layer natively; attention GeMMs are not supported (Sec. II-B).
    pub fn supported_by_prior_asics(&self) -> bool {
        !matches!(self.kind, LayerKind::Attention)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_ops_product() {
        assert_eq!(GemmShape::new(4, 5, 6).dense_ops(), 120);
    }

    #[test]
    fn attention_unsupported_by_prior_asics() {
        let l = LayerSpec::new("attn.qk", LayerKind::Attention, GemmShape::new(1, 1, 1));
        assert!(!l.supported_by_prior_asics());
        let c = LayerSpec::new("conv1", LayerKind::Conv, GemmShape::new(1, 1, 1));
        assert!(c.supported_by_prior_asics());
    }
}

//! Product Sparsity (ProSparsity) — the primary contribution of the paper
//! *Prosperity: Accelerating Spiking Neural Networks via Product Sparsity*
//! (HPCA 2025).
//!
//! Bit sparsity skips the zero bits of a binary spike matrix. Product
//! sparsity goes further: when spike row `S_j` is a subset of spike row `S_i`
//! (*Partial Match*) or equal to it (*Exact Match*), the inner-product result
//! of `S_j` can be **reused** as the starting partial sum of `S_i`, leaving
//! only the difference bits `S_i ⊕ S_j` to accumulate. Across a tile this
//! collapses the redundant combinatorial structure of SNN activations — e.g.
//! SpikeBERT drops from 13.19 % bit density to 1.23 % product density.
//!
//! Pipeline of this crate, mirroring the hardware stages of the PPU:
//!
//! 1. [`detect`] — find all subset candidates for each row (the Detector's
//!    TCAM search) and each row's popcount (temporal information).
//! 2. [`prune`] — apply the paper's pruning rules to select exactly one
//!    prefix per row and emit the XOR ProSparsity pattern (the Pruner).
//! 3. [`forest`] — the resulting one-prefix structure as a ProSparsity
//!    forest, with validation and depth statistics.
//! 4. [`order`] — temporal-information generation: the overhead-free stable
//!    sort by popcount, and the slow forest-walk order used as the ablation
//!    baseline (the Dispatcher).
//! 5. [`plan`] / [`exec`] — tile-level meta information for a whole spiking
//!    GeMM and a lossless executor that replays it.
//! 6. [`multi_prefix`] — the two-prefix design-space variant of Table II.
//! 7. [`attention`] — spiking attention (`Q·Kᵀ`, `attn·V`) lowered onto the
//!    same ProSparsity pipeline (transformer support, Sec. IV).
//! 8. [`policy`] — prefix-selection policy ablation (largest-subset vs
//!    cheaper alternatives; EM-only / PM-only contribution split).
//! 9. [`engine`] — the serving runtime, a layered module tree
//!    (`engine::{cache, shared, pool, session, batch, stats}`): reusable
//!    [`Session`]s run whole models through the kernels with a tile-level
//!    plan cache (temporally correlated tiles skip planning), pooled
//!    buffers, and zero steady-state allocation; a sharded
//!    [`SharedPlanCache`] lets concurrent sessions reuse each other's
//!    plans, a [`BatchScheduler`] interleaves many traces through it, and
//!    an adaptive admission policy protects uncorrelated streams from
//!    cache-bookkeeping overhead.
//!
//! # Losslessness
//!
//! ProSparsity is algorithm-agnostic and exact: for integer weights,
//! [`exec::prosparsity_gemm`] returns bit-for-bit the same output as
//! [`spikemat::gemm::spiking_gemm`]. This invariant is property-tested.
//!
//! # Kernel performance
//!
//! Planning and execution are the software hot path and are written to run
//! as fast as the hardware allows:
//!
//! * the planner fuses Detector + Pruner into a word-parallel early-exit
//!   scan (see [`plan`]), with `detect`/`prune` kept as the oracle;
//! * the executor accumulates into a flat per-row-tile arena with no heap
//!   allocation inside the tile loop (see [`exec`]);
//! * with the `parallel` feature (**on by default**) both stages distribute
//!   independent tiles / row-tiles across threads via `rayon`, with
//!   bit-identical results — serial reference entry points
//!   ([`plan::ProSparsityPlan::build_tiled_serial`],
//!   [`exec::execute_plan_serial`]) remain for ablation and testing.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attention;
pub mod detect;
pub mod engine;
pub mod exec;
pub mod forest;
pub mod multi_prefix;
pub mod order;
pub mod plan;
pub mod policy;
pub mod prune;
pub mod relation;
pub mod stats;

pub use detect::{DetectedTile, TcamDetector};
pub use engine::{
    BatchPolicy, BatchScheduler, Engine, EngineConfig, EngineStats, Session, SharedCacheStats,
    SharedPlanCache,
};

/// Whether this build of the crate distributes planning/execution across
/// threads (the `parallel` feature, on by default).
pub fn parallel_enabled() -> bool {
    cfg!(feature = "parallel")
}

/// Worker threads the parallel paths will actually use: rayon's pool size
/// with the `parallel` feature (respects `RAYON_NUM_THREADS`), 1 without.
/// Benches record this as `threads_effective` so single-core runs are not
/// held to parallel≥serial expectations.
pub fn parallel_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Whether this build compiles the AVX2 limb-kernel fast paths *and* the
/// running CPU supports them (runtime-dispatched; see [`spikemat::simd`]).
pub fn simd_active() -> bool {
    spikemat::simd::active()
}
pub use forest::ProSparsityForest;
pub use order::{forest_walk_order, sorted_order};
pub use plan::{ProSparsityPlan, RowMeta, TileMeta};
pub use prune::{prune_tile, MatchKind};
pub use relation::{classify, Relation};
pub use stats::ProStats;

//! Temporal-information generation (the PPU **Dispatcher**, Sec. V-D).
//!
//! The execution order must place every prefix before its suffixes. The
//! paper's key observation decouples this from the forest structure:
//!
//! * Partial Match ⇒ `pc(prefix) < pc(suffix)`;
//! * Exact Match ⇒ equal popcount and `prefix index < suffix index`.
//!
//! Hence a **stable sort by popcount ascending** is a valid topological order
//! of the ProSparsity forest — computable in hardware by a bitonic sorting
//! network in O(log² m) stages, fully overlapped with detection. The
//! alternative the paper ablates against ("high-overhead dispatch", Fig. 9)
//! walks the forest explicitly; [`forest_walk_order`] models it.

use crate::forest::ProSparsityForest;
use std::collections::VecDeque;

/// Overhead-free temporal-information generation: indices of all rows,
/// stably sorted by popcount ascending.
///
/// # Examples
///
/// ```
/// use prosperity_core::sorted_order;
///
/// // popcounts of Fig. 3: [2, 2, 3, 1, 3, 3]
/// assert_eq!(sorted_order(&[2, 2, 3, 1, 3, 3]), vec![3, 0, 1, 2, 4, 5]);
/// ```
pub fn sorted_order(popcounts: &[usize]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..popcounts.len()).collect();
    idx.sort_by_key(|&i| popcounts[i]); // sort_by_key is stable
    idx
}

/// Breadth-first forest walk: the "high-overhead" dispatch order used by the
/// Fig. 9 ablation. Roots in index order, then level by level.
pub fn forest_walk_order(forest: &ProSparsityForest) -> Vec<usize> {
    let mut order = Vec::with_capacity(forest.len());
    let mut queue: VecDeque<usize> = forest.roots().collect();
    while let Some(i) = queue.pop_front() {
        order.push(i);
        queue.extend(forest.children(i).iter().copied());
    }
    order
}

/// Checks that `order` is a permutation of `0..forest.len()` in which every
/// prefix appears before all of its suffixes.
pub fn is_valid_order(forest: &ProSparsityForest, order: &[usize]) -> bool {
    if order.len() != forest.len() {
        return false;
    }
    let mut position = vec![usize::MAX; forest.len()];
    for (pos, &row) in order.iter().enumerate() {
        if row >= forest.len() || position[row] != usize::MAX {
            return false;
        }
        position[row] = pos;
    }
    (0..forest.len()).all(|i| match forest.parent(i) {
        Some(p) => position[p] < position[i],
        None => true,
    })
}

/// A software model of the Dispatcher's parallel bitonic sorting network.
///
/// Sorts `(popcount, index)` pairs lexicographically, which is equivalent to
/// a *stable* sort by popcount. Exposes the comparator-stage count so the
/// cycle-accurate simulator can charge the paper's O(log² m) latency.
#[derive(Debug, Clone)]
pub struct BitonicSorter {
    stages: usize,
    comparators: u64,
}

impl BitonicSorter {
    /// Sorts and returns `(order, sorter)` where `order` equals
    /// [`sorted_order`] and `sorter` carries the network statistics.
    pub fn sort(popcounts: &[usize]) -> (Vec<usize>, Self) {
        let m = popcounts.len();
        let padded = m.next_power_of_two().max(1);
        // Sentinel (MAX, MAX) keys sink to the end.
        let mut keys: Vec<(usize, usize)> = (0..padded)
            .map(|i| {
                if i < m {
                    (popcounts[i], i)
                } else {
                    (usize::MAX, usize::MAX)
                }
            })
            .collect();
        let mut stages = 0usize;
        let mut comparators = 0u64;
        let n = padded;
        let mut k = 2;
        while k <= n {
            let mut j = k / 2;
            while j > 0 {
                stages += 1;
                for i in 0..n {
                    let l = i ^ j;
                    if l > i {
                        comparators += 1;
                        let ascending = i & k == 0;
                        if (keys[i] > keys[l]) == ascending {
                            keys.swap(i, l);
                        }
                    }
                }
                j /= 2;
            }
            k *= 2;
        }
        let order = keys
            .into_iter()
            .filter(|&(_, i)| i != usize::MAX)
            .map(|(_, i)| i)
            .collect();
        (
            order,
            Self {
                stages,
                comparators,
            },
        )
    }

    /// Models the network that would sort `len` keys, without running it.
    ///
    /// A bitonic network's shape depends only on the (power-of-two padded)
    /// input length, never on the data: `log₂(p)·(log₂(p)+1)/2` stages of
    /// `p/2` comparators each. The planner pairs this with a stable software
    /// sort so it can charge exact hardware latency/energy without paying
    /// O(m·log² m) comparator emulation per tile; [`BitonicSorter::sort`]
    /// remains the oracle this model is property-tested against.
    pub fn model(len: usize) -> Self {
        let padded = len.next_power_of_two().max(1);
        let log2 = padded.trailing_zeros() as usize;
        let stages = log2 * (log2 + 1) / 2;
        Self {
            stages,
            comparators: (stages * (padded / 2)) as u64,
        }
    }

    /// Number of comparator stages — the network latency in cycles, which is
    /// `log₂(m)·(log₂(m)+1)/2` for a power-of-two `m`.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Total comparator evaluations (for the energy model).
    pub fn comparators(&self) -> u64 {
        self.comparators
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::detect_tile;
    use crate::prune::prune_tile;
    use spikemat::SpikeMatrix;

    fn fig3() -> (SpikeMatrix, ProSparsityForest) {
        let tile = SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 0, 1, 1],
            &[1, 1, 0, 1],
        ]);
        let f = ProSparsityForest::from_pruned(&prune_tile(&tile, &detect_tile(&tile)));
        (tile, f)
    }

    #[test]
    fn sorted_order_matches_paper_fig3d() {
        // Fig. 3 (d) temporal info: 3, 0, 1, 2, 4, 5.
        let (tile, _) = fig3();
        let pc: Vec<usize> = (0..6).map(|i| tile.row(i).popcount()).collect();
        assert_eq!(sorted_order(&pc), vec![3, 0, 1, 2, 4, 5]);
    }

    #[test]
    fn sorted_order_is_valid_topological_order() {
        let (tile, f) = fig3();
        let pc: Vec<usize> = (0..6).map(|i| tile.row(i).popcount()).collect();
        assert!(is_valid_order(&f, &sorted_order(&pc)));
    }

    #[test]
    fn forest_walk_is_valid_too() {
        let (_, f) = fig3();
        let order = forest_walk_order(&f);
        assert_eq!(order.len(), f.len());
        assert!(is_valid_order(&f, &order));
    }

    #[test]
    fn identity_order_is_invalid_for_fig3() {
        // Row 0's prefix is row 3, so top-to-bottom order breaks reuse.
        let (_, f) = fig3();
        assert!(!is_valid_order(&f, &[0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn bitonic_sorter_equals_stable_sort() {
        for m in [0usize, 1, 2, 3, 6, 7, 16, 33, 100] {
            let pc: Vec<usize> = (0..m).map(|i| (i * 7 + 3) % 5).collect();
            let (order, _) = BitonicSorter::sort(&pc);
            assert_eq!(order, sorted_order(&pc), "m={m}");
        }
    }

    #[test]
    fn model_matches_real_network_statistics() {
        for len in [0usize, 1, 2, 3, 4, 6, 7, 8, 16, 33, 100, 256, 300] {
            let pcs: Vec<usize> = (0..len).map(|i| (i * 13 + 5) % 9).collect();
            let (_, real) = BitonicSorter::sort(&pcs);
            let modeled = BitonicSorter::model(len);
            assert_eq!(modeled.stages(), real.stages(), "len={len}");
            assert_eq!(modeled.comparators(), real.comparators(), "len={len}");
        }
    }

    #[test]
    fn bitonic_stage_count_is_log_squared() {
        let (_, s) = BitonicSorter::sort(&vec![0usize; 256]);
        // log2(256) = 8 → 8*9/2 = 36 stages.
        assert_eq!(s.stages(), 36);
        assert!(s.comparators() > 0);
    }

    #[test]
    fn rejects_non_permutations() {
        let (_, f) = fig3();
        assert!(!is_valid_order(&f, &[0, 0, 1, 2, 3, 4]));
        assert!(!is_valid_order(&f, &[0, 1, 2]));
        assert!(!is_valid_order(&f, &[0, 1, 2, 3, 4, 9]));
    }
}

//! Whole-GeMM ProSparsity planning: meta information per tile
//! (paper Fig. 3 (d) and Sec. V).
//!
//! A [`ProSparsityPlan`] runs Detector → Pruner → Dispatcher over every
//! `m × k` tile of a spike matrix and records the *meta information* the
//! hardware would hold in its product-sparsity table: per row the prefix
//! index and ProSparsity pattern (spatial info), plus the sorted execution
//! order (temporal info).

use crate::detect::detect_tile;
use crate::forest::ProSparsityForest;
use crate::order::{sorted_order, BitonicSorter};
use crate::prune::{prune_tile, MatchKind, PrunedRow};
use crate::stats::ProStats;
use spikemat::{BitRow, SpikeMatrix, TileShape};

/// Spatial meta information for one row of a tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMeta {
    /// Prefix row index *within the tile*, if any.
    pub prefix: Option<usize>,
    /// Relationship to the prefix.
    pub kind: MatchKind,
    /// ProSparsity pattern: the bits still to accumulate.
    pub pattern: BitRow,
}

impl RowMeta {
    /// Accumulations this row performs per output column.
    pub fn ops(&self) -> usize {
        self.pattern.popcount()
    }
}

/// Meta information for one `m × k` tile.
#[derive(Debug, Clone)]
pub struct TileMeta {
    /// First source row covered by the tile.
    pub row_start: usize,
    /// First source column covered by the tile.
    pub col_start: usize,
    /// Valid (non-padding) rows in the tile.
    pub valid_rows: usize,
    /// Valid (non-padding) columns in the tile.
    pub valid_cols: usize,
    /// Per-row spatial info, indexed by tile-local row.
    pub rows: Vec<RowMeta>,
    /// Temporal info: tile-local row indices in execution order.
    pub order: Vec<usize>,
    /// Latency of the bitonic sorting network that produced `order`, in
    /// comparator stages.
    pub sorter_stages: usize,
}

impl TileMeta {
    /// Builds meta information for one padded tile.
    pub fn build(tile: &SpikeMatrix, row_start: usize, col_start: usize) -> Self {
        let detected = detect_tile(tile);
        let pruned = prune_tile(tile, &detected);
        let (order, sorter) = BitonicSorter::sort(&detected.popcounts);
        debug_assert_eq!(order, sorted_order(&detected.popcounts));
        Self {
            row_start,
            col_start,
            valid_rows: tile.rows(),
            valid_cols: tile.cols(),
            rows: pruned
                .into_iter()
                .map(|PrunedRow { prefix, kind, pattern }| RowMeta {
                    prefix,
                    kind,
                    pattern,
                })
                .collect(),
            order,
            sorter_stages: sorter.stages(),
        }
    }

    /// The ProSparsity forest induced by this tile's prefixes.
    pub fn forest(&self) -> ProSparsityForest {
        let pruned: Vec<PrunedRow> = self
            .rows
            .iter()
            .map(|r| PrunedRow {
                prefix: r.prefix,
                kind: r.kind,
                pattern: r.pattern.clone(),
            })
            .collect();
        ProSparsityForest::from_pruned(&pruned)
    }

    /// Statistics for this tile, counting only valid (non-padding) cells.
    pub fn stats(&self, spike_bits: u64) -> ProStats {
        let mut s = ProStats {
            dense_ops: (self.valid_rows * self.valid_cols) as u64,
            bit_ops: spike_bits,
            ..ProStats::default()
        };
        for (i, r) in self.rows.iter().enumerate() {
            // Padding rows are all-zero: no prefix, no pattern bits. They are
            // excluded from row counts but harmless in op counts.
            if i >= self.valid_rows {
                continue;
            }
            s.rows += 1;
            s.pro_ops += r.ops() as u64;
            match r.kind {
                MatchKind::None => s.root_rows += 1,
                MatchKind::Partial => s.pm_rows += 1,
                MatchKind::Exact => s.em_rows += 1,
            }
        }
        s
    }
}

/// The complete ProSparsity meta information for one spiking GeMM.
#[derive(Debug, Clone)]
pub struct ProSparsityPlan {
    shape: TileShape,
    source_rows: usize,
    source_cols: usize,
    tiles: Vec<TileMeta>,
    stats: ProStats,
}

impl ProSparsityPlan {
    /// Plans the whole matrix as a single tile (no tiling); convenient for
    /// algorithm studies where hardware geometry is irrelevant.
    pub fn build(spikes: &SpikeMatrix) -> Self {
        let shape = TileShape::new(spikes.rows().max(1), spikes.cols().max(1));
        Self::build_tiled(spikes, shape)
    }

    /// Plans the matrix under the accelerator tile geometry `shape`.
    pub fn build_tiled(spikes: &SpikeMatrix, shape: TileShape) -> Self {
        let mut tiles = Vec::new();
        let mut stats = ProStats::default();
        for t in spikes.tiles(shape) {
            let spike_bits = (0..t.valid_rows)
                .map(|r| t.data.row(r).popcount() as u64)
                .sum();
            let mut meta = TileMeta::build(&t.data, t.row_start, t.col_start);
            meta.valid_rows = t.valid_rows;
            meta.valid_cols = t.valid_cols;
            stats += meta.stats(spike_bits);
            tiles.push(meta);
        }
        Self {
            shape,
            source_rows: spikes.rows(),
            source_cols: spikes.cols(),
            tiles,
            stats,
        }
    }

    /// The tile geometry used.
    pub fn shape(&self) -> TileShape {
        self.shape
    }

    /// Source matrix dimensions `(M, K)`.
    pub fn source_dims(&self) -> (usize, usize) {
        (self.source_rows, self.source_cols)
    }

    /// Per-tile meta information in row-major tile order.
    pub fn tiles(&self) -> &[TileMeta] {
        &self.tiles
    }

    /// Aggregated statistics over all tiles.
    pub fn stats(&self) -> &ProStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_matrix() -> SpikeMatrix {
        SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 1, 0, 1],
            &[1, 1, 0, 1],
        ])
    }

    #[test]
    fn single_tile_plan_matches_fig1() {
        let plan = ProSparsityPlan::build(&fig1_matrix());
        let s = plan.stats();
        assert_eq!(s.dense_ops, 24);
        assert_eq!(s.bit_ops, 14);
        assert_eq!(s.pro_ops, 6); // Fig. 1 (d): 6 OPs, 4× speedup over dense
        assert_eq!(s.em_rows, 1);
        assert_eq!(plan.tiles().len(), 1);
    }

    #[test]
    fn tiled_plan_covers_all_cells() {
        let m = fig1_matrix();
        let plan = ProSparsityPlan::build_tiled(&m, TileShape::new(4, 2));
        assert_eq!(plan.tiles().len(), 2 * 2);
        let s = plan.stats();
        assert_eq!(s.dense_ops, 24);
        assert_eq!(s.bit_ops, 14);
        // Smaller tiles can only keep or lose reuse, never create ops beyond
        // bit sparsity.
        assert!(s.pro_ops >= 6);
        assert!(s.pro_ops <= s.bit_ops);
        assert_eq!(s.rows, 6 * 2); // each row appears once per k-tile
    }

    #[test]
    fn tiny_tiles_degenerate_to_bit_sparsity() {
        // With m = 1 there is never a prefix candidate.
        let m = fig1_matrix();
        let plan = ProSparsityPlan::build_tiled(&m, TileShape::new(1, 4));
        assert_eq!(plan.stats().pro_ops, plan.stats().bit_ops);
        assert_eq!(plan.stats().root_rows, plan.stats().rows);
    }

    #[test]
    fn order_is_topologically_valid_per_tile() {
        use crate::order::is_valid_order;
        let m = fig1_matrix();
        for shape in [TileShape::new(6, 4), TileShape::new(3, 2), TileShape::new(4, 4)] {
            let plan = ProSparsityPlan::build_tiled(&m, shape);
            for t in plan.tiles() {
                assert!(is_valid_order(&t.forest(), &t.order));
            }
        }
    }

    #[test]
    fn stats_row_counts_exclude_padding() {
        let m = fig1_matrix();
        let plan = ProSparsityPlan::build_tiled(&m, TileShape::new(4, 4));
        // Two row-tiles: 4 valid rows + 2 valid rows.
        assert_eq!(plan.stats().rows, 6);
    }

    #[test]
    fn empty_matrix_plan() {
        let m = SpikeMatrix::zeros(0, 0);
        let plan = ProSparsityPlan::build(&m);
        assert_eq!(plan.stats().dense_ops, 0);
        assert_eq!(plan.tiles().len(), 0);
    }
}

//! Whole-GeMM ProSparsity planning: meta information per tile
//! (paper Fig. 3 (d) and Sec. V).
//!
//! A [`ProSparsityPlan`] runs Detector → Pruner → Dispatcher over every
//! `m × k` tile of a spike matrix and records the *meta information* the
//! hardware would hold in its product-sparsity table: per row the prefix
//! index and ProSparsity pattern (spatial info), plus the sorted execution
//! order (temporal info).
//!
//! # Performance
//!
//! Planning is the first hot path of the software pipeline, so the builder
//! fuses the Detector and Pruner into a word-parallel kernel instead of
//! materializing the staged subset-candidate lists
//! ([`crate::detect::detect_tile`]) and reducing them
//! ([`crate::prune::prune_tile`]):
//!
//! * the tile is transposed once into per-column **row masks** (bit `j` of
//!   mask `c` ⇔ row `j` spikes at column `c`);
//! * for each candidate prefix `j`, the rows containing `j` (its *supersets*)
//!   are the intersection of the masks of `j`'s one-columns — 64 rows per
//!   word, with early exit as soon as the intersection collapses to `{j}`
//!   (after two or three columns on weakly correlated data);
//! * candidates are processed in ascending `(popcount, index)` — the
//!   Pruner's argmax key — and scattered onto their supersets, so the last
//!   valid writer of each row *is* the Pruner's selected prefix.
//!
//! The Dispatcher's bitonic network statistics are data-independent, so the
//! builder takes them from [`BitonicSorter::model`] and orders rows with a
//! stable sort. Tile extraction reuses one scratch [`SpikeMatrix`] per worker
//! ([`SpikeMatrix::submatrix_into`]), and with the `parallel` feature
//! (default) independent tiles are planned across threads. The staged
//! `detect_tile`/`prune_tile` functions remain the property-test oracle for
//! this fused path.

use crate::forest::ProSparsityForest;
use crate::order::BitonicSorter;
use crate::prune::{MatchKind, PrunedRow};
use crate::stats::ProStats;
use spikemat::{BitRow, SpikeMatrix, TileShape};
use std::ops::Range;

/// Spatial meta information for one row of a tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMeta {
    /// Prefix row index *within the tile*, if any.
    pub prefix: Option<usize>,
    /// Relationship to the prefix.
    pub kind: MatchKind,
    /// ProSparsity pattern: the bits still to accumulate.
    pub pattern: BitRow,
}

impl RowMeta {
    /// Accumulations this row performs per output column.
    pub fn ops(&self) -> usize {
        self.pattern.popcount()
    }
}

/// Meta information for one `m × k` tile.
#[derive(Debug, Clone)]
pub struct TileMeta {
    /// First source row covered by the tile.
    pub row_start: usize,
    /// First source column covered by the tile.
    pub col_start: usize,
    /// Valid (non-padding) rows in the tile.
    pub valid_rows: usize,
    /// Valid (non-padding) columns in the tile.
    pub valid_cols: usize,
    /// Per-row spatial info, indexed by tile-local row.
    pub rows: Vec<RowMeta>,
    /// All rows' ProSparsity patterns packed contiguously,
    /// [`TileMeta::pattern_words`] limbs per row — the executor's
    /// cache-friendly view of the per-row [`RowMeta::pattern`]s.
    pub pattern_limbs: Vec<u64>,
    /// Temporal info: tile-local row indices in execution order.
    pub order: Vec<usize>,
    /// Latency of the bitonic sorting network that produced `order`, in
    /// comparator stages.
    pub sorter_stages: usize,
}

impl TileMeta {
    /// The meta of a zero-row, zero-column tile: no rows, no patterns, no
    /// order. Allocation-free — the plan cache parks this in freed slots so
    /// evicted payloads drop immediately, and every shard of a sharded
    /// cache can hold its own placeholder without planning anything.
    pub fn empty() -> Self {
        Self {
            row_start: 0,
            col_start: 0,
            valid_rows: 0,
            valid_cols: 0,
            rows: Vec::new(),
            pattern_limbs: Vec::new(),
            order: Vec::new(),
            sorter_stages: 0,
        }
    }

    /// Builds meta information for one padded tile.
    pub fn build(tile: &SpikeMatrix, row_start: usize, col_start: usize) -> Self {
        let (meta, _) = build_tile_meta(tile, row_start, col_start, &mut PlanScratch::default());
        meta
    }

    /// [`TileMeta::build`] with caller-owned scratch buffers: returns the
    /// meta plus the tile's spike-bit count. Repeated planning through one
    /// [`PlanScratch`] reuses the transpose blocks, column masks, and
    /// superset accumulators, allocating only for the meta it emits. This is
    /// the entry point the execution engine's plan cache fills misses
    /// through.
    pub fn build_with(
        tile: &SpikeMatrix,
        row_start: usize,
        col_start: usize,
        scratch: &mut PlanScratch,
    ) -> (Self, u64) {
        build_tile_meta(tile, row_start, col_start, scratch)
    }

    /// Limbs per row in [`TileMeta::pattern_limbs`] (every pattern spans the
    /// full padded tile width).
    pub fn pattern_words(&self) -> usize {
        self.rows
            .first()
            .map_or(0, |r| r.pattern.len().div_ceil(64))
    }

    /// The ProSparsity forest induced by this tile's prefixes.
    pub fn forest(&self) -> ProSparsityForest {
        let pruned: Vec<PrunedRow> = self
            .rows
            .iter()
            .map(|r| PrunedRow {
                prefix: r.prefix,
                kind: r.kind,
                pattern: r.pattern.clone(),
            })
            .collect();
        ProSparsityForest::from_pruned(&pruned)
    }

    /// Statistics for this tile, counting only valid (non-padding) cells.
    pub fn stats(&self, spike_bits: u64) -> ProStats {
        let mut s = ProStats {
            dense_ops: (self.valid_rows * self.valid_cols) as u64,
            bit_ops: spike_bits,
            ..ProStats::default()
        };
        for (i, r) in self.rows.iter().enumerate() {
            // Padding rows are all-zero: no prefix, no pattern bits. They are
            // excluded from row counts but harmless in op counts.
            if i >= self.valid_rows {
                continue;
            }
            s.rows += 1;
            s.pro_ops += r.ops() as u64;
            match r.kind {
                MatchKind::None => s.root_rows += 1,
                MatchKind::Partial => s.pm_rows += 1,
                MatchKind::Exact => s.em_rows += 1,
            }
        }
        s
    }
}

/// Reusable buffers for the fused tile planner; one per worker thread, so a
/// steady-state planning sweep allocates only for the plan it emits.
///
/// Thread one instance through [`ProSparsityPlan::build_tiled_with`] or
/// [`TileMeta::build_with`] to keep repeated planning (e.g. across the
/// timesteps of a model trace) free of transient allocation; the engine's
/// plan cache owns one for exactly this purpose.
#[derive(Debug, Default)]
pub struct PlanScratch {
    /// Scratch tile extracted from the source matrix.
    tile: SpikeMatrix,
    /// NO vector of the current tile.
    popcounts: Vec<usize>,
    /// Transposed tile: per column, an m-bit mask of the rows spiking there.
    col_masks: Vec<u64>,
    /// Superset accumulator for the current candidate, as an m-bit mask.
    supersets: Vec<u64>,
    /// Selected prefix per row (`usize::MAX` = none), in argmax order.
    best: Vec<usize>,
}

impl PlanScratch {
    /// Creates an empty scratch; buffers grow on first use and are reused
    /// afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Fused Detector + Pruner + Dispatcher for one padded tile.
///
/// Returns the tile meta plus the tile's spike-bit count (reused for stats).
/// See the module docs for the word-parallel candidate-mask scheme.
fn build_tile_meta(
    tile: &SpikeMatrix,
    row_start: usize,
    col_start: usize,
    scratch: &mut PlanScratch,
) -> (TileMeta, u64) {
    let rows = tile.row_slice();
    let m = rows.len();
    let k = tile.cols();
    let mask_words = m.div_ceil(64);
    let PlanScratch {
        popcounts,
        col_masks,
        supersets,
        best,
        ..
    } = scratch;

    popcounts.clear();
    popcounts.extend(rows.iter().map(BitRow::popcount));
    let spike_bits: u64 = popcounts.iter().map(|&p| p as u64).sum();
    // (popcount, index) keys make the unstable sort equivalent to the
    // Dispatcher's stable sort by popcount, without a merge-sort temp buffer.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_unstable_by_key(|&i| (popcounts[i], i));
    debug_assert_eq!(order, crate::order::sorted_order(popcounts));
    let sorter = BitonicSorter::model(m);

    // Transpose the tile into column→row-set masks, one 64×64 bit block at
    // a time (word-parallel; ~6·32 word ops per block instead of a bit-by-
    // bit scatter). Columns are padded to whole blocks so every block store
    // is unconditional; masks past column k are simply never consulted.
    let col_words = k.div_ceil(64);
    col_masks.clear();
    col_masks.resize(col_words * 64 * mask_words, 0);
    let mut block = [0u64; 64];
    for row_block in 0..mask_words {
        for col_block in 0..col_words {
            spikemat::bitops::gather_block(rows, row_block, col_block, &mut block);
            spikemat::bitops::transpose64(&mut block);
            for (c, &limb) in block.iter().enumerate() {
                col_masks[(col_block * 64 + c) * mask_words + row_block] = limb;
            }
        }
    }

    // Scatter candidates onto their supersets in ascending (popcount, index)
    // order — the Pruner's argmax key — so the last valid write into
    // `best[i]` is exactly the staged pipeline's selected prefix.
    best.clear();
    best.resize(m, usize::MAX);
    for &j in &order {
        let pc_j = popcounts[j];
        if pc_j == 0 {
            continue; // zero rows are never prefixes
        }
        // supersets(j) = ⋂ over j's one-columns of that column's row mask.
        let (self_word, self_bit) = (j / 64, 1u64 << (j % 64));
        let mut ones = rows[j].ones();
        let first = ones.next().expect("pc_j > 0");
        supersets.clear();
        supersets.extend_from_slice(&col_masks[first * mask_words..(first + 1) * mask_words]);
        for c in ones {
            let mask = &col_masks[c * mask_words..(c + 1) * mask_words];
            if spikemat::simd::intersect_fold(supersets, mask, self_word, self_bit) == 0 {
                break; // only j itself survives; no supersets to scatter to
            }
        }
        for (w, &bits) in supersets.iter().enumerate() {
            let mut bits = if w == self_word {
                bits & !self_bit
            } else {
                bits
            };
            while bits != 0 {
                let i = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                // Equal popcount + subset ⇒ identical rows (Exact Match):
                // only the earlier duplicate may be the prefix.
                if pc_j == popcounts[i] && j > i {
                    continue;
                }
                best[i] = j;
            }
        }
    }

    let words_per_row = k.div_ceil(64);
    let mut pattern_limbs = Vec::with_capacity(m * words_per_row);
    let row_metas = (0..m)
        .map(|i| {
            let meta = match best[i] {
                usize::MAX => RowMeta {
                    prefix: None,
                    kind: MatchKind::None,
                    pattern: rows[i].clone(),
                },
                j => RowMeta {
                    prefix: Some(j),
                    kind: if popcounts[j] == popcounts[i] {
                        MatchKind::Exact
                    } else {
                        MatchKind::Partial
                    },
                    pattern: rows[i].xor(&rows[j]),
                },
            };
            pattern_limbs.extend_from_slice(meta.pattern.limbs());
            meta
        })
        .collect();
    (
        TileMeta {
            row_start,
            col_start,
            valid_rows: tile.rows(),
            valid_cols: tile.cols(),
            rows: row_metas,
            pattern_limbs,
            order,
            sorter_stages: sorter.stages(),
        },
        spike_bits,
    )
}

/// The complete ProSparsity meta information for one spiking GeMM.
#[derive(Debug, Clone)]
pub struct ProSparsityPlan {
    shape: TileShape,
    source_rows: usize,
    source_cols: usize,
    tiles: Vec<TileMeta>,
    stats: ProStats,
}

impl ProSparsityPlan {
    /// Plans the whole matrix as a single tile (no tiling); convenient for
    /// algorithm studies where hardware geometry is irrelevant.
    pub fn build(spikes: &SpikeMatrix) -> Self {
        let shape = TileShape::new(spikes.rows().max(1), spikes.cols().max(1));
        Self::build_tiled(spikes, shape)
    }

    /// Plans the matrix under the accelerator tile geometry `shape`.
    ///
    /// Tiles are planned independently; with the `parallel` feature (default)
    /// they are split into contiguous row-major ranges across worker threads,
    /// each worker reusing one scratch tile buffer. The result is identical
    /// to the serial build ([`ProSparsityPlan::build_tiled_serial`]).
    pub fn build_tiled(spikes: &SpikeMatrix, shape: TileShape) -> Self {
        let (gm, gk) = shape.grid(spikes.rows(), spikes.cols());
        let n_tiles = gm * gk;
        let parts = Self::build_parts(spikes, shape, gk, n_tiles);
        let mut tiles = Vec::with_capacity(n_tiles);
        let mut stats = ProStats::default();
        for (part_tiles, part_stats) in parts {
            tiles.extend(part_tiles);
            stats += part_stats;
        }
        Self {
            shape,
            source_rows: spikes.rows(),
            source_cols: spikes.cols(),
            tiles,
            stats,
        }
    }

    /// Strictly single-threaded [`ProSparsityPlan::build_tiled`]; the
    /// baseline the parallel build is property-tested against.
    pub fn build_tiled_serial(spikes: &SpikeMatrix, shape: TileShape) -> Self {
        Self::build_tiled_with(spikes, shape, &mut PlanScratch::default())
    }

    /// [`ProSparsityPlan::build_tiled_serial`] with caller-owned scratch:
    /// repeated planning through one [`PlanScratch`] reuses the extracted
    /// tile, transpose blocks, mask buffers, and prefix accumulators, so a
    /// steady-state planning sweep allocates only for the plan it returns.
    pub fn build_tiled_with(
        spikes: &SpikeMatrix,
        shape: TileShape,
        scratch: &mut PlanScratch,
    ) -> Self {
        let (gm, gk) = shape.grid(spikes.rows(), spikes.cols());
        let n_tiles = gm * gk;
        let (tiles, stats) = build_tile_range_with(spikes, shape, gk, 0..n_tiles, scratch);
        Self {
            shape,
            source_rows: spikes.rows(),
            source_cols: spikes.cols(),
            tiles,
            stats,
        }
    }

    #[cfg(feature = "parallel")]
    fn build_parts(
        spikes: &SpikeMatrix,
        shape: TileShape,
        gk: usize,
        n_tiles: usize,
    ) -> Vec<(Vec<TileMeta>, ProStats)> {
        use rayon::prelude::*;
        let workers = rayon::current_num_threads().min(n_tiles.max(1));
        if workers <= 1 {
            return vec![build_tile_range(spikes, shape, gk, 0..n_tiles)];
        }
        let per_worker = n_tiles.div_ceil(workers);
        let ranges: Vec<Range<usize>> = (0..workers)
            .map(|w| (w * per_worker).min(n_tiles)..((w + 1) * per_worker).min(n_tiles))
            .collect();
        ranges
            .into_par_iter()
            .map(|r| build_tile_range(spikes, shape, gk, r))
            .collect()
    }

    #[cfg(not(feature = "parallel"))]
    fn build_parts(
        spikes: &SpikeMatrix,
        shape: TileShape,
        gk: usize,
        n_tiles: usize,
    ) -> Vec<(Vec<TileMeta>, ProStats)> {
        vec![build_tile_range(spikes, shape, gk, 0..n_tiles)]
    }

    /// The tile geometry used.
    pub fn shape(&self) -> TileShape {
        self.shape
    }

    /// Source matrix dimensions `(M, K)`.
    pub fn source_dims(&self) -> (usize, usize) {
        (self.source_rows, self.source_cols)
    }

    /// Per-tile meta information in row-major tile order.
    pub fn tiles(&self) -> &[TileMeta] {
        &self.tiles
    }

    /// Aggregated statistics over all tiles.
    pub fn stats(&self) -> &ProStats {
        &self.stats
    }
}

/// Plans the row-major tile range `[range.start, range.end)` of the grid,
/// reusing one scratch tile and one popcount buffer across all of them.
fn build_tile_range(
    spikes: &SpikeMatrix,
    shape: TileShape,
    gk: usize,
    range: Range<usize>,
) -> (Vec<TileMeta>, ProStats) {
    build_tile_range_with(spikes, shape, gk, range, &mut PlanScratch::default())
}

/// [`build_tile_range`] through caller-owned scratch buffers.
fn build_tile_range_with(
    spikes: &SpikeMatrix,
    shape: TileShape,
    gk: usize,
    range: Range<usize>,
    scratch: &mut PlanScratch,
) -> (Vec<TileMeta>, ProStats) {
    let mut tiles = Vec::with_capacity(range.len());
    let mut stats = ProStats::default();
    for t in range {
        let (ti, tj) = (t / gk, t % gk);
        let row_start = ti * shape.m;
        let col_start = tj * shape.k;
        let mut tile_buf = std::mem::take(&mut scratch.tile);
        spikes.submatrix_into(row_start, col_start, shape.m, shape.k, &mut tile_buf);
        let (mut meta, spike_bits) = build_tile_meta(&tile_buf, row_start, col_start, scratch);
        scratch.tile = tile_buf;
        // Padding rows/cols are all-zero, so the whole-tile spike count above
        // already equals the valid-region count.
        meta.valid_rows = (spikes.rows() - row_start).min(shape.m);
        meta.valid_cols = (spikes.cols() - col_start).min(shape.k);
        stats += meta.stats(spike_bits);
        tiles.push(meta);
    }
    (tiles, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_matrix() -> SpikeMatrix {
        SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 1, 0, 1],
            &[1, 1, 0, 1],
        ])
    }

    #[test]
    fn single_tile_plan_matches_fig1() {
        let plan = ProSparsityPlan::build(&fig1_matrix());
        let s = plan.stats();
        assert_eq!(s.dense_ops, 24);
        assert_eq!(s.bit_ops, 14);
        assert_eq!(s.pro_ops, 6); // Fig. 1 (d): 6 OPs, 4× speedup over dense
        assert_eq!(s.em_rows, 1);
        assert_eq!(plan.tiles().len(), 1);
    }

    #[test]
    fn tiled_plan_covers_all_cells() {
        let m = fig1_matrix();
        let plan = ProSparsityPlan::build_tiled(&m, TileShape::new(4, 2));
        assert_eq!(plan.tiles().len(), 2 * 2);
        let s = plan.stats();
        assert_eq!(s.dense_ops, 24);
        assert_eq!(s.bit_ops, 14);
        // Smaller tiles can only keep or lose reuse, never create ops beyond
        // bit sparsity.
        assert!(s.pro_ops >= 6);
        assert!(s.pro_ops <= s.bit_ops);
        assert_eq!(s.rows, 6 * 2); // each row appears once per k-tile
    }

    #[test]
    fn tiny_tiles_degenerate_to_bit_sparsity() {
        // With m = 1 there is never a prefix candidate.
        let m = fig1_matrix();
        let plan = ProSparsityPlan::build_tiled(&m, TileShape::new(1, 4));
        assert_eq!(plan.stats().pro_ops, plan.stats().bit_ops);
        assert_eq!(plan.stats().root_rows, plan.stats().rows);
    }

    #[test]
    fn order_is_topologically_valid_per_tile() {
        use crate::order::is_valid_order;
        let m = fig1_matrix();
        for shape in [
            TileShape::new(6, 4),
            TileShape::new(3, 2),
            TileShape::new(4, 4),
        ] {
            let plan = ProSparsityPlan::build_tiled(&m, shape);
            for t in plan.tiles() {
                assert!(is_valid_order(&t.forest(), &t.order));
            }
        }
    }

    #[test]
    fn stats_row_counts_exclude_padding() {
        let m = fig1_matrix();
        let plan = ProSparsityPlan::build_tiled(&m, TileShape::new(4, 4));
        // Two row-tiles: 4 valid rows + 2 valid rows.
        assert_eq!(plan.stats().rows, 6);
    }

    #[test]
    fn fused_build_matches_staged_detect_prune_oracle() {
        use crate::detect::detect_tile;
        use crate::prune::prune_tile;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        for trial in 0..50 {
            let m = rng.gen_range(1..40);
            let k = rng.gen_range(1..30);
            let density = rng.gen_range(0.0..0.7);
            let tile = SpikeMatrix::random(m, k, density, &mut rng);
            let meta = TileMeta::build(&tile, 0, 0);
            let pruned = prune_tile(&tile, &detect_tile(&tile));
            assert_eq!(meta.rows.len(), pruned.len(), "trial {trial}");
            for (i, (got, want)) in meta.rows.iter().zip(&pruned).enumerate() {
                assert_eq!(got.prefix, want.prefix, "trial {trial} row {i}");
                assert_eq!(got.kind, want.kind, "trial {trial} row {i}");
                assert_eq!(got.pattern, want.pattern, "trial {trial} row {i}");
            }
        }
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let m = rng.gen_range(1..70);
            let k = rng.gen_range(1..50);
            let s = SpikeMatrix::random(m, k, 0.3, &mut rng);
            let shape = TileShape::new(rng.gen_range(1..=16), rng.gen_range(1..=16));
            let par = ProSparsityPlan::build_tiled(&s, shape);
            let ser = ProSparsityPlan::build_tiled_serial(&s, shape);
            assert_eq!(par.stats(), ser.stats());
            assert_eq!(par.tiles().len(), ser.tiles().len());
            for (a, b) in par.tiles().iter().zip(ser.tiles()) {
                assert_eq!(a.row_start, b.row_start);
                assert_eq!(a.col_start, b.col_start);
                assert_eq!(a.valid_rows, b.valid_rows);
                assert_eq!(a.valid_cols, b.valid_cols);
                assert_eq!(a.rows, b.rows);
                assert_eq!(a.order, b.order);
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_builds() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut scratch = PlanScratch::new();
        // One scratch threaded through matrices of varying shapes must give
        // exactly the same plans as fresh builds.
        for _ in 0..15 {
            let m = rng.gen_range(1..60);
            let k = rng.gen_range(1..40);
            let s = SpikeMatrix::random(m, k, rng.gen_range(0.05..0.5), &mut rng);
            let shape = TileShape::new(rng.gen_range(1..=16), rng.gen_range(1..=16));
            let with = ProSparsityPlan::build_tiled_with(&s, shape, &mut scratch);
            let fresh = ProSparsityPlan::build_tiled_serial(&s, shape);
            assert_eq!(with.stats(), fresh.stats());
            for (a, b) in with.tiles().iter().zip(fresh.tiles()) {
                assert_eq!(a.rows, b.rows);
                assert_eq!(a.order, b.order);
                assert_eq!(a.pattern_limbs, b.pattern_limbs);
            }
        }
    }

    #[test]
    fn empty_meta_matches_built_empty_tile() {
        let built = TileMeta::build(&SpikeMatrix::zeros(0, 0), 0, 0);
        let empty = TileMeta::empty();
        assert_eq!(empty.rows, built.rows);
        assert_eq!(empty.order, built.order);
        assert_eq!(empty.pattern_limbs, built.pattern_limbs);
        assert_eq!(empty.pattern_words(), 0);
    }

    #[test]
    fn empty_matrix_plan() {
        let m = SpikeMatrix::zeros(0, 0);
        let plan = ProSparsityPlan::build(&m);
        assert_eq!(plan.stats().dense_ops, 0);
        assert_eq!(plan.tiles().len(), 0);
    }
}

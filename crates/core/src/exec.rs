//! Lossless execution of a ProSparsity plan (the **Processor**'s row-wise
//! dataflow, Sec. V-E, as a software kernel).
//!
//! For every tile, rows are processed in the Dispatcher's order. A row with a
//! prefix starts from the prefix's *tile-local* partial result (Step 9 of the
//! pipeline: "load Prefix"), then accumulates the weight rows selected by the
//! 1-bits of its ProSparsity pattern (Steps 10–11, address decoding by
//! bit-scan-forward), and finally adds its tile-local result into the global
//! output row (Step 12, the cross-`k`-tile partial-sum accumulation).
//!
//! # Performance
//!
//! The kernel is built for speed:
//!
//! * Tile-local partials live in one flat arena of `tile_rows × n` elements
//!   per row-tile, indexed by row offset — no per-row heap allocation inside
//!   the tile loop. Prefix loads are a single `copy_within`; weight rows are
//!   accumulated with a tight slice loop the compiler can autovectorize.
//! * Row-tiles own disjoint output rows, so with the `parallel` feature
//!   (default) they execute across threads over disjoint `&mut` chunks of the
//!   output; the `k`-tiles of one row group fold sequentially into that
//!   chunk, which keeps the result bit-identical to the serial kernel.
//!
//! With integer weights the result is bit-for-bit equal to the reference
//! [`spikemat::gemm::spiking_gemm`]; this is the paper's losslessness claim
//! and is enforced by property tests (serial *and* parallel paths).

use crate::plan::{ProSparsityPlan, TileMeta};
use spikemat::gemm::{OutputMatrix, WeightMatrix};
use spikemat::{SpikeMatrix, TileShape};
use std::ops::AddAssign;

/// Executes a spiking GeMM under product sparsity with tile shape `shape`.
///
/// Plans each tile (Detector → Pruner → Dispatcher) and replays the meta
/// information on the weight matrix. See [`execute_plan`] to reuse an
/// existing plan.
///
/// # Panics
///
/// Panics if `spikes.cols() != weights.rows()`.
#[cfg(feature = "parallel")]
pub fn prosparsity_gemm<T: Copy + Default + AddAssign + Send + Sync + 'static>(
    spikes: &SpikeMatrix,
    weights: &WeightMatrix<T>,
    shape: TileShape,
) -> OutputMatrix<T> {
    let plan = ProSparsityPlan::build_tiled(spikes, shape);
    execute_plan(&plan, weights)
}

/// Executes a spiking GeMM under product sparsity with tile shape `shape`.
///
/// Serial build of [`prosparsity_gemm`] (the `parallel` feature is off).
///
/// # Panics
///
/// Panics if `spikes.cols() != weights.rows()`.
#[cfg(not(feature = "parallel"))]
pub fn prosparsity_gemm<T: Copy + Default + AddAssign + 'static>(
    spikes: &SpikeMatrix,
    weights: &WeightMatrix<T>,
    shape: TileShape,
) -> OutputMatrix<T> {
    let plan = ProSparsityPlan::build_tiled(spikes, shape);
    execute_plan(&plan, weights)
}

/// Replays a previously built plan against a weight matrix, parallelizing
/// across row-tiles (disjoint output-row groups).
///
/// # Panics
///
/// Panics if the plan's source column count differs from `weights.rows()`.
#[cfg(feature = "parallel")]
pub fn execute_plan<T: Copy + Default + AddAssign + Send + Sync + 'static>(
    plan: &ProSparsityPlan,
    weights: &WeightMatrix<T>,
) -> OutputMatrix<T> {
    use rayon::prelude::*;
    let mut out = new_output(plan, weights);
    let n = weights.cols();
    let gk = col_tile_count(plan);
    if gk == 0 || n == 0 {
        return out;
    }
    let chunk_elems = plan.shape().m * n;
    let tiles = plan.tiles();
    let row_chunks: Vec<(usize, &mut [T])> = out
        .as_mut_slice()
        .chunks_mut(chunk_elems)
        .enumerate()
        .collect();
    row_chunks.into_par_iter().for_each(|(ti, chunk)| {
        let mut arena = Vec::new();
        let mut parents = Vec::new();
        let mut simple = Vec::new();
        execute_row_tile(
            &tiles[ti * gk..(ti + 1) * gk],
            weights,
            chunk,
            &mut arena,
            &mut parents,
            &mut simple,
            n,
        );
    });
    out
}

/// Replays a previously built plan against a weight matrix.
///
/// Serial build of [`execute_plan`] (the `parallel` feature is off).
///
/// # Panics
///
/// Panics if the plan's source column count differs from `weights.rows()`.
#[cfg(not(feature = "parallel"))]
pub fn execute_plan<T: Copy + Default + AddAssign + 'static>(
    plan: &ProSparsityPlan,
    weights: &WeightMatrix<T>,
) -> OutputMatrix<T> {
    execute_plan_serial(plan, weights)
}

/// Strictly single-threaded [`execute_plan`]; the baseline the parallel
/// executor is property-tested against. One arena allocation serves the
/// entire GeMM.
///
/// # Panics
///
/// Panics if the plan's source column count differs from `weights.rows()`.
pub fn execute_plan_serial<T: Copy + Default + AddAssign + 'static>(
    plan: &ProSparsityPlan,
    weights: &WeightMatrix<T>,
) -> OutputMatrix<T> {
    let mut out = new_output(plan, weights);
    let n = weights.cols();
    let gk = col_tile_count(plan);
    if gk == 0 || n == 0 {
        return out;
    }
    let chunk_elems = plan.shape().m * n;
    let tiles = plan.tiles();
    let mut arena = Vec::new();
    let mut parents = Vec::new();
    let mut simple = Vec::new();
    for (ti, chunk) in out.as_mut_slice().chunks_mut(chunk_elems).enumerate() {
        execute_row_tile(
            &tiles[ti * gk..(ti + 1) * gk],
            weights,
            chunk,
            &mut arena,
            &mut parents,
            &mut simple,
            n,
        );
    }
    out
}

/// Allocates the output and checks the plan/weight inner dimension.
fn new_output<T: Copy + Default + AddAssign + 'static>(
    plan: &ProSparsityPlan,
    weights: &WeightMatrix<T>,
) -> OutputMatrix<T> {
    let (m, k) = plan.source_dims();
    assert_eq!(
        k,
        weights.rows(),
        "plan K={k} does not match weight rows {}",
        weights.rows()
    );
    OutputMatrix::zeros(m, weights.cols())
}

/// Number of `k`-tiles per row group (0 for an empty plan).
fn col_tile_count(plan: &ProSparsityPlan) -> usize {
    let (_, k) = plan.source_dims();
    if plan.tiles().is_empty() {
        0
    } else {
        k.div_ceil(plan.shape().k)
    }
}

/// A planned tile the executor can replay: its meta information plus its
/// placement in the source matrix.
///
/// [`TileMeta`] carries its own placement; the serving runtime instead
/// replays *cached*, position-independent metas under per-instance
/// placements — possibly borrowed (via `Arc`) from a plan cache shared
/// with other sessions — so the executor core is generic over this view
/// rather than over one concrete meta lifetime.
pub trait TileExec {
    /// The planned meta information (rows, packed patterns, order).
    fn meta(&self) -> &TileMeta;
    /// First weight row this tile's patterns address.
    fn col_start(&self) -> usize;
    /// Valid (non-padding) rows at this placement.
    fn valid_rows(&self) -> usize;
}

impl TileExec for TileMeta {
    fn meta(&self) -> &TileMeta {
        self
    }
    fn col_start(&self) -> usize {
        self.col_start
    }
    fn valid_rows(&self) -> usize {
        self.valid_rows
    }
}

/// Executes the `k`-tiles of one row group into its output chunk.
///
/// `out_chunk` holds the group's `valid_rows × n` output elements; the
/// scratch buffers are caller-owned and reused across every tile this worker
/// processes, so the loop itself never allocates.
///
/// Rows are split into two classes:
///
/// * **Simple** rows — no prefix in any `k`-tile and never loaded as a
///   prefix by another row. They are independent pure accumulations, so each
///   one is processed exactly once, streaming the pattern bits of *all* its
///   `k`-tiles through one register-batched pass straight into the global
///   output row. On weakly correlated data this is nearly every row.
/// * **Dependent** rows (prefix holders and their parents) go through the
///   classic tile-major dataflow: parents materialize their tile-local
///   partial in the flat `arena` (Step 9's prefix load source), dependents
///   start from it, and results fold into the output (Step 12).
pub(crate) fn execute_row_tile<T: Copy + Default + AddAssign + 'static, V: TileExec>(
    k_tiles: &[V],
    weights: &WeightMatrix<T>,
    out_chunk: &mut [T],
    arena: &mut Vec<T>,
    parents: &mut Vec<bool>,
    simple: &mut Vec<bool>,
    n: usize,
) {
    let wrows = weights.rows();
    let wdata = weights.as_slice();
    let tile_rows = k_tiles
        .iter()
        .map(|t| t.meta().rows.len())
        .max()
        .unwrap_or(0);
    let valid_rows = k_tiles.first().map_or(0, |t| t.valid_rows());

    simple.clear();
    simple.resize(tile_rows, true);
    for tile in k_tiles {
        for (r, meta) in tile.meta().rows.iter().enumerate() {
            if let Some(p) = meta.prefix {
                simple[r] = false;
                simple[p] = false;
            }
        }
    }

    // Fast path: one pass per simple row over all its k-tiles' patterns.
    for r in 0..valid_rows {
        if simple[r] {
            accumulate_row_all_tiles(
                &mut out_chunk[r * n..(r + 1) * n],
                k_tiles,
                r,
                wdata,
                wrows,
                n,
            );
        }
    }

    // Dependent rows: tile-major, in the Dispatcher's topological order.
    for tile in k_tiles {
        let (meta, col_start, tile_valid) = (tile.meta(), tile.col_start(), tile.valid_rows());
        if arena.len() < tile_rows * n {
            arena.resize(tile_rows * n, T::default());
        }
        parents.clear();
        parents.resize(tile_rows, false);
        for row in &meta.rows {
            if let Some(p) = row.prefix {
                parents[p] = true;
            }
        }
        let wpr = meta.pattern_words();
        for &r in &meta.order {
            if simple[r] {
                continue;
            }
            let row = &meta.rows[r];
            let pattern = &meta.pattern_limbs[r * wpr..(r + 1) * wpr];
            if parents[r] {
                // Step 9: seed the tile-local partial from the prefix's
                // (already computed — the order is topological), or zero.
                match row.prefix {
                    Some(p) => arena.copy_within(p * n..(p + 1) * n, r * n),
                    None => arena[r * n..(r + 1) * n].fill(T::default()),
                }
                let acc = &mut arena[r * n..(r + 1) * n];
                accumulate_pattern(acc, pattern, col_start, wdata, wrows, n);
                // Step 12 for parents: fold into the global row immediately.
                if r < tile_valid {
                    let local = &arena[r * n..(r + 1) * n];
                    add_assign_slice(&mut out_chunk[r * n..(r + 1) * n], local);
                }
            } else {
                if r >= tile_valid {
                    continue; // padding row nobody depends on
                }
                // Steps 9–12 fused: accumulate prefix partial and weight
                // rows straight into the global output row.
                let out_row = &mut out_chunk[r * n..(r + 1) * n];
                if let Some(p) = row.prefix {
                    add_assign_slice(out_row, &arena[p * n..(p + 1) * n]);
                }
                accumulate_pattern(out_row, pattern, col_start, wdata, wrows, n);
            }
        }
    }
}

/// Executes a contiguous range of row groups `[start, start + count)` of a
/// placed-tile grid serially, each into its `tile_m × n` output chunk.
///
/// This is the executor the session's serial whole-GeMM path and its sliced
/// (`gemm_slice`) path share: a slice is just a sub-range of row groups, so
/// executing `[0, gm)` in one call and executing it as several disjoint
/// ranges produce bit-identical output — row groups never share output
/// elements or carry state across each other.
#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_row_tiles<T: Copy + Default + AddAssign + 'static, V: TileExec>(
    tiles: &[V],
    gk: usize,
    weights: &WeightMatrix<T>,
    out: &mut [T],
    start: usize,
    count: usize,
    arena: &mut Vec<T>,
    parents: &mut Vec<bool>,
    simple: &mut Vec<bool>,
    tile_m: usize,
    n: usize,
) {
    let chunk_elems = tile_m * n;
    for (ti, chunk) in out
        .chunks_mut(chunk_elems)
        .enumerate()
        .skip(start)
        .take(count)
    {
        execute_row_tile(
            &tiles[ti * gk..(ti + 1) * gk],
            weights,
            chunk,
            arena,
            parents,
            simple,
            n,
        );
    }
}

/// Streams the pattern bits of every `k`-tile of row `r` through one
/// accumulation pass into `acc` (the simple-row fast path).
// analyze: hot-path
#[inline]
fn accumulate_row_all_tiles<T: Copy + Default + AddAssign + 'static, V: TileExec>(
    acc: &mut [T],
    k_tiles: &[V],
    r: usize,
    wdata: &[T],
    wrows: usize,
    n: usize,
) {
    for tile in k_tiles {
        let meta = tile.meta();
        let wpr = meta.pattern_words();
        // The planner sizes pattern_limbs to rows * wpr, so the range is
        // always valid; `get` keeps the warm loop free of panic paths.
        let Some(pattern) = meta.pattern_limbs.get(r * wpr..(r + 1) * wpr) else {
            continue;
        };
        accumulate_pattern(acc, pattern, tile.col_start(), wdata, wrows, n);
    }
}

/// Steps 10–11: decode the row's packed pattern limbs by bit-scan-forward
/// and accumulate the selected weight rows into `acc` via
/// [`add_assign_slice`].
// analyze: hot-path
#[inline]
fn accumulate_pattern<T: Copy + Default + AddAssign + 'static>(
    acc: &mut [T],
    pattern: &[u64],
    col_start: usize,
    wdata: &[T],
    wrows: usize,
    n: usize,
) {
    // Dispatch once per row pattern, not once per set bit: the AVX2 body
    // cannot inline into this (non-AVX2) function, so a per-bit call would
    // pay the boundary on every short weight-row add.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_accum::try_accumulate_pattern(acc, pattern, col_start, wdata, wrows, n) {
        return;
    }
    for (word, &limb) in pattern.iter().enumerate() {
        let mut bits = limb;
        let base = col_start + word * 64;
        while bits != 0 {
            let wk = base + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if wk >= wrows {
                continue; // zero-padded tile column
            }
            // wk < wrows and wdata holds wrows * n elements, so the range
            // is always valid; `get` keeps this loop free of panic paths.
            let Some(src) = wdata.get(wk * n..wk * n + n) else {
                continue;
            };
            add_assign_slice(acc, src);
        }
    }
}

/// Element-wise `dst[i] += src[i]` over equal-length slices — the executor's
/// popcount-selected weight-row accumulate.
///
/// `i64`/`i32` slices route through the AVX2 vector add when the `simd`
/// feature is compiled in and the CPU reports AVX2; every other element
/// type, build, and short slice runs the scalar zip loop (bounds-check-free,
/// so the compiler autovectorizes it where profitable). Both paths produce
/// identical bits for integer elements.
// analyze: hot-path
#[inline]
fn add_assign_slice<T: Copy + AddAssign + 'static>(dst: &mut [T], src: &[T]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd_accum::try_add_slice(dst, src) {
        return;
    }
    for (a, &x) in dst.iter_mut().zip(src) {
        *a += x;
    }
}

/// AVX2 accumulate kernels, selected by `TypeId` so the generic executor
/// stays monomorphization-friendly: only the two integer element types the
/// engine actually serves get vector bodies.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd_accum {
    use std::any::TypeId;
    use std::arch::x86_64::*;

    /// Limb threshold below which the vector add has no full vector to run.
    const MIN_SIMD_ELEMS: usize = 8;

    /// Attempts a whole-pattern vector accumulate ([`super::accumulate_pattern`]
    /// semantics); `false` means the caller must run the scalar loop. The
    /// bit-scan loop lives *inside* the AVX2 boundary so the per-weight-row
    /// add inlines instead of paying a cross-feature call per set bit.
    #[inline]
    pub(super) fn try_accumulate_pattern<T: Copy + 'static>(
        acc: &mut [T],
        pattern: &[u64],
        col_start: usize,
        wdata: &[T],
        wrows: usize,
        n: usize,
    ) -> bool {
        if n < MIN_SIMD_ELEMS || !spikemat::simd::active() {
            return false;
        }
        let t = TypeId::of::<T>();
        if t == TypeId::of::<i64>() {
            // SAFETY: T is exactly i64 (TypeId match); AVX2 was verified.
            unsafe {
                pattern_i64(
                    &mut *(std::ptr::from_mut::<[T]>(acc) as *mut [i64]),
                    pattern,
                    col_start,
                    &*(std::ptr::from_ref::<[T]>(wdata) as *const [i64]),
                    wrows,
                    n,
                );
            }
            true
        } else if t == TypeId::of::<i32>() {
            // SAFETY: T is exactly i32 (TypeId match); AVX2 was verified.
            unsafe {
                pattern_i32(
                    &mut *(std::ptr::from_mut::<[T]>(acc) as *mut [i32]),
                    pattern,
                    col_start,
                    &*(std::ptr::from_ref::<[T]>(wdata) as *const [i32]),
                    wrows,
                    n,
                );
            }
            true
        } else {
            false
        }
    }

    /// [`super::accumulate_pattern`] for `i64`, bit scan and adds fused in
    /// one AVX2 region ([`add_i64`] inlines here — same target feature).
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support
    /// (`spikemat::simd::active()`), and `acc` must hold at least `n`
    /// elements.
    // analyze: hot-path
    #[target_feature(enable = "avx2")]
    unsafe fn pattern_i64(
        acc: &mut [i64],
        pattern: &[u64],
        col_start: usize,
        wdata: &[i64],
        wrows: usize,
        n: usize,
    ) {
        for (word, &limb) in pattern.iter().enumerate() {
            let mut bits = limb;
            let base = col_start + word * 64;
            while bits != 0 {
                let wk = base + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if wk >= wrows {
                    continue; // zero-padded tile column
                }
                let Some(src) = wdata.get(wk * n..wk * n + n) else {
                    continue; // wk < wrows makes the range valid
                };
                // SAFETY: AVX2 already verified by the caller; src has
                // exactly n elements and acc at least n.
                unsafe { add_i64(acc.as_mut_ptr(), src.as_ptr(), n) };
            }
        }
    }

    /// [`super::accumulate_pattern`] for `i32` (see [`pattern_i64`]).
    ///
    /// # Safety
    ///
    /// Same contract as [`pattern_i64`].
    // analyze: hot-path
    #[target_feature(enable = "avx2")]
    unsafe fn pattern_i32(
        acc: &mut [i32],
        pattern: &[u64],
        col_start: usize,
        wdata: &[i32],
        wrows: usize,
        n: usize,
    ) {
        for (word, &limb) in pattern.iter().enumerate() {
            let mut bits = limb;
            let base = col_start + word * 64;
            while bits != 0 {
                let wk = base + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if wk >= wrows {
                    continue; // zero-padded tile column
                }
                let Some(src) = wdata.get(wk * n..wk * n + n) else {
                    continue; // wk < wrows makes the range valid
                };
                // SAFETY: AVX2 already verified by the caller; src has
                // exactly n elements and acc at least n.
                unsafe { add_i32(acc.as_mut_ptr(), src.as_ptr(), n) };
            }
        }
    }

    /// Attempts the vector add; `false` means the caller must run the
    /// scalar loop (non-integer element type, short slice, or no AVX2).
    #[inline]
    pub(super) fn try_add_slice<T: Copy + 'static>(dst: &mut [T], src: &[T]) -> bool {
        let n = dst.len().min(src.len());
        if n < MIN_SIMD_ELEMS || !spikemat::simd::active() {
            return false;
        }
        let t = TypeId::of::<T>();
        if t == TypeId::of::<i64>() {
            // SAFETY: T is exactly i64 (TypeId match); AVX2 was verified.
            unsafe { add_i64(dst.as_mut_ptr().cast(), src.as_ptr().cast(), n) };
            true
        } else if t == TypeId::of::<i32>() {
            // SAFETY: T is exactly i32 (TypeId match); AVX2 was verified.
            unsafe { add_i32(dst.as_mut_ptr().cast(), src.as_ptr().cast(), n) };
            true
        } else {
            false
        }
    }

    /// `dst[i] += src[i]`, four `i64` lanes per instruction. Vector adds
    /// wrap on overflow, matching release-mode scalar `+=`.
    ///
    /// # Safety
    ///
    /// The caller must have verified AVX2 support, and `dst`/`src` must
    /// each be valid for `n` elements.
    // analyze: hot-path
    #[target_feature(enable = "avx2")]
    unsafe fn add_i64(dst: *mut i64, src: *const i64, n: usize) {
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n keeps every unaligned lane in bounds.
            unsafe {
                let d = _mm256_loadu_si256(dst.add(i).cast());
                let s = _mm256_loadu_si256(src.add(i).cast());
                _mm256_storeu_si256(dst.add(i).cast(), _mm256_add_epi64(d, s));
            }
            i += 4;
        }
        while i < n {
            // SAFETY: i < n, so both element reads and the write are valid.
            unsafe { *dst.add(i) = (*dst.add(i)).wrapping_add(*src.add(i)) };
            i += 1;
        }
    }

    /// `dst[i] += src[i]`, eight `i32` lanes per instruction.
    ///
    /// # Safety
    ///
    /// Same contract as [`add_i64`].
    // analyze: hot-path
    #[target_feature(enable = "avx2")]
    unsafe fn add_i32(dst: *mut i32, src: *const i32, n: usize) {
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n keeps every unaligned lane in bounds.
            unsafe {
                let d = _mm256_loadu_si256(dst.add(i).cast());
                let s = _mm256_loadu_si256(src.add(i).cast());
                _mm256_storeu_si256(dst.add(i).cast(), _mm256_add_epi32(d, s));
            }
            i += 8;
        }
        while i < n {
            // SAFETY: i < n, so both element reads and the write are valid.
            unsafe { *dst.add(i) = (*dst.add(i)).wrapping_add(*src.add(i)) };
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikemat::gemm::spiking_gemm;

    fn fig1_matrix() -> SpikeMatrix {
        SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 1, 0, 1],
            &[1, 1, 0, 1],
        ])
    }

    #[test]
    fn matches_reference_single_tile() {
        let s = fig1_matrix();
        let w = WeightMatrix::from_fn(4, 3, |r, c| (r * 3 + c) as i64 - 5);
        let got = prosparsity_gemm(&s, &w, TileShape::new(6, 4));
        assert_eq!(got, spiking_gemm(&s, &w));
    }

    #[test]
    fn matches_reference_under_every_tiling() {
        let s = fig1_matrix();
        let w = WeightMatrix::from_fn(4, 2, |r, c| (r as i64 + 1) * (c as i64 + 2));
        let reference = spiking_gemm(&s, &w);
        for m in 1..=7 {
            for k in 1..=5 {
                let got = prosparsity_gemm(&s, &w, TileShape::new(m, k));
                assert_eq!(got, reference, "tile {m}x{k}");
            }
        }
    }

    #[test]
    fn serial_and_default_paths_agree() {
        let s = fig1_matrix();
        let w = WeightMatrix::from_fn(4, 3, |r, c| (r * 5 + c) as i64 - 7);
        for m in 1..=7 {
            for k in 1..=5 {
                let plan = ProSparsityPlan::build_tiled(&s, TileShape::new(m, k));
                assert_eq!(
                    execute_plan(&plan, &w),
                    execute_plan_serial(&plan, &w),
                    "tile {m}x{k}"
                );
            }
        }
    }

    #[test]
    fn exact_match_rows_get_identical_outputs() {
        let s = fig1_matrix();
        let w = WeightMatrix::from_fn(4, 3, |r, c| (r * r + c) as i64);
        let out = prosparsity_gemm(&s, &w, TileShape::new(6, 4));
        assert_eq!(out.row(4), out.row(5));
    }

    #[test]
    fn random_matrices_are_lossless() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..10 {
            let m = rng.gen_range(1..40);
            let k = rng.gen_range(1..30);
            let n = rng.gen_range(1..10);
            let density = rng.gen_range(0.05..0.6);
            let s = SpikeMatrix::random(m, k, density, &mut rng);
            let w = WeightMatrix::from_fn(k, n, |_, _| rng.gen_range(-100i64..100));
            let shape = TileShape::new(rng.gen_range(1..=m.max(1)), rng.gen_range(1..=k.max(1)));
            assert_eq!(
                prosparsity_gemm(&s, &w, shape),
                spiking_gemm(&s, &w),
                "trial {trial}"
            );
        }
    }

    #[test]
    fn empty_output_dimension_is_fine() {
        let s = fig1_matrix();
        let w = WeightMatrix::from_fn(4, 0, |_, _| 0i64);
        let out = prosparsity_gemm(&s, &w, TileShape::new(4, 4));
        assert_eq!(out.rows(), 6);
        assert_eq!(out.cols(), 0);
    }

    #[test]
    #[should_panic(expected = "does not match weight rows")]
    fn weight_shape_mismatch_panics() {
        let s = fig1_matrix();
        let w = WeightMatrix::from_fn(5, 2, |_, _| 0i32);
        let _ = prosparsity_gemm(&s, &w, TileShape::new(6, 4));
    }
}

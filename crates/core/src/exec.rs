//! Lossless execution of a ProSparsity plan (the **Processor**'s row-wise
//! dataflow, Sec. V-E, as a software kernel).
//!
//! For every tile, rows are processed in the Dispatcher's order. A row with a
//! prefix starts from the prefix's *tile-local* partial result (Step 9 of the
//! pipeline: "load Prefix"), then accumulates the weight rows selected by the
//! 1-bits of its ProSparsity pattern (Steps 10–11, address decoding by
//! bit-scan-forward), and finally adds its tile-local result into the global
//! output row (Step 12, the cross-`k`-tile partial-sum accumulation).
//!
//! With integer weights the result is bit-for-bit equal to the reference
//! [`spikemat::gemm::spiking_gemm`]; this is the paper's losslessness claim
//! and is enforced by property tests.

use crate::plan::ProSparsityPlan;
use spikemat::gemm::{OutputMatrix, WeightMatrix};
use spikemat::{SpikeMatrix, TileShape};
use std::ops::AddAssign;

/// Executes a spiking GeMM under product sparsity with tile shape `shape`.
///
/// Plans each tile (Detector → Pruner → Dispatcher) and replays the meta
/// information on the weight matrix. See [`execute_plan`] to reuse an
/// existing plan.
///
/// # Panics
///
/// Panics if `spikes.cols() != weights.rows()`.
pub fn prosparsity_gemm<T: Copy + Default + AddAssign>(
    spikes: &SpikeMatrix,
    weights: &WeightMatrix<T>,
    shape: TileShape,
) -> OutputMatrix<T> {
    let plan = ProSparsityPlan::build_tiled(spikes, shape);
    execute_plan(&plan, weights)
}

/// Replays a previously built plan against a weight matrix.
///
/// # Panics
///
/// Panics if the plan's source column count differs from `weights.rows()`.
pub fn execute_plan<T: Copy + Default + AddAssign>(
    plan: &ProSparsityPlan,
    weights: &WeightMatrix<T>,
) -> OutputMatrix<T> {
    let (m, k) = plan.source_dims();
    assert_eq!(
        k,
        weights.rows(),
        "plan K={k} does not match weight rows {}",
        weights.rows()
    );
    let n = weights.cols();
    let mut out = OutputMatrix::zeros(m, n);
    for tile in plan.tiles() {
        // Tile-local partial results, one row of width n per tile row.
        let tile_rows = tile.rows.len();
        let mut local: Vec<Vec<T>> = vec![vec![T::default(); n]; tile_rows];
        for &r in &tile.order {
            let meta = &tile.rows[r];
            let mut acc = match meta.prefix {
                Some(p) => local[p].clone(),
                None => vec![T::default(); n],
            };
            for bit in meta.pattern.ones() {
                let wk = tile.col_start + bit;
                if wk >= weights.rows() {
                    continue; // zero-padded tile column
                }
                for (a, &w) in acc.iter_mut().zip(weights.row(wk)) {
                    *a += w;
                }
            }
            local[r] = acc;
        }
        // Fold tile-local partials into the global output (k-tile partial sums).
        #[allow(clippy::needless_range_loop)] // r maps tile-local to global rows
        for r in 0..tile.valid_rows {
            out.accumulate_row(tile.row_start + r, &local[r]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikemat::gemm::spiking_gemm;

    fn fig1_matrix() -> SpikeMatrix {
        SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 1, 0, 1],
            &[1, 1, 0, 1],
        ])
    }

    #[test]
    fn matches_reference_single_tile() {
        let s = fig1_matrix();
        let w = WeightMatrix::from_fn(4, 3, |r, c| (r * 3 + c) as i64 - 5);
        let got = prosparsity_gemm(&s, &w, TileShape::new(6, 4));
        assert_eq!(got, spiking_gemm(&s, &w));
    }

    #[test]
    fn matches_reference_under_every_tiling() {
        let s = fig1_matrix();
        let w = WeightMatrix::from_fn(4, 2, |r, c| (r as i64 + 1) * (c as i64 + 2));
        let reference = spiking_gemm(&s, &w);
        for m in 1..=7 {
            for k in 1..=5 {
                let got = prosparsity_gemm(&s, &w, TileShape::new(m, k));
                assert_eq!(got, reference, "tile {m}x{k}");
            }
        }
    }

    #[test]
    fn exact_match_rows_get_identical_outputs() {
        let s = fig1_matrix();
        let w = WeightMatrix::from_fn(4, 3, |r, c| (r * r + c) as i64);
        let out = prosparsity_gemm(&s, &w, TileShape::new(6, 4));
        assert_eq!(out.row(4), out.row(5));
    }

    #[test]
    fn random_matrices_are_lossless() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..10 {
            let m = rng.gen_range(1..40);
            let k = rng.gen_range(1..30);
            let n = rng.gen_range(1..10);
            let density = rng.gen_range(0.05..0.6);
            let s = SpikeMatrix::random(m, k, density, &mut rng);
            let w = WeightMatrix::from_fn(k, n, |_, _| rng.gen_range(-100i64..100));
            let shape = TileShape::new(rng.gen_range(1..=m.max(1)), rng.gen_range(1..=k.max(1)));
            assert_eq!(
                prosparsity_gemm(&s, &w, shape),
                spiking_gemm(&s, &w),
                "trial {trial}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not match weight rows")]
    fn weight_shape_mismatch_panics() {
        let s = fig1_matrix();
        let w = WeightMatrix::from_fn(5, 2, |_, _| 0i32);
        let _ = prosparsity_gemm(&s, &w, TileShape::new(6, 4));
    }
}

//! Spatial/temporal relationship detection (the PPU **Detector**, Sec. V-B).
//!
//! The hardware detector pre-loads an `m × k` spike tile into a ternary CAM.
//! Querying the TCAM with a spike row whose 1-bits are masked to "don't care"
//! returns, in a single cycle, the *Subset Index* (SI) vector: every stored
//! entry whose spikes are a subset of the query row. Popcount units produce
//! the *Number of Ones* (NO) vector used as preliminary temporal information.
//!
//! [`TcamDetector`] is the cycle-faithful software model of that memory;
//! [`detect_tile`] runs the whole detection stage for a tile, and
//! [`naive_subsets`] is the O(m²) pairwise reference the TCAM model is
//! property-tested against.

use crate::relation::{classify, Relation};
use spikemat::{BitRow, SpikeMatrix};

/// Software model of the Detector's ternary CAM.
///
/// Stored entries are the rows of one spike tile. [`TcamDetector::query`]
/// models the single-cycle parallel search: entry `e` matches query `q` iff
/// `e ⊆ q` (the query's 1-bits are wildcards, its 0-bits demand 0).
#[derive(Debug, Clone)]
pub struct TcamDetector {
    entries: Vec<BitRow>,
    width: usize,
}

impl TcamDetector {
    /// Pre-loads a spike tile into the TCAM (pipeline Step 0).
    pub fn load(tile: &SpikeMatrix) -> Self {
        Self {
            entries: tile.row_slice().to_vec(),
            width: tile.cols(),
        }
    }

    /// Reloads this TCAM with a new tile in place (the hardware's Step 0 for
    /// the *next* tile), reusing the entry allocations so a detector threaded
    /// across the tiles of a whole plan settles into zero allocation.
    pub fn reload(&mut self, tile: &SpikeMatrix) {
        self.entries.clear();
        self.entries.extend_from_slice(tile.row_slice());
        self.width = tile.cols();
    }

    /// Number of stored entries (`m`).
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Entry width in bits (`k`).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Single-cycle subset search: returns the SI match vector, one bool per
    /// stored entry, where `true` means the entry is a subset of `query`.
    ///
    /// Note the raw hardware match vector includes the query row itself and
    /// all-zero entries; filtering those is the Pruner's job.
    ///
    /// # Panics
    ///
    /// Panics if `query` width differs from the loaded tile width.
    pub fn query(&self, query: &BitRow) -> Vec<bool> {
        let mut si = Vec::new();
        self.query_into(query, &mut si);
        si
    }

    /// [`TcamDetector::query`] into a caller-owned SI buffer.
    ///
    /// `si` is cleared and refilled, so a buffer reused across queries
    /// allocates only on the first call — the zero-allocation detection path.
    /// Entries are compared word-wise against the query's raw limbs.
    ///
    /// # Panics
    ///
    /// Panics if `query` width differs from the loaded tile width.
    pub fn query_into(&self, query: &BitRow, si: &mut Vec<bool>) {
        assert_eq!(query.len(), self.width, "TCAM query width mismatch");
        let q = query.limbs();
        si.clear();
        si.extend(self.entries.iter().map(|e| e.subset_query(q)));
    }

    /// Number of TCAM bit-comparisons performed by one query (`m × k`),
    /// the unit of the paper's cost model (Sec. VII-G).
    pub fn bitops_per_query(&self) -> u64 {
        (self.entries.len() * self.width) as u64
    }
}

/// Output of the detection stage for one tile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectedTile {
    /// For each row `i`: indices `j ≠ i` with `S_j ⊆ S_i` and `S_j ≠ ∅`.
    ///
    /// This is the SI vector after removing the trivial matches (self and
    /// zero rows) but **before** the Pruner's partial-ordering filter.
    pub subset_candidates: Vec<Vec<usize>>,
    /// NO vector: spike count of each row.
    pub popcounts: Vec<usize>,
}

impl DetectedTile {
    /// Number of rows in the detected tile.
    pub fn rows(&self) -> usize {
        self.popcounts.len()
    }
}

/// Runs the full detection stage on one tile using the TCAM model.
pub fn detect_tile(tile: &SpikeMatrix) -> DetectedTile {
    let mut out = DetectedTile {
        subset_candidates: Vec::new(),
        popcounts: Vec::new(),
    };
    detect_tile_into(tile, &mut out);
    out
}

/// Batched [`detect_tile`] into a caller-owned [`DetectedTile`].
///
/// All buffers of `out` — the popcount vector, the outer candidate vector,
/// and each per-row candidate list — are cleared and reused, so detection
/// across the tiles of a whole GeMM plan settles into zero allocation. The
/// subset search runs directly over the tile rows' raw limbs, word by word,
/// with the same semantics as the TCAM model.
pub fn detect_tile_into(tile: &SpikeMatrix, out: &mut DetectedTile) {
    let m = tile.rows();
    let rows = tile.row_slice();
    out.popcounts.clear();
    out.popcounts.extend(rows.iter().map(BitRow::popcount));
    // Shrink (keeping allocations) or grow the outer vector to m rows.
    out.subset_candidates.truncate(m);
    while out.subset_candidates.len() < m {
        out.subset_candidates.push(Vec::new());
    }
    for (i, candidates) in out.subset_candidates.iter_mut().enumerate() {
        candidates.clear();
        let q = rows[i].limbs();
        for (j, row) in rows.iter().enumerate() {
            if j != i && out.popcounts[j] > 0 && row.subset_query(q) {
                candidates.push(j);
            }
        }
    }
}

/// O(m²) pairwise reference detector built on [`classify`].
///
/// Produces the same result as [`detect_tile`]; used to validate the TCAM
/// query semantics.
#[allow(clippy::needless_range_loop)] // i/j index three parallel arrays
pub fn naive_subsets(tile: &SpikeMatrix) -> DetectedTile {
    let m = tile.rows();
    let popcounts: Vec<usize> = tile.row_slice().iter().map(BitRow::popcount).collect();
    let mut subset_candidates = vec![Vec::new(); m];
    for i in 0..m {
        for j in 0..m {
            if i == j || popcounts[j] == 0 {
                continue;
            }
            match classify(tile.row(j), tile.row(i)) {
                Relation::ExactMatch | Relation::SubsetOfSecond => {
                    subset_candidates[i].push(j);
                }
                _ => {}
            }
        }
    }
    DetectedTile {
        subset_candidates,
        popcounts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig3_tile() -> SpikeMatrix {
        // Fig. 3 (a) spike matrix.
        SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 0, 1, 0],
            &[1, 0, 1, 1],
            &[1, 1, 0, 1],
        ])
    }

    #[test]
    fn tcam_query_is_subset_search() {
        let tile = fig3_tile();
        let tcam = TcamDetector::load(&tile);
        // Query Row 2 = 1011 (mask to X0XX): matches rows whose bits ⊆ 1011.
        let si = tcam.query(tile.row(2));
        assert_eq!(si, vec![true, true, true, true, true, false]);
        assert_eq!(tcam.bitops_per_query(), 24);
    }

    #[test]
    fn detect_filters_self_and_zero_rows() {
        let tile = SpikeMatrix::from_rows_of_bits(&[&[0, 0, 0, 0], &[1, 0, 0, 0], &[1, 0, 0, 1]]);
        let d = detect_tile(&tile);
        assert!(d.subset_candidates[0].is_empty());
        assert!(d.subset_candidates[1].is_empty()); // only zero row ⊆ it
        assert_eq!(d.subset_candidates[2], vec![1]);
        assert_eq!(d.popcounts, vec![0, 1, 2]);
    }

    #[test]
    fn tcam_matches_naive_on_fig3() {
        let tile = fig3_tile();
        assert_eq!(detect_tile(&tile), naive_subsets(&tile));
    }

    #[test]
    fn query_into_reuses_buffer() {
        let tile = fig3_tile();
        let tcam = TcamDetector::load(&tile);
        let mut si = vec![true; 40]; // stale, oversized
        tcam.query_into(tile.row(2), &mut si);
        assert_eq!(si, tcam.query(tile.row(2)));
        assert_eq!(si.len(), tile.rows());
    }

    #[test]
    fn detect_tile_into_reuses_scratch_across_tiles() {
        let a = fig3_tile();
        let b = SpikeMatrix::from_rows_of_bits(&[&[1, 1], &[0, 1], &[1, 0], &[1, 1]]);
        let mut scratch = detect_tile(&a); // seed with stale state from tile a
        detect_tile_into(&b, &mut scratch);
        assert_eq!(scratch, detect_tile(&b));
        detect_tile_into(&a, &mut scratch); // shrink/grow both directions
        assert_eq!(scratch, detect_tile(&a));
    }

    #[test]
    fn reload_matches_fresh_load() {
        let a = fig3_tile();
        let b = SpikeMatrix::from_rows_of_bits(&[&[1, 1], &[0, 1]]);
        let mut tcam = TcamDetector::load(&a);
        tcam.reload(&b);
        assert_eq!(tcam.entries(), 2);
        assert_eq!(tcam.width(), 2);
        assert_eq!(tcam.query(b.row(0)), TcamDetector::load(&b).query(b.row(0)));
        tcam.reload(&a); // grow back
        assert_eq!(tcam.query(a.row(2)), TcamDetector::load(&a).query(a.row(2)));
    }

    #[test]
    fn exact_match_rows_see_each_other() {
        let tile = fig3_tile();
        let d = detect_tile(&tile);
        // Rows 2 and 4 are identical (1011): each lists the other.
        assert!(d.subset_candidates[2].contains(&4));
        assert!(d.subset_candidates[4].contains(&2));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn query_width_mismatch_panics() {
        let tcam = TcamDetector::load(&SpikeMatrix::zeros(2, 4));
        let _ = tcam.query(&BitRow::zeros(5));
    }

    #[test]
    fn detector_accessors() {
        let tcam = TcamDetector::load(&SpikeMatrix::zeros(7, 16));
        assert_eq!(tcam.entries(), 7);
        assert_eq!(tcam.width(), 16);
    }
}

//! Classification of the spatial relationship between two spike rows
//! (paper Sec. III-B).

use spikemat::BitRow;

/// The spatial relationship between two spike rows `(S_i, S_j)` as defined by
/// the intersection `A = S_i ∩ S_j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `A = ∅`: the rows share no spikes. Not exploitable.
    Disjoint,
    /// `A = S_i = S_j`: the rows are identical (*Exact Match*). The full
    /// result of the prefix row can be reused with zero accumulations.
    ExactMatch,
    /// `A = S_j ≠ S_i`: `S_j` is a proper subset of `S_i` (*Partial Match*,
    /// with `S_j` the potential prefix of `S_i`).
    SubsetOfFirst,
    /// `A = S_i ≠ S_j`: `S_i` is a proper subset of `S_j` (*Partial Match*,
    /// with `S_i` the potential prefix of `S_j`).
    SubsetOfSecond,
    /// `A ≠ ∅, A ≠ S_i, A ≠ S_j`: a nontrivial intersection. Exploiting it
    /// would require materializing a new row `A`; Prosperity deliberately
    /// leaves this case on the table (Sec. III-B).
    Intersection,
}

/// Classifies the spatial relationship between `a` (row `i`) and `b` (row `j`).
///
/// # Panics
///
/// Panics if the rows have different lengths.
///
/// # Examples
///
/// ```
/// use prosperity_core::{classify, Relation};
/// use spikemat::BitRow;
///
/// let row1 = BitRow::from_bits(&[1, 0, 0, 1]);
/// let row4 = BitRow::from_bits(&[1, 1, 0, 1]);
/// assert_eq!(classify(&row1, &row4), Relation::SubsetOfSecond);
/// assert_eq!(classify(&row4, &row4), Relation::ExactMatch);
/// ```
pub fn classify(a: &BitRow, b: &BitRow) -> Relation {
    let inter = a.and(b);
    if inter.is_zero() {
        return Relation::Disjoint;
    }
    match (&inter == a, &inter == b) {
        (true, true) => Relation::ExactMatch,
        (true, false) => Relation::SubsetOfSecond,
        (false, true) => Relation::SubsetOfFirst,
        (false, false) => Relation::Intersection,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(bits: &[u8]) -> BitRow {
        BitRow::from_bits(bits)
    }

    #[test]
    fn disjoint_rows() {
        assert_eq!(
            classify(&r(&[1, 0, 1, 0]), &r(&[0, 1, 0, 1])),
            Relation::Disjoint
        );
    }

    #[test]
    fn zero_row_is_disjoint_from_everything() {
        // The empty intersection dominates: a zero row is *not* treated as a
        // usable subset because reusing an empty prefix saves nothing.
        assert_eq!(
            classify(&r(&[0, 0, 0, 0]), &r(&[1, 1, 0, 1])),
            Relation::Disjoint
        );
        assert_eq!(
            classify(&r(&[0, 0, 0, 0]), &r(&[0, 0, 0, 0])),
            Relation::Disjoint
        );
    }

    #[test]
    fn exact_match() {
        assert_eq!(
            classify(&r(&[1, 1, 0, 1]), &r(&[1, 1, 0, 1])),
            Relation::ExactMatch
        );
    }

    #[test]
    fn proper_subsets_both_directions() {
        let small = r(&[1, 0, 0, 1]);
        let big = r(&[1, 1, 0, 1]);
        assert_eq!(classify(&small, &big), Relation::SubsetOfSecond);
        assert_eq!(classify(&big, &small), Relation::SubsetOfFirst);
    }

    #[test]
    fn nontrivial_intersection() {
        assert_eq!(
            classify(&r(&[1, 1, 0, 0]), &r(&[0, 1, 1, 0])),
            Relation::Intersection
        );
    }

    #[test]
    fn paper_fig1_row0_row3() {
        // Row 0 = 1010, Row 3 = 0010: Row 3 ⊂ Row 0.
        assert_eq!(
            classify(&r(&[1, 0, 1, 0]), &r(&[0, 0, 1, 0])),
            Relation::SubsetOfFirst
        );
    }
}

//! End-to-end trace execution: a reusable [`Engine`] that runs whole models
//! (multi-layer, multi-timestep) through the ProSparsity kernels with plan
//! caching and buffer pooling.
//!
//! [`crate::exec::prosparsity_gemm`] re-plans and re-allocates everything on
//! every call. That is the right shape for one-shot algorithm studies but
//! wrong for serving a model trace, where the same layer geometry recurs
//! every timestep and the spike matrices are *temporally correlated*: SNN
//! neurons tend to keep (or barely change) their firing pattern across
//! adjacent timesteps, so whole spike tiles repeat verbatim. The engine
//! exploits both forms of redundancy:
//!
//! * **Plan cache** — per-tile meta information is keyed by a fast hash of
//!   the tile's raw bit limbs (verified by full limb comparison, so a hash
//!   collision can never substitute a wrong plan) and held in an LRU of
//!   configurable capacity. A repeated tile — across timesteps, layers, or
//!   within one matrix — skips the Detector/Pruner/Dispatcher entirely.
//!   Cached plans are position-independent: the same entry serves a tile
//!   wherever it appears in the grid.
//! * **Scratch reuse** — cache misses are planned through one persistent
//!   [`PlanScratch`] ([`TileMeta::build_with`]), so steady-state planning
//!   allocates only for the meta it emits.
//! * **Buffer pooling** — output matrices, executor arenas, and the
//!   spike-chain ping-pong buffers are recycled across layers and calls
//!   ([`BufferPool`]); a warmed-up engine performs no steady-state
//!   allocation beyond cache insertions.
//! * **Row-tile parallelism** — with the `parallel` feature (default),
//!   execution distributes row-tiles across threads exactly like
//!   [`crate::exec::execute_plan`], with bit-identical results; the
//!   `*_serial` entry points remain the oracle.
//!
//! Losslessness is preserved: for any input, [`Engine::gemm_into`] produces
//! bit-for-bit the output of [`crate::exec::prosparsity_gemm`] (and thus of
//! the reference [`spikemat::gemm::spiking_gemm`]). Cache effectiveness is
//! surfaced through [`EngineStats`].

use crate::exec::{execute_row_tile, TileExec};
use crate::plan::{PlanScratch, TileMeta};
use serde::{Deserialize, Serialize};
use spikemat::gemm::{OutputMatrix, WeightMatrix};
use spikemat::{SpikeMatrix, TileShape};
use std::collections::HashMap;
use std::ops::AddAssign;
use std::sync::{Arc, Mutex};

/// Element types the engine can accumulate.
///
/// With the `parallel` feature this additionally requires `Send + Sync` so
/// row-tiles can execute across threads; every integer and float type
/// qualifies either way.
#[cfg(feature = "parallel")]
pub trait Element: Copy + Default + AddAssign + Send + Sync {}
#[cfg(feature = "parallel")]
impl<T: Copy + Default + AddAssign + Send + Sync> Element for T {}

/// Element types the engine can accumulate (serial build).
#[cfg(not(feature = "parallel"))]
pub trait Element: Copy + Default + AddAssign {}
#[cfg(not(feature = "parallel"))]
impl<T: Copy + Default + AddAssign> Element for T {}

/// Engine construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Accelerator tile geometry every GeMM is decomposed under.
    pub tile: TileShape,
    /// Maximum number of cached tile plans (LRU evicted beyond this);
    /// 0 disables the cache entirely.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    /// The paper's default tile geometry with a 1024-plan cache (roughly
    /// 25 MB of meta information at the default 256×16 tile).
    fn default() -> Self {
        Self {
            tile: TileShape::prosperity_default(),
            cache_capacity: 1024,
        }
    }
}

/// Counters describing how effectively an [`Engine`] is reusing work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// GeMMs executed.
    pub gemms: u64,
    /// Tiles encountered across all GeMMs.
    pub tiles: u64,
    /// Tiles whose plan was served from the cache.
    pub cache_hits: u64,
    /// Tiles that had to be planned (includes every tile when the cache is
    /// disabled).
    pub cache_misses: u64,
    /// Cached plans evicted to make room.
    pub cache_evictions: u64,
}

impl EngineStats {
    /// Fraction of tiles served from the plan cache (0 when no tiles ran).
    pub fn hit_rate(&self) -> f64 {
        if self.tiles == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.tiles as f64
        }
    }
}

/// Pseudo-random multiplier for the limb-folding tile hash (the golden-ratio
/// constant used by Fx-style hashers).
const HASH_K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fast content hash of a flat limb key. Four independent lanes break the
/// multiply dependency chain (a single folded lane costs ~5 cycles *per
/// limb* in latency, which dominated miss-heavy streams); collisions are
/// resolved by full limb comparison in the cache, never trusted.
fn hash_limbs(limbs: &[u64]) -> u64 {
    let mut lanes = [
        0x243F_6A88_85A3_08D3u64,
        0x1319_8A2E_0370_7344,
        0xA409_3822_299F_31D0,
        0x082E_FA98_EC4E_6C89,
    ];
    let mut chunks = limbs.chunks_exact(4);
    for c in &mut chunks {
        for (lane, &limb) in lanes.iter_mut().zip(c) {
            *lane = (lane.rotate_left(5) ^ limb).wrapping_mul(HASH_K);
        }
    }
    for (lane, &limb) in lanes.iter_mut().zip(chunks.remainder()) {
        *lane = (lane.rotate_left(5) ^ limb).wrapping_mul(HASH_K);
    }
    let mut h = (limbs.len() as u64).wrapping_mul(HASH_K);
    for lane in lanes {
        h = (h.rotate_left(5) ^ lane).wrapping_mul(HASH_K);
    }
    h
}

/// Flattens a tile's rows into the reusable key buffer (row-major limbs).
fn fill_key(tile: &SpikeMatrix, key: &mut Vec<u64>) {
    key.clear();
    for row in tile.row_slice() {
        key.extend_from_slice(row.limbs());
    }
}

/// Map keys are already hashes, so the cache map uses a pass-through hasher
/// instead of paying SipHash per probe.
#[derive(Debug, Default, Clone, Copy)]
struct PassThroughHasher(u64);

impl std::hash::Hasher for PassThroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("cache keys are hashed as u64");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type PassThroughState = std::hash::BuildHasherDefault<PassThroughHasher>;

const NIL: u32 = u32::MAX;

/// One resident cache entry, linked into the LRU list.
#[derive(Debug)]
struct Slot {
    hash: u64,
    /// The tile's raw limbs, row-major — the full key behind the hash.
    limbs: Box<[u64]>,
    meta: Arc<TileMeta>,
    prev: u32,
    next: u32,
}

/// Content-addressed LRU of tile plans: a slab of slots threaded on an
/// intrusive doubly-linked recency list, indexed by a hash → slot multimap
/// (the per-hash `Vec` absorbs collisions). All operations are O(1) amortized.
#[derive(Debug)]
struct PlanCache {
    capacity: usize,
    map: HashMap<u64, Vec<u32>, PassThroughState>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    /// Shared empty meta parked in freed slots so evicted payloads drop
    /// immediately instead of lingering until slot reuse.
    placeholder: Arc<TileMeta>,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            placeholder: Arc::new(TileMeta::build(&SpikeMatrix::zeros(0, 0), 0, 0)),
        }
    }

    fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Looks up the plan for a tile with the given content hash and flat
    /// limb key, refreshing its recency on a hit.
    fn lookup(&mut self, hash: u64, key: &[u64]) -> Option<Arc<TileMeta>> {
        let bucket = self.map.get(&hash)?;
        let idx = *bucket
            .iter()
            .find(|&&i| *self.slots[i as usize].limbs == *key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(Arc::clone(&self.slots[idx as usize].meta))
    }

    /// Inserts a freshly planned tile; returns `true` if an older plan was
    /// evicted to make room. No-op when the cache is disabled.
    fn insert(&mut self, hash: u64, key: &[u64], meta: Arc<TileMeta>) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let evicted = if self.len() >= self.capacity {
            self.evict_lru();
            true
        } else {
            false
        };
        let slot = Slot {
            hash,
            limbs: Box::from(key),
            meta,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        self.map.entry(hash).or_default().push(idx);
        self.push_front(idx);
        evicted
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[idx as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        match old_head {
            NIL => self.tail = idx,
            h => self.slots[h as usize].prev = idx,
        }
        self.head = idx;
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict on empty cache");
        self.unlink(idx);
        let hash = self.slots[idx as usize].hash;
        if let Some(bucket) = self.map.get_mut(&hash) {
            bucket.retain(|&i| i != idx);
            if bucket.is_empty() {
                self.map.remove(&hash);
            }
        }
        // Drop the payload now; the slot itself is recycled.
        self.slots[idx as usize].limbs = Box::new([]);
        self.slots[idx as usize].meta = Arc::clone(&self.placeholder);
        self.free.push(idx);
    }
}

/// A cached plan placed at a concrete grid position.
#[derive(Debug, Clone)]
struct EngineTile {
    meta: Arc<TileMeta>,
    col_start: usize,
    valid_rows: usize,
}

impl TileExec for EngineTile {
    fn meta(&self) -> &TileMeta {
        &self.meta
    }
    fn col_start(&self) -> usize {
        self.col_start
    }
    fn valid_rows(&self) -> usize {
        self.valid_rows
    }
}

/// Reusable executor buffers for one row-tile worker.
#[derive(Debug)]
struct ExecScratch<T> {
    arena: Vec<T>,
    parents: Vec<bool>,
    simple: Vec<bool>,
}

impl<T> Default for ExecScratch<T> {
    fn default() -> Self {
        Self {
            arena: Vec::new(),
            parents: Vec::new(),
            simple: Vec::new(),
        }
    }
}

/// Pool of recycled buffers shared across layers, calls, and worker threads.
///
/// Holds the executor arenas (checked out per row-tile, including from rayon
/// workers — hence the mutex, which is touched twice per row-tile and never
/// inside the accumulation loops). The output and spike-chain buffers live
/// directly on the [`Engine`].
#[derive(Debug, Default)]
struct BufferPool<T> {
    exec: Mutex<Vec<ExecScratch<T>>>,
}

impl<T> BufferPool<T> {
    fn take_exec(&self) -> ExecScratch<T> {
        self.exec
            .lock()
            .expect("buffer pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn put_exec(&self, scratch: ExecScratch<T>) {
        self.exec
            .lock()
            .expect("buffer pool poisoned")
            .push(scratch);
    }
}

/// A reusable end-to-end execution session: plan cache, planner scratch, and
/// buffer pools that persist across GeMMs, layers, and timesteps.
///
/// One engine serves one logical stream of spiking GeMMs (a model being
/// replayed timestep after timestep). It is `&mut self` throughout — share
/// streams across threads by giving each its own engine; *within* one call
/// the engine parallelizes across row-tiles.
///
/// ```
/// use prosperity_core::engine::Engine;
/// use spikemat::gemm::{spiking_gemm, OutputMatrix, WeightMatrix};
/// use spikemat::SpikeMatrix;
///
/// let mut engine = Engine::<i64>::default();
/// let spikes = SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[1, 0, 1]]);
/// let weights = WeightMatrix::from_fn(3, 2, |r, c| (r + c) as i64);
/// let mut out = OutputMatrix::zeros(0, 0);
/// engine.gemm_into(&spikes, &weights, &mut out);
/// assert_eq!(out, spiking_gemm(&spikes, &weights));
/// ```
#[derive(Debug)]
pub struct Engine<T = i64> {
    config: EngineConfig,
    cache: PlanCache,
    plan_scratch: PlanScratch,
    /// Scratch tile for extraction + hashing.
    tile_buf: SpikeMatrix,
    /// Reusable flat limb key of the current tile (row-major).
    key_buf: Vec<u64>,
    /// The current GeMM's placed tiles, row-major; reused across calls.
    tiles: Vec<EngineTile>,
    /// k-tiles per row group of the current GeMM.
    gk: usize,
    pool: BufferPool<T>,
    /// Pooled output recycled by [`Engine::run_layers`] / chaining.
    chain_out: OutputMatrix<T>,
    /// Spike-chain ping-pong buffers for [`Engine::forward_chain`].
    chain_a: SpikeMatrix,
    chain_b: SpikeMatrix,
    stats: EngineStats,
}

impl<T: Element> Default for Engine<T> {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl<T: Element> Engine<T> {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            cache: PlanCache::new(config.cache_capacity),
            plan_scratch: PlanScratch::new(),
            tile_buf: SpikeMatrix::zeros(0, 0),
            key_buf: Vec::new(),
            tiles: Vec::new(),
            gk: 0,
            pool: BufferPool::default(),
            chain_out: OutputMatrix::zeros(0, 0),
            chain_a: SpikeMatrix::zeros(0, 0),
            chain_b: SpikeMatrix::zeros(0, 0),
            stats: EngineStats::default(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cache/reuse counters accumulated since the last
    /// [`Engine::reset_stats`].
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Zeroes the statistics counters (the cache itself is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Number of tile plans currently resident in the cache.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cached plan (capacity is unchanged).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Plans one spike matrix through the tile cache, leaving the placed
    /// tiles in `self.tiles` (row-major).
    fn plan(&mut self, spikes: &SpikeMatrix) {
        let shape = self.config.tile;
        let (gm, gk) = shape.grid(spikes.rows(), spikes.cols());
        self.gk = gk;
        self.tiles.clear();
        let mut tile_buf = std::mem::take(&mut self.tile_buf);
        for ti in 0..gm {
            let row_start = ti * shape.m;
            let valid_rows = (spikes.rows() - row_start).min(shape.m);
            for tj in 0..gk {
                let col_start = tj * shape.k;
                spikes.submatrix_into(row_start, col_start, shape.m, shape.k, &mut tile_buf);
                self.stats.tiles += 1;
                let meta = if self.config.cache_capacity == 0 {
                    self.stats.cache_misses += 1;
                    let (meta, _) = TileMeta::build_with(&tile_buf, 0, 0, &mut self.plan_scratch);
                    Arc::new(meta)
                } else {
                    fill_key(&tile_buf, &mut self.key_buf);
                    let hash = hash_limbs(&self.key_buf);
                    match self.cache.lookup(hash, &self.key_buf) {
                        Some(meta) => {
                            self.stats.cache_hits += 1;
                            meta
                        }
                        None => {
                            self.stats.cache_misses += 1;
                            let (meta, _) =
                                TileMeta::build_with(&tile_buf, 0, 0, &mut self.plan_scratch);
                            let meta = Arc::new(meta);
                            if self.cache.insert(hash, &self.key_buf, Arc::clone(&meta)) {
                                self.stats.cache_evictions += 1;
                            }
                            meta
                        }
                    }
                };
                self.tiles.push(EngineTile {
                    meta,
                    col_start,
                    valid_rows,
                });
            }
        }
        self.tile_buf = tile_buf;
    }

    /// Executes one spiking GeMM into `out` (resized in place, so a reused
    /// buffer makes the call allocation-free apart from cache insertions).
    ///
    /// Bit-identical to [`crate::exec::prosparsity_gemm`] with this engine's
    /// tile shape; row-tiles run across threads with the `parallel` feature.
    ///
    /// # Panics
    ///
    /// Panics if `spikes.cols() != weights.rows()`.
    pub fn gemm_into(
        &mut self,
        spikes: &SpikeMatrix,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
    ) {
        self.gemm_prepare(spikes, weights, out);
        self.execute_current(weights, out);
    }

    /// Strictly single-threaded [`Engine::gemm_into`]; the oracle the
    /// parallel path is property-tested against. Cache behaviour (and thus
    /// [`EngineStats`]) is identical.
    pub fn gemm_into_serial(
        &mut self,
        spikes: &SpikeMatrix,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
    ) {
        self.gemm_prepare(spikes, weights, out);
        self.execute_current_serial(weights, out);
    }

    /// Convenience [`Engine::gemm_into`] allocating a fresh output.
    pub fn gemm(&mut self, spikes: &SpikeMatrix, weights: &WeightMatrix<T>) -> OutputMatrix<T> {
        let mut out = OutputMatrix::zeros(0, 0);
        self.gemm_into(spikes, weights, &mut out);
        out
    }

    /// Shared plan + output-shape phase of the `gemm_into*` entry points.
    fn gemm_prepare(
        &mut self,
        spikes: &SpikeMatrix,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
    ) {
        assert_eq!(
            spikes.cols(),
            weights.rows(),
            "engine: spike K={} does not match weight rows {}",
            spikes.cols(),
            weights.rows()
        );
        self.stats.gemms += 1;
        self.plan(spikes);
        out.reset(spikes.rows(), weights.cols());
    }

    /// Executes the tiles placed by the last `plan` call into `out`.
    #[cfg(feature = "parallel")]
    fn execute_current(&self, weights: &WeightMatrix<T>, out: &mut OutputMatrix<T>) {
        use rayon::prelude::*;
        let n = weights.cols();
        if self.tiles.is_empty() || n == 0 {
            return;
        }
        let chunk_elems = self.config.tile.m * n;
        let gk = self.gk;
        let row_chunks: Vec<(usize, &mut [T])> = out
            .as_mut_slice()
            .chunks_mut(chunk_elems)
            .enumerate()
            .collect();
        row_chunks.into_par_iter().for_each(|(ti, chunk)| {
            let mut s = self.pool.take_exec();
            execute_row_tile(
                &self.tiles[ti * gk..(ti + 1) * gk],
                weights,
                chunk,
                &mut s.arena,
                &mut s.parents,
                &mut s.simple,
                n,
            );
            self.pool.put_exec(s);
        });
    }

    /// Executes the tiles placed by the last `plan` call into `out`.
    #[cfg(not(feature = "parallel"))]
    fn execute_current(&self, weights: &WeightMatrix<T>, out: &mut OutputMatrix<T>) {
        self.execute_current_serial(weights, out);
    }

    /// Serial row-tile sweep over the placed tiles.
    fn execute_current_serial(&self, weights: &WeightMatrix<T>, out: &mut OutputMatrix<T>) {
        let n = weights.cols();
        if self.tiles.is_empty() || n == 0 {
            return;
        }
        let chunk_elems = self.config.tile.m * n;
        let gk = self.gk;
        let mut s = self.pool.take_exec();
        for (ti, chunk) in out.as_mut_slice().chunks_mut(chunk_elems).enumerate() {
            execute_row_tile(
                &self.tiles[ti * gk..(ti + 1) * gk],
                weights,
                chunk,
                &mut s.arena,
                &mut s.parents,
                &mut s.simple,
                n,
            );
        }
        self.pool.put_exec(s);
    }

    /// Executes a stream of recorded `(spikes, weights)` GeMMs — e.g. the
    /// layers of a model trace — through one pooled output buffer. `sink`
    /// observes each layer's output before the buffer is recycled for the
    /// next layer.
    pub fn run_layers<'a, I, F>(&mut self, layers: I, mut sink: F)
    where
        T: 'a,
        I: IntoIterator<Item = (&'a SpikeMatrix, &'a WeightMatrix<T>)>,
        F: FnMut(usize, &OutputMatrix<T>),
    {
        let mut out = std::mem::take(&mut self.chain_out);
        for (i, (spikes, weights)) in layers.into_iter().enumerate() {
            self.gemm_into(spikes, weights, &mut out);
            sink(i, &out);
        }
        self.chain_out = out;
    }

    /// Runs a feed-forward chain: layer `ℓ`'s integer output is thresholded
    /// (`v >= threshold` fires) into the spike input of layer `ℓ+1`, using
    /// the engine's pooled ping-pong buffers, and the final layer's spikes
    /// are left in `out_spikes` (resized in place). No steady-state
    /// allocation once the pools are warm.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or adjacent layer shapes do not chain
    /// (`N_ℓ != K_{ℓ+1}`, reported by the inner dimension assert).
    pub fn forward_chain(
        &mut self,
        input: &SpikeMatrix,
        layers: &[WeightMatrix<T>],
        threshold: T,
        out_spikes: &mut SpikeMatrix,
    ) where
        T: PartialOrd,
    {
        assert!(!layers.is_empty(), "forward_chain needs at least one layer");
        let mut acc = std::mem::take(&mut self.chain_out);
        let mut ping = std::mem::take(&mut self.chain_a);
        let mut pong = std::mem::take(&mut self.chain_b);
        for (i, weights) in layers.iter().enumerate() {
            {
                let src: &SpikeMatrix = if i == 0 { input } else { &ping };
                self.gemm_into(src, weights, &mut acc);
            }
            threshold_spikes(&acc, threshold, &mut pong);
            std::mem::swap(&mut ping, &mut pong);
        }
        // Final spikes are in `ping`; hand them to the caller and keep the
        // other buffer (plus whatever the caller passed in) pooled.
        std::mem::swap(out_spikes, &mut ping);
        self.chain_out = acc;
        self.chain_a = ping;
        self.chain_b = pong;
    }
}

/// Binarizes an integer/float output into spikes: bit `(i, j)` fires iff
/// `values[i][j] >= threshold`. `out` is resized in place (the engine's
/// pooled layer-chaining step).
pub fn threshold_spikes<T: Copy + Default + AddAssign + PartialOrd>(
    values: &OutputMatrix<T>,
    threshold: T,
    out: &mut SpikeMatrix,
) {
    out.reset(values.rows(), values.cols());
    for i in 0..values.rows() {
        for (j, v) in values.row(i).iter().enumerate() {
            if *v >= threshold {
                out.set(i, j, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::prosparsity_gemm;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spikemat::gemm::spiking_gemm;

    fn random_case(rng: &mut StdRng) -> (SpikeMatrix, WeightMatrix<i64>) {
        let m = rng.gen_range(1..50);
        let k = rng.gen_range(1..40);
        let n = rng.gen_range(1..8);
        let s = SpikeMatrix::random(m, k, rng.gen_range(0.05..0.6), rng);
        let w = WeightMatrix::from_fn(k, n, |_, _| rng.gen_range(-50i64..50));
        (s, w)
    }

    #[test]
    fn engine_matches_reference_across_random_cases() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let (s, w) = random_case(&mut rng);
            let tile = TileShape::new(rng.gen_range(1..=16), rng.gen_range(1..=16));
            let mut engine = Engine::new(EngineConfig {
                tile,
                cache_capacity: rng.gen_range(0..8),
            });
            let mut out = OutputMatrix::zeros(0, 0);
            engine.gemm_into(&s, &w, &mut out);
            assert_eq!(out, spiking_gemm(&s, &w), "trial {trial}");
            assert_eq!(out, prosparsity_gemm(&s, &w, tile), "trial {trial}");
        }
    }

    #[test]
    fn serial_and_parallel_paths_agree() {
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..10 {
            let (s, w) = random_case(&mut rng);
            let tile = TileShape::new(rng.gen_range(1..=12), rng.gen_range(1..=12));
            let mut engine = Engine::new(EngineConfig {
                tile,
                cache_capacity: 16,
            });
            let mut a = OutputMatrix::zeros(0, 0);
            let mut b = OutputMatrix::zeros(0, 0);
            engine.gemm_into(&s, &w, &mut a);
            engine.gemm_into_serial(&s, &w, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn repeated_matrix_hits_cache_and_stays_lossless() {
        let mut rng = StdRng::seed_from_u64(13);
        let s = SpikeMatrix::random(64, 32, 0.3, &mut rng);
        let w = WeightMatrix::from_fn(32, 4, |r, c| (r * 7 + c) as i64 - 9);
        let mut engine = Engine::new(EngineConfig {
            tile: TileShape::new(16, 16),
            cache_capacity: 64,
        });
        let reference = spiking_gemm(&s, &w);
        let mut out = OutputMatrix::zeros(0, 0);
        engine.gemm_into(&s, &w, &mut out);
        let misses_first = engine.stats().cache_misses;
        assert_eq!(out, reference);
        engine.gemm_into(&s, &w, &mut out);
        assert_eq!(out, reference);
        let stats = engine.stats();
        assert_eq!(stats.gemms, 2);
        // Second pass must be all hits.
        assert_eq!(stats.cache_misses, misses_first);
        assert_eq!(stats.cache_hits, misses_first);
        assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
    }

    #[test]
    fn identical_tiles_within_one_matrix_share_a_plan() {
        // Two identical 4-row bands → the second band's tile is a hit even
        // on the very first GeMM.
        let band = [
            &[1u8, 0, 1, 0][..],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[0, 1, 0, 0],
        ];
        let rows: Vec<&[u8]> = band.iter().chain(band.iter()).copied().collect();
        let s = SpikeMatrix::from_rows_of_bits(&rows);
        let w = WeightMatrix::from_fn(4, 3, |r, c| (r + 2 * c) as i64);
        let mut engine = Engine::new(EngineConfig {
            tile: TileShape::new(4, 4),
            cache_capacity: 8,
        });
        let mut out = OutputMatrix::zeros(0, 0);
        engine.gemm_into(&s, &w, &mut out);
        assert_eq!(out, spiking_gemm(&s, &w));
        let stats = engine.stats();
        assert_eq!(stats.tiles, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn lru_evicts_oldest_and_result_stays_exact() {
        let mut rng = StdRng::seed_from_u64(14);
        // Capacity 2 with 4 distinct tiles per GeMM → constant eviction.
        let s = SpikeMatrix::random(16, 16, 0.4, &mut rng);
        let w = WeightMatrix::from_fn(16, 3, |r, c| (r * 3 + c) as i64 - 20);
        let mut engine = Engine::new(EngineConfig {
            tile: TileShape::new(4, 16),
            cache_capacity: 2,
        });
        let reference = spiking_gemm(&s, &w);
        let mut out = OutputMatrix::zeros(0, 0);
        for _ in 0..3 {
            engine.gemm_into(&s, &w, &mut out);
            assert_eq!(out, reference);
        }
        let stats = engine.stats();
        assert!(stats.cache_evictions > 0, "{stats:?}");
        assert!(engine.cached_plans() <= 2);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut rng = StdRng::seed_from_u64(15);
        let s = SpikeMatrix::random(20, 10, 0.3, &mut rng);
        let w = WeightMatrix::from_fn(10, 2, |r, c| (r + c) as i64);
        let mut engine = Engine::new(EngineConfig {
            tile: TileShape::new(8, 8),
            cache_capacity: 0,
        });
        let mut out = OutputMatrix::zeros(0, 0);
        engine.gemm_into(&s, &w, &mut out);
        engine.gemm_into(&s, &w, &mut out);
        assert_eq!(out, spiking_gemm(&s, &w));
        assert_eq!(engine.stats().cache_hits, 0);
        assert_eq!(engine.cached_plans(), 0);
    }

    #[test]
    fn hash_collisions_cannot_alias_plans() {
        // Force every tile into one hash bucket: all plans still resolve by
        // full limb comparison, so results stay exact.
        let mut rng = StdRng::seed_from_u64(16);
        let s = SpikeMatrix::random(32, 8, 0.5, &mut rng);
        let w = WeightMatrix::from_fn(8, 2, |r, c| (r * 2 + c) as i64 + 1);
        let tile = TileShape::new(4, 8);
        let mut engine = Engine::new(EngineConfig {
            tile,
            cache_capacity: 64,
        });
        // Prime the cache through the public path, then verify every bucket
        // lookup matched by content: rerun and compare against reference.
        let reference = spiking_gemm(&s, &w);
        let mut out = OutputMatrix::zeros(0, 0);
        engine.gemm_into(&s, &w, &mut out);
        engine.gemm_into(&s, &w, &mut out);
        assert_eq!(out, reference);
        // Direct unit check of the collision path.
        let mut cache = PlanCache::new(8);
        let t1 = SpikeMatrix::from_rows_of_bits(&[&[1, 0], &[0, 1]]);
        let t2 = SpikeMatrix::from_rows_of_bits(&[&[0, 1], &[1, 0]]);
        let (mut k1, mut k2, mut kz) = (Vec::new(), Vec::new(), Vec::new());
        fill_key(&t1, &mut k1);
        fill_key(&t2, &mut k2);
        fill_key(&SpikeMatrix::zeros(2, 2), &mut kz);
        let m1 = Arc::new(TileMeta::build(&t1, 0, 0));
        let m2 = Arc::new(TileMeta::build(&t2, 0, 0));
        cache.insert(42, &k1, Arc::clone(&m1));
        cache.insert(42, &k2, Arc::clone(&m2)); // same hash, different bits
        let got1 = cache.lookup(42, &k1).expect("t1 resident");
        let got2 = cache.lookup(42, &k2).expect("t2 resident");
        assert!(Arc::ptr_eq(&got1, &m1));
        assert!(Arc::ptr_eq(&got2, &m2));
        assert!(cache.lookup(42, &kz).is_none());
    }

    #[test]
    fn run_layers_recycles_one_output_buffer() {
        let mut rng = StdRng::seed_from_u64(17);
        let layers: Vec<(SpikeMatrix, WeightMatrix<i64>)> =
            (0..4).map(|_| random_case(&mut rng)).collect();
        let mut engine = Engine::<i64>::default();
        let mut seen = 0;
        engine.run_layers(layers.iter().map(|(s, w)| (s, w)), |i, out| {
            assert_eq!(out, &spiking_gemm(&layers[i].0, &layers[i].1));
            seen += 1;
        });
        assert_eq!(seen, 4);
        assert_eq!(engine.stats().gemms, 4);
    }

    #[test]
    fn forward_chain_matches_manual_loop() {
        let mut rng = StdRng::seed_from_u64(18);
        let input = SpikeMatrix::random(24, 12, 0.35, &mut rng);
        let dims = [12usize, 9, 7, 5];
        let layers: Vec<WeightMatrix<i64>> = dims
            .windows(2)
            .map(|d| WeightMatrix::from_fn(d[0], d[1], |_, _| rng.gen_range(-3i64..4)))
            .collect();
        let threshold = 2i64;

        let mut engine = Engine::new(EngineConfig {
            tile: TileShape::new(8, 8),
            cache_capacity: 32,
        });
        let mut got = SpikeMatrix::zeros(0, 0);
        engine.forward_chain(&input, &layers, threshold, &mut got);

        // Manual reference: gemm + threshold per layer.
        let mut cur = input.clone();
        for w in &layers {
            let out = spiking_gemm(&cur, w);
            let mut next = SpikeMatrix::zeros(0, 0);
            threshold_spikes(&out, threshold, &mut next);
            cur = next;
        }
        assert_eq!(got, cur);
        // A second pass through the warmed engine is identical.
        let mut again = SpikeMatrix::zeros(0, 0);
        engine.forward_chain(&input, &layers, threshold, &mut again);
        assert_eq!(again, cur);
        assert!(engine.stats().cache_hits > 0);
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let mut engine = Engine::<i64>::default();
        let mut out = OutputMatrix::zeros(0, 0);
        // Zero output columns.
        let s = SpikeMatrix::random(5, 4, 0.5, &mut StdRng::seed_from_u64(1));
        let w0 = WeightMatrix::from_fn(4, 0, |_, _| 0i64);
        engine.gemm_into(&s, &w0, &mut out);
        assert_eq!((out.rows(), out.cols()), (5, 0));
        // Zero-row spike matrix.
        let empty = SpikeMatrix::zeros(0, 4);
        let w = WeightMatrix::from_fn(4, 3, |_, _| 1i64);
        engine.gemm_into(&empty, &w, &mut out);
        assert_eq!((out.rows(), out.cols()), (0, 3));
    }

    #[test]
    #[should_panic(expected = "does not match weight rows")]
    fn shape_mismatch_panics() {
        let mut engine = Engine::<i64>::default();
        let s = SpikeMatrix::zeros(2, 3);
        let w = WeightMatrix::from_fn(4, 2, |_, _| 0i64);
        let mut out = OutputMatrix::zeros(0, 0);
        engine.gemm_into(&s, &w, &mut out);
    }

    #[test]
    fn threshold_spikes_binarizes() {
        let mut o = OutputMatrix::<i64>::zeros(2, 3);
        o.accumulate_row(0, &[3, -1, 2]);
        o.accumulate_row(1, &[0, 2, 1]);
        let mut s = SpikeMatrix::zeros(9, 9);
        threshold_spikes(&o, 2, &mut s);
        assert_eq!(s, SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[0, 1, 0]]));
    }
}

//! Operation and density statistics for product sparsity.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Aggregate ProSparsity statistics for one tile, one GeMM, or a whole model.
///
/// All `*_ops` counts are **per output column** (i.e. weight-row
/// accumulations counted once, not multiplied by `N`); multiply by the output
/// width to obtain total scalar operations. `dense_ops` is the `M × K`
/// element count, so `bit_ops / dense_ops` is the paper's *bit density* and
/// `pro_ops / dense_ops` its *product density*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProStats {
    /// Total matrix elements `M × K` (dense operation count per output col).
    pub dense_ops: u64,
    /// Total 1-bits (bit-sparse operation count per output column).
    pub bit_ops: u64,
    /// Total remaining 1-bits after prefix reuse (product-sparse ops).
    pub pro_ops: u64,
    /// Rows examined.
    pub rows: u64,
    /// Rows with a Partial Match prefix.
    pub pm_rows: u64,
    /// Rows with an Exact Match prefix.
    pub em_rows: u64,
    /// Rows with no prefix (computed from scratch).
    pub root_rows: u64,
}

impl ProStats {
    /// Bit density `nnz / (M·K)` (1.0 ⇒ dense). Returns 0 for empty stats.
    pub fn bit_density(&self) -> f64 {
        ratio(self.bit_ops, self.dense_ops)
    }

    /// Product density after prefix reuse.
    pub fn pro_density(&self) -> f64 {
        ratio(self.pro_ops, self.dense_ops)
    }

    /// Computation-reduction factor of product over bit sparsity
    /// (`bit_ops / pro_ops`); `f64::INFINITY` if no product ops remain.
    pub fn reduction(&self) -> f64 {
        if self.pro_ops == 0 {
            if self.bit_ops == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.bit_ops as f64 / self.pro_ops as f64
        }
    }

    /// Fraction of rows that found a prefix (the paper's "prefix ratio").
    pub fn prefix_ratio(&self) -> f64 {
        ratio(self.pm_rows + self.em_rows, self.rows)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Add for ProStats {
    type Output = Self;

    fn add(mut self, rhs: Self) -> Self {
        self += rhs;
        self
    }
}

impl AddAssign for ProStats {
    fn add_assign(&mut self, rhs: Self) {
        self.dense_ops += rhs.dense_ops;
        self.bit_ops += rhs.bit_ops;
        self.pro_ops += rhs.pro_ops;
        self.rows += rhs.rows;
        self.pm_rows += rhs.pm_rows;
        self.em_rows += rhs.em_rows;
        self.root_rows += rhs.root_rows;
    }
}

impl std::iter::Sum for ProStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProStats {
        ProStats {
            dense_ops: 24,
            bit_ops: 14,
            pro_ops: 6,
            rows: 6,
            pm_rows: 4,
            em_rows: 1,
            root_rows: 1,
        }
    }

    #[test]
    fn densities() {
        let s = sample();
        assert!((s.bit_density() - 14.0 / 24.0).abs() < 1e-12);
        assert!((s.pro_density() - 0.25).abs() < 1e-12);
        assert!((s.reduction() - 14.0 / 6.0).abs() < 1e-12);
        assert!((s.prefix_ratio() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let s = ProStats::default();
        assert_eq!(s.bit_density(), 0.0);
        assert_eq!(s.pro_density(), 0.0);
        assert_eq!(s.reduction(), 1.0);
        assert_eq!(s.prefix_ratio(), 0.0);
    }

    #[test]
    fn reduction_with_zero_pro_ops_is_infinite() {
        let s = ProStats {
            dense_ops: 8,
            bit_ops: 4,
            pro_ops: 0,
            rows: 2,
            pm_rows: 0,
            em_rows: 2,
            root_rows: 0,
        };
        assert!(s.reduction().is_infinite());
    }

    #[test]
    fn add_and_sum_accumulate() {
        let total: ProStats = vec![sample(), sample()].into_iter().sum();
        assert_eq!(total.dense_ops, 48);
        assert_eq!(total.pro_ops, 12);
        assert_eq!(total.rows, 12);
        // Ratios are scale-invariant.
        assert!((total.pro_density() - sample().pro_density()).abs() < 1e-12);
    }
}

//! Unit tests (kept beside the module, out of its main file).

use super::*;

fn tile_of(rows: &[&[u8]]) -> SpikeMatrix {
    SpikeMatrix::from_rows_of_bits(rows)
}

#[test]
fn streaming_hash_equals_flat_hash() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(3);
    for (m, k) in [(1, 1), (3, 70), (16, 129), (64, 64), (5, 256)] {
        let t = SpikeMatrix::random(m, k, 0.4, &mut rng);
        let flat: Vec<u64> = t
            .row_slice()
            .iter()
            .flat_map(|r| r.limbs().iter().copied())
            .collect();
        assert_eq!(hash_tile(&t), hash_limbs(&flat), "{m}x{k}");
    }
}

#[test]
fn hash_collisions_cannot_alias_plans() {
    // Force two distinct tiles into one bucket: plans still resolve by
    // full limb comparison.
    let t1 = tile_of(&[&[1, 0], &[0, 1]]);
    let t2 = tile_of(&[&[0, 1], &[1, 0]]);
    let tz = SpikeMatrix::zeros(2, 2);
    let m1 = Arc::new(TileMeta::build(&t1, 0, 0));
    let m2 = Arc::new(TileMeta::build(&t2, 0, 0));
    let mut cache = PlanCache::new(8, None);
    cache.insert(42, &t1, Arc::clone(&m1));
    cache.insert(42, &t2, Arc::clone(&m2)); // same hash, different bits
    let (got1, restored1) = cache.lookup(42, &t1).expect("t1 resident");
    let (got2, _) = cache.lookup(42, &t2).expect("t2 resident");
    assert!(Arc::ptr_eq(&got1, &m1));
    assert!(Arc::ptr_eq(&got2, &m2));
    assert!(!restored1, "live insertions are not restored entries");
    assert!(cache.lookup(42, &tz).is_none());
}

#[test]
fn lru_evicts_oldest() {
    let tiles: Vec<SpikeMatrix> = (0..3u8)
        .map(|i| tile_of(&[&[i & 1, (i >> 1) & 1, 1]]))
        .collect();
    let mut cache = PlanCache::new(2, None);
    for t in &tiles {
        let meta = Arc::new(TileMeta::build(t, 0, 0));
        cache.insert(hash_tile(t), t, meta);
    }
    assert_eq!(cache.len(), 2);
    // First-inserted tile was LRU and is gone; the other two remain.
    assert!(cache.lookup(hash_tile(&tiles[0]), &tiles[0]).is_none());
    assert!(cache.lookup(hash_tile(&tiles[1]), &tiles[1]).is_some());
    assert!(cache.lookup(hash_tile(&tiles[2]), &tiles[2]).is_some());
}

#[test]
fn admission_closes_on_cold_stream_and_probes() {
    let cfg = AdmissionConfig {
        window: 4,
        min_hit_permille: 500,
        probe_period: 3,
    };
    let mut a = Admission::new(cfg);
    // First window: open regardless.
    assert!(a.should_insert());
    for _ in 0..4 {
        a.record(false);
    }
    assert!(!a.open, "all-miss window must close admission");
    // Bypassing, with every 3rd miss probing through.
    let pattern: Vec<bool> = (0..6).map(|_| a.should_insert()).collect();
    assert_eq!(pattern, [false, false, true, false, false, true]);
    // A hot window re-opens admission.
    for _ in 0..4 {
        a.record(true);
    }
    assert!(a.open);
    assert!(a.should_insert());
}

#[test]
fn zero_probe_period_never_probes() {
    let mut a = Admission::new(AdmissionConfig {
        window: 2,
        min_hit_permille: 1000,
        probe_period: 0,
    });
    a.record(false);
    a.record(false);
    assert!((0..10).all(|_| !a.should_insert()));
}

#[test]
fn cache_bypasses_insertions_once_closed() {
    let cfg = AdmissionConfig {
        window: 2,
        min_hit_permille: 500,
        probe_period: 0,
    };
    let mut cache = PlanCache::new(16, Some(cfg));
    let mut tiles = Vec::new();
    for i in 0..6u8 {
        tiles.push(tile_of(&[&[1, i & 1, (i >> 1) & 1, (i >> 2) & 1]]));
    }
    let mut outcomes = Vec::new();
    for t in &tiles {
        let h = hash_tile(t);
        assert!(cache.lookup(h, t).is_none());
        outcomes.push(cache.insert(h, t, Arc::new(TileMeta::build(t, 0, 0))));
    }
    // The window rolls during the lookup that completes it, so the
    // second miss of the all-miss window is already bypassed; only the
    // first insertion lands.
    assert_eq!(outcomes[0], InsertOutcome::Inserted);
    assert!(outcomes[1..].iter().all(|&o| o == InsertOutcome::Bypassed));
    assert_eq!(cache.len(), 1);
}

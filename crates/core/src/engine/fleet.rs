//! Fleet mode: consistent-hash tenant placement plus an in-process
//! multi-node harness over the snapshot-gossip cadence.
//!
//! A *fleet* is N serving processes, each running its own
//! [`ServingLoop`] over its own [`SnapshotStore`] directory, warming each
//! other through gossip ([`ServiceConfig::with_gossip`]): every node keeps
//! exporting its hottest plans and periodically imports its peers' newest
//! snapshots. Two pieces live here:
//!
//! * [`Ring`] — a consistent-hash ring deciding which node owns which
//!   tenant. Placement is a pure function of `(members, tenant)`: the same
//!   tenant always lands on the same node until membership changes, and a
//!   join/leave only moves the tenants adjacent to the changed node's
//!   points (bounded churn), never reshuffles the whole fleet.
//! * [`FleetHarness`] — a deterministic in-process fleet for tests and
//!   benchmarks: real [`SnapshotStore`] directories under one root, real
//!   gossip between the nodes' loops, but single-threaded and seed-stable.
//!   The multi-process path (one OS process per node, spawned over the
//!   same directory layout) is exercised by `examples/fleet.rs` and the
//!   `tests/fleet.rs` smoke test; the harness and the processes share
//!   every on-disk convention via [`FleetHarness::store_dir`].
//!
//! Gossip moves *warmth*, never *results*: plans are pure functions of
//! tile content, so a fleet-warmed node is bit-identical to a cold one —
//! the `tests/fleet.rs` suite pins exactly that, including under fault
//! injection.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use super::batch::BatchPolicy;
use super::service::{ServiceConfig, ServingLoop};
use super::snapshot::SnapshotError;
use super::store::SnapshotStore;
use super::{Element, EngineConfig};

/// Virtual points each node contributes to the ring. More points smooth
/// the load split and shrink per-event churn variance; 64 keeps lookups a
/// binary search over a few hundred points for realistic fleet sizes.
pub const VNODES: usize = 64;

/// SplitMix64 finalizer — the same mixer the fault plans use; good
/// avalanche, no allocation, stable across platforms.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash of one virtual point: node identity mixed with the replica index
/// through two rounds so nodes with adjacent ids don't produce adjacent
/// points.
fn point_hash(node: u64, replica: u64) -> u64 {
    splitmix64(splitmix64(node) ^ splitmix64(replica.wrapping_add(1)))
}

/// Consistent-hash ring mapping tenants to fleet nodes.
///
/// Each member contributes [`VNODES`] points at pseudo-random positions
/// on a `u64` circle; a tenant is owned by the first point clockwise from
/// its own hash. Properties the `tests/fleet.rs` suite pins:
///
/// * **Stable placement** — [`Ring::place`] is deterministic in
///   `(members, tenant)`; iteration order of joins does not matter.
/// * **Bounded churn** — a join or leave only reassigns tenants whose
///   successor point belonged to (or now belongs to) the changed node:
///   about `tenants / nodes` of them, never a full reshuffle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ring {
    /// Sorted `(hash, node)` points, [`VNODES`] per member. Ties (hash
    /// collisions) break on node id, keeping the order deterministic.
    points: Vec<(u64, u64)>,
    /// Sorted member ids.
    nodes: Vec<u64>,
}

impl Ring {
    /// An empty ring; every [`Ring::place`] is `None` until a join.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a ring from an id list (duplicates collapse).
    pub fn with_nodes(ids: &[u64]) -> Self {
        let mut ring = Self::new();
        for &id in ids {
            ring.join(id);
        }
        ring
    }

    /// Member ids, ascending.
    pub fn nodes(&self) -> &[u64] {
        &self.nodes
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no node has joined.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// True when `node` is a member.
    pub fn contains(&self, node: u64) -> bool {
        self.nodes.binary_search(&node).is_ok()
    }

    /// Adds a member; returns false (and changes nothing) if it already
    /// joined. Only tenants landing on the new node's points move.
    pub fn join(&mut self, node: u64) -> bool {
        match self.nodes.binary_search(&node) {
            Ok(_) => false,
            Err(at) => {
                self.nodes.insert(at, node);
                for replica in 0..VNODES as u64 {
                    let point = (point_hash(node, replica), node);
                    let at = self.points.partition_point(|p| *p < point);
                    self.points.insert(at, point);
                }
                true
            }
        }
    }

    /// Removes a member; returns false if it was not one. Only tenants
    /// the node owned move (to each point's successor).
    pub fn leave(&mut self, node: u64) -> bool {
        match self.nodes.binary_search(&node) {
            Err(_) => false,
            Ok(at) => {
                self.nodes.remove(at);
                self.points.retain(|&(_, n)| n != node);
                true
            }
        }
    }

    /// The member owning `tenant`: the first point clockwise from the
    /// tenant's hash (wrapping). `None` on an empty ring.
    pub fn place(&self, tenant: u64) -> Option<u64> {
        if self.points.is_empty() {
            return None;
        }
        let h = splitmix64(tenant);
        let at = self.points.partition_point(|&(p, _)| p < h);
        let (_, node) = self.points[at % self.points.len()];
        Some(node)
    }

    /// Splits `tenants` into per-owner buckets, preserving input order
    /// within each bucket — the shape a fleet driver hands to its nodes.
    pub fn partition(&self, tenants: &[u64]) -> Vec<(u64, Vec<u64>)> {
        let mut buckets: Vec<(u64, Vec<u64>)> =
            self.nodes.iter().map(|&n| (n, Vec::new())).collect();
        for &tenant in tenants {
            if let Some(owner) = self.place(tenant) {
                if let Some((_, bucket)) = buckets.iter_mut().find(|(n, _)| *n == owner) {
                    bucket.push(tenant);
                }
            }
        }
        buckets
    }
}

/// One harness node: its serving loop plus the store it exports through.
#[derive(Debug)]
struct FleetNode<T> {
    id: u64,
    dir: PathBuf,
    store: Arc<SnapshotStore>,
    serving: ServingLoop<T>,
}

/// A deterministic in-process fleet: N [`ServingLoop`]s gossiping over
/// real [`SnapshotStore`] directories under one root.
///
/// The harness owns the membership [`Ring`] and keeps every node's gossip
/// peer list in sync with it: [`FleetHarness::join`] creates
/// `root/node-<id>` (the same layout the multi-process example uses — see
/// [`FleetHarness::store_dir`]), wires the newcomer to every existing
/// store directory, and refreshes the veterans so they gossip with the
/// newcomer too; [`FleetHarness::leave`] drops the node from the ring and
/// from every peer list (its directory stays on disk, exactly like a
/// crashed process's would, but nobody scans it anymore).
///
/// Everything is synchronous and seed-stable: exports happen on demand
/// ([`FleetHarness::export_now`]) and gossip sweeps run inline inside
/// [`ServingLoop::run`], so a fleet test replays bit-identically.
#[derive(Debug)]
pub struct FleetHarness<T = i64> {
    root: PathBuf,
    config: EngineConfig,
    policy: BatchPolicy,
    /// Per-node cadence template; `gossip_peers` is managed by the
    /// harness, the rest (snapshot/GC/gossip cadences) applies verbatim.
    service: ServiceConfig,
    /// Snapshot files retained per node store.
    retention: usize,
    ring: Ring,
    nodes: Vec<FleetNode<T>>,
}

impl<T: Element> FleetHarness<T> {
    /// A fleet over `root` (created on demand). `service` is the cadence
    /// template every node starts with; set its `gossip_every` to enable
    /// gossip (the harness fills `gossip_peers` on every membership
    /// change).
    pub fn new(
        root: impl Into<PathBuf>,
        config: EngineConfig,
        policy: BatchPolicy,
        service: ServiceConfig,
    ) -> Self {
        Self {
            root: root.into(),
            config,
            policy,
            service,
            retention: 4,
            ring: Ring::new(),
            nodes: Vec::new(),
        }
    }

    /// Builder: snapshot files retained per node store (default 4).
    pub fn with_retention(mut self, retention: usize) -> Self {
        self.retention = retention;
        self
    }

    /// The store directory node `id` exports to under `root` — the single
    /// on-disk convention the in-process harness and the multi-process
    /// example share, so either side can gossip with the other.
    pub fn store_dir(root: &Path, id: u64) -> PathBuf {
        root.join(format!("node-{id:04}"))
    }

    /// The fleet root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The membership ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// [`Ring::place`] on the current membership.
    pub fn place(&self, tenant: u64) -> Option<u64> {
        self.ring.place(tenant)
    }

    /// Spawns node `id`: creates its store directory, builds its serving
    /// loop from the harness templates, wires gossip both ways. Returns
    /// false (no change) if `id` already joined.
    pub fn join(&mut self, id: u64) -> Result<bool, SnapshotError> {
        if !self.ring.join(id) {
            return Ok(false);
        }
        let dir = Self::store_dir(&self.root, id);
        let store = Arc::new(SnapshotStore::new(&dir, self.retention)?);
        let mut service = self.service.clone();
        service.gossip_peers = self.nodes.iter().map(|node| node.dir.clone()).collect();
        let serving = ServingLoop::new(self.config, self.policy.clone(), service)
            .with_snapshot_store(Arc::clone(&store));
        self.nodes.push(FleetNode {
            id,
            dir,
            store,
            serving,
        });
        self.refresh_peers();
        Ok(true)
    }

    /// Retires node `id`, returning its serving loop (so a test can
    /// inspect its final stats). Its store directory stays on disk but
    /// leaves every survivor's peer list.
    pub fn leave(&mut self, id: u64) -> Option<ServingLoop<T>> {
        if !self.ring.leave(id) {
            return None;
        }
        let at = self.nodes.iter().position(|n| n.id == id)?;
        let node = self.nodes.remove(at);
        self.refresh_peers();
        Some(node.serving)
    }

    /// Points every node's gossip at every *other* node's directory.
    fn refresh_peers(&mut self) {
        let dirs: Vec<(u64, PathBuf)> = self
            .nodes
            .iter()
            .map(|node| (node.id, node.dir.clone()))
            .collect();
        for node in &mut self.nodes {
            let peers = dirs
                .iter()
                .filter(|(id, _)| *id != node.id)
                .map(|(_, dir)| dir.clone())
                .collect();
            node.serving.set_gossip_peers(peers);
        }
    }

    /// Member ids, ascending (mirrors [`Ring::nodes`]).
    pub fn nodes(&self) -> &[u64] {
        self.ring.nodes()
    }

    /// Node `id`'s serving loop.
    pub fn node(&self, id: u64) -> Option<&ServingLoop<T>> {
        self.nodes.iter().find(|n| n.id == id).map(|n| &n.serving)
    }

    /// Mutable access to node `id`'s serving loop — this is how a test
    /// drives traffic (`harness.node_mut(id).unwrap().run(...)`).
    pub fn node_mut(&mut self, id: u64) -> Option<&mut ServingLoop<T>> {
        self.nodes
            .iter_mut()
            .find(|n| n.id == id)
            .map(|n| &mut n.serving)
    }

    /// Node `id`'s snapshot store handle.
    pub fn store(&self, id: u64) -> Option<&Arc<SnapshotStore>> {
        self.nodes.iter().find(|n| n.id == id).map(|n| &n.store)
    }

    /// Synchronously exports node `id`'s hottest `plans` to its store —
    /// the deterministic stand-in for the background snapshot cadence,
    /// so tests control exactly what peers can gossip. Returns the file
    /// written.
    pub fn export_now(&mut self, id: u64, plans: usize) -> Result<PathBuf, SnapshotError> {
        let node = self
            .nodes
            .iter()
            .find(|n| n.id == id)
            .ok_or(SnapshotError::Corrupt("unknown fleet node"))?;
        let snapshot = node.serving.shared_cache().export_hottest(plans);
        node.store.save(&snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_join_order_free() {
        let a = Ring::with_nodes(&[1, 2, 3, 4]);
        let b = Ring::with_nodes(&[4, 2, 1, 3, 2]);
        assert_eq!(a, b);
        assert_eq!(a.nodes(), &[1, 2, 3, 4]);
        for tenant in 0..256u64 {
            assert_eq!(a.place(tenant), b.place(tenant));
            assert!(a.contains(a.place(tenant).unwrap()));
        }
        assert_eq!(Ring::new().place(7), None);
    }

    #[test]
    fn ring_spreads_tenants_across_members() {
        let ring = Ring::with_nodes(&[10, 20, 30, 40]);
        let tenants: Vec<u64> = (0..4000).collect();
        let buckets = ring.partition(&tenants);
        assert_eq!(buckets.len(), 4);
        let total: usize = buckets.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, tenants.len());
        for (node, bucket) in &buckets {
            // Far from uniform bounds on purpose: just pin that no member
            // is starved or hogging (vnode smoothing works at all).
            assert!(
                bucket.len() > tenants.len() / 16 && bucket.len() < tenants.len() / 2,
                "node {node} owns {} of {}",
                bucket.len(),
                tenants.len()
            );
        }
    }

    #[test]
    fn leave_undoes_join_exactly() {
        let mut ring = Ring::with_nodes(&[1, 2, 3]);
        let before = ring.clone();
        assert!(ring.join(9));
        assert!(!ring.join(9));
        assert!(ring.leave(9));
        assert!(!ring.leave(9));
        assert_eq!(ring, before);
    }
}

//! Reuse counters for sessions, the shared plan cache, and the scheduler.
//!
//! Every [`Session`](super::Session) keeps its own [`EngineStats`]; a
//! serving deployment additionally snapshots the aggregate
//! [`SharedCacheStats`] of its [`SharedPlanCache`](super::SharedPlanCache).
//! Per-session counters are mergeable ([`EngineStats::merge`]) so a batch
//! scheduler can report one fleet-wide row next to the per-session ones.
//! The [`BatchScheduler`](super::BatchScheduler) additionally records
//! *scheduling* behaviour — per-lane step counts, deficit credits, deadline
//! misses — in a [`SchedulerStats`], which the
//! [`ServingLoop`](super::ServingLoop) extends with its lifecycle counters
//! (background snapshot exports, admission-table GC evictions).

use serde::{Deserialize, Serialize};

/// Counters describing how effectively one session is reusing work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// GeMMs executed.
    pub gemms: u64,
    /// Tiles encountered across all GeMMs.
    pub tiles: u64,
    /// Tiles whose plan was served from the cache (private or shared).
    pub cache_hits: u64,
    /// Tiles that had to be planned (includes every tile when the cache is
    /// disabled).
    pub cache_misses: u64,
    /// Cached plans evicted to make room for this session's insertions.
    pub cache_evictions: u64,
    /// Freshly planned tiles whose insertion was skipped by the admission
    /// policy (uncorrelated-stream bypass).
    pub cache_bypasses: u64,
    /// Subset of `cache_hits` served by plans that entered the cache
    /// through a snapshot import rather than live planning — the measured
    /// payoff of warm-starting (see [`super::snapshot`]).
    pub restored_hits: u64,
    /// Nanoseconds spent in the planning phase — tiling, cache lookups,
    /// and (on misses) Detector → Pruner → Dispatcher planning — summed
    /// over all GeMMs. `plan_ns / tiles` is mean per-tile planning cost.
    pub plan_ns: u64,
    /// Nanoseconds spent in plan execution (the weight-accumulate kernel),
    /// summed over all GeMMs. `exec_ns / tiles` is the steady-state
    /// per-tile execution cost the perf bench tracks.
    pub exec_ns: u64,
}

impl EngineStats {
    /// Fraction of tiles served from the plan cache (0 when no tiles ran).
    pub fn hit_rate(&self) -> f64 {
        if self.tiles == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.tiles as f64
        }
    }

    /// Accumulates another session's counters into this one — the batch
    /// scheduler's fleet-wide view, and the way per-shard or per-worker
    /// stats fold into one auditable row.
    pub fn merge(&mut self, other: &EngineStats) {
        self.gemms += other.gemms;
        self.tiles += other.tiles;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.cache_evictions += other.cache_evictions;
        self.cache_bypasses += other.cache_bypasses;
        self.restored_hits += other.restored_hits;
        self.plan_ns += other.plan_ns;
        self.exec_ns += other.exec_ns;
    }

    /// [`EngineStats::merge`] over any number of per-session stats.
    pub fn merged<'a, I: IntoIterator<Item = &'a EngineStats>>(stats: I) -> EngineStats {
        let mut total = EngineStats::default();
        for s in stats {
            total.merge(s);
        }
        total
    }
}

/// Aggregate counters of a [`SharedPlanCache`](super::SharedPlanCache),
/// summed over its shards at snapshot time.
///
/// Shared-cache counters are accumulated under the per-shard locks, so they
/// see every session's traffic; they equal the merged per-session counters
/// for lookups/insertions but additionally expose residency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedCacheStats {
    /// Lookups answered from a shard.
    pub hits: u64,
    /// Lookups that missed every resident plan.
    pub misses: u64,
    /// Plans inserted (including re-insertions after eviction).
    pub insertions: u64,
    /// Plans evicted under capacity pressure.
    pub evictions: u64,
    /// Insertions skipped by the admission policy.
    pub bypasses: u64,
    /// Offers dropped because a racing session inserted the same tile
    /// first (its resident plan was reused instead).
    pub dedups: u64,
    /// Subset of `hits` served by snapshot-restored plans.
    pub restored_hits: u64,
    /// Plans resident at snapshot time.
    pub resident: usize,
    /// Resident plans that arrived through a snapshot import (and have
    /// not been evicted since).
    pub restored_resident: usize,
    /// Tenants registered in the cache's tenant table — every tenant id a
    /// live session was constructed with (minus GC'd idle entries). With
    /// an admission policy configured each entry also carries that
    /// tenant's admission window; without one the entries are
    /// liveness-only, but the count is reported either way.
    pub tenants: usize,
    /// Number of shards the cache is split across.
    pub shards: usize,
    /// Total plan capacity across all shards.
    pub capacity: usize,
    /// Shards whose mutex was found poisoned (a lane panicked while
    /// holding it) and recovered by dropping only that shard's entries —
    /// see [`SharedPlanCache`](super::SharedPlanCache) fault tolerance.
    pub shard_resets: u64,
    /// Nanoseconds shard mutexes were held across lookups and insertions —
    /// the serving hot path's contention budget. Divide by
    /// `hits + misses + insertions` for mean hold time per operation.
    pub lock_hold_ns: u64,
}

impl SharedCacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// How a [`BatchScheduler`](super::BatchScheduler) run distributed steps
/// across lanes, plus the serving-loop lifecycle counters.
///
/// Lane-indexed vectors describe the scheduler's **last `run` call** (the
/// policy state is rebuilt per run); `deadline_misses` is counted by the
/// [`Deadline`](super::BatchPolicy::Deadline) policy, and
/// [`SchedulerStats::misses_against`] re-derives miss counts for any policy
/// from the recorded completion steps (how the bench scores round-robin
/// against the same budgets). `gc_evictions` / `snapshots_exported` /
/// `snapshot_io_retries` / `snapshots_quarantined` stay 0 on a bare
/// scheduler — they are filled in by
/// [`ServingLoop::stats`](super::ServingLoop::stats). The fault counters
/// (`lane_faults`, `shard_resets`) are maintained by the scheduler itself.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// GeMM steps completed per lane (a GeMM sliced across several visits
    /// still counts once, on its completing slice).
    pub lane_steps: Vec<u64>,
    /// Row-tiles executed per lane — the fine-grained work unit under a
    /// sub-GeMM
    /// [`slice_quantum`](super::BatchScheduler::set_slice_quantum). Also
    /// filled in whole-GeMM mode (each visit adds the GeMM's full row-tile
    /// count), so share ratios can be audited in identical units under
    /// either quantum.
    pub lane_row_tiles: Vec<u64>,
    /// Leftover deficit-round-robin credit per lane
    /// ([`BatchPolicy::Weighted`](super::BatchPolicy::Weighted) only;
    /// zeros under other policies).
    pub credit_balances: Vec<u64>,
    /// Global scheduler-visit count (1-based, across all lanes) at which
    /// each lane finished its trace; 0 for a lane whose trace was empty.
    /// With the default whole-GeMM quantum a visit is one GeMM step; with
    /// a sub-GeMM `slice_quantum` a visit is one slice, so these (and the
    /// `Deadline` budgets scored against them) are denominated in slices.
    pub completion_steps: Vec<u64>,
    /// Lanes that completed after their step budget
    /// ([`BatchPolicy::Deadline`](super::BatchPolicy::Deadline) only).
    pub deadline_misses: u64,
    /// Idle tenant admission windows evicted by the serving loop's GC.
    pub gc_evictions: u64,
    /// Background snapshot exports launched by the serving loop.
    pub snapshots_exported: u64,
    /// Lanes currently quarantined after a caught panic
    /// ([`BatchScheduler::quarantined`](super::BatchScheduler::quarantined);
    /// cleared by `begin_batch`). Surviving lanes keep serving — a fault
    /// never aborts the batch.
    pub lane_faults: u64,
    /// Poisoned shared-cache shard mutexes recovered by dropping only that
    /// shard's entries (mirrors
    /// [`SharedCacheStats::shard_resets`]).
    pub shard_resets: u64,
    /// Snapshot-store IO operations retried after a transient failure
    /// (filled by [`ServingLoop::stats`](super::ServingLoop::stats) when a
    /// [`SnapshotStore`](super::SnapshotStore) is attached; 0 on a bare
    /// scheduler).
    pub snapshot_io_retries: u64,
    /// Corrupt snapshot files quarantined to `*.bad` by
    /// [`SnapshotStore::load_latest_valid`](super::SnapshotStore::load_latest_valid)
    /// (filled by `ServingLoop::stats`).
    pub snapshots_quarantined: u64,
    /// Bytes serialized by snapshot-store saves (filled by
    /// `ServingLoop::stats` from
    /// [`SnapshotStore::bytes_encoded`](super::SnapshotStore::bytes_encoded)).
    pub snapshot_bytes_encoded: u64,
    /// Plan entries serialized by snapshot-store saves (filled by
    /// `ServingLoop::stats`).
    pub snapshot_plans_encoded: u64,
    /// Bytes of successfully decoded snapshots returned by warm-restart
    /// loads (filled by `ServingLoop::stats` from
    /// [`SnapshotStore::bytes_loaded`](super::SnapshotStore::bytes_loaded)).
    pub snapshot_bytes_loaded: u64,
    /// Plan entries decoded by warm-restart loads (filled by
    /// `ServingLoop::stats`).
    pub snapshot_plans_loaded: u64,
    /// Gossip sweeps that imported a peer snapshot (filled by
    /// `ServingLoop::stats` when
    /// [`ServiceConfig::with_gossip`](super::ServiceConfig::with_gossip)
    /// is enabled; one count per peer snapshot decoded and offered to the
    /// cache).
    pub gossip_imports: u64,
    /// Plan entries a gossip import actually restored into the shared
    /// cache (the capacity-respecting subset of what peers offered —
    /// [`ImportReport::restored`](super::ImportReport) summed over every
    /// gossip import).
    pub gossip_plans_adopted: u64,
    /// Gossip peer sweeps skipped without reading because the peer's
    /// newest snapshot had already been imported (sequence number not
    /// newer than the last import from that peer).
    pub gossip_skipped_stale: u64,
}

impl SchedulerStats {
    /// Number of lanes whose recorded completion step exceeded its budget
    /// (`budgets[lane]`; lanes beyond the slice have no deadline). Lets a
    /// caller score *any* policy's run against a budget mix — e.g. the
    /// round-robin baseline the `qos` bench compares EDF to.
    pub fn misses_against(&self, budgets: &[u64]) -> u64 {
        self.completion_steps
            .iter()
            .enumerate()
            .filter(|&(lane, &done)| {
                done > 0 && done > budgets.get(lane).copied().unwrap_or(u64::MAX)
            })
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_every_counter() {
        let a = EngineStats {
            gemms: 1,
            tiles: 10,
            cache_hits: 4,
            cache_misses: 6,
            cache_evictions: 2,
            cache_bypasses: 1,
            restored_hits: 3,
            plan_ns: 100,
            exec_ns: 200,
        };
        let b = EngineStats {
            gemms: 2,
            tiles: 30,
            cache_hits: 20,
            cache_misses: 10,
            cache_evictions: 0,
            cache_bypasses: 5,
            restored_hits: 1,
            plan_ns: 11,
            exec_ns: 22,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(
            m,
            EngineStats {
                gemms: 3,
                tiles: 40,
                cache_hits: 24,
                cache_misses: 16,
                cache_evictions: 2,
                cache_bypasses: 6,
                restored_hits: 4,
                plan_ns: 111,
                exec_ns: 222,
            }
        );
        assert_eq!(EngineStats::merged([a, b].iter()), m);
        assert!((m.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        assert_eq!(EngineStats::default().hit_rate(), 0.0);
        assert_eq!(SharedCacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn misses_against_scores_completions_not_empty_lanes() {
        let stats = SchedulerStats {
            completion_steps: vec![10, 0, 25, 7],
            ..SchedulerStats::default()
        };
        // Lane 0 on time, lane 1 never ran (empty trace), lane 2 late,
        // lane 3 has no budget at all.
        assert_eq!(stats.misses_against(&[10, 1, 24]), 1);
        assert_eq!(stats.misses_against(&[9, 1, 24]), 2);
        assert_eq!(stats.misses_against(&[]), 0);
    }

    #[test]
    fn shared_hit_rate() {
        let s = SharedCacheStats {
            hits: 3,
            misses: 1,
            ..SharedCacheStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}

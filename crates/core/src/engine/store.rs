//! Crash-safe snapshot retention: a directory of sequence-numbered
//! [`PlanSnapshot`] files with bounded-backoff writes, pruning, and a
//! corrupt-tolerant loader.
//!
//! [`PlanSnapshot::save`] already makes a *single* write atomic; a serving
//! process additionally needs a *history* of them — the newest image might
//! be the one a crash (or bit rot) mangled, and a warm restart is strictly
//! better served by the previous good snapshot than by nothing. A
//! [`SnapshotStore`] owns one directory and provides:
//!
//! * **sequence-numbered saves** — `snap-00000042.psnp`, monotonically
//!   increasing, each written via the atomic temp-file + fsync + rename
//!   path, retried under bounded exponential backoff on transient IO
//!   errors (counted in [`SnapshotStore::io_retries`]);
//! * **retention** — after each save, all but the newest K files are
//!   pruned;
//! * **[`SnapshotStore::load_latest_valid`]** — walks the retained files
//!   newest-first, fully decoding each (magic, version, checksum, and
//!   every structural cross-check of [`PlanSnapshot::decode`]); a file
//!   that fails is *quarantined* — renamed to `<name>.bad` for post-mortem
//!   and counted in [`SnapshotStore::quarantined`] — and the walk falls
//!   back to the next-newest, so one corrupt file can never stop a warm
//!   restart that an older good file could serve.
//!
//! The [`ServingLoop`](super::ServingLoop) drives its background exports
//! through a store when one is attached
//! ([`ServingLoop::set_snapshot_store`](super::ServingLoop::set_snapshot_store)),
//! surfacing the counters as
//! [`SchedulerStats::snapshot_io_retries`](super::SchedulerStats) and
//! [`SchedulerStats::snapshots_quarantined`](super::SchedulerStats).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use bytes::BytesMut;

use super::snapshot::{atomic_write, io_fault, PlanSnapshot, SnapshotError};

/// Prefix of every snapshot file this store writes.
const FILE_PREFIX: &str = "snap-";
/// Extension of every snapshot file this store writes.
const FILE_SUFFIX: &str = ".psnp";

/// A directory of retained, checksum-verified plan snapshots. See the
/// [module docs](self).
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    retain: usize,
    attempts: u32,
    base_delay: Duration,
    next_seq: AtomicU64,
    io_retries: AtomicU64,
    quarantined: AtomicU64,
    files_scanned: AtomicU64,
    /// Reused encode buffer: after the first save its capacity covers the
    /// working-set image size, so steady-state exports allocate nothing.
    encode_buf: Mutex<BytesMut>,
    bytes_encoded: AtomicU64,
    plans_encoded: AtomicU64,
    bytes_loaded: AtomicU64,
    plans_loaded: AtomicU64,
}

impl SnapshotStore {
    /// Default write attempts per save (1 initial + 2 retries).
    pub const DEFAULT_ATTEMPTS: u32 = 3;
    /// Default first-retry backoff delay (doubles per retry).
    pub const DEFAULT_BASE_DELAY: Duration = Duration::from_millis(1);

    /// Opens (creating if needed) a store over `dir` retaining the newest
    /// `retain` snapshots (clamped to at least 1). Sequence numbering
    /// resumes after the highest-numbered file already present, so a
    /// restarted process never overwrites its predecessor's snapshots.
    pub fn new(dir: impl Into<PathBuf>, retain: usize) -> Result<Self, SnapshotError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| SnapshotError::Io(e.to_string()))?;
        let next_seq = Self::list_files(&dir)
            .map_err(|e| SnapshotError::Io(e.to_string()))?
            .last()
            .map_or(0, |&(seq, _)| seq + 1);
        Ok(Self {
            dir,
            retain: retain.max(1),
            attempts: Self::DEFAULT_ATTEMPTS,
            base_delay: Self::DEFAULT_BASE_DELAY,
            next_seq: AtomicU64::new(next_seq),
            io_retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            files_scanned: AtomicU64::new(0),
            encode_buf: Mutex::new(BytesMut::new()),
            bytes_encoded: AtomicU64::new(0),
            plans_encoded: AtomicU64::new(0),
            bytes_loaded: AtomicU64::new(0),
            plans_loaded: AtomicU64::new(0),
        })
    }

    /// Overrides the retry schedule: `attempts` total tries per save
    /// (clamped to at least 1) with `base_delay` before the first retry,
    /// doubling per retry (bounded exponential backoff).
    pub fn with_retry(mut self, attempts: u32, base_delay: Duration) -> Self {
        self.attempts = attempts.max(1);
        self.base_delay = base_delay;
        self
    }

    /// The directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Newest snapshots kept after each save's prune.
    pub fn retain(&self) -> usize {
        self.retain
    }

    /// Saves failed mid-write and retried (each backoff counts once).
    pub fn io_retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Corrupt files renamed to `*.bad` by
    /// [`SnapshotStore::load_latest_valid`].
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Snapshot files examined (read + verified) by the load walks — the
    /// one-pass guarantee's audit counter: a single
    /// [`SnapshotStore::load_latest_valid`] call over a directory of `K`
    /// rotted files advances this by exactly `K` (+1 if an older good file
    /// is then decoded), never `O(K²)` — quarantining a newer bad file
    /// must not restart the walk or re-read the survivors.
    pub fn files_scanned(&self) -> u64 {
        self.files_scanned.load(Ordering::Relaxed)
    }

    /// Total bytes serialized by [`SnapshotStore::save`] (pre-write, so
    /// failed saves still count their encode work).
    pub fn bytes_encoded(&self) -> u64 {
        self.bytes_encoded.load(Ordering::Relaxed)
    }

    /// Total plan entries serialized by [`SnapshotStore::save`].
    pub fn plans_encoded(&self) -> u64 {
        self.plans_encoded.load(Ordering::Relaxed)
    }

    /// Total bytes of successfully decoded snapshots returned by
    /// [`SnapshotStore::load_latest_valid`].
    pub fn bytes_loaded(&self) -> u64 {
        self.bytes_loaded.load(Ordering::Relaxed)
    }

    /// Total plan entries in successfully decoded snapshots returned by
    /// [`SnapshotStore::load_latest_valid`].
    pub fn plans_loaded(&self) -> u64 {
        self.plans_loaded.load(Ordering::Relaxed)
    }

    /// Writes `snapshot` as the next sequence-numbered file, retrying
    /// failed writes under bounded exponential backoff, then prunes to the
    /// retention limit. Returns the path written. The write itself is
    /// atomic ([`PlanSnapshot::save`]'s temp-file + rename path), so no
    /// attempt — failed or killed — can leave a torn file under a
    /// snapshot name.
    pub fn save(&self, snapshot: &PlanSnapshot) -> Result<PathBuf, SnapshotError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("{FILE_PREFIX}{seq:08}{FILE_SUFFIX}"));
        // Encode into the store's reusable buffer: zero allocations once
        // its capacity has warmed up to the image size.
        let mut bytes = self.encode_buf.lock().unwrap_or_else(|p| p.into_inner());
        snapshot.encode_into(&mut bytes);
        self.bytes_encoded
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        self.plans_encoded
            .fetch_add(snapshot.len() as u64, Ordering::Relaxed);
        // Injected-fault hook: bit-rot one byte of this image on its way
        // to disk, so tests can drive the quarantine path end to end.
        #[cfg(any(test, feature = "fault-injection"))]
        super::faults::maybe_corrupt_snapshot(&mut bytes);
        let mut attempt = 0;
        loop {
            match atomic_write(&path, &bytes) {
                Ok(()) => break,
                Err(err) => {
                    attempt += 1;
                    if attempt >= self.attempts {
                        return Err(SnapshotError::Io(err.to_string()));
                    }
                    self.io_retries.fetch_add(1, Ordering::Relaxed);
                    // 1×, 2×, 4×, … the base delay: long enough to ride
                    // out a transient (EINTR, momentary ENOSPC churn),
                    // bounded so a dead disk fails the save instead of
                    // wedging the export thread.
                    std::thread::sleep(self.base_delay * (1 << (attempt - 1).min(16)));
                }
            }
        }
        self.prune().map_err(|e| SnapshotError::Io(e.to_string()))?;
        Ok(path)
    }

    /// Decodes the newest fully valid retained snapshot. Files that fail
    /// to decode — bad magic, version skew, truncation, checksum or any
    /// structural mismatch — are renamed to `<name>.bad` (quarantined for
    /// post-mortem, never re-read) and the walk falls back to the
    /// next-newest file. Returns `Ok(None)` when no file survives.
    /// Unreadable files (IO errors) are skipped without quarantine: the
    /// bytes on disk may be fine and a later load may succeed.
    pub fn load_latest_valid(&self) -> Result<Option<PlanSnapshot>, SnapshotError> {
        Ok(self.load_newer_than(None)?.map(|(_, snapshot)| snapshot))
    }

    /// [`SnapshotStore::load_latest_valid`] with a staleness cutoff: the
    /// walk considers only files whose sequence number is strictly greater
    /// than `newer_than` (everything at or below it was already consumed),
    /// and returns the decoded snapshot *with* its sequence number so the
    /// caller can advance its cutoff. This is the gossip import primitive:
    /// a peer whose store has produced nothing new since the last sweep is
    /// detected from the directory listing alone — no file is re-read, no
    /// image re-verified.
    ///
    /// The walk is **one pass**: the directory is listed once, each
    /// candidate file is read and verified at most once, and quarantining
    /// a newer bad file continues with the already-listed older files —
    /// it never restarts the walk ([`SnapshotStore::files_scanned`] is
    /// the regression counter pinning this).
    pub fn load_newer_than(
        &self,
        newer_than: Option<u64>,
    ) -> Result<Option<(u64, PlanSnapshot)>, SnapshotError> {
        let files = Self::list_files(&self.dir).map_err(|e| SnapshotError::Io(e.to_string()))?;
        for (seq, path) in files.iter().rev() {
            if newer_than.is_some_and(|cutoff| *seq <= cutoff) {
                // Files are sorted by sequence: everything from here on is
                // at least as stale. Stop without touching the bytes.
                return Ok(None);
            }
            self.files_scanned.fetch_add(1, Ordering::Relaxed);
            // Injected-fault hook: a hostile peer rots this file on disk
            // right before the read, so tests can drive the gossip
            // quarantine path end to end.
            #[cfg(any(test, feature = "fault-injection"))]
            super::faults::maybe_rot_peer_file(path);
            if io_fault("read snapshot").is_err() {
                continue;
            }
            let bytes = match std::fs::read(path) {
                Ok(bytes) => bytes,
                Err(_) => continue,
            };
            let len = bytes.len();
            match PlanSnapshot::decode(bytes.into()) {
                Ok(snapshot) => {
                    self.bytes_loaded.fetch_add(len as u64, Ordering::Relaxed);
                    self.plans_loaded
                        .fetch_add(snapshot.len() as u64, Ordering::Relaxed);
                    if std::env::var_os("PROSPERITY_DEBUG").is_some() {
                        eprintln!(
                            "snapshot-store: loaded {} ({} bytes, {} plans)",
                            path.display(),
                            len,
                            snapshot.len()
                        );
                    }
                    return Ok(Some((*seq, snapshot)));
                }
                Err(_) => {
                    let mut bad = path.as_os_str().to_os_string();
                    bad.push(".bad");
                    if std::fs::rename(path, PathBuf::from(bad)).is_err() {
                        // Could not quarantine (e.g. read-only dir):
                        // last-resort removal keeps the file from being
                        // re-decoded forever; best effort either way.
                        let _ = std::fs::remove_file(path);
                    }
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(None)
    }

    /// Paths of the retained snapshot files, oldest first.
    pub fn files(&self) -> Result<Vec<PathBuf>, SnapshotError> {
        Ok(Self::list_files(&self.dir)
            .map_err(|e| SnapshotError::Io(e.to_string()))?
            .into_iter()
            .map(|(_, path)| path)
            .collect())
    }

    /// Removes all but the newest [`SnapshotStore::retain`] files.
    fn prune(&self) -> std::io::Result<()> {
        let files = Self::list_files(&self.dir)?;
        for (_, path) in files.iter().rev().skip(self.retain) {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }

    /// The store's snapshot files as `(sequence, path)`, sorted ascending.
    /// Non-matching names (including `*.tmp` and `*.bad`) are ignored.
    fn list_files(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
        let mut files = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(stem) = name
                .strip_prefix(FILE_PREFIX)
                .and_then(|s| s.strip_suffix(FILE_SUFFIX))
            else {
                continue;
            };
            if let Ok(seq) = stem.parse::<u64>() {
                files.push((seq, path));
            }
        }
        files.sort();
        Ok(files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::faults;
    use crate::engine::{Engine, EngineConfig};
    use spikemat::gemm::{OutputMatrix, WeightMatrix};
    use spikemat::{SpikeMatrix, TileShape};

    /// A non-empty snapshot to store (planned from a fixed tile).
    fn sample_snapshot() -> PlanSnapshot {
        let config = EngineConfig::new(TileShape::new(8, 8), 64);
        let mut engine = Engine::<i64>::new(config);
        let row: &[u8] = &[1, 0, 1, 1, 0, 0, 1, 0];
        let spikes = SpikeMatrix::from_rows_of_bits(&[row; 8]);
        let w = WeightMatrix::from_fn(8, 2, |r, c| (r + c) as i64);
        let mut out = OutputMatrix::zeros(0, 0);
        engine.gemm_into(&spikes, &w, &mut out);
        let snap = engine.export_snapshot(64);
        assert!(!snap.is_empty());
        snap
    }

    /// Fresh scratch directory for one test, removed on drop.
    struct TempDir(PathBuf);
    impl TempDir {
        fn new(name: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("prosperity_store_{name}"));
            std::fs::remove_dir_all(&dir).ok();
            Self(dir)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    #[test]
    fn saves_are_sequence_numbered_and_pruned_to_retention() {
        let tmp = TempDir::new("retention");
        let store = SnapshotStore::new(&tmp.0, 3).expect("open");
        let snap = sample_snapshot();
        for _ in 0..5 {
            store.save(&snap).expect("save");
        }
        let files = store.files().expect("list");
        assert_eq!(files.len(), 3, "pruned to retention");
        let names: Vec<String> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            vec![
                "snap-00000002.psnp",
                "snap-00000003.psnp",
                "snap-00000004.psnp"
            ],
            "newest three, oldest first"
        );
        // A reopened store resumes numbering after the survivors.
        let reopened = SnapshotStore::new(&tmp.0, 3).expect("reopen");
        let path = reopened.save(&snap).expect("save");
        assert!(path.ends_with("snap-00000005.psnp"), "{path:?}");
    }

    #[test]
    fn load_latest_valid_skips_and_quarantines_corrupt_files() {
        let tmp = TempDir::new("quarantine");
        let store = SnapshotStore::new(&tmp.0, 4).expect("open");
        let snap = sample_snapshot();
        store.save(&snap).expect("save good");
        let newest = store.save(&snap).expect("save to corrupt");
        // Bit-rot the newest file on disk.
        let mut bytes = std::fs::read(&newest).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x08;
        std::fs::write(&newest, &bytes).expect("corrupt");
        let loaded = store
            .load_latest_valid()
            .expect("walk")
            .expect("older file serves");
        assert_eq!(loaded.len(), snap.len());
        assert_eq!(store.quarantined(), 1);
        assert!(!newest.exists(), "corrupt file moved aside");
        let mut bad = newest.as_os_str().to_os_string();
        bad.push(".bad");
        assert!(PathBuf::from(bad).exists(), "quarantined for post-mortem");
        // The quarantined file no longer participates in later walks.
        assert!(store.load_latest_valid().expect("walk").is_some());
        assert_eq!(store.quarantined(), 1);
    }

    #[test]
    fn k_rotted_files_quarantine_in_one_pass() {
        let tmp = TempDir::new("one_pass");
        let store = SnapshotStore::new(&tmp.0, 16).expect("open");
        let snap = sample_snapshot();
        // One good oldest file, then K rotted newer ones.
        const K: usize = 5;
        store.save(&snap).expect("good save");
        for _ in 0..K {
            let path = store.save(&snap).expect("save to rot");
            let mut bytes = std::fs::read(&path).expect("read");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            std::fs::write(&path, &bytes).expect("rot");
        }
        let loaded = store
            .load_latest_valid()
            .expect("walk terminates")
            .expect("the oldest good file survives");
        assert_eq!(loaded.len(), snap.len());
        assert_eq!(store.quarantined(), K as u64, "all K quarantined");
        // The one-pass guarantee: K bad files + 1 good file were each
        // read and verified exactly once. A walk that restarted after
        // every quarantine would have scanned O(K^2) files.
        assert_eq!(store.files_scanned(), K as u64 + 1);
        // And the quarantined files no longer participate at all.
        let again = store.load_latest_valid().expect("walk").expect("good");
        assert_eq!(again.len(), snap.len());
        assert_eq!(store.files_scanned(), K as u64 + 2, "one more read only");
        assert_eq!(store.quarantined(), K as u64);
    }

    #[test]
    fn load_newer_than_skips_stale_without_reading() {
        let tmp = TempDir::new("newer_than");
        let store = SnapshotStore::new(&tmp.0, 8).expect("open");
        let snap = sample_snapshot();
        store.save(&snap).expect("save 0");
        store.save(&snap).expect("save 1");
        let (seq, loaded) = store
            .load_newer_than(None)
            .expect("walk")
            .expect("newest decodes");
        assert_eq!(seq, 1);
        assert_eq!(loaded.len(), snap.len());
        assert_eq!(store.files_scanned(), 1);
        // Nothing newer than seq 1: the sweep ends at the listing, with
        // zero file reads.
        assert!(store.load_newer_than(Some(seq)).expect("walk").is_none());
        assert_eq!(store.files_scanned(), 1, "stale sweep reads nothing");
        // A new save is picked up again.
        store.save(&snap).expect("save 2");
        let (seq2, _) = store
            .load_newer_than(Some(seq))
            .expect("walk")
            .expect("fresh file");
        assert_eq!(seq2, 2);
    }

    #[test]
    fn encode_and_load_volume_counters_accumulate() {
        let tmp = TempDir::new("volume_counters");
        let store = SnapshotStore::new(&tmp.0, 4).expect("open");
        let snap = sample_snapshot();
        let path = store.save(&snap).expect("save");
        let on_disk = std::fs::metadata(&path).expect("stat").len();
        assert_eq!(store.bytes_encoded(), on_disk);
        assert_eq!(store.plans_encoded(), snap.len() as u64);
        assert_eq!(store.bytes_loaded(), 0, "nothing loaded yet");
        let loaded = store.load_latest_valid().expect("walk").expect("valid");
        assert_eq!(store.bytes_loaded(), on_disk);
        assert_eq!(store.plans_loaded(), loaded.len() as u64);
        store.save(&snap).expect("save again");
        assert_eq!(store.bytes_encoded(), 2 * on_disk, "counters accumulate");
    }

    #[test]
    fn empty_store_loads_none() {
        let tmp = TempDir::new("empty");
        let store = SnapshotStore::new(&tmp.0, 2).expect("open");
        assert!(store.load_latest_valid().expect("walk").is_none());
        assert_eq!(store.quarantined(), 0);
    }

    #[test]
    fn transient_io_failure_is_retried_with_backoff() {
        let tmp = TempDir::new("retry");
        let store = SnapshotStore::new(&tmp.0, 2)
            .expect("open")
            .with_retry(3, Duration::from_micros(50));
        let snap = sample_snapshot();
        // Fail the very first IO op of the save: the fire-once fault makes
        // the first retry succeed.
        let guard = faults::install(faults::FaultPlan::fail_io(0));
        let path = store.save(&snap).expect("retried save succeeds");
        assert!(guard.fired().fail_io);
        drop(guard);
        assert_eq!(store.io_retries(), 1);
        assert!(path.exists());
        assert_eq!(
            store
                .load_latest_valid()
                .expect("walk")
                .expect("valid")
                .len(),
            snap.len()
        );
    }

    #[test]
    fn exhausted_retries_surface_as_io_error() {
        let tmp = TempDir::new("exhausted");
        let store = SnapshotStore::new(&tmp.0, 2)
            .expect("open")
            .with_retry(1, Duration::ZERO);
        // A single attempt with the first op failing: no retry budget.
        let _guard = faults::install(faults::FaultPlan::fail_io(0));
        let err = store.save(&sample_snapshot());
        assert!(matches!(err, Err(SnapshotError::Io(_))));
        assert_eq!(store.io_retries(), 0);
        assert!(store.files().expect("list").is_empty(), "nothing torn");
    }

    #[test]
    fn injected_corruption_is_caught_by_the_next_load() {
        let tmp = TempDir::new("injected_corruption");
        let store = SnapshotStore::new(&tmp.0, 4).expect("open");
        let snap = sample_snapshot();
        store.save(&snap).expect("good save");
        {
            // Corrupt byte 100 of the next image on its way to disk.
            let guard = faults::install(faults::FaultPlan::corrupt_snapshot(100));
            store.save(&snap).expect("corrupted save still writes");
            assert!(guard.fired().corrupt_snapshot);
        }
        let loaded = store.load_latest_valid().expect("walk");
        assert_eq!(loaded.expect("fallback").len(), snap.len());
        assert_eq!(store.quarantined(), 1);
    }
}

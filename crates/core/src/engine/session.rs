//! One serving session: plan cache handle, planner scratch, and pooled
//! buffers that persist across GeMMs, layers, and timesteps.

use std::sync::Arc;

#[cfg(feature = "parallel")]
use crate::exec::execute_row_tile;
use crate::exec::{execute_row_tiles, TileExec};
use crate::plan::{PlanScratch, TileMeta};
use spikemat::gemm::{OutputMatrix, WeightMatrix};
use spikemat::SpikeMatrix;

use super::cache::{hash_tile, Admission, InsertOutcome, PlanCache};
use super::pool::BufferPool;
use super::shared::SharedPlanCache;
use super::snapshot::{ImportReport, PlanSnapshot, SnapshotEntry};
use super::stats::EngineStats;
use super::{Element, EngineConfig};
use std::sync::Mutex;

/// A cached plan placed at a concrete grid position.
#[derive(Debug, Clone)]
struct PlacedTile {
    meta: Arc<TileMeta>,
    col_start: usize,
    valid_rows: usize,
}

impl TileExec for PlacedTile {
    fn meta(&self) -> &TileMeta {
        &self.meta
    }
    fn col_start(&self) -> usize {
        self.col_start
    }
    fn valid_rows(&self) -> usize {
        self.valid_rows
    }
}

/// What one [`Session::gemm_slice`] visit accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceRun {
    /// Row-tiles executed by this slice (0 only for a degenerate GeMM with
    /// no planned row-tiles, which completes in one visit).
    pub row_tiles: usize,
    /// Whether this slice executed the GeMM's last row-tile. The output is
    /// complete — and may be observed — only once this is true.
    pub done: bool,
}

/// Resumable position inside one planned GeMM: [`Session::gemm_slice`]
/// plans on its first visit and then walks `next_row_tile` through
/// `row_tiles` across visits, so a scheduler can preempt the session
/// between row-tiles. The placed tiles, pooled scratch, and spike-chain
/// buffers all live on the session, so nothing is re-derived on resume.
#[derive(Debug, Default)]
struct StepCursor {
    /// Next unexecuted row-tile of the in-flight GeMM.
    next_row_tile: usize,
    /// Total row-tiles the in-flight GeMM planned.
    row_tiles: usize,
    /// Whether a sliced GeMM is in flight (planned but not fully executed).
    active: bool,
}

/// The session's plan-cache backend.
#[derive(Debug)]
enum CacheSlot {
    /// Caching disabled (`cache_capacity == 0`): every tile is planned.
    Off,
    /// A session-private LRU.
    Private(PlanCache),
    /// A handle onto a concurrent cache shared with other sessions.
    Shared(Arc<SharedPlanCache>),
}

/// Cached geometry of the last [`Session::forward_chain`] call: the
/// validated layer dimensions, so repeated chain executions (the serving
/// steady state) compare a few integers instead of re-deriving and
/// re-asserting every layer's shape inside the hot loop.
#[derive(Debug, Default)]
struct ChainLayout {
    input_k: usize,
    /// `(k, n)` per layer, in chain order.
    dims: Vec<(usize, usize)>,
}

impl ChainLayout {
    /// Whether the cached layout covers exactly this input/layer geometry.
    fn matches<T: Copy>(&self, input: &SpikeMatrix, layers: &[WeightMatrix<T>]) -> bool {
        self.input_k == input.cols()
            && self.dims.len() == layers.len()
            && self
                .dims
                .iter()
                .zip(layers)
                .all(|(&(k, n), w)| k == w.rows() && n == w.cols())
    }

    /// Validates the chain once (input matches layer 0, adjacent layers
    /// chain) and caches its dimensions.
    ///
    /// # Panics
    ///
    /// Panics on any geometry mismatch.
    fn rebuild<T: Copy>(&mut self, input: &SpikeMatrix, layers: &[WeightMatrix<T>]) {
        assert_eq!(
            input.cols(),
            layers[0].rows(),
            "forward_chain: input K={} does not match weight rows {}",
            input.cols(),
            layers[0].rows()
        );
        for (i, pair) in layers.windows(2).enumerate() {
            assert_eq!(
                pair[0].cols(),
                pair[1].rows(),
                "forward_chain: layer {} output N={} does not chain into layer {} K={}",
                i,
                pair[0].cols(),
                i + 1,
                pair[1].rows()
            );
        }
        self.input_k = input.cols();
        self.dims.clear();
        self.dims
            .extend(layers.iter().map(|w| (w.rows(), w.cols())));
    }
}

/// A reusable end-to-end execution session: plan cache, planner scratch, and
/// buffer pools that persist across GeMMs, layers, and timesteps.
///
/// One session serves one logical stream of spiking GeMMs (a model being
/// replayed timestep after timestep). It is `&mut self` throughout — share
/// *streams* across threads by giving each its own session; *within* one
/// call the session parallelizes across row-tiles. To share planning work
/// across concurrent streams, construct the sessions over one
/// [`SharedPlanCache`] ([`Session::with_shared`]) or drive them through a
/// [`BatchScheduler`](super::BatchScheduler).
///
/// ```
/// use prosperity_core::engine::Engine;
/// use spikemat::gemm::{spiking_gemm, OutputMatrix, WeightMatrix};
/// use spikemat::SpikeMatrix;
///
/// let mut engine = Engine::<i64>::default();
/// let spikes = SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[1, 0, 1]]);
/// let weights = WeightMatrix::from_fn(3, 2, |r, c| (r + c) as i64);
/// let mut out = OutputMatrix::zeros(0, 0);
/// engine.gemm_into(&spikes, &weights, &mut out);
/// assert_eq!(out, spiking_gemm(&spikes, &weights));
/// ```
#[derive(Debug)]
pub struct Session<T = i64> {
    config: EngineConfig,
    cache: CacheSlot,
    /// Which tenant's admission window this session's shared-cache traffic
    /// feeds (ignored by private/disabled backends — a private cache is
    /// single-tenant by definition).
    tenant: u64,
    /// The tenant's shared admission window, resolved once at construction
    /// so the per-tile hot path locks only this window, never a registry.
    shared_admission: Option<Arc<Mutex<Admission>>>,
    plan_scratch: PlanScratch,
    /// Scratch tile for extraction + hashing.
    tile_buf: SpikeMatrix,
    /// The current GeMM's placed tiles, row-major; reused across calls.
    tiles: Vec<PlacedTile>,
    /// k-tiles per row group of the current GeMM.
    gk: usize,
    /// Sliced-execution position within the current GeMM.
    cursor: StepCursor,
    pool: BufferPool<T>,
    /// Pooled output recycled by [`Session::run_layers`] / chaining.
    chain_out: OutputMatrix<T>,
    /// Spike-chain ping-pong buffers for [`Session::forward_chain`].
    chain_a: SpikeMatrix,
    chain_b: SpikeMatrix,
    /// Validated geometry of the last chain call.
    chain_layout: ChainLayout,
    stats: EngineStats,
}

/// The historical name of [`Session`]: PR 2 introduced the engine as a
/// single-stream type; the serving refactor split it into the
/// `engine::{cache, shared, pool, session, batch, stats}` tree and `Engine` now
/// aliases the session layer.
pub type Engine<T = i64> = Session<T>;

impl<T: Element> Default for Session<T> {
    fn default() -> Self {
        Self::new(EngineConfig::default())
    }
}

impl<T: Element> Session<T> {
    /// Creates a session with a private plan cache (or none when
    /// `config.cache_capacity == 0`).
    pub fn new(config: EngineConfig) -> Self {
        let cache = if config.cache_capacity == 0 {
            CacheSlot::Off
        } else {
            CacheSlot::Private(PlanCache::new(config.cache_capacity, config.admission))
        };
        Self::build(config, cache)
    }

    /// Creates a session planning through a cache shared with other
    /// sessions, as tenant `0`. The shared cache owns capacity and
    /// admission policy; `config.cache_capacity`/`config.admission` are
    /// ignored in this mode. Multi-tenant deployments should use
    /// [`Session::with_shared_tenant`] so each stream gets its own
    /// admission window.
    pub fn with_shared(config: EngineConfig, shared: Arc<SharedPlanCache>) -> Self {
        Self::with_shared_tenant(config, shared, 0)
    }

    /// [`Session::with_shared`] with an explicit tenant id.
    ///
    /// The shared cache's admission policy tracks one sliding window per
    /// tenant, so sessions carrying distinct ids get independent admission
    /// decisions: a hot tenant's hits cannot hold insertion open for a
    /// cold tenant, and a cold tenant's misses cannot close it for a hot
    /// one. Sessions serving the same logical stream should share an id.
    ///
    /// Construction resolves (and generation-stamps) the tenant's window in
    /// the cache's admission table; under admission-table GC
    /// ([`SharedPlanCache::gc_tenants`]) that stamp is what keeps a
    /// returning tenant's registry entry alive. A session whose entry is
    /// GC'd keeps working unchanged — it holds the window's `Arc` — but a
    /// *later* session for the same tenant id starts a fresh window.
    pub fn with_shared_tenant(
        config: EngineConfig,
        shared: Arc<SharedPlanCache>,
        tenant: u64,
    ) -> Self {
        let shared_admission = shared.admission_handle(tenant);
        let mut session = Self::build(config, CacheSlot::Shared(shared));
        session.tenant = tenant;
        session.shared_admission = shared_admission;
        session
    }

    /// Creates a private-cache session pre-warmed from a snapshot, so the
    /// first timesteps after a process restart hit instead of re-planning.
    /// Returns the session plus what the import did (a snapshot larger
    /// than the cache degrades to a partial restore of the hottest plans).
    ///
    /// For a shared cache, import into the cache itself instead
    /// ([`SharedPlanCache::import`], or
    /// [`BatchScheduler::warm_start`](super::BatchScheduler::warm_start)).
    pub fn warm_start(config: EngineConfig, snapshot: &PlanSnapshot) -> (Self, ImportReport) {
        let mut session = Self::new(config);
        let report = session.import_snapshot(snapshot);
        (session, report)
    }

    fn build(config: EngineConfig, cache: CacheSlot) -> Self {
        Self {
            config,
            cache,
            tenant: 0,
            shared_admission: None,
            plan_scratch: PlanScratch::new(),
            tile_buf: SpikeMatrix::zeros(0, 0),
            tiles: Vec::new(),
            gk: 0,
            cursor: StepCursor::default(),
            pool: BufferPool::default(),
            chain_out: OutputMatrix::zeros(0, 0),
            chain_a: SpikeMatrix::zeros(0, 0),
            chain_b: SpikeMatrix::zeros(0, 0),
            chain_layout: ChainLayout::default(),
            stats: EngineStats::default(),
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shared cache this session plans through, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedPlanCache>> {
        match &self.cache {
            CacheSlot::Shared(s) => Some(s),
            _ => None,
        }
    }

    /// The tenant id this session's shared-cache admission traffic is
    /// keyed by (0 unless set via [`Session::with_shared_tenant`]).
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    /// Exports the up-to-`n` hottest plans of this session's cache as a
    /// [`PlanSnapshot`] (for a shared cache: the whole fleet's hottest,
    /// exported shard by shard without a global pause). An `Off` backend
    /// exports an empty snapshot.
    pub fn export_snapshot(&self, n: usize) -> PlanSnapshot {
        match &self.cache {
            CacheSlot::Off => PlanSnapshot::default(),
            CacheSlot::Private(c) => PlanSnapshot {
                entries: c.export_hottest(n),
            },
            CacheSlot::Shared(s) => s.export_hottest(n),
        }
    }

    /// Restores a snapshot's plans into this session's cache (see
    /// [`Session::warm_start`] for the usual entry point). Respects
    /// capacity — surplus entries are dropped, never evicting live ones —
    /// and leaves admission state untouched. Entries whose tile geometry
    /// does not match this session's `config.tile` are dropped as
    /// [`ImportReport::skipped_shape`] (a decoded snapshot is internally
    /// consistent, but only the importer knows the shape it serves). With
    /// caching disabled the whole snapshot is reported as skipped.
    pub fn import_snapshot(&mut self, snapshot: &PlanSnapshot) -> ImportReport {
        let tile = self.config.tile;
        match &mut self.cache {
            CacheSlot::Off => ImportReport {
                requested: snapshot.len(),
                skipped_capacity: snapshot.len(),
                ..ImportReport::default()
            },
            CacheSlot::Private(c) => {
                let mut skipped_shape = 0;
                let mut fit: Vec<SnapshotEntry> = Vec::with_capacity(snapshot.len());
                for entry in &snapshot.entries {
                    if entry.matches_shape(tile.m, tile.k) {
                        fit.push(entry.clone());
                    } else {
                        skipped_shape += 1;
                    }
                }
                let mut report = c.import(fit);
                report.requested += skipped_shape;
                report.skipped_shape = skipped_shape;
                report
            }
            CacheSlot::Shared(s) => s.import(snapshot, tile),
        }
    }

    /// Cache/reuse counters accumulated since the last
    /// [`Session::reset_stats`].
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Zeroes the statistics counters (the cache itself is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }

    /// Number of tile plans currently resident in this session's cache
    /// (for a shared cache: all sessions' plans).
    pub fn cached_plans(&self) -> usize {
        match &self.cache {
            CacheSlot::Off => 0,
            CacheSlot::Private(c) => c.len(),
            CacheSlot::Shared(s) => s.len(),
        }
    }

    /// Drops every cached plan (capacity is unchanged). On a shared cache
    /// this clears the plans of *every* session sharing it.
    pub fn clear_cache(&mut self) {
        match &mut self.cache {
            CacheSlot::Off => {}
            CacheSlot::Private(c) => c.clear(),
            CacheSlot::Shared(s) => s.clear(),
        }
    }

    /// Plans one spike matrix through the tile cache, leaving the placed
    /// tiles in `self.tiles` (row-major).
    fn plan(&mut self, spikes: &SpikeMatrix) {
        let shape = self.config.tile;
        let (gm, gk) = shape.grid(spikes.rows(), spikes.cols());
        self.gk = gk;
        self.tiles.clear();
        let mut tile_buf = std::mem::take(&mut self.tile_buf);
        for ti in 0..gm {
            let row_start = ti * shape.m;
            let valid_rows = (spikes.rows() - row_start).min(shape.m);
            for tj in 0..gk {
                let col_start = tj * shape.k;
                spikes.submatrix_into(row_start, col_start, shape.m, shape.k, &mut tile_buf);
                self.stats.tiles += 1;
                let meta = Self::plan_tile(
                    &mut self.cache,
                    &mut self.plan_scratch,
                    &mut self.stats,
                    &tile_buf,
                    self.shared_admission.as_deref(),
                );
                self.tiles.push(PlacedTile {
                    meta,
                    col_start,
                    valid_rows,
                });
            }
        }
        self.tile_buf = tile_buf;
    }

    /// Resolves one extracted tile to a plan: cache hit, or plan-and-offer.
    ///
    /// For the shared backend, planning happens *outside* the shard lock so
    /// concurrent sessions overlap their Detector/Pruner work; the offer
    /// afterwards deduplicates racing planners (identical by construction —
    /// planning is a pure function of the tile bits).
    fn plan_tile(
        cache: &mut CacheSlot,
        scratch: &mut PlanScratch,
        stats: &mut EngineStats,
        tile: &SpikeMatrix,
        admission: Option<&Mutex<Admission>>,
    ) -> Arc<TileMeta> {
        let fresh = |scratch: &mut PlanScratch| {
            let (meta, _) = TileMeta::build_with(tile, 0, 0, scratch);
            Arc::new(meta)
        };
        match cache {
            CacheSlot::Off => {
                stats.cache_misses += 1;
                fresh(scratch)
            }
            CacheSlot::Private(cache) => {
                let hash = hash_tile(tile);
                if let Some((meta, restored)) = cache.lookup(hash, tile) {
                    stats.cache_hits += 1;
                    stats.restored_hits += u64::from(restored);
                    return meta;
                }
                stats.cache_misses += 1;
                let meta = fresh(scratch);
                match cache.insert(hash, tile, Arc::clone(&meta)) {
                    InsertOutcome::Inserted => {}
                    InsertOutcome::Evicted => stats.cache_evictions += 1,
                    InsertOutcome::Bypassed => stats.cache_bypasses += 1,
                    InsertOutcome::Deduplicated => unreachable!("private cache never dedups"),
                }
                meta
            }
            CacheSlot::Shared(shared) => {
                let hash = hash_tile(tile);
                if let Some((meta, restored)) = shared.lookup(hash, tile, admission) {
                    stats.cache_hits += 1;
                    stats.restored_hits += u64::from(restored);
                    return meta;
                }
                stats.cache_misses += 1;
                let (meta, outcome) = shared.insert(hash, tile, fresh(scratch), admission);
                match outcome {
                    // Deduplicated: a racing session won the insert; the
                    // resident plan is used and no admission bypass is
                    // recorded (none happened).
                    InsertOutcome::Inserted | InsertOutcome::Deduplicated => {}
                    InsertOutcome::Evicted => stats.cache_evictions += 1,
                    InsertOutcome::Bypassed => stats.cache_bypasses += 1,
                }
                meta
            }
        }
    }

    /// Executes one spiking GeMM into `out` (resized in place, so a reused
    /// buffer makes the call allocation-free apart from cache insertions).
    ///
    /// Bit-identical to [`crate::exec::prosparsity_gemm`] with this
    /// session's tile shape; row-tiles run across threads with the
    /// `parallel` feature.
    ///
    /// # Panics
    ///
    /// Panics if `spikes.cols() != weights.rows()`.
    pub fn gemm_into(
        &mut self,
        spikes: &SpikeMatrix,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
    ) {
        self.gemm_prepare(spikes, weights, out, true);
        self.timed_execute(|s| s.execute_current(weights, out));
    }

    /// Strictly single-threaded [`Session::gemm_into`]; the oracle the
    /// parallel path is property-tested against. Cache behaviour (and thus
    /// [`EngineStats`]) is identical.
    pub fn gemm_into_serial(
        &mut self,
        spikes: &SpikeMatrix,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
    ) {
        self.gemm_prepare(spikes, weights, out, true);
        self.timed_execute(|s| s.execute_current_serial(weights, out));
    }

    /// Convenience [`Session::gemm_into`] allocating a fresh output.
    pub fn gemm(&mut self, spikes: &SpikeMatrix, weights: &WeightMatrix<T>) -> OutputMatrix<T> {
        let mut out = OutputMatrix::zeros(0, 0);
        self.gemm_into(spikes, weights, &mut out);
        out
    }

    /// Executes up to `max_row_tiles` row-tiles of one spiking GeMM and
    /// yields — the preemptible form of [`Session::gemm_into`].
    ///
    /// The first visit plans the whole GeMM (one plan-cache pass, exactly as
    /// `gemm_into` would) and resets `out`; each visit then executes a
    /// bounded slice of row-tiles, fanned across rayon workers with the
    /// `parallel` feature. Keep calling with the *same* `spikes`, `weights`,
    /// and `out` until the returned [`SliceRun::done`] is true; only then is
    /// `out` the complete GeMM result. Row-tiles are independent (no output
    /// element or scratch state crosses a row-group boundary), so any
    /// partition into slices is bit-identical to the one-shot call.
    ///
    /// `max_row_tiles == 0` means "the rest of the GeMM" (one visit behaves
    /// exactly like `gemm_into`). [`EngineStats`] accounting is identical to
    /// the unsliced call: `gemms`/`tiles`/`plan_ns` accrue once at plan
    /// time, `exec_ns` accrues per slice.
    ///
    /// # Panics
    ///
    /// Panics if `spikes.cols() != weights.rows()` (checked at plan time).
    // analyze: hot-path
    pub fn gemm_slice(
        &mut self,
        spikes: &SpikeMatrix,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
        max_row_tiles: usize,
    ) -> SliceRun {
        self.slice_prepare(spikes, weights, out);
        let (start, count) = self.slice_bounds(max_row_tiles);
        self.timed_execute(|s| s.execute_slice(weights, out, start, count));
        self.slice_advance(count)
    }

    /// Strictly single-threaded [`Session::gemm_slice`]; the oracle the
    /// parallel sliced path is property-tested against.
    // analyze: hot-path
    pub fn gemm_slice_serial(
        &mut self,
        spikes: &SpikeMatrix,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
        max_row_tiles: usize,
    ) -> SliceRun {
        self.slice_prepare(spikes, weights, out);
        let (start, count) = self.slice_bounds(max_row_tiles);
        self.timed_execute(|s| s.execute_slice_serial(weights, out, start, count));
        self.slice_advance(count)
    }

    /// Whether a sliced GeMM is in flight (planned, not yet fully
    /// executed). While true, the only valid operations are further
    /// `gemm_slice*` visits for the same GeMM or [`Session::reset_slice`].
    pub fn slice_in_flight(&self) -> bool {
        self.cursor.active
    }

    /// Abandons an in-flight sliced GeMM (its partial output is left as-is
    /// and must not be observed). The next `gemm_slice*` call plans fresh.
    pub fn reset_slice(&mut self) {
        self.cursor = StepCursor::default();
    }

    /// Row-tiles (row groups) the most recent plan placed.
    pub(crate) fn planned_row_tiles(&self) -> usize {
        self.tiles.len().checked_div(self.gk).unwrap_or(0)
    }

    /// First-visit planning for `gemm_slice*`: plans + resets the output
    /// and arms the cursor; resumed visits only sanity-check geometry.
    fn slice_prepare(
        &mut self,
        spikes: &SpikeMatrix,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
    ) {
        if !self.cursor.active {
            self.gemm_prepare(spikes, weights, out, true);
            self.cursor = StepCursor {
                next_row_tile: 0,
                row_tiles: self.planned_row_tiles(),
                active: true,
            };
        } else {
            debug_assert_eq!(
                (out.rows(), out.cols()),
                (spikes.rows(), weights.cols()),
                "gemm_slice: GeMM geometry changed mid-flight"
            );
        }
    }

    /// The `[start, start + count)` row-tile range the next slice covers.
    // analyze: hot-path
    fn slice_bounds(&self, max_row_tiles: usize) -> (usize, usize) {
        let start = self.cursor.next_row_tile;
        let remaining = self.cursor.row_tiles - start;
        let count = if max_row_tiles == 0 {
            remaining
        } else {
            remaining.min(max_row_tiles)
        };
        (start, count)
    }

    /// Advances the cursor past an executed slice, disarming it on the
    /// GeMM's last row-tile.
    // analyze: hot-path
    fn slice_advance(&mut self, count: usize) -> SliceRun {
        self.cursor.next_row_tile += count;
        let done = self.cursor.next_row_tile >= self.cursor.row_tiles;
        if done {
            self.cursor.active = false;
        }
        SliceRun {
            row_tiles: count,
            done,
        }
    }

    /// Shared plan + output-shape phase of the `gemm_into*` entry points.
    /// `check_dims` is false only on chain-internal calls whose geometry
    /// the cached [`ChainLayout`] already validated.
    fn gemm_prepare(
        &mut self,
        spikes: &SpikeMatrix,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
        check_dims: bool,
    ) {
        if check_dims {
            assert_eq!(
                spikes.cols(),
                weights.rows(),
                "engine: spike K={} does not match weight rows {}",
                spikes.cols(),
                weights.rows()
            );
        } else {
            debug_assert_eq!(spikes.cols(), weights.rows());
        }
        debug_assert!(
            !self.cursor.active,
            "planning a new GeMM while a sliced GeMM is in flight \
             (finish the gemm_slice sequence or call reset_slice first)"
        );
        self.stats.gemms += 1;
        let planned = std::time::Instant::now();
        self.plan(spikes);
        self.stats.plan_ns += planned.elapsed().as_nanos() as u64;
        out.reset(spikes.rows(), weights.cols());
    }

    /// Times one execute closure into [`EngineStats::exec_ns`].
    #[inline]
    fn timed_execute(&mut self, run: impl FnOnce(&Self)) {
        let executed = std::time::Instant::now();
        run(self);
        self.stats.exec_ns += executed.elapsed().as_nanos() as u64;
    }

    /// Executes the tiles placed by the last `plan` call into `out` (the
    /// whole GeMM is one maximal slice).
    fn execute_current(&self, weights: &WeightMatrix<T>, out: &mut OutputMatrix<T>) {
        self.execute_slice(weights, out, 0, self.planned_row_tiles());
    }

    /// Serial row-tile sweep over the placed tiles.
    fn execute_current_serial(&self, weights: &WeightMatrix<T>, out: &mut OutputMatrix<T>) {
        self.execute_slice_serial(weights, out, 0, self.planned_row_tiles());
    }

    /// Executes `count` row-tiles starting at row group `start` of the last
    /// plan into their chunks of `out`; the group's ready row-tiles fan out
    /// across rayon workers.
    // analyze: hot-path
    #[cfg(feature = "parallel")]
    fn execute_slice(
        &self,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
        start: usize,
        count: usize,
    ) {
        use rayon::prelude::*;
        let n = weights.cols();
        if count == 0 || n == 0 {
            return;
        }
        // Fan-out has a fixed per-dispatch cost; a single row-tile or a
        // one-worker pool gains nothing from it, and sub-GeMM quanta
        // multiply dispatches, so route those straight to the serial
        // executor (bit-identical either way).
        if count == 1 || rayon::current_num_threads() == 1 {
            self.execute_slice_serial(weights, out, start, count);
            return;
        }
        let chunk_elems = self.config.tile.m * n;
        let gk = self.gk;
        let row_chunks: Vec<(usize, &mut [T])> = out
            .as_mut_slice()
            .chunks_mut(chunk_elems)
            .enumerate()
            .skip(start)
            .take(count)
            .collect();
        row_chunks.into_par_iter().for_each(|(ti, chunk)| {
            // chunks_mut sizing guarantees ti indexes a planned row group,
            // so the range is always valid; `get` keeps the warm dispatch
            // loop free of panic paths.
            let Some(tiles) = self.tiles.get(ti * gk..(ti + 1) * gk) else {
                return;
            };
            let mut s = self.pool.take_exec();
            execute_row_tile(
                tiles,
                weights,
                chunk,
                &mut s.arena,
                &mut s.parents,
                &mut s.simple,
                n,
            );
            self.pool.put_exec(s);
        });
    }

    /// Executes `count` row-tiles starting at row group `start` of the last
    /// plan into their chunks of `out` (serial build).
    // analyze: hot-path
    #[cfg(not(feature = "parallel"))]
    fn execute_slice(
        &self,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
        start: usize,
        count: usize,
    ) {
        self.execute_slice_serial(weights, out, start, count);
    }

    /// Single-threaded slice executor (shared with the serial whole-GeMM
    /// path via [`execute_row_tiles`]).
    // analyze: hot-path
    fn execute_slice_serial(
        &self,
        weights: &WeightMatrix<T>,
        out: &mut OutputMatrix<T>,
        start: usize,
        count: usize,
    ) {
        let n = weights.cols();
        if count == 0 || n == 0 {
            return;
        }
        let mut s = self.pool.take_exec();
        execute_row_tiles(
            &self.tiles,
            self.gk,
            weights,
            out.as_mut_slice(),
            start,
            count,
            &mut s.arena,
            &mut s.parents,
            &mut s.simple,
            self.config.tile.m,
            n,
        );
        self.pool.put_exec(s);
    }

    /// Executes a stream of recorded `(spikes, weights)` GeMMs — e.g. the
    /// layers of a model trace — through one pooled output buffer. `sink`
    /// observes each layer's output before the buffer is recycled for the
    /// next layer.
    pub fn run_layers<'a, I, F>(&mut self, layers: I, mut sink: F)
    where
        T: 'a,
        I: IntoIterator<Item = (&'a SpikeMatrix, &'a WeightMatrix<T>)>,
        F: FnMut(usize, &OutputMatrix<T>),
    {
        let mut out = std::mem::take(&mut self.chain_out);
        for (i, (spikes, weights)) in layers.into_iter().enumerate() {
            self.gemm_into(spikes, weights, &mut out);
            sink(i, &out);
        }
        self.chain_out = out;
    }

    /// Runs a feed-forward chain: layer `ℓ`'s integer output is thresholded
    /// (`v >= threshold` fires) into the spike input of layer `ℓ+1`, using
    /// the session's pooled ping-pong buffers, and the final layer's spikes
    /// are left in `out_spikes` (resized in place). No steady-state
    /// allocation once the pools are warm.
    ///
    /// Chain geometry is validated once and cached in a `ChainLayout`;
    /// repeated calls with the same layer shapes (the serving steady state)
    /// skip per-layer shape re-derivation inside the hot loop.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty, the input does not match the first
    /// layer, or adjacent layer shapes do not chain (`N_ℓ != K_{ℓ+1}`).
    pub fn forward_chain(
        &mut self,
        input: &SpikeMatrix,
        layers: &[WeightMatrix<T>],
        threshold: T,
        out_spikes: &mut SpikeMatrix,
    ) where
        T: PartialOrd,
    {
        assert!(!layers.is_empty(), "forward_chain needs at least one layer");
        if !self.chain_layout.matches(input, layers) {
            let mut layout = std::mem::take(&mut self.chain_layout);
            layout.rebuild(input, layers);
            self.chain_layout = layout;
        }
        let mut acc = std::mem::take(&mut self.chain_out);
        let mut ping = std::mem::take(&mut self.chain_a);
        let mut pong = std::mem::take(&mut self.chain_b);
        for (i, weights) in layers.iter().enumerate() {
            {
                let src: &SpikeMatrix = if i == 0 { input } else { &ping };
                self.gemm_prepare(src, weights, &mut acc, false);
                self.timed_execute(|s| s.execute_current(weights, &mut acc));
            }
            super::threshold_spikes(&acc, threshold, &mut pong);
            std::mem::swap(&mut ping, &mut pong);
        }
        // Final spikes are in `ping`; hand them to the caller and keep the
        // other buffer (plus whatever the caller passed in) pooled.
        std::mem::swap(out_spikes, &mut ping);
        self.chain_out = acc;
        self.chain_a = ping;
        self.chain_b = pong;
    }
}

#[cfg(test)]
#[path = "session_tests.rs"]
mod tests;

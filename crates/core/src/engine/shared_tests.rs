//! Unit tests (kept beside the module, out of its main file).

use super::super::cache::hash_tile;
use super::*;
use spikemat::TileShape;

fn tile_of(rows: &[&[u8]]) -> SpikeMatrix {
    SpikeMatrix::from_rows_of_bits(rows)
}

#[test]
fn shared_cache_dedupes_racing_inserts() {
    let shared = SharedPlanCache::with_shards(64, 4, None);
    let t = tile_of(&[&[1, 0, 1], &[1, 1, 0]]);
    let h = hash_tile(&t);
    let m1 = Arc::new(TileMeta::build(&t, 0, 0));
    let m2 = Arc::new(TileMeta::build(&t, 0, 0));
    let (kept1, o1) = shared.insert(h, &t, Arc::clone(&m1), None);
    assert_eq!(o1, InsertOutcome::Inserted);
    assert!(Arc::ptr_eq(&kept1, &m1));
    // A racing planner offering the same tile gets the resident plan, and
    // the race is ledgered as a dedup, not an admission bypass.
    let (kept2, o2) = shared.insert(h, &t, m2, None);
    assert_eq!(o2, InsertOutcome::Deduplicated);
    assert!(Arc::ptr_eq(&kept2, &m1));
    assert_eq!(shared.len(), 1);
    let s = shared.stats();
    assert_eq!(s.insertions, 1);
    assert_eq!(s.bypasses, 0);
    assert_eq!(s.dedups, 1);
    assert_eq!(s.resident, 1);
}

#[test]
fn shared_cache_spreads_and_clears() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let shared = SharedPlanCache::with_shards(256, 8, None);
    assert_eq!(shared.shard_count(), 8);
    let mut rng = StdRng::seed_from_u64(11);
    let shape = TileShape::new(8, 16);
    let mut resident = 0;
    for _ in 0..64 {
        let t = SpikeMatrix::random(shape.m, shape.k, 0.5, &mut rng);
        let h = hash_tile(&t);
        if shared.lookup(h, &t, None).is_none() {
            let (_, o) = shared.insert(h, &t, Arc::new(TileMeta::build(&t, 0, 0)), None);
            if o != InsertOutcome::Bypassed {
                resident += 1;
            }
        }
    }
    assert_eq!(shared.len(), resident);
    assert!(shared.stats().hits + shared.stats().misses >= 64);
    shared.clear();
    assert!(shared.is_empty());
    assert_eq!(shared.stats().resident, 0);
}

#[test]
fn admission_is_tracked_per_tenant_not_per_shard() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let cfg = AdmissionConfig {
        window: 8,
        min_hit_permille: 500,
        probe_period: 0,
    };
    // One shard: under the historical per-shard policy both tenants would
    // share a single admission window and the hot tenant's hits would keep
    // it open for everyone.
    let shared = SharedPlanCache::with_shards(256, 1, Some(cfg));
    // Each tenant's session resolves its own admission handle once, the
    // way `Session::with_shared_tenant` does.
    let hot_adm = shared.admission_handle(0);
    let cold_adm = shared.admission_handle(1);
    let mut rng = StdRng::seed_from_u64(0x7E2A);
    let hot_tile = SpikeMatrix::random(4, 16, 0.4, &mut rng);
    let hot_hash = hash_tile(&hot_tile);
    let plan = |t: &SpikeMatrix| Arc::new(TileMeta::build(t, 0, 0));
    shared.insert(hot_hash, &hot_tile, plan(&hot_tile), hot_adm.as_deref());
    let mut cold_bypassed = 0u64;
    let mut hot_inserted = 0u64;
    for i in 0..64 {
        // Tenant 0 replays one tile forever: a 100 % hit stream.
        assert!(shared
            .lookup(hot_hash, &hot_tile, hot_adm.as_deref())
            .is_some());
        // Tenant 1 never repeats a tile: a 0 % hit stream.
        let cold = SpikeMatrix::random(4, 16, 0.4, &mut rng);
        let cold_hash = hash_tile(&cold);
        assert!(shared
            .lookup(cold_hash, &cold, cold_adm.as_deref())
            .is_none());
        let (_, outcome) = shared.insert(cold_hash, &cold, plan(&cold), cold_adm.as_deref());
        cold_bypassed += u64::from(outcome == InsertOutcome::Bypassed);
        // The hot tenant occasionally plans something new of its own; its
        // window must stay open despite the cold tenant's misses.
        if i % 8 == 7 {
            let fresh = SpikeMatrix::random(4, 16, 0.6, &mut rng);
            let (_, o) = shared.insert(hash_tile(&fresh), &fresh, plan(&fresh), hot_adm.as_deref());
            hot_inserted += u64::from(o == InsertOutcome::Inserted);
        }
    }
    assert!(
        cold_bypassed > 0,
        "cold tenant must close its own admission: {:?}",
        shared.stats()
    );
    assert_eq!(
        hot_inserted,
        8,
        "hot tenant must keep inserting: {:?}",
        shared.stats()
    );
    assert_eq!(shared.stats().tenants, 2);
}

#[test]
fn sharded_export_interleaves_recency_and_respects_n() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let shared = SharedPlanCache::with_shards(256, 4, None);
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..32 {
        let t = SpikeMatrix::random(8, 16, 0.5, &mut rng);
        let h = hash_tile(&t);
        if shared.lookup(h, &t, None).is_none() {
            shared.insert(h, &t, Arc::new(TileMeta::build(&t, 0, 0)), None);
        }
    }
    let tile = TileShape::new(8, 16);
    let resident = shared.len();
    assert!(resident > 8);
    let full = shared.export_hottest(usize::MAX);
    assert_eq!(full.len(), resident);
    let capped = shared.export_hottest(5);
    assert_eq!(capped.len(), 5);
    // Re-importing a full export into the same cache is a no-op: every key
    // is already resident.
    let report = shared.import(&full, tile);
    assert_eq!(report.restored, 0);
    assert_eq!(report.skipped_duplicate, resident);
    // A fresh cache with a different shard layout restores everything.
    let other = SharedPlanCache::with_shards(256, 8, None);
    let report = other.import(&full, tile);
    assert_eq!(report.restored, resident);
    assert_eq!(other.len(), resident);
    assert_eq!(other.stats().restored_resident, resident);
    // Declaring a different serving shape drops everything instead of
    // planting plans the executor could misindex on a key collision.
    let misfit = SharedPlanCache::with_shards(256, 8, None);
    let report = misfit.import(&full, TileShape::new(16, 8));
    assert_eq!(report.skipped_shape, resident);
    assert_eq!(report.restored, 0);
    assert!(misfit.is_empty());
}

#[test]
fn tenants_are_counted_even_without_an_admission_policy() {
    // Regression: the tenant table used to exist only when an admission
    // policy was configured, so every no-admission deployment reported
    // `tenants: 0` in its stats no matter how many streams registered.
    let shared = SharedPlanCache::with_shards(256, 4, None);
    assert_eq!(shared.stats().tenants, 0);
    let h0 = shared.admission_handle(7);
    let h1 = shared.admission_handle(8);
    let h1_again = shared.admission_handle(8);
    // No policy means no admission windows — lookups stay un-gated…
    assert!(h0.is_none() && h1.is_none() && h1_again.is_none());
    // …but registration is still tracked, de-duplicated per tenant id.
    assert_eq!(shared.stats().tenants, 2);
    // And the liveness-only entries still age out under GC.
    shared.gc_tenants(0);
    assert_eq!(shared.gc_tenants(0), 2);
    assert_eq!(shared.stats().tenants, 0);
}

#[test]
fn recommended_shards_is_bounded_and_capacity_aware() {
    // Always a power of two in [1, 64], and never more than one shard per
    // 8 plans of capacity (tiny caches keep a single lock).
    for capacity in [0, 1, 7, 8, 64, 1024, 1 << 20] {
        let s = SharedPlanCache::recommended_shards(capacity);
        assert!(s.is_power_of_two(), "capacity {capacity}: {s}");
        assert!((1..=64).contains(&s), "capacity {capacity}: {s}");
        let by_capacity = (capacity / 8).max(1).next_power_of_two();
        assert!(s <= by_capacity, "capacity {capacity}: {s}");
    }
    assert_eq!(SharedPlanCache::recommended_shards(1), 1);
    assert_eq!(SharedPlanCache::recommended_shards(8), 1);
    // The derived default is what `new` actually uses.
    let c = SharedPlanCache::new(4096);
    assert_eq!(c.shard_count(), SharedPlanCache::recommended_shards(4096));
}

#[test]
fn shard_rounding_is_a_power_of_two() {
    assert_eq!(SharedPlanCache::with_shards(16, 3, None).shard_count(), 4);
    assert_eq!(SharedPlanCache::with_shards(16, 0, None).shard_count(), 1);
    assert_eq!(SharedPlanCache::with_shards(0, 8, None).capacity(), 0);
    // Effective capacity is the per-shard rounding times the shard count,
    // so residency can never exceed what capacity() advertises.
    let c = SharedPlanCache::with_shards(10, 8, None);
    assert_eq!(c.capacity(), 16);
    assert_eq!(c.stats().capacity, 16);
    assert_eq!(SharedPlanCache::with_shards(4096, 8, None).capacity(), 4096);
}

//! Unit tests (kept beside the module, out of its main file).

use super::super::cache::hash_tile;
use super::*;
use spikemat::TileShape;

fn tile_of(rows: &[&[u8]]) -> SpikeMatrix {
    SpikeMatrix::from_rows_of_bits(rows)
}

#[test]
fn shared_cache_dedupes_racing_inserts() {
    let shared = SharedPlanCache::with_shards(64, 4, None);
    let t = tile_of(&[&[1, 0, 1], &[1, 1, 0]]);
    let h = hash_tile(&t);
    let m1 = Arc::new(TileMeta::build(&t, 0, 0));
    let m2 = Arc::new(TileMeta::build(&t, 0, 0));
    let (kept1, o1) = shared.insert(h, &t, Arc::clone(&m1));
    assert_eq!(o1, InsertOutcome::Inserted);
    assert!(Arc::ptr_eq(&kept1, &m1));
    // A racing planner offering the same tile gets the resident plan, and
    // the race is ledgered as a dedup, not an admission bypass.
    let (kept2, o2) = shared.insert(h, &t, m2);
    assert_eq!(o2, InsertOutcome::Deduplicated);
    assert!(Arc::ptr_eq(&kept2, &m1));
    assert_eq!(shared.len(), 1);
    let s = shared.stats();
    assert_eq!(s.insertions, 1);
    assert_eq!(s.bypasses, 0);
    assert_eq!(s.dedups, 1);
    assert_eq!(s.resident, 1);
}

#[test]
fn shared_cache_spreads_and_clears() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let shared = SharedPlanCache::with_shards(256, 8, None);
    assert_eq!(shared.shard_count(), 8);
    let mut rng = StdRng::seed_from_u64(11);
    let shape = TileShape::new(8, 16);
    let mut resident = 0;
    for _ in 0..64 {
        let t = SpikeMatrix::random(shape.m, shape.k, 0.5, &mut rng);
        let h = hash_tile(&t);
        if shared.lookup(h, &t).is_none() {
            let (_, o) = shared.insert(h, &t, Arc::new(TileMeta::build(&t, 0, 0)));
            if o != InsertOutcome::Bypassed {
                resident += 1;
            }
        }
    }
    assert_eq!(shared.len(), resident);
    assert!(shared.stats().hits + shared.stats().misses >= 64);
    shared.clear();
    assert!(shared.is_empty());
    assert_eq!(shared.stats().resident, 0);
}

#[test]
fn shard_rounding_is_a_power_of_two() {
    assert_eq!(SharedPlanCache::with_shards(16, 3, None).shard_count(), 4);
    assert_eq!(SharedPlanCache::with_shards(16, 0, None).shard_count(), 1);
    assert_eq!(SharedPlanCache::with_shards(0, 8, None).capacity(), 0);
    // Effective capacity is the per-shard rounding times the shard count,
    // so residency can never exceed what capacity() advertises.
    let c = SharedPlanCache::with_shards(10, 8, None);
    assert_eq!(c.capacity(), 16);
    assert_eq!(c.stats().capacity, 16);
    assert_eq!(SharedPlanCache::with_shards(4096, 8, None).capacity(), 4096);
}

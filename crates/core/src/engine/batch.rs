//! Cross-trace batch scheduling: interleaving many logical GeMM streams
//! through one [`SharedPlanCache`] so concurrent requests amortize each
//! other's planning work.
//!
//! Spike tiles repeat not just across the timesteps of one request but
//! across concurrent requests running the same model: whichever session
//! plans a tile first warms it for every other session. The scheduler owns
//! one [`Session`] per concurrent trace (recycled across [`run`] calls, so
//! per-session pools stay warm) and decides the interleaving order:
//!
//! * [`BatchPolicy::RoundRobin`] — one step per trace per round; fair, and
//!   keeps sibling traces in temporal lockstep so their shared tiles are
//!   resident when the next trace arrives at the same timestep.
//! * [`BatchPolicy::CacheAffinity`] — greedy: each scheduling decision
//!   probes the first tiles of every runnable trace's next GeMM against the
//!   shared cache and runs the trace with the most resident plans,
//!   breaking ties toward the lowest index. Under eviction pressure this
//!   executes work while its plans are still hot instead of round-robining
//!   past them.
//!
//! [`run`]: BatchScheduler::run

use std::sync::Arc;

use spikemat::gemm::{OutputMatrix, WeightMatrix};
use spikemat::SpikeMatrix;

use super::cache::hash_tile;
use super::session::Session;
use super::shared::SharedPlanCache;
use super::snapshot::{ImportReport, PlanSnapshot};
use super::stats::EngineStats;
use super::{Element, EngineConfig};

/// One step of a logical trace: a spiking GeMM to execute.
pub type TraceStep<'a, T> = (&'a SpikeMatrix, &'a WeightMatrix<T>);

/// How the scheduler interleaves runnable traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// One step per trace per round, in trace order.
    #[default]
    RoundRobin,
    /// Greedy: run the trace whose next GeMM has the most plans already
    /// resident in the shared cache.
    CacheAffinity,
}

/// Tiles probed per trace per scheduling decision under
/// [`BatchPolicy::CacheAffinity`].
const AFFINITY_PROBES: usize = 4;

/// Interleaves multiple traces through sessions sharing one plan cache.
///
/// Sessions (and their pooled buffers) persist across [`BatchScheduler::run`]
/// calls; lane `i` always maps to session `i` *and* to admission tenant
/// `i`, so a caller replaying the same tenant on the same lane keeps its
/// warm state and its own admission window.
///
/// ```
/// use prosperity_core::engine::{BatchPolicy, BatchScheduler, EngineConfig};
/// use spikemat::gemm::{spiking_gemm, WeightMatrix};
/// use spikemat::SpikeMatrix;
///
/// // Two tenants replay the same spikes against their own weights.
/// let spikes = SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[0, 1, 1]]);
/// let w0 = WeightMatrix::from_fn(3, 2, |r, c| (r + c) as i64);
/// let w1 = WeightMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as i64);
/// let traces = vec![vec![(&spikes, &w0)], vec![(&spikes, &w1)]];
///
/// let mut sched =
///     BatchScheduler::new(EngineConfig::default(), BatchPolicy::RoundRobin);
/// sched.run(&traces, |lane, _step, out| {
///     let want = if lane == 0 { &w0 } else { &w1 };
///     assert_eq!(out, &spiking_gemm(&spikes, want));
/// });
/// // Lane 1 reused lane 0's plans: plan sharing is keyed on spikes only.
/// assert_eq!(sched.session_stats()[1].cache_misses, 0);
/// ```
#[derive(Debug)]
pub struct BatchScheduler<T = i64> {
    config: EngineConfig,
    policy: BatchPolicy,
    shared: Arc<SharedPlanCache>,
    sessions: Vec<Session<T>>,
    /// Pooled per-lane output buffers.
    outs: Vec<OutputMatrix<T>>,
    /// Scratch tile for affinity probes.
    probe_buf: SpikeMatrix,
}

impl<T: Element> BatchScheduler<T> {
    /// Creates a scheduler with a fresh shared cache sized by
    /// `config.cache_capacity` (and `config.admission`, applied per shard).
    pub fn new(config: EngineConfig, policy: BatchPolicy) -> Self {
        let shared = Arc::new(SharedPlanCache::with_shards(
            config.cache_capacity,
            SharedPlanCache::DEFAULT_SHARDS,
            config.admission,
        ));
        Self::with_cache(config, policy, shared)
    }

    /// Creates a scheduler over an existing shared cache (e.g. one also
    /// used by sessions outside this scheduler).
    pub fn with_cache(
        config: EngineConfig,
        policy: BatchPolicy,
        shared: Arc<SharedPlanCache>,
    ) -> Self {
        Self {
            config,
            policy,
            shared,
            sessions: Vec::new(),
            outs: Vec::new(),
            probe_buf: SpikeMatrix::zeros(0, 0),
        }
    }

    /// [`BatchScheduler::new`] pre-warmed from a snapshot exported by a
    /// previous process ([`SharedPlanCache::export_hottest`] or
    /// `Session::export_snapshot`), so the fleet's first pass starts at a
    /// warm hit rate. Returns the scheduler plus what the import did (a
    /// snapshot larger than the cache degrades to a partial restore;
    /// entries not matching `config.tile` are dropped as
    /// [`ImportReport::skipped_shape`]).
    pub fn warm_start(
        config: EngineConfig,
        policy: BatchPolicy,
        snapshot: &PlanSnapshot,
    ) -> (Self, ImportReport) {
        let sched = Self::new(config, policy);
        let report = sched.shared.import(snapshot, config.tile);
        (sched, report)
    }

    /// The scheduling policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Switches the scheduling policy (takes effect on the next run).
    pub fn set_policy(&mut self, policy: BatchPolicy) {
        self.policy = policy;
    }

    /// The shared plan cache all lanes plan through.
    pub fn shared_cache(&self) -> &Arc<SharedPlanCache> {
        &self.shared
    }

    /// Per-lane session statistics (one entry per lane ever used).
    pub fn session_stats(&self) -> Vec<EngineStats> {
        self.sessions.iter().map(Session::stats).collect()
    }

    /// All lanes' statistics merged into one fleet-wide row.
    pub fn merged_stats(&self) -> EngineStats {
        let stats = self.session_stats();
        EngineStats::merged(stats.iter())
    }

    /// Zeroes every lane's statistics counters.
    pub fn reset_stats(&mut self) {
        for s in &mut self.sessions {
            s.reset_stats();
        }
    }

    fn ensure_lanes(&mut self, n: usize) {
        while self.sessions.len() < n {
            // Lane index doubles as the admission tenant id, so each
            // trace's stream gets its own sliding window.
            let tenant = self.sessions.len() as u64;
            self.sessions.push(Session::with_shared_tenant(
                self.config,
                Arc::clone(&self.shared),
                tenant,
            ));
            self.outs.push(OutputMatrix::zeros(0, 0));
        }
    }

    /// Runs every trace to completion on one thread, interleaving steps
    /// according to the policy. `sink` observes `(trace, step, output)` for
    /// every executed GeMM before the lane's output buffer is recycled.
    ///
    /// Results are bit-identical to running each trace alone through a
    /// private-cache session: plans are content-addressed, so sharing only
    /// changes *who* planned a tile, never what the plan computes.
    pub fn run<'a, S, F>(&mut self, traces: &[S], mut sink: F)
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]>,
        F: FnMut(usize, usize, &OutputMatrix<T>),
    {
        self.ensure_lanes(traces.len());
        let mut cursors = vec![0usize; traces.len()];
        let mut remaining: usize = traces.iter().map(|t| t.as_ref().len()).sum();
        while remaining > 0 {
            match self.policy {
                BatchPolicy::RoundRobin => {
                    for (i, trace) in traces.iter().enumerate() {
                        let trace = trace.as_ref();
                        if cursors[i] >= trace.len() {
                            continue;
                        }
                        self.step(i, cursors[i], trace, &mut sink);
                        cursors[i] += 1;
                        remaining -= 1;
                    }
                }
                BatchPolicy::CacheAffinity => {
                    let pick = self.pick_by_affinity(traces, &cursors);
                    let trace = traces[pick].as_ref();
                    self.step(pick, cursors[pick], trace, &mut sink);
                    cursors[pick] += 1;
                    remaining -= 1;
                }
            }
        }
    }

    /// Executes step `step` of `trace` on lane `lane`.
    fn step<'a, F>(&mut self, lane: usize, step: usize, trace: &[TraceStep<'a, T>], sink: &mut F)
    where
        T: 'a,
        F: FnMut(usize, usize, &OutputMatrix<T>),
    {
        let (spikes, weights) = trace[step];
        let out = &mut self.outs[lane];
        self.sessions[lane].gemm_into(spikes, weights, out);
        sink(lane, step, out);
    }

    /// Greedy choice: the runnable trace whose next GeMM has the most
    /// probed tiles resident in the shared cache (ties → lowest index).
    fn pick_by_affinity<'a, S>(&mut self, traces: &[S], cursors: &[usize]) -> usize
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]>,
    {
        let mut best = usize::MAX;
        let mut best_score = -1i64;
        for (i, trace) in traces.iter().enumerate() {
            let trace = trace.as_ref();
            if cursors[i] >= trace.len() {
                continue;
            }
            let score = self.affinity(trace[cursors[i]].0);
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        debug_assert_ne!(best, usize::MAX, "no runnable trace");
        best
    }

    /// Number of this matrix's first [`AFFINITY_PROBES`] tiles resident in
    /// the shared cache (recency and admission are untouched).
    fn affinity(&mut self, spikes: &SpikeMatrix) -> i64 {
        let shape = self.config.tile;
        let (gm, gk) = shape.grid(spikes.rows(), spikes.cols());
        let probes = (gm * gk).min(AFFINITY_PROBES);
        let mut score = 0;
        for t in 0..probes {
            let (ti, tj) = (t / gk, t % gk);
            spikes.submatrix_into(
                ti * shape.m,
                tj * shape.k,
                shape.m,
                shape.k,
                &mut self.probe_buf,
            );
            let hash = hash_tile(&self.probe_buf);
            score += i64::from(self.shared.peek(hash, &self.probe_buf));
        }
        score
    }

    /// Runs every trace to completion with one worker thread per trace,
    /// all planning through the shared cache. `sink` is called from worker
    /// threads and must synchronize its own state.
    ///
    /// Bit-identical to [`BatchScheduler::run`] (and to serial per-trace
    /// execution): the only cross-thread state is the content-addressed
    /// cache, and plans are deterministic in the tile bits.
    #[cfg(feature = "parallel")]
    pub fn run_concurrent<'a, S, F>(&mut self, traces: &[S], sink: F)
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]> + Sync,
        F: Fn(usize, usize, &OutputMatrix<T>) + Sync,
    {
        self.ensure_lanes(traces.len());
        let sink = &sink;
        std::thread::scope(|scope| {
            for (lane, (session, trace)) in self.sessions.iter_mut().zip(traces).enumerate() {
                scope.spawn(move || {
                    let mut out = OutputMatrix::zeros(0, 0);
                    for (step, &(spikes, weights)) in trace.as_ref().iter().enumerate() {
                        session.gemm_into(spikes, weights, &mut out);
                        sink(lane, step, &out);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikemat::gemm::spiking_gemm;
    use spikemat::TileShape;

    fn traces_for_test() -> (Vec<SpikeMatrix>, WeightMatrix<i64>) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let base = SpikeMatrix::random(32, 16, 0.3, &mut rng);
        // Three near-identical "tenants" of the same matrix.
        let mut tenants = vec![base.clone(), base.clone(), base];
        tenants[1].set(0, 0, true);
        tenants[2].set(31, 15, true);
        let w = WeightMatrix::from_fn(16, 4, |r, c| (r * 3 + c) as i64 - 5);
        (tenants, w)
    }

    #[test]
    fn round_robin_covers_every_step_exactly() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w), (t, &w)]).collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
        );
        let mut seen = vec![0usize; traces.len()];
        sched.run(&traces, |lane, step, out| {
            assert_eq!(
                out,
                &spiking_gemm(&tenants[lane], &w),
                "lane {lane} step {step}"
            );
            seen[lane] += 1;
        });
        assert_eq!(seen, vec![2, 2, 2]);
        // Tenant 1's second pass over shared tiles must hit.
        assert!(sched.merged_stats().cache_hits > 0);
        assert_eq!(sched.session_stats().len(), 3);
    }

    #[test]
    fn affinity_policy_is_still_exhaustive_and_exact() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> = tenants
            .iter()
            .map(|t| vec![(t, &w), (t, &w), (t, &w)])
            .collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::CacheAffinity,
        );
        let mut count = 0;
        sched.run(&traces, |lane, _, out| {
            assert_eq!(out, &spiking_gemm(&tenants[lane], &w));
            count += 1;
        });
        assert_eq!(count, 9);
        assert_eq!(sched.policy(), BatchPolicy::CacheAffinity);
    }

    #[test]
    fn lanes_and_buffers_persist_across_runs() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> = tenants.iter().map(|t| vec![(t, &w)]).collect();
        let mut sched = BatchScheduler::<i64>::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
        );
        sched.run(&traces, |_, _, _| {});
        let first_misses = sched.merged_stats().cache_misses;
        assert!(first_misses > 0);
        // Second run of the same tenants: the shared cache is warm.
        sched.run(&traces, |_, _, _| {});
        assert_eq!(sched.merged_stats().cache_misses, first_misses);
        sched.reset_stats();
        assert_eq!(sched.merged_stats(), EngineStats::default());
        assert!(!sched.shared_cache().is_empty());
    }

    #[test]
    fn ragged_trace_lengths_complete() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> = vec![
            vec![(&tenants[0], &w); 3],
            vec![],
            vec![(&tenants[2], &w); 1],
        ];
        for policy in [BatchPolicy::RoundRobin, BatchPolicy::CacheAffinity] {
            let mut sched =
                BatchScheduler::new(EngineConfig::new(TileShape::new(8, 8), 64), policy);
            let mut per_lane = vec![0usize; 3];
            sched.run(&traces, |lane, _, _| per_lane[lane] += 1);
            assert_eq!(per_lane, vec![3, 0, 1], "{policy:?}");
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn concurrent_run_matches_serial_oracle() {
        use std::sync::Mutex;
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w), (t, &w)]).collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 64),
            BatchPolicy::RoundRobin,
        );
        let got: Mutex<Vec<Vec<Option<OutputMatrix<i64>>>>> =
            Mutex::new(vec![vec![None, None], vec![None, None], vec![None, None]]);
        sched.run_concurrent(&traces, |lane, step, out| {
            got.lock().unwrap()[lane][step] = Some(out.clone());
        });
        let got = got.into_inner().unwrap();
        for (lane, tenant) in tenants.iter().enumerate() {
            let want = spiking_gemm(tenant, &w);
            for (step, slot) in got[lane].iter().enumerate() {
                assert_eq!(slot.as_ref(), Some(&want), "lane {lane} step {step}");
            }
        }
    }
}

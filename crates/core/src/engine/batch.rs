//! Cross-trace batch scheduling: interleaving many logical GeMM streams
//! through one [`SharedPlanCache`] so concurrent requests amortize each
//! other's planning work — with QoS policies deciding *which* trace runs
//! next.
//!
//! Spike tiles repeat not just across the timesteps of one request but
//! across concurrent requests running the same model: whichever session
//! plans a tile first warms it for every other session. The scheduler owns
//! one [`Session`] per concurrent trace (recycled across [`run`] calls, so
//! per-session pools stay warm) and decides the interleaving order:
//!
//! * [`BatchPolicy::RoundRobin`] — one step per trace per round; fair, and
//!   keeps sibling traces in temporal lockstep so their shared tiles are
//!   resident when the next trace arrives at the same timestep.
//! * [`BatchPolicy::CacheAffinity`] — greedy: each scheduling decision
//!   probes the first tiles of every runnable trace's next GeMM against the
//!   shared cache and runs the trace with the most resident plans,
//!   breaking ties toward the lowest index. Under eviction pressure this
//!   executes work while its plans are still hot instead of round-robining
//!   past them.
//! * [`BatchPolicy::Weighted`] — deficit round robin: every lane accrues
//!   its weight in credits per round and runs one step per credit, so a
//!   weight-3 tenant gets 3× the steps of a weight-1 tenant while both are
//!   runnable. Credits carry the deficit across rounds.
//! * [`BatchPolicy::Deadline`] — earliest-deadline-first over per-trace
//!   step budgets (the global step count by which the trace should have
//!   finished), with a starvation guard so budget-less background traces
//!   still make progress.
//!
//! Scheduling order never changes *results* — plans are content-addressed
//! and pure in the tile bits — only latency distribution; every policy is
//! property-tested bit-identical to the serial private-cache oracle in
//! `tests/serving.rs`. What a run did is recorded in a
//! [`SchedulerStats`] (per-lane steps, completion steps, credits, deadline
//! misses).
//!
//! **Scheduling quantum.** By default each scheduler visit executes one
//! whole GeMM. With [`BatchScheduler::set_slice_quantum`] the quantum
//! drops below the GeMM: a visit executes at most that many *row-tiles*
//! via the session's resumable cursor ([`Session::gemm_slice`]), then
//! yields — so every policy can preempt a monster GeMM mid-flight, and
//! `Weighted`/`Deadline` charge credits/budgets per slice executed rather
//! than per whole GeMM. The sink still fires exactly once per GeMM, on
//! its completing slice. See the `SchedulerStats` docs for how the global
//! clock (and thus deadlines and completion steps) is denominated in
//! sliced mode.
//!
//! **Fault tolerance.** A panic inside one lane's step (planning,
//! execution, or the caller's sink) is caught at the step boundary and
//! *quarantines* that lane — the fault is recorded as a [`LaneFault`],
//! the lane leaves the scheduling loop, and every surviving lane keeps
//! serving, still bit-identical to the oracle (the only cross-lane state
//! is the content-addressed shared cache, whose poisoned shards recover
//! by resetting — see [`SharedPlanCache`]). Quarantine persists across
//! [`run`] calls until [`BatchScheduler::begin_batch`] retires the lanes;
//! [`SchedulerStats::lane_faults`] counts the quarantined lanes and
//! [`SchedulerStats::shard_resets`] the shard recoveries.
//!
//! [`run`]: BatchScheduler::run

use std::sync::Arc;

use spikemat::gemm::{OutputMatrix, WeightMatrix};
use spikemat::SpikeMatrix;

use super::cache::hash_tile;
use super::session::{Session, SliceRun};
use super::shared::SharedPlanCache;
use super::snapshot::{ImportReport, PlanSnapshot};
use super::stats::{EngineStats, SchedulerStats};
use super::{Element, EngineConfig};

/// One step of a logical trace: a spiking GeMM to execute.
pub type TraceStep<'a, T> = (&'a SpikeMatrix, &'a WeightMatrix<T>);

/// Record of a caught lane panic: which lane, at which trace-local step,
/// and the panic payload (when it was a string). The lane is quarantined —
/// skipped by every subsequent [`BatchScheduler::run`] — until
/// [`BatchScheduler::begin_batch`] retires it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneFault {
    /// Lane (trace index) that panicked.
    pub lane: usize,
    /// Trace-local step that was executing when the panic unwound.
    pub step: usize,
    /// Stringified panic payload (`"non-string panic payload"` when the
    /// payload was not a `&str`/`String`).
    pub reason: String,
}

/// Best-effort stringification of a caught panic payload.
fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// How the scheduler interleaves runnable traces.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BatchPolicy {
    /// One step per trace per round, in trace order.
    #[default]
    RoundRobin,
    /// Greedy: run the trace whose next GeMM has the most plans already
    /// resident in the shared cache.
    CacheAffinity,
    /// Deficit round robin: lane `i` accrues `weights[i]` credits per round
    /// and runs one step per credit, so a weight-`w` tenant receives `w`×
    /// the steps of a weight-1 tenant while both are runnable. Lanes beyond
    /// the vector (and zero weights, which could never be scheduled) default
    /// to weight 1.
    Weighted {
        /// Per-lane scheduling weight, indexed by lane.
        weights: Vec<u32>,
    },
    /// Earliest-deadline-first: lane `i` should finish within `budgets[i]`
    /// global steps (across all lanes); each decision runs the runnable
    /// lane with the smallest budget. Lanes beyond the vector have no
    /// deadline and are scheduled last — except that the starvation guard
    /// forces a step for any lane that has waited
    /// [`DEADLINE_STARVATION_GUARD`] steps, so they cannot be starved
    /// forever. Completions later than the budget are counted as
    /// [`SchedulerStats::deadline_misses`].
    Deadline {
        /// Per-lane step budget (deadline in global executed steps),
        /// indexed by lane.
        budgets: Vec<u64>,
    },
}

/// Tiles probed per trace per scheduling decision under
/// [`BatchPolicy::CacheAffinity`].
const AFFINITY_PROBES: usize = 4;

/// Steps a runnable lane may wait under [`BatchPolicy::Deadline`] before
/// the scheduler forces it a step regardless of its deadline rank — the
/// starvation guard for budget-less (or latest-deadline) traces behind a
/// long stream of tighter deadlines.
pub const DEADLINE_STARVATION_GUARD: u64 = 128;

/// Per-run scheduling state, resolved from the policy at the top of
/// [`BatchScheduler::run`] so the loop below never re-inspects the policy
/// enum (and so lane-count-dependent vectors are sized exactly once).
enum PolicyState {
    RoundRobin,
    CacheAffinity,
    Weighted {
        /// Effective per-lane weight (defaulted and zero-clamped).
        weights: Vec<u64>,
        /// Deficit credit balance per lane.
        credits: Vec<u64>,
    },
    Deadline {
        /// Effective per-lane deadline (defaulted to `u64::MAX`).
        deadlines: Vec<u64>,
        /// Steps since each lane last ran (starvation guard input).
        waits: Vec<u64>,
    },
}

impl PolicyState {
    fn new(policy: &BatchPolicy, lanes: usize) -> Self {
        match policy {
            BatchPolicy::RoundRobin => PolicyState::RoundRobin,
            BatchPolicy::CacheAffinity => PolicyState::CacheAffinity,
            BatchPolicy::Weighted { weights } => PolicyState::Weighted {
                weights: (0..lanes)
                    .map(|i| u64::from(weights.get(i).copied().unwrap_or(1).max(1)))
                    .collect(),
                credits: vec![0; lanes],
            },
            BatchPolicy::Deadline { budgets } => PolicyState::Deadline {
                deadlines: (0..lanes)
                    .map(|i| budgets.get(i).copied().unwrap_or(u64::MAX))
                    .collect(),
                waits: vec![0; lanes],
            },
        }
    }
}

/// Interleaves multiple traces through sessions sharing one plan cache.
///
/// Sessions (and their pooled buffers) persist across [`BatchScheduler::run`]
/// calls; lane `i` always maps to session `i` *and* to that session's
/// admission tenant id, so a caller replaying the same tenant on the same
/// lane keeps its warm state and its own admission window. When the *next*
/// run serves a different tenant set, call [`BatchScheduler::begin_batch`]
/// (or [`begin_batch_as`](BatchScheduler::begin_batch_as) for explicit
/// tenant ids) first — otherwise the new traces inherit the previous
/// tenants' admission windows and per-lane stats.
///
/// ```
/// use prosperity_core::engine::{BatchPolicy, BatchScheduler, EngineConfig};
/// use spikemat::gemm::{spiking_gemm, WeightMatrix};
/// use spikemat::SpikeMatrix;
///
/// // Two tenants replay the same spikes against their own weights.
/// let spikes = SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[0, 1, 1]]);
/// let w0 = WeightMatrix::from_fn(3, 2, |r, c| (r + c) as i64);
/// let w1 = WeightMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as i64);
/// let traces = vec![vec![(&spikes, &w0)], vec![(&spikes, &w1)]];
///
/// let mut sched =
///     BatchScheduler::new(EngineConfig::default(), BatchPolicy::RoundRobin);
/// sched.run(&traces, |lane, _step, out| {
///     let want = if lane == 0 { &w0 } else { &w1 };
///     assert_eq!(out, &spiking_gemm(&spikes, want));
/// });
/// // Lane 1 reused lane 0's plans: plan sharing is keyed on spikes only.
/// assert_eq!(sched.session_stats()[1].cache_misses, 0);
/// ```
#[derive(Debug)]
pub struct BatchScheduler<T = i64> {
    config: EngineConfig,
    policy: BatchPolicy,
    shared: Arc<SharedPlanCache>,
    sessions: Vec<Session<T>>,
    /// Admission tenant id the next freshly created lane receives; advances
    /// monotonically so [`BatchScheduler::begin_batch`] mints ids no
    /// previous batch ever used.
    next_tenant: u64,
    /// Pooled per-lane output buffers (kept across `begin_batch`, which
    /// only retires sessions).
    outs: Vec<OutputMatrix<T>>,
    /// Scratch tile for affinity probes.
    probe_buf: SpikeMatrix,
    /// Scheduling record of the last [`BatchScheduler::run`] call.
    sched_stats: SchedulerStats,
    /// Per-lane quarantine slot: `Some` after a caught panic, until
    /// [`BatchScheduler::begin_batch`] retires the lanes.
    quarantine: Vec<Option<LaneFault>>,
    /// Max row-tiles per scheduler visit; 0 = whole-GeMM quantum.
    slice_quantum: usize,
}

impl<T: Element> BatchScheduler<T> {
    /// Creates a scheduler with a fresh shared cache sized by
    /// `config.cache_capacity` (and `config.admission`, applied per
    /// tenant). The cache's shard count is derived from the host's
    /// parallelism and the capacity ([`SharedPlanCache::recommended_shards`]);
    /// build the cache explicitly and use [`BatchScheduler::with_cache`] to
    /// pin a specific shard count.
    pub fn new(config: EngineConfig, policy: BatchPolicy) -> Self {
        let shared = Arc::new(SharedPlanCache::with_shards(
            config.cache_capacity,
            SharedPlanCache::recommended_shards(config.cache_capacity),
            config.admission,
        ));
        Self::with_cache(config, policy, shared)
    }

    /// Creates a scheduler over an existing shared cache (e.g. one also
    /// used by sessions outside this scheduler).
    pub fn with_cache(
        config: EngineConfig,
        policy: BatchPolicy,
        shared: Arc<SharedPlanCache>,
    ) -> Self {
        Self {
            config,
            policy,
            shared,
            sessions: Vec::new(),
            next_tenant: 0,
            outs: Vec::new(),
            probe_buf: SpikeMatrix::zeros(0, 0),
            sched_stats: SchedulerStats::default(),
            quarantine: Vec::new(),
            slice_quantum: 0,
        }
    }

    /// Builder form of [`BatchScheduler::set_slice_quantum`].
    #[must_use]
    pub fn with_slice_quantum(mut self, quantum: usize) -> Self {
        self.slice_quantum = quantum;
        self
    }

    /// The scheduling quantum in row-tiles (0 = whole GeMMs).
    pub fn slice_quantum(&self) -> usize {
        self.slice_quantum
    }

    /// Sets the scheduling quantum: each scheduler visit executes at most
    /// `quantum` row-tiles of the chosen lane's current GeMM (resuming it
    /// across visits via the session's [`Session::gemm_slice`] cursor), or
    /// the whole GeMM when `quantum == 0` (the default).
    ///
    /// A sub-GeMM quantum makes preemption tile-granular: round-robin
    /// interleaves row-tiles instead of whole GeMMs, deficit-round-robin
    /// shares become fine-grained, and EDF can take a monster GeMM off the
    /// core between row-tiles. Outputs are bit-identical under any quantum
    /// — slicing partitions work, never reorders accumulation — but the
    /// global clock that `Deadline` budgets and
    /// [`SchedulerStats::completion_steps`] are denominated in counts
    /// scheduler visits, so with `quantum > 0` those units shrink from
    /// whole GeMMs to slices. Takes effect at the next scheduler visit.
    pub fn set_slice_quantum(&mut self, quantum: usize) {
        self.slice_quantum = quantum;
    }

    /// [`BatchScheduler::new`] pre-warmed from a snapshot exported by a
    /// previous process ([`SharedPlanCache::export_hottest`] or
    /// `Session::export_snapshot`), so the fleet's first pass starts at a
    /// warm hit rate. Returns the scheduler plus what the import did (a
    /// snapshot larger than the cache degrades to a partial restore;
    /// entries not matching `config.tile` are dropped as
    /// [`ImportReport::skipped_shape`]).
    pub fn warm_start(
        config: EngineConfig,
        policy: BatchPolicy,
        snapshot: &PlanSnapshot,
    ) -> (Self, ImportReport) {
        let sched = Self::new(config, policy);
        let report = sched.shared.import(snapshot, config.tile);
        (sched, report)
    }

    /// The engine configuration every lane session is built with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The scheduling policy.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Switches the scheduling policy (takes effect on the next run).
    pub fn set_policy(&mut self, policy: BatchPolicy) {
        self.policy = policy;
    }

    /// The shared plan cache all lanes plan through.
    pub fn shared_cache(&self) -> &Arc<SharedPlanCache> {
        &self.shared
    }

    /// Per-lane session statistics (one entry per lane of the current
    /// batch).
    pub fn session_stats(&self) -> Vec<EngineStats> {
        self.sessions.iter().map(Session::stats).collect()
    }

    /// All lanes' statistics merged into one fleet-wide row.
    pub fn merged_stats(&self) -> EngineStats {
        let stats = self.session_stats();
        EngineStats::merged(stats.iter())
    }

    /// Scheduling record of the last [`BatchScheduler::run`] call: per-lane
    /// step and completion counts, leftover DRR credits, deadline misses.
    /// (Rebuilt at the top of every `run`; [`BatchScheduler::run_concurrent`]
    /// does not interleave, so it clears this instead.)
    pub fn scheduler_stats(&self) -> &SchedulerStats {
        &self.sched_stats
    }

    /// Zeroes every lane's statistics counters **and** the shared cache's
    /// aggregate counters, so post-reset `merged_stats()` and
    /// `shared_cache().stats()` count the same traffic again (resetting
    /// only the lanes made every later comparison double-count the
    /// pre-reset lookups — the historical bug). Cache *contents* and
    /// residency are untouched. Note the shared side is visible to every
    /// holder of this cache: callers sharing it outside this scheduler
    /// should reset via [`SharedPlanCache::reset_stats`] at a quiesced
    /// point instead.
    pub fn reset_stats(&mut self) {
        for s in &mut self.sessions {
            s.reset_stats();
        }
        self.shared.reset_stats();
        self.sched_stats = SchedulerStats::default();
    }

    /// Retires every lane so the next [`BatchScheduler::run`] serves a
    /// *new* batch: fresh sessions, fresh per-lane [`EngineStats`], and
    /// freshly minted admission tenant ids that no previous batch used.
    ///
    /// Without this, lanes persist across runs by design (same-tenant
    /// replay keeps warm pools and its own admission window) — which means
    /// a second `run` with a *different* trace set would inherit the
    /// previous traces' admission windows and stats under the same lane
    /// ids. The shared plan cache (the expensive state) stays warm either
    /// way; only per-lane session state is rebuilt.
    pub fn begin_batch(&mut self) {
        self.sessions.clear();
        self.quarantine.clear();
    }

    /// The recorded faults of currently quarantined lanes, in lane order.
    /// Empty while every lane is healthy; cleared (with the lanes) by
    /// [`BatchScheduler::begin_batch`].
    pub fn quarantined(&self) -> Vec<LaneFault> {
        self.quarantine.iter().flatten().cloned().collect()
    }

    /// Whether `lane` is quarantined after a caught panic (such a lane is
    /// skipped by [`BatchScheduler::run`] until the next
    /// [`BatchScheduler::begin_batch`]).
    pub fn is_quarantined(&self, lane: usize) -> bool {
        self.quarantine.get(lane).is_some_and(Option::is_some)
    }

    /// [`BatchScheduler::begin_batch`] with an explicit tenant id per lane:
    /// lane `i` of the next run serves `tenants[i]` (admission window and
    /// all). Lanes beyond the slice — if the next run has more traces —
    /// get freshly minted ids, guaranteed distinct from every explicit id
    /// ever passed here.
    pub fn begin_batch_as(&mut self, tenants: &[u64]) {
        self.sessions.clear();
        self.quarantine.clear();
        for &tenant in tenants {
            self.next_tenant = self.next_tenant.max(tenant.saturating_add(1));
            self.sessions.push(Session::with_shared_tenant(
                self.config,
                Arc::clone(&self.shared),
                tenant,
            ));
        }
        while self.outs.len() < self.sessions.len() {
            self.outs.push(OutputMatrix::zeros(0, 0));
        }
    }

    /// The admission tenant id each current lane serves, in lane order.
    pub fn tenants(&self) -> Vec<u64> {
        self.sessions.iter().map(Session::tenant).collect()
    }

    pub(crate) fn ensure_lanes(&mut self, n: usize) {
        while self.sessions.len() < n {
            // Each lane's session carries its own admission tenant id, so
            // each trace's stream gets its own sliding window. Ids are
            // minted from a monotone counter (not the lane index) so a
            // `begin_batch` can never alias a previous batch's windows.
            let tenant = self.next_tenant;
            self.next_tenant += 1;
            self.sessions.push(Session::with_shared_tenant(
                self.config,
                Arc::clone(&self.shared),
                tenant,
            ));
        }
        while self.outs.len() < n {
            self.outs.push(OutputMatrix::zeros(0, 0));
        }
        if self.quarantine.len() < n {
            self.quarantine.resize_with(n, || None);
        }
    }

    /// Runs every trace to completion on one thread, interleaving steps
    /// according to the policy. `sink` observes `(trace, step, output)` for
    /// every executed GeMM before the lane's output buffer is recycled.
    ///
    /// Results are bit-identical to running each trace alone through a
    /// private-cache session: plans are content-addressed, so sharing only
    /// changes *who* planned a tile, never what the plan computes. The
    /// policy likewise only shapes latency; what a run did is recorded in
    /// [`BatchScheduler::scheduler_stats`].
    ///
    /// Exhausted traces leave the scheduling loop entirely (a live-lane
    /// list), so long-tail batches — one long trace among many finished
    /// ones — pay O(1) per step, not O(lanes).
    ///
    /// A panic inside a lane's step (planning, execution, or the caller's
    /// `sink`) does not abort the run: the lane is quarantined with a
    /// recorded [`LaneFault`] and the surviving lanes complete normally.
    /// Quarantined lanes (including ones from previous runs) are skipped —
    /// their sink is never called — until [`BatchScheduler::begin_batch`].
    pub fn run<'a, S, F>(&mut self, traces: &[S], mut sink: F)
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]>,
        F: FnMut(usize, usize, &OutputMatrix<T>),
    {
        self.ensure_lanes(traces.len());
        let mut cursors = vec![0usize; traces.len()];
        // Lanes with steps remaining, in lane order. Exhausted lanes are
        // removed so no policy ever re-scans them.
        let mut live: Vec<usize> = (0..traces.len())
            .filter(|&i| !traces[i].as_ref().is_empty() && self.quarantine[i].is_none())
            .collect();
        self.sched_stats = SchedulerStats {
            lane_steps: vec![0; traces.len()],
            lane_row_tiles: vec![0; traces.len()],
            credit_balances: vec![0; traces.len()],
            completion_steps: vec![0; traces.len()],
            ..SchedulerStats::default()
        };
        let mut state = PolicyState::new(&self.policy, traces.len());
        // Global executed-step clock (1-based after the first step), the
        // unit deadlines are expressed in.
        let mut t: u64 = 0;
        while !live.is_empty() {
            match &mut state {
                PolicyState::RoundRobin => {
                    live.retain(|&i| self.step_lane(i, &mut cursors, traces, &mut t, &mut sink));
                }
                PolicyState::CacheAffinity => {
                    let pos = self.pick_by_affinity(traces, &cursors, &live);
                    let lane = live[pos];
                    if !self.step_lane(lane, &mut cursors, traces, &mut t, &mut sink) {
                        live.remove(pos);
                    }
                }
                PolicyState::Weighted { weights, credits } => {
                    live.retain(|&i| {
                        credits[i] += weights[i];
                        let mut alive = true;
                        while credits[i] > 0 && alive {
                            credits[i] -= 1;
                            alive = self.step_lane(i, &mut cursors, traces, &mut t, &mut sink);
                        }
                        alive
                    });
                }
                PolicyState::Deadline { deadlines, waits } => {
                    // Starvation guard first, then earliest deadline
                    // (ties toward the lowest lane index).
                    let pos = live
                        .iter()
                        .position(|&i| waits[i] >= DEADLINE_STARVATION_GUARD)
                        .unwrap_or_else(|| {
                            live.iter()
                                .enumerate()
                                .min_by_key(|&(_, &i)| (deadlines[i], i))
                                .map(|(pos, _)| pos)
                                .expect("no runnable trace")
                        });
                    let lane = live[pos];
                    for &other in &live {
                        waits[other] += 1;
                    }
                    waits[lane] = 0;
                    if !self.step_lane(lane, &mut cursors, traces, &mut t, &mut sink) {
                        live.remove(pos);
                        // A quarantined lane never completed — score only
                        // real completions against the budget.
                        if self.sched_stats.completion_steps[lane] > 0 && t > deadlines[lane] {
                            self.sched_stats.deadline_misses += 1;
                        }
                    }
                }
            }
        }
        if let PolicyState::Weighted { credits, .. } = state {
            self.sched_stats.credit_balances = credits;
        }
        self.settle_fault_counters();
    }

    /// Fills the fault counters of [`BatchScheduler::scheduler_stats`] at
    /// the end of a run. Locking every shard (via `stats`) first settles
    /// any shard left poisoned by a caught panic, so the recovery — and
    /// its `shard_resets` increment — happens here deterministically
    /// rather than at an arbitrary later lock site.
    fn settle_fault_counters(&mut self) {
        self.sched_stats.lane_faults = self.quarantine.iter().flatten().count() as u64;
        if self.sched_stats.lane_faults > 0 {
            let _ = self.shared.stats();
        }
        self.sched_stats.shard_resets = self.shared.shard_resets();
    }

    /// Executes one scheduler visit of lane `i` — its next whole GeMM, or
    /// (with a sub-GeMM [`BatchScheduler::slice_quantum`]) the next slice
    /// of row-tiles of its current GeMM — advances the global clock, and
    /// records per-lane accounting. The lane's trace cursor advances (and
    /// `sink` fires) only on a GeMM's completing slice. Returns whether
    /// the lane still has work left — `false` also when the visit panicked
    /// and the lane was quarantined (cursors and clock do not advance; the
    /// step is recorded as the lane's [`LaneFault`], and a partially
    /// executed GeMM's output is never observed — `sink` had not fired).
    ///
    /// The visit body runs under `catch_unwind`. `AssertUnwindSafe` is a
    /// deliberate, audited choice: the states the closure can leave torn
    /// are this lane's session and output buffer — both unreachable after
    /// quarantine except through plain-counter stats reads — and the
    /// shared cache, whose poisoned shards recover by resetting
    /// ([`SharedPlanCache`] fault tolerance). A panicking caller `sink`
    /// vouches for its own captures by panicking into a scheduler that
    /// documents continuing.
    fn step_lane<'a, S, F>(
        &mut self,
        lane: usize,
        cursors: &mut [usize],
        traces: &[S],
        t: &mut u64,
        sink: &mut F,
    ) -> bool
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]>,
        F: FnMut(usize, usize, &OutputMatrix<T>),
    {
        let trace = traces[lane].as_ref();
        let step = cursors[lane];
        debug_assert!(step < trace.len(), "stepping an exhausted lane");
        let (spikes, weights) = trace[step];
        let session = &mut self.sessions[lane];
        let out = &mut self.outs[lane];
        let quantum = self.slice_quantum;
        let visited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            #[cfg(any(test, feature = "fault-injection"))]
            super::faults::maybe_panic_lane(lane, step);
            let slice = if quantum == 0 {
                session.gemm_into(spikes, weights, out);
                SliceRun {
                    row_tiles: session.planned_row_tiles(),
                    done: true,
                }
            } else {
                session.gemm_slice(spikes, weights, out, quantum)
            };
            if slice.done {
                sink(lane, step, out);
            }
            slice
        }));
        let slice = match visited {
            Ok(slice) => slice,
            Err(payload) => {
                self.quarantine[lane] = Some(LaneFault {
                    lane,
                    step,
                    reason: panic_reason(payload.as_ref()),
                });
                return false;
            }
        };
        *t += 1;
        self.sched_stats.lane_row_tiles[lane] += slice.row_tiles as u64;
        if !slice.done {
            return true;
        }
        cursors[lane] += 1;
        self.sched_stats.lane_steps[lane] += 1;
        if cursors[lane] >= trace.len() {
            self.sched_stats.completion_steps[lane] = *t;
            false
        } else {
            true
        }
    }

    /// Greedy choice over the live lanes: the one whose next GeMM has the
    /// most probed tiles resident in the shared cache (ties → lowest
    /// index). Returns a *position* into `live`.
    fn pick_by_affinity<'a, S>(&mut self, traces: &[S], cursors: &[usize], live: &[usize]) -> usize
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]>,
    {
        let mut best = usize::MAX;
        let mut best_score = -1i64;
        for (pos, &i) in live.iter().enumerate() {
            let trace = traces[i].as_ref();
            let score = self.affinity(trace[cursors[i]].0);
            if score > best_score {
                best_score = score;
                best = pos;
            }
        }
        debug_assert_ne!(best, usize::MAX, "no runnable trace");
        best
    }

    /// Number of this matrix's first [`AFFINITY_PROBES`] tiles resident in
    /// the shared cache (recency and admission are untouched).
    fn affinity(&mut self, spikes: &SpikeMatrix) -> i64 {
        let shape = self.config.tile;
        let (gm, gk) = shape.grid(spikes.rows(), spikes.cols());
        let probes = (gm * gk).min(AFFINITY_PROBES);
        let mut score = 0;
        for t in 0..probes {
            let (ti, tj) = (t / gk, t % gk);
            spikes.submatrix_into(
                ti * shape.m,
                tj * shape.k,
                shape.m,
                shape.k,
                &mut self.probe_buf,
            );
            let hash = hash_tile(&self.probe_buf);
            score += i64::from(self.shared.peek(hash, &self.probe_buf));
        }
        score
    }

    /// Runs every trace to completion with one worker thread per trace,
    /// all planning through the shared cache. `sink` is called from worker
    /// threads and must synchronize its own state. The interleaving policy
    /// does not apply (every lane has its own thread), so
    /// [`BatchScheduler::scheduler_stats`] is cleared rather than filled
    /// (the fault counters are still settled at the end of the run).
    ///
    /// Bit-identical to [`BatchScheduler::run`] (and to serial per-trace
    /// execution): the only cross-thread state is the content-addressed
    /// cache, and plans are deterministic in the tile bits.
    ///
    /// Fault tolerance matches [`BatchScheduler::run`]: a panic in one
    /// lane's step (caught per step, same `AssertUnwindSafe` audit as the
    /// serial path) quarantines that lane and stops only its own worker;
    /// the other workers — and the scope join — proceed normally.
    #[cfg(feature = "parallel")]
    pub fn run_concurrent<'a, S, F>(&mut self, traces: &[S], sink: F)
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]> + Sync,
        F: Fn(usize, usize, &OutputMatrix<T>) + Sync,
    {
        self.ensure_lanes(traces.len());
        self.sched_stats = SchedulerStats::default();
        let sink = &sink;
        // Quarantine checks happen on this thread (the worker loop below
        // needs `sessions` exclusively), and caught faults are collected
        // for application after the scope joins.
        let skip: Vec<bool> = self.quarantine.iter().map(Option::is_some).collect();
        let caught: std::sync::Mutex<Vec<LaneFault>> = std::sync::Mutex::new(Vec::new());
        let caught_ref = &caught;
        #[cfg(any(test, feature = "fault-injection"))]
        let fault_state = super::faults::snapshot();
        std::thread::scope(|scope| {
            for (lane, (session, trace)) in self.sessions.iter_mut().zip(traces).enumerate() {
                if skip[lane] {
                    continue;
                }
                #[cfg(any(test, feature = "fault-injection"))]
                let fault_state = fault_state.clone();
                scope.spawn(move || {
                    // Scoped threads start with an empty fault plan;
                    // re-adopt the installing thread's so injected faults
                    // reach the workers.
                    #[cfg(any(test, feature = "fault-injection"))]
                    let _faults = super::faults::adopt(fault_state);
                    let mut out = OutputMatrix::zeros(0, 0);
                    for (step, &(spikes, weights)) in trace.as_ref().iter().enumerate() {
                        let stepped =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                #[cfg(any(test, feature = "fault-injection"))]
                                super::faults::maybe_panic_lane(lane, step);
                                session.gemm_into(spikes, weights, &mut out);
                                sink(lane, step, &out);
                            }));
                        if let Err(payload) = stepped {
                            super::shared::lock_recovering(caught_ref).push(LaneFault {
                                lane,
                                step,
                                reason: panic_reason(payload.as_ref()),
                            });
                            return;
                        }
                    }
                });
            }
        });
        for fault in caught
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            let lane = fault.lane;
            self.quarantine[lane] = Some(fault);
        }
        self.settle_fault_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikemat::gemm::spiking_gemm;
    use spikemat::TileShape;

    fn traces_for_test() -> (Vec<SpikeMatrix>, WeightMatrix<i64>) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        let base = SpikeMatrix::random(32, 16, 0.3, &mut rng);
        // Three near-identical "tenants" of the same matrix.
        let mut tenants = vec![base.clone(), base.clone(), base];
        tenants[1].set(0, 0, true);
        tenants[2].set(31, 15, true);
        let w = WeightMatrix::from_fn(16, 4, |r, c| (r * 3 + c) as i64 - 5);
        (tenants, w)
    }

    #[test]
    fn round_robin_covers_every_step_exactly() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w), (t, &w)]).collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
        );
        let mut seen = vec![0usize; traces.len()];
        sched.run(&traces, |lane, step, out| {
            assert_eq!(
                out,
                &spiking_gemm(&tenants[lane], &w),
                "lane {lane} step {step}"
            );
            seen[lane] += 1;
        });
        assert_eq!(seen, vec![2, 2, 2]);
        // Tenant 1's second pass over shared tiles must hit.
        assert!(sched.merged_stats().cache_hits > 0);
        assert_eq!(sched.session_stats().len(), 3);
        assert_eq!(sched.scheduler_stats().lane_steps, vec![2, 2, 2]);
        // Round robin finishes the lanes in lane order, on the last round.
        assert_eq!(sched.scheduler_stats().completion_steps, vec![4, 5, 6]);
    }

    #[test]
    fn affinity_policy_is_still_exhaustive_and_exact() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> = tenants
            .iter()
            .map(|t| vec![(t, &w), (t, &w), (t, &w)])
            .collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::CacheAffinity,
        );
        let mut count = 0;
        sched.run(&traces, |lane, _, out| {
            assert_eq!(out, &spiking_gemm(&tenants[lane], &w));
            count += 1;
        });
        assert_eq!(count, 9);
        assert_eq!(sched.policy(), &BatchPolicy::CacheAffinity);
    }

    #[test]
    fn weighted_policy_delivers_proportional_steps_while_contended() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w); 8]).collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::Weighted {
                weights: vec![1, 1, 4],
            },
        );
        // Count per-lane steps at the moment the first lane completes:
        // while every lane is runnable, DRR must hand lane 2 exactly 4× the
        // steps of each weight-1 lane.
        let mut counts = [0u64; 3];
        let mut at_first_completion = None;
        sched.run(&traces, |lane, step, out| {
            assert_eq!(out, &spiking_gemm(&tenants[lane], &w));
            counts[lane] += 1;
            if step + 1 == 8 && at_first_completion.is_none() {
                at_first_completion = Some(counts);
            }
        });
        let live = at_first_completion.expect("some lane completes first");
        assert_eq!(live, [2, 2, 8], "weight-4 lane gets 4x while contended");
        // Everything still completes exactly once per step.
        assert_eq!(sched.scheduler_stats().lane_steps, vec![8, 8, 8]);
        assert_eq!(sched.scheduler_stats().deadline_misses, 0);
    }

    #[test]
    fn weighted_defaults_missing_and_zero_weights_to_one() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w); 3]).collect();
        // Weight 0 would never accrue credit (an infinite loop); the
        // scheduler clamps it — and lanes beyond the vector — to 1.
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::Weighted { weights: vec![0] },
        );
        let mut count = 0;
        sched.run(&traces, |_, _, _| count += 1);
        assert_eq!(count, 9);
    }

    #[test]
    fn deadline_policy_runs_earliest_deadline_first_and_counts_misses() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w); 4]).collect();
        // Feasible budgets: EDF serves lane 1 (tightest), then 0, then 2.
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::Deadline {
                budgets: vec![8, 4, 12],
            },
        );
        sched.run(&traces, |lane, _, out| {
            assert_eq!(out, &spiking_gemm(&tenants[lane], &w));
        });
        let stats = sched.scheduler_stats().clone();
        assert_eq!(stats.completion_steps, vec![8, 4, 12]);
        assert_eq!(stats.deadline_misses, 0);
        // An infeasible budget is recorded as a miss, not an error.
        let mut late = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::Deadline {
                budgets: vec![1, 1, 1],
            },
        );
        late.run(&traces, |_, _, _| {});
        assert_eq!(late.scheduler_stats().deadline_misses, 3);
    }

    #[test]
    fn deadline_starvation_guard_forces_background_progress() {
        let (tenants, w) = traces_for_test();
        let long = (DEADLINE_STARVATION_GUARD + 64) as usize;
        // Lane 0 has the earliest deadline and a very long trace; lane 1
        // has no budget at all. Pure EDF would finish all of lane 0 first;
        // the guard must force lane 1 a step once it has waited long
        // enough.
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            vec![vec![(&tenants[0], &w); long], vec![(&tenants[1], &w); 2]];
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::Deadline { budgets: vec![0] },
        );
        let mut executed = 0u64;
        let mut lane1_first_step = None;
        sched.run(&traces, |lane, _, _| {
            executed += 1;
            if lane == 1 && lane1_first_step.is_none() {
                lane1_first_step = Some(executed);
            }
        });
        let first = lane1_first_step.expect("lane 1 must run");
        assert!(
            first < long as u64,
            "guard must schedule the budget-less lane before the long trace \
             drains: first ran at step {first} of {long}"
        );
    }

    #[test]
    fn lanes_and_buffers_persist_across_runs() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> = tenants.iter().map(|t| vec![(t, &w)]).collect();
        let mut sched = BatchScheduler::<i64>::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
        );
        sched.run(&traces, |_, _, _| {});
        let first_misses = sched.merged_stats().cache_misses;
        assert!(first_misses > 0);
        // Second run of the same tenants: the shared cache is warm.
        sched.run(&traces, |_, _, _| {});
        assert_eq!(sched.merged_stats().cache_misses, first_misses);
        sched.reset_stats();
        assert_eq!(sched.merged_stats(), EngineStats::default());
        assert!(!sched.shared_cache().is_empty());
    }

    #[test]
    fn reset_stats_resets_the_shared_cache_counters_too() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w), (t, &w)]).collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
        );
        sched.run(&traces, |_, _, _| {});
        let first = sched.shared_cache().stats();
        assert!(first.hits + first.misses > 0);
        sched.reset_stats();
        // The regression: lane stats were zeroed but the shared counters
        // kept pre-reset traffic, so merged-vs-shared comparisons
        // double-counted. Both sides must now restart from zero…
        let cleared = sched.shared_cache().stats();
        assert_eq!(cleared.hits + cleared.misses, 0);
        assert_eq!(cleared.insertions + cleared.bypasses + cleared.dedups, 0);
        // …while residency (actual cache contents) is untouched.
        assert_eq!(cleared.resident, first.resident);
        sched.run(&traces, |_, _, _| {});
        let merged = sched.merged_stats();
        let cs = sched.shared_cache().stats();
        assert_eq!(cs.hits, merged.cache_hits);
        assert_eq!(cs.misses, merged.cache_misses);
    }

    #[test]
    fn begin_batch_gives_the_next_run_fresh_tenants_and_stats() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> = tenants.iter().map(|t| vec![(t, &w)]).collect();
        let mut sched = BatchScheduler::<i64>::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
        );
        sched.run(&traces, |_, _, _| {});
        assert!(sched.merged_stats().gemms > 0);
        sched.begin_batch();
        assert!(sched.session_stats().is_empty(), "lanes retired");
        sched.run(&traces, |_, _, _| {});
        // Fresh lanes: stats describe only the new batch.
        assert_eq!(sched.merged_stats().gemms, 3);
        // Fresh tenant ids: the two batches registered disjoint windows
        // (visible as distinct admission tenants when admission is on —
        // covered in tests/serving.rs; here we check the id counter).
        sched.begin_batch_as(&[100, 200]);
        sched.run(&traces, |_, _, _| {});
        assert_eq!(sched.session_stats().len(), 3);
    }

    #[test]
    fn ragged_trace_lengths_complete() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> = vec![
            vec![(&tenants[0], &w); 3],
            vec![],
            vec![(&tenants[2], &w); 1],
        ];
        for policy in [
            BatchPolicy::RoundRobin,
            BatchPolicy::CacheAffinity,
            BatchPolicy::Weighted {
                weights: vec![2, 1, 3],
            },
            BatchPolicy::Deadline {
                budgets: vec![4, 1, 8],
            },
        ] {
            let mut sched =
                BatchScheduler::new(EngineConfig::new(TileShape::new(8, 8), 64), policy.clone());
            let mut per_lane = vec![0usize; 3];
            sched.run(&traces, |lane, _, _| per_lane[lane] += 1);
            assert_eq!(per_lane, vec![3, 0, 1], "{policy:?}");
            assert_eq!(
                sched.scheduler_stats().completion_steps[1],
                0,
                "{policy:?}: empty lane never completes"
            );
        }
    }

    /// The live-lane list must keep heavily skewed batches linear in the
    /// *executed* steps: exhausted lanes leave the loop instead of being
    /// re-scanned every round (the historical O(lanes)/step overhead).
    #[test]
    fn skewed_trace_lengths_complete_exactly() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> = vec![
            vec![(&tenants[0], &w); 200],
            vec![(&tenants[1], &w); 2],
            vec![(&tenants[2], &w); 2],
        ];
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
        );
        let mut count = 0usize;
        sched.run(&traces, |_, _, _| count += 1);
        assert_eq!(count, 204);
        assert_eq!(sched.scheduler_stats().lane_steps, vec![200, 2, 2]);
    }

    #[test]
    fn injected_lane_panic_quarantines_only_that_lane() {
        use super::super::faults;
        faults::silence_injected_panics();
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w), (t, &w)]).collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
        );
        let guard = faults::install(faults::FaultPlan::lane_panic(1, 0));
        let mut seen = vec![0usize; 3];
        sched.run(&traces, |lane, _, out| {
            assert_eq!(out, &spiking_gemm(&tenants[lane], &w));
            seen[lane] += 1;
        });
        assert!(guard.fired().lane_panic);
        drop(guard);
        // Lane 1 never reached the sink; the survivors ran every step.
        assert_eq!(seen, vec![2, 0, 2]);
        assert!(sched.is_quarantined(1));
        let faults = sched.quarantined();
        assert_eq!((faults[0].lane, faults[0].step), (1, 0));
        assert!(faults[0].reason.contains("injected fault"));
        let stats = sched.scheduler_stats();
        assert_eq!(stats.lane_faults, 1);
        assert_eq!(stats.lane_steps, vec![2, 0, 2]);
        assert_eq!(stats.completion_steps[1], 0, "faulted lane never completes");

        // Quarantine persists across runs (no faults installed now)…
        seen = vec![0; 3];
        sched.run(&traces, |lane, _, _| seen[lane] += 1);
        assert_eq!(seen, vec![2, 0, 2], "quarantined lane stays skipped");
        assert_eq!(sched.scheduler_stats().lane_faults, 1);
        // …until begin_batch retires the lanes.
        sched.begin_batch();
        assert!(sched.quarantined().is_empty());
        seen = vec![0; 3];
        sched.run(&traces, |lane, _, out| {
            assert_eq!(out, &spiking_gemm(&tenants[lane], &w));
            seen[lane] += 1;
        });
        assert_eq!(seen, vec![2, 2, 2]);
        assert_eq!(sched.scheduler_stats().lane_faults, 0);
    }

    #[test]
    fn panic_under_the_shard_lock_resets_one_shard_and_serving_continues() {
        use super::super::faults;
        faults::silence_injected_panics();
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w), (t, &w)]).collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
        );
        let guard = faults::install(faults::FaultPlan::shard_panic(0));
        sched.run(&traces, |lane, _, out| {
            assert_eq!(
                out,
                &spiking_gemm(&tenants[lane], &w),
                "exact despite reset"
            );
        });
        assert!(guard.fired().shard_panic);
        drop(guard);
        // The panic unwound with the shard mutex held: the panicking lane
        // is quarantined, the poisoned shard was reset, everyone else kept
        // serving exact results.
        let stats = sched.scheduler_stats();
        assert_eq!(stats.lane_faults, 1);
        assert_eq!(stats.shard_resets, 1);
        assert_eq!(sched.shared_cache().stats().shard_resets, 1);
        assert_eq!(sched.shared_cache().shard_resets(), 1);
    }

    #[test]
    fn deadline_policy_does_not_score_a_faulted_lane_as_a_miss() {
        use super::super::faults;
        faults::silence_injected_panics();
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w); 4]).collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::Deadline {
                budgets: vec![8, 1, 12],
            },
        );
        // Lane 1 has an infeasible budget but faults at its first step: it
        // never *completed* late, so it must not count as a miss.
        let _guard = faults::install(faults::FaultPlan::lane_panic(1, 0));
        sched.run(&traces, |_, _, _| {});
        let stats = sched.scheduler_stats();
        assert_eq!(stats.lane_faults, 1);
        assert_eq!(stats.deadline_misses, 0);
        // The global clock never advanced for the faulted attempt: the
        // survivors complete after 4 and 8 executed steps.
        assert_eq!(stats.completion_steps[0], 4);
        assert_eq!(stats.completion_steps[2], 8);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn concurrent_injected_panic_quarantines_without_aborting() {
        use super::super::faults;
        use std::sync::Mutex;
        faults::silence_injected_panics();
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w), (t, &w)]).collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 64),
            BatchPolicy::RoundRobin,
        );
        // Lane 2 panics at its second step: its first step's output must
        // still have been exact, and the other lanes run to completion.
        let guard = faults::install(faults::FaultPlan::lane_panic(2, 1));
        let seen: Mutex<Vec<usize>> = Mutex::new(vec![0; 3]);
        sched.run_concurrent(&traces, |lane, _, out| {
            assert_eq!(out, &spiking_gemm(&tenants[lane], &w));
            seen.lock().unwrap()[lane] += 1;
        });
        assert!(guard.fired().lane_panic, "worker thread adopted the plan");
        drop(guard);
        assert_eq!(*seen.lock().unwrap(), vec![2, 2, 1]);
        assert!(sched.is_quarantined(2));
        assert_eq!(sched.quarantined()[0].step, 1);
        assert_eq!(sched.scheduler_stats().lane_faults, 1);
        // The next serial run skips the quarantined lane.
        let seen2: Mutex<Vec<usize>> = Mutex::new(vec![0; 3]);
        sched.run(&traces, |lane, _, _| seen2.lock().unwrap()[lane] += 1);
        assert_eq!(*seen2.lock().unwrap(), vec![2, 2, 0]);
    }

    #[test]
    fn sliced_quanta_stay_bit_exact_and_account_row_tiles() {
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w), (t, &w)]).collect();
        // 32 rows under an 8-row tile: 4 row-tiles per GeMM, so quantum 1
        // splits each GeMM across 4 visits and quantum 3 across 2 (3 + 1).
        for quantum in [1usize, 2, 3, 0] {
            let mut sched = BatchScheduler::new(
                EngineConfig::new(TileShape::new(8, 8), 128),
                BatchPolicy::RoundRobin,
            )
            .with_slice_quantum(quantum);
            assert_eq!(sched.slice_quantum(), quantum);
            let mut seen = vec![0usize; 3];
            sched.run(&traces, |lane, step, out| {
                assert_eq!(
                    out,
                    &spiking_gemm(&tenants[lane], &w),
                    "quantum {quantum} lane {lane} step {step}"
                );
                seen[lane] += 1;
            });
            assert_eq!(seen, vec![2, 2, 2], "quantum {quantum}");
            let stats = sched.scheduler_stats();
            // GeMM steps count once, on the completing slice; row-tile
            // accounting is identical in every mode (2 steps × 4 tiles).
            assert_eq!(stats.lane_steps, vec![2, 2, 2], "quantum {quantum}");
            assert_eq!(stats.lane_row_tiles, vec![8, 8, 8], "quantum {quantum}");
        }
    }

    #[test]
    fn slice_quantum_lets_short_lanes_finish_inside_a_monster_gemm() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        // Lane 0 runs a monster GeMM (64 rows = 8 row-tiles under the 8-row
        // tile); lanes 1 and 2 run single-row-tile GeMMs.
        let monster = SpikeMatrix::random(64, 16, 0.3, &mut rng);
        let small = SpikeMatrix::random(8, 16, 0.4, &mut rng);
        let w = WeightMatrix::from_fn(16, 4, |r, c| (r * 3 + c) as i64 - 5);
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            vec![vec![(&monster, &w)], vec![(&small, &w)], vec![(&small, &w)]];
        let run = |quantum: usize| {
            let mut sched = BatchScheduler::new(
                EngineConfig::new(TileShape::new(8, 8), 128),
                BatchPolicy::RoundRobin,
            )
            .with_slice_quantum(quantum);
            sched.run(&traces, |lane, _, out| {
                let want = if lane == 0 { &monster } else { &small };
                assert_eq!(out, &spiking_gemm(want, &w), "quantum {quantum}");
            });
            sched.scheduler_stats().clone()
        };
        // Whole-GeMM quantum: the monster monopolizes the first visit.
        assert_eq!(run(0).completion_steps, vec![1, 2, 3]);
        // Quantum 1: round robin yields after one row-tile, so the short
        // lanes complete while the monster is still mid-GeMM — the
        // tile-granular preemption the bench measures as latency.
        let sliced = run(1);
        assert_eq!(sliced.completion_steps, vec![10, 2, 3]);
        assert_eq!(sliced.lane_row_tiles, vec![8, 1, 1]);
        assert_eq!(sliced.lane_steps, vec![1, 1, 1]);
    }

    #[test]
    fn weighted_shares_become_row_tile_granular_under_slicing() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(13);
        // Both lanes run 4-row-tile GeMMs; with quantum 1 the DRR credits
        // are charged per visit = per row-tile, so a weight-3 lane gets 3
        // row-tiles per round while both lanes stay runnable.
        let t = SpikeMatrix::random(32, 16, 0.3, &mut rng);
        let w = WeightMatrix::from_fn(16, 4, |r, c| (r * 3 + c) as i64 - 5);
        let traces: Vec<Vec<TraceStep<'_, i64>>> = vec![vec![(&t, &w); 4], vec![(&t, &w); 4]];
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::Weighted {
                weights: vec![1, 3],
            },
        )
        .with_slice_quantum(1);
        sched.run(&traces, |_, _, out| {
            assert_eq!(out, &spiking_gemm(&t, &w));
        });
        let stats = sched.scheduler_stats();
        assert_eq!(stats.lane_steps, vec![4, 4]);
        assert_eq!(stats.lane_row_tiles, vec![16, 16]);
        // Lane 1 (weight 3, 16 row-tiles) drains while lane 0 still has
        // work: its completion visit reflects the 3:1 fine-grained share —
        // strictly earlier than the 1:1 interleave (visit 31) despite the
        // GeMMs being the same size.
        assert!(
            stats.completion_steps[1] < 31,
            "weight-3 lane must finish ahead of a 1:1 interleave, \
             completed at visit {}",
            stats.completion_steps[1]
        );
        assert_eq!(stats.completion_steps[0], 32, "all 32 row-tiles executed");
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn concurrent_run_matches_serial_oracle() {
        use std::sync::Mutex;
        let (tenants, w) = traces_for_test();
        let traces: Vec<Vec<TraceStep<'_, i64>>> =
            tenants.iter().map(|t| vec![(t, &w), (t, &w)]).collect();
        let mut sched = BatchScheduler::new(
            EngineConfig::new(TileShape::new(8, 8), 64),
            BatchPolicy::RoundRobin,
        );
        let got: Mutex<Vec<Vec<Option<OutputMatrix<i64>>>>> =
            Mutex::new(vec![vec![None, None], vec![None, None], vec![None, None]]);
        sched.run_concurrent(&traces, |lane, step, out| {
            got.lock().unwrap()[lane][step] = Some(out.clone());
        });
        let got = got.into_inner().unwrap();
        for (lane, tenant) in tenants.iter().enumerate() {
            let want = spiking_gemm(tenant, &w);
            for (step, slot) in got[lane].iter().enumerate() {
                assert_eq!(slot.as_ref(), Some(&want), "lane {lane} step {step}");
            }
        }
    }
}

//! Content-addressed plan caching: the per-session LRU and the adaptive
//! admission policy that stops uncorrelated streams from paying
//! cache-bookkeeping costs for reuse that never materializes. The sharded
//! concurrent cache many sessions hit together builds on this in
//! [`super::shared`].
//!
//! Plans are keyed by tile *content* (the raw bit limbs), never by position:
//! a fast multi-lane hash selects a bucket and a full limb comparison
//! resolves it, so a hash collision can never substitute a wrong plan.
//! Because [`TileMeta`] construction is a pure
//! function of the tile bits, a plan served from any cache — private or
//! shared, inserted by any session — is value-identical to the plan the
//! session would have built itself. That is what makes shared caching
//! bit-exact by construction.

use crate::plan::TileMeta;
use serde::{Deserialize, Serialize};
use spikemat::SpikeMatrix;
use std::collections::HashMap;
use std::sync::Arc;

use super::snapshot::{ImportReport, SnapshotEntry};

/// Pseudo-random multiplier for the limb-folding tile hash (the golden-ratio
/// constant used by Fx-style hashers).
const HASH_K: u64 = 0x9E37_79B9_7F4A_7C15;

/// Streaming 4-lane limb hash.
///
/// Four independent lanes break the multiply dependency chain (a single
/// folded lane costs ~5 cycles *per limb* in latency, which dominated
/// miss-heavy streams); collisions are resolved by full limb comparison in
/// the cache, never trusted. Streaming means a tile can be hashed straight
/// from its rows without materializing a flat key first — bypassed misses
/// touch no heap at all.
#[derive(Debug, Clone)]
struct LimbHasher {
    lanes: [u64; 4],
    lane: usize,
    count: u64,
}

impl LimbHasher {
    fn new() -> Self {
        Self {
            lanes: [
                0x243F_6A88_85A3_08D3,
                0x1319_8A2E_0370_7344,
                0xA409_3822_299F_31D0,
                0x082E_FA98_EC4E_6C89,
            ],
            lane: 0,
            count: 0,
        }
    }

    #[inline]
    fn extend(&mut self, limbs: &[u64]) {
        for &limb in limbs {
            let lane = &mut self.lanes[self.lane];
            *lane = (lane.rotate_left(5) ^ limb).wrapping_mul(HASH_K);
            self.lane = (self.lane + 1) & 3;
        }
        self.count += limbs.len() as u64;
    }

    fn finish(self) -> u64 {
        let mut h = self.count.wrapping_mul(HASH_K);
        for lane in self.lanes {
            h = (h.rotate_left(5) ^ lane).wrapping_mul(HASH_K);
        }
        h
    }
}

/// Fast content hash of a flat limb sequence — identical to [`hash_tile`]
/// over the rows whose concatenated limbs these are. The snapshot codec
/// uses it to re-derive (and cross-check) entry hashes from stored keys.
pub(crate) fn hash_limbs(limbs: &[u64]) -> u64 {
    let mut h = LimbHasher::new();
    h.extend(limbs);
    h.finish()
}

/// Content hash of a tile, streamed row by row — identical to
/// [`hash_limbs`] over the rows' concatenated limbs, without the copy.
pub(crate) fn hash_tile(tile: &SpikeMatrix) -> u64 {
    let mut h = LimbHasher::new();
    for row in tile.row_slice() {
        h.extend(row.limbs());
    }
    h.finish()
}

/// Whether a stored flat key equals the tile's row-major limbs.
fn tile_matches(stored: &[u64], tile: &SpikeMatrix) -> bool {
    let mut offset = 0;
    for row in tile.row_slice() {
        let limbs = row.limbs();
        let end = offset + limbs.len();
        if end > stored.len() || stored[offset..end] != *limbs {
            return false;
        }
        offset = end;
    }
    offset == stored.len()
}

/// The tile's row-major limbs as an owned flat key (insertion only; lookups
/// and bypassed misses never materialize this).
fn key_of(tile: &SpikeMatrix) -> Box<[u64]> {
    let mut key = Vec::with_capacity(tile.row_slice().iter().map(|r| r.limbs().len()).sum());
    for row in tile.row_slice() {
        key.extend_from_slice(row.limbs());
    }
    key.into_boxed_slice()
}

/// Map keys are already hashes, so the cache map uses a pass-through hasher
/// instead of paying SipHash per probe.
#[derive(Debug, Default, Clone, Copy)]
struct PassThroughHasher(u64);

impl std::hash::Hasher for PassThroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("cache keys are hashed as u64");
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type PassThroughState = std::hash::BuildHasherDefault<PassThroughHasher>;

/// Adaptive cache-insertion bypass: parameters of the sliding-window
/// hit-rate estimator.
///
/// On an uncorrelated stream every tile misses, so every tile pays hash +
/// key copy + LRU bookkeeping + eviction for a plan that will never be seen
/// again — the documented fig8 regression. The admission policy watches the
/// hit rate over a sliding window of lookups; when it falls below
/// [`AdmissionConfig::min_hit_permille`], insertions are *bypassed* except
/// for a sparse probe stream (every [`AdmissionConfig::probe_period`]-th
/// miss), which keeps enough fresh plans resident that a stream turning
/// correlated again is detected and admission re-opens on a later window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Lookups per estimation window.
    pub window: u32,
    /// Minimum hit rate, in permille (‰), for insertions to stay open in
    /// the next window.
    pub min_hit_permille: u32,
    /// While bypassing, still insert every `probe_period`-th miss so the
    /// estimator can observe correlation returning. `0` disables probing
    /// (bypass becomes permanent once triggered).
    pub probe_period: u32,
}

impl Default for AdmissionConfig {
    /// 256-lookup windows, re-open at ≥ 5 % hits, probe every 16th miss.
    fn default() -> Self {
        Self {
            window: 256,
            min_hit_permille: 50,
            probe_period: 16,
        }
    }
}

/// Sliding-window hit-rate admission state.
///
/// One instance tracks one *stream*: a private cache owns one for its
/// session, and the shared cache keys one per tenant
/// ([`super::shared::SharedPlanCache`]) so a hot tenant's hits cannot hold
/// admission open for a cold tenant sharing the cache (and a cold tenant's
/// misses cannot close it for a hot one).
#[derive(Debug, Clone)]
pub(crate) struct Admission {
    cfg: AdmissionConfig,
    lookups: u32,
    hits: u32,
    /// Whether insertions are currently open. Starts open: the first window
    /// always admits, otherwise the cache could never warm up.
    open: bool,
    /// Misses until the next probe insertion while bypassing.
    probe_countdown: u32,
}

impl Admission {
    pub(crate) fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            lookups: 0,
            hits: 0,
            open: true,
            probe_countdown: cfg.probe_period,
        }
    }

    /// Records one lookup outcome, rolling the window when it fills.
    pub(crate) fn record(&mut self, hit: bool) {
        self.lookups += 1;
        self.hits += u32::from(hit);
        if self.lookups >= self.cfg.window.max(1) {
            let permille = (self.hits as u64 * 1000) / self.lookups as u64;
            self.open = permille >= self.cfg.min_hit_permille as u64;
            self.lookups = 0;
            self.hits = 0;
        }
    }

    /// Whether the miss being resolved right now should be inserted.
    pub(crate) fn should_insert(&mut self) -> bool {
        if self.open {
            return true;
        }
        if self.cfg.probe_period == 0 {
            return false;
        }
        if self.probe_countdown <= 1 {
            self.probe_countdown = self.cfg.probe_period;
            true
        } else {
            self.probe_countdown -= 1;
            false
        }
    }
}

/// What happened to a freshly planned tile offered to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InsertOutcome {
    /// Stored without displacing anything.
    Inserted,
    /// Stored; the LRU plan was evicted to make room.
    Evicted,
    /// Skipped by the admission policy (or a zero-capacity cache).
    Bypassed,
    /// Dropped because a racing session inserted the same tile first; the
    /// resident plan was returned instead (shared cache only).
    Deduplicated,
}

const NIL: u32 = u32::MAX;

/// One resident cache entry, linked into the LRU list.
#[derive(Debug)]
struct Slot {
    hash: u64,
    /// The tile's raw limbs, row-major — the full key behind the hash.
    limbs: Box<[u64]>,
    meta: Arc<TileMeta>,
    /// Times this plan has been served (lookup or dedup) since insertion.
    /// Exported with the entry so a warm-started cache inherits popularity.
    hits: u64,
    /// Whether the entry arrived through a snapshot import rather than live
    /// planning — hits on restored plans are the warm-start payoff and are
    /// counted separately.
    restored: bool,
    prev: u32,
    next: u32,
}

/// Content-addressed LRU of tile plans: a slab of slots threaded on an
/// intrusive doubly-linked recency list, indexed by a hash → slot multimap
/// (the per-hash `Vec` absorbs collisions). All operations are O(1)
/// amortized. One instance backs a private session cache; a
/// [`SharedPlanCache`] holds one per shard behind a lock.
#[derive(Debug)]
pub(crate) struct PlanCache {
    capacity: usize,
    map: HashMap<u64, Vec<u32>, PassThroughState>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    /// Shared empty meta parked in freed slots so evicted payloads drop
    /// immediately instead of lingering until slot reuse.
    placeholder: Arc<TileMeta>,
    admission: Option<Admission>,
    /// Resident entries that came from a snapshot import.
    restored_resident: usize,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize, admission: Option<AdmissionConfig>) -> Self {
        Self {
            capacity,
            map: HashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            placeholder: Arc::new(TileMeta::empty()),
            admission: admission.map(Admission::new),
            restored_resident: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Resident entries that arrived through a snapshot import (and have not
    /// been evicted since).
    pub(crate) fn restored_resident(&self) -> usize {
        self.restored_resident
    }

    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.restored_resident = 0;
    }

    /// Looks up the plan for a tile with the given content hash, refreshing
    /// its recency and feeding the admission estimator on both outcomes.
    /// A hit reports whether the serving entry was snapshot-restored.
    pub(crate) fn lookup(
        &mut self,
        hash: u64,
        tile: &SpikeMatrix,
    ) -> Option<(Arc<TileMeta>, bool)> {
        let got = self.touch(hash, tile);
        if let Some(a) = &mut self.admission {
            a.record(got.is_some());
        }
        got
    }

    /// [`PlanCache::lookup`] without touching the admission window — the
    /// shared cache's insert-time dedup check, which must not count as a
    /// second lookup for the miss it is resolving.
    pub(crate) fn get(&mut self, hash: u64, tile: &SpikeMatrix) -> Option<Arc<TileMeta>> {
        self.touch(hash, tile).map(|(meta, _)| meta)
    }

    /// Resolves a resident entry: recency refresh + per-slot hit count, no
    /// admission side effects.
    fn touch(&mut self, hash: u64, tile: &SpikeMatrix) -> Option<(Arc<TileMeta>, bool)> {
        let idx = self.find(hash, tile)?;
        self.unlink(idx);
        self.push_front(idx);
        let slot = &mut self.slots[idx as usize];
        slot.hits += 1;
        Some((Arc::clone(&slot.meta), slot.restored))
    }

    /// Whether a plan for this tile is resident, without touching recency
    /// or the admission window (the batch scheduler's affinity probe).
    pub(crate) fn peek(&self, hash: u64, tile: &SpikeMatrix) -> bool {
        self.find(hash, tile).is_some()
    }

    fn find(&self, hash: u64, tile: &SpikeMatrix) -> Option<u32> {
        let bucket = self.map.get(&hash)?;
        bucket
            .iter()
            .copied()
            .find(|&i| tile_matches(&self.slots[i as usize].limbs, tile))
    }

    /// Offers a freshly planned tile. Consults the admission policy; on
    /// admission, stores the key and meta, evicting the LRU entry if full.
    pub(crate) fn insert(
        &mut self,
        hash: u64,
        tile: &SpikeMatrix,
        meta: Arc<TileMeta>,
    ) -> InsertOutcome {
        if self.capacity == 0 {
            return InsertOutcome::Bypassed;
        }
        if let Some(a) = &mut self.admission {
            if !a.should_insert() {
                return InsertOutcome::Bypassed;
            }
        }
        let outcome = if self.len() >= self.capacity {
            self.evict_lru();
            InsertOutcome::Evicted
        } else {
            InsertOutcome::Inserted
        };
        self.place(hash, key_of(tile), meta, 0, false);
        outcome
    }

    /// Links a fully-formed slot at the MRU end of the list.
    fn place(
        &mut self,
        hash: u64,
        limbs: Box<[u64]>,
        meta: Arc<TileMeta>,
        hits: u64,
        restored: bool,
    ) {
        let slot = Slot {
            hash,
            limbs,
            meta,
            hits,
            restored,
            prev: NIL,
            next: NIL,
        };
        self.restored_resident += usize::from(restored);
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                (self.slots.len() - 1) as u32
            }
        };
        self.map.entry(hash).or_default().push(idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &self.slots[idx as usize];
            (s.prev, s.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, idx: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[idx as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        match old_head {
            NIL => self.tail = idx,
            h => self.slots[h as usize].prev = idx,
        }
        self.head = idx;
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict on empty cache");
        self.unlink(idx);
        let hash = self.slots[idx as usize].hash;
        if let Some(bucket) = self.map.get_mut(&hash) {
            bucket.retain(|&i| i != idx);
            if bucket.is_empty() {
                self.map.remove(&hash);
            }
        }
        self.restored_resident -= usize::from(self.slots[idx as usize].restored);
        // Drop the payload now; the slot itself is recycled.
        self.slots[idx as usize].limbs = Box::new([]);
        self.slots[idx as usize].meta = Arc::clone(&self.placeholder);
        self.slots[idx as usize].restored = false;
        self.free.push(idx);
    }

    /// The up-to-`n` most recently used entries, hottest first, as owned
    /// snapshot entries (keys, metas, and hit counts cloned; the cache is
    /// not mutated). This is the per-cache half of snapshot export; the
    /// sharded cache interleaves these per shard.
    pub(crate) fn export_hottest(&self, n: usize) -> Vec<SnapshotEntry> {
        let mut out = Vec::with_capacity(n.min(self.len()));
        let mut idx = self.head;
        while idx != NIL && out.len() < n {
            let slot = &self.slots[idx as usize];
            out.push(SnapshotEntry {
                hash: slot.hash,
                limbs: slot.limbs.clone(),
                meta: Arc::clone(&slot.meta),
                hits: slot.hits,
            });
            idx = slot.next;
        }
        out
    }

    /// Whether a plan with exactly these key limbs is resident.
    fn find_limbs(&self, hash: u64, limbs: &[u64]) -> bool {
        self.map.get(&hash).is_some_and(|bucket| {
            bucket
                .iter()
                .any(|&i| *self.slots[i as usize].limbs == *limbs)
        })
    }

    /// Restores snapshot entries (given hottest-first) into this cache.
    ///
    /// Import is a *restore*, not traffic: it never consults or feeds the
    /// admission estimator, and it never evicts live entries — when the
    /// snapshot holds more plans than the cache has room for, the coldest
    /// surplus is dropped (partial restore). Entries land with their
    /// exported hit counts, marked restored, and in snapshot recency order
    /// (the snapshot's hottest entry becomes this cache's MRU).
    pub(crate) fn import(&mut self, entries: Vec<SnapshotEntry>) -> ImportReport {
        let mut report = ImportReport {
            requested: entries.len(),
            ..ImportReport::default()
        };
        let room = self.capacity.saturating_sub(self.len());
        let mut accepted: Vec<SnapshotEntry> = Vec::with_capacity(room.min(entries.len()));
        for entry in entries {
            // Duplicates — whether already resident or repeated *within*
            // the snapshot (crate-exported files never repeat a key, but
            // third-party ones may) — must be classified here, before the
            // room check, so they never consume a slot a later unique
            // entry was entitled to.
            let dup = self.find_limbs(entry.hash, &entry.limbs)
                || accepted
                    .iter()
                    .any(|a| a.hash == entry.hash && a.limbs == entry.limbs);
            if dup {
                report.skipped_duplicate += 1;
            } else if accepted.len() < room {
                accepted.push(entry);
            } else {
                report.skipped_capacity += 1;
            }
        }
        // Insert coldest-first so the snapshot's hottest entry ends up MRU.
        for entry in accepted.into_iter().rev() {
            self.place(entry.hash, entry.limbs, entry.meta, entry.hits, true);
            report.restored += 1;
        }
        report
    }
}

#[cfg(test)]
#[path = "cache_tests.rs"]
mod tests;

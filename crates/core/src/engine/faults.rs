//! Deterministic fault injection for the serving runtime.
//!
//! Compiled only for this crate's own unit tests and under the
//! `fault-injection` feature (which the umbrella crate's `tests/faults.rs`
//! suite and the dedicated CI step enable) — release serving builds carry
//! none of these hooks.
//!
//! A [`FaultPlan`] describes at most one fault of each kind; installing it
//! with [`install`] arms the hooks threaded through the serving runtime:
//!
//! * **lane panic** — panic when lane `L` executes trace-local step `N`
//!   (hooked in [`BatchScheduler`](super::BatchScheduler)'s step dispatch,
//!   inside the `catch_unwind` isolation region);
//! * **shard panic** — panic on the `N`th shared-cache insert offer
//!   *while the shard mutex is held*, leaving the mutex poisoned (hooked
//!   in [`SharedPlanCache`](super::SharedPlanCache)'s insert path);
//! * **snapshot corruption** — XOR one byte of the next snapshot a
//!   [`SnapshotStore`](super::SnapshotStore) writes, simulating bit rot
//!   the checksummed loader must quarantine;
//! * **IO failure** — fail the `N`th snapshot-store filesystem operation
//!   with a synthetic error, exercising the bounded-backoff retry path;
//! * **peer-file rot** — flip a byte of (or truncate) the next snapshot
//!   file a store walk is about to read *on disk*, simulating a hostile or
//!   half-written peer image the gossip import path must quarantine
//!   instead of adopting.
//!
//! Installation is per *thread* so concurrently running tests cannot see
//! each other's faults; the scheduler's `run_concurrent` lane threads and
//! the [`ServingLoop`](super::ServingLoop) export thread re-adopt the
//! installing thread's state explicitly ([`adopt`]). Every fault fires at
//! most once and records that it fired, so a property test can assert the
//! matching counters moved — or skip the assertion when the seeded plan
//! never reached its trigger point.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// At most one injected fault per kind; see the [module docs](self).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic when this lane executes this trace-local step.
    pub lane_panic: Option<(usize, usize)>,
    /// Fire the lane panic on the `n`th (0-based) scheduler *visit* of its
    /// `(lane, step)` target instead of the first. Under a sub-GeMM
    /// [`slice_quantum`](super::BatchScheduler::set_slice_quantum) the
    /// scheduler revisits the same trace step once per slice, so a
    /// positive `n` lands the panic mid-GeMM — after `n` slices already
    /// executed. 0 (the default, and the only sensible value for
    /// whole-GeMM dispatch) fires on the first visit.
    pub lane_panic_visit: u64,
    /// Panic under the shard lock on the `n`th (0-based) shared-cache
    /// insert offer, poisoning that shard's mutex.
    pub shard_panic: Option<u64>,
    /// XOR byte `m % len` of the next snapshot a `SnapshotStore` writes.
    pub corrupt_snapshot_byte: Option<usize>,
    /// Fail the `n`th (0-based) snapshot-store IO operation.
    pub fail_io_op: Option<u64>,
    /// Rot the next snapshot file a store walk reads, on disk, before the
    /// read — the hostile-peer case of the gossip import path.
    pub rot_peer_file: Option<PeerRot>,
}

/// How [`FaultPlan::rot_peer_file`] mangles the file on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerRot {
    /// XOR byte `m % len` of the file.
    FlipByte(usize),
    /// Truncate the file to at most `len` bytes (half-written image).
    Truncate(u64),
}

impl FaultPlan {
    /// A single-fault plan derived deterministically from `seed`: one of
    /// the four kinds, with its parameters drawn from the seed, bounded by
    /// `lanes` / `steps` (so lane panics always target a real step) and
    /// small IO-op / insert indices (so the trigger is usually reached).
    pub fn seeded(seed: u64, lanes: usize, steps: usize) -> Self {
        let mut s = seed;
        let mut next = move || {
            // splitmix64: cheap, deterministic, dependency-free.
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let lanes = lanes.max(1) as u64;
        let steps = steps.max(1) as u64;
        match next() % 4 {
            0 => Self {
                lane_panic: Some(((next() % lanes) as usize, (next() % steps) as usize)),
                ..Self::default()
            },
            1 => Self {
                shard_panic: Some(next() % 8),
                ..Self::default()
            },
            2 => Self {
                corrupt_snapshot_byte: Some((next() % 4096) as usize),
                ..Self::default()
            },
            _ => Self {
                fail_io_op: Some(next() % 6),
                ..Self::default()
            },
        }
    }

    /// Plan with only a lane panic at `(lane, step)`.
    pub fn lane_panic(lane: usize, step: usize) -> Self {
        Self {
            lane_panic: Some((lane, step)),
            ..Self::default()
        }
    }

    /// [`FaultPlan::lane_panic`] firing on the `visit`th (0-based)
    /// scheduler visit of the target step — with a sub-GeMM slice quantum,
    /// a crash *mid-GeMM*, after `visit` slices already executed.
    pub fn lane_panic_at_visit(lane: usize, step: usize, visit: u64) -> Self {
        Self {
            lane_panic: Some((lane, step)),
            lane_panic_visit: visit,
            ..Self::default()
        }
    }

    /// Plan with only a panic under the shard lock on the `n`th insert.
    pub fn shard_panic(nth_insert: u64) -> Self {
        Self {
            shard_panic: Some(nth_insert),
            ..Self::default()
        }
    }

    /// Plan that corrupts byte `m % len` of the next stored snapshot.
    pub fn corrupt_snapshot(byte: usize) -> Self {
        Self {
            corrupt_snapshot_byte: Some(byte),
            ..Self::default()
        }
    }

    /// Plan that fails the `n`th snapshot-store IO operation.
    pub fn fail_io(nth_op: u64) -> Self {
        Self {
            fail_io_op: Some(nth_op),
            ..Self::default()
        }
    }

    /// Plan that rots the next snapshot file a store walk reads — the
    /// hostile-peer gossip fault ([`PeerRot`] picks flip vs truncate).
    pub fn rot_peer(rot: PeerRot) -> Self {
        Self {
            rot_peer_file: Some(rot),
            ..Self::default()
        }
    }

    /// A single-fault gossip-era plan derived deterministically from
    /// `seed`: one of the two [`PeerRot`] kinds with its parameter drawn
    /// from the seed. Kept separate from [`FaultPlan::seeded`] so the
    /// historical four-kind seed mapping (and every test pinned to it)
    /// is unchanged.
    pub fn seeded_peer_rot(seed: u64) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let rot = if next() % 2 == 0 {
            PeerRot::FlipByte((next() % 8192) as usize)
        } else {
            // Keep at least the header-sized prefix sometimes, sometimes
            // almost nothing — both must decode-fail cleanly.
            PeerRot::Truncate(next() % 64)
        };
        Self::rot_peer(rot)
    }
}

/// Which faults of an installed [`FaultPlan`] actually fired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FiredReport {
    /// The lane panic fired.
    pub lane_panic: bool,
    /// The under-shard-lock panic fired.
    pub shard_panic: bool,
    /// A stored snapshot byte was corrupted.
    pub corrupt_snapshot: bool,
    /// A snapshot-store IO operation was failed.
    pub fail_io: bool,
    /// A snapshot file was rotted on disk ahead of a store-walk read.
    pub rot_peer: bool,
}

/// Shared state of one installed plan: the plan plus fire-once latches and
/// the operation counters the `n`th-op triggers consume.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    io_ops: AtomicU64,
    inserts: AtomicU64,
    /// Scheduler visits of the lane panic's exact `(lane, step)` target
    /// (the `lane_panic_visit` trigger consumes this).
    lane_visits: AtomicU64,
    lane_fired: AtomicBool,
    shard_fired: AtomicBool,
    corrupt_fired: AtomicBool,
    io_fired: AtomicBool,
    rot_fired: AtomicBool,
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<FaultState>>> = const { RefCell::new(None) };
}

/// Arms `plan` for the current thread (and any runtime-spawned thread that
/// [`adopt`]s it). Dropping the returned guard disarms it and restores
/// whatever was installed before, so nested installs compose and a
/// panicking test never leaks its faults into the next one.
pub fn install(plan: FaultPlan) -> FaultGuard {
    let state = Arc::new(FaultState {
        plan,
        io_ops: AtomicU64::new(0),
        inserts: AtomicU64::new(0),
        lane_visits: AtomicU64::new(0),
        lane_fired: AtomicBool::new(false),
        shard_fired: AtomicBool::new(false),
        corrupt_fired: AtomicBool::new(false),
        io_fired: AtomicBool::new(false),
        rot_fired: AtomicBool::new(false),
    });
    let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(&state)));
    FaultGuard {
        state: Some(state),
        prev,
    }
}

/// The installing thread's state, for re-adoption on a spawned thread.
pub(crate) fn snapshot() -> Option<FaultHandle> {
    CURRENT
        .with(|c| c.borrow().clone())
        .map(|state| FaultHandle { state })
}

/// An installed plan, cloneable across the runtime's own thread spawns.
#[derive(Debug, Clone)]
pub(crate) struct FaultHandle {
    state: Arc<FaultState>,
}

/// Re-arms a [`snapshot`]ted plan on the current (spawned) thread. The
/// counters and fire-once latches are shared with the installing thread,
/// so "the `n`th IO op" counts across every adopting thread.
pub(crate) fn adopt(handle: Option<FaultHandle>) -> FaultGuard {
    let state = handle.map(|h| h.state);
    let prev = CURRENT.with(|c| {
        let mut cur = c.borrow_mut();
        match state.clone() {
            Some(s) => cur.replace(s),
            None => cur.take(),
        }
    });
    FaultGuard { state, prev }
}

/// RAII disarm for [`install`]/[`adopt`]; also answers which faults fired.
#[derive(Debug)]
pub struct FaultGuard {
    state: Option<Arc<FaultState>>,
    prev: Option<Arc<FaultState>>,
}

impl FaultGuard {
    /// Which of the installed plan's faults have fired so far.
    pub fn fired(&self) -> FiredReport {
        self.state
            .as_ref()
            .map(|s| FiredReport {
                lane_panic: s.lane_fired.load(Ordering::SeqCst),
                shard_panic: s.shard_fired.load(Ordering::SeqCst),
                corrupt_snapshot: s.corrupt_fired.load(Ordering::SeqCst),
                fail_io: s.io_fired.load(Ordering::SeqCst),
                rot_peer: s.rot_fired.load(Ordering::SeqCst),
            })
            .unwrap_or_default()
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

/// Installs — once per process — a panic hook that suppresses the default
/// stderr report for panics whose payload mentions `injected fault` (every
/// panic this module raises), delegating all other panics to the previous
/// hook. Purely cosmetic: the scheduler catches injected panics either
/// way, this just keeps test and bench output free of expected backtraces.
pub fn silence_injected_panics() {
    static QUIET: std::sync::Once = std::sync::Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected fault"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected fault"))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Hook: panic if the installed plan targets `(lane, step)` — on the
/// plan's `lane_panic_visit`th visit of that target (the first, unless a
/// mid-slice crash was requested). Called from the scheduler's visit
/// dispatch, inside its `catch_unwind` region, once per visit (so once per
/// slice under a sub-GeMM quantum).
pub(crate) fn maybe_panic_lane(lane: usize, step: usize) {
    CURRENT.with(|c| {
        if let Some(s) = c.borrow().as_ref() {
            if s.plan.lane_panic == Some((lane, step))
                && s.lane_visits.fetch_add(1, Ordering::SeqCst) >= s.plan.lane_panic_visit
                && !s.lane_fired.swap(true, Ordering::SeqCst)
            {
                panic!("injected fault: lane {lane} panics at step {step}");
            }
        }
    });
}

/// Hook: panic on the plan's `n`th insert offer. Called while the shard
/// mutex is held, so the unwind leaves it poisoned.
pub(crate) fn maybe_panic_shard() {
    CURRENT.with(|c| {
        if let Some(s) = c.borrow().as_ref() {
            if let Some(n) = s.plan.shard_panic {
                if s.inserts.fetch_add(1, Ordering::SeqCst) == n {
                    s.shard_fired.store(true, Ordering::SeqCst);
                    panic!("injected fault: panic under shard lock (insert {n})");
                }
            }
        }
    });
}

/// Hook: corrupt one byte of an encoded snapshot about to hit disk.
pub(crate) fn maybe_corrupt_snapshot(bytes: &mut [u8]) {
    CURRENT.with(|c| {
        if let Some(s) = c.borrow().as_ref() {
            if let Some(m) = s.plan.corrupt_snapshot_byte {
                if !bytes.is_empty() && !s.corrupt_fired.swap(true, Ordering::SeqCst) {
                    bytes[m % bytes.len()] ^= 0x40;
                }
            }
        }
    });
}

/// Hook: rot the file at `path` on disk — flip one byte or truncate,
/// per the plan — immediately before a store walk reads it. Called from
/// [`SnapshotStore::load_newer_than`](super::SnapshotStore::load_newer_than)
/// once per candidate file; fires at most once. Best effort: a file that
/// cannot be rewritten is left alone (the latch stays unfired so a test
/// can tell).
pub(crate) fn maybe_rot_peer_file(path: &std::path::Path) {
    CURRENT.with(|c| {
        if let Some(s) = c.borrow().as_ref() {
            if let Some(rot) = s.plan.rot_peer_file {
                if s.rot_fired.load(Ordering::SeqCst) {
                    return;
                }
                let rotted = match rot {
                    PeerRot::FlipByte(m) => std::fs::read(path).is_ok_and(|mut bytes| {
                        if bytes.is_empty() {
                            return false;
                        }
                        let i = m % bytes.len();
                        bytes[i] ^= 0x40;
                        std::fs::write(path, &bytes).is_ok()
                    }),
                    PeerRot::Truncate(len) => std::fs::OpenOptions::new()
                        .write(true)
                        .open(path)
                        .and_then(|f| f.set_len(len))
                        .is_ok(),
                };
                if rotted {
                    s.rot_fired.store(true, Ordering::SeqCst);
                }
            }
        }
    });
}

/// Hook: the synthetic error for the plan's `n`th snapshot-store IO
/// operation, `None` otherwise. Every call advances the shared op counter.
pub(crate) fn maybe_io_error(op: &'static str) -> Option<std::io::Error> {
    CURRENT.with(|c| {
        c.borrow().as_ref().and_then(|s| {
            let n = s.plan.fail_io_op?;
            if s.io_ops.fetch_add(1, Ordering::SeqCst) == n {
                s.io_fired.store(true, Ordering::SeqCst);
                Some(std::io::Error::other(format!("injected fault: {op}")))
            } else {
                None
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_single_fault() {
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, 4, 6);
            let b = FaultPlan::seeded(seed, 4, 6);
            assert_eq!(a, b, "seed {seed}");
            let kinds = usize::from(a.lane_panic.is_some())
                + usize::from(a.shard_panic.is_some())
                + usize::from(a.corrupt_snapshot_byte.is_some())
                + usize::from(a.fail_io_op.is_some());
            assert_eq!(kinds, 1, "seed {seed}: exactly one fault");
            if let Some((lane, step)) = a.lane_panic {
                assert!(lane < 4 && step < 6, "seed {seed}: in-range target");
            }
        }
    }

    #[test]
    fn install_is_scoped_and_restores_the_previous_plan() {
        assert!(maybe_io_error("noop").is_none(), "nothing installed");
        let outer = install(FaultPlan::fail_io(0));
        {
            let inner = install(FaultPlan::default());
            // The inner (empty) plan shadows the outer one.
            assert!(maybe_io_error("read").is_none());
            assert_eq!(inner.fired(), FiredReport::default());
        }
        // Outer plan restored: its 0th IO op now fails, exactly once.
        assert!(maybe_io_error("read").is_some());
        assert!(maybe_io_error("read").is_none());
        assert!(outer.fired().fail_io);
        drop(outer);
        assert!(maybe_io_error("read").is_none(), "disarmed after drop");
    }

    #[test]
    fn lane_panic_fires_once_at_its_exact_target() {
        let guard = install(FaultPlan::lane_panic(1, 2));
        maybe_panic_lane(0, 2);
        maybe_panic_lane(1, 1);
        assert!(!guard.fired().lane_panic);
        let caught = std::panic::catch_unwind(|| maybe_panic_lane(1, 2));
        assert!(caught.is_err(), "target step must panic");
        assert!(guard.fired().lane_panic);
        maybe_panic_lane(1, 2); // fire-once: a replayed step is safe
    }

    #[test]
    fn adopted_threads_share_counters_with_the_installer() {
        let guard = install(FaultPlan::fail_io(1));
        let handle = snapshot();
        assert!(maybe_io_error("op0").is_none()); // op 0 on this thread
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = adopt(handle.clone());
                // Op 1 lands here because the counter is shared.
                assert!(maybe_io_error("op1").is_some());
            });
        });
        assert!(guard.fired().fail_io);
    }

    #[test]
    fn peer_rot_mangles_a_file_once() {
        let dir = std::env::temp_dir().join(format!("prosperity_rot_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("peer.psnp");
        let clean = vec![7u8; 16];
        std::fs::write(&path, &clean).expect("seed file");
        {
            let guard = install(FaultPlan::rot_peer(PeerRot::FlipByte(3)));
            maybe_rot_peer_file(&path);
            assert!(guard.fired().rot_peer);
            let mut want = clean.clone();
            want[3] ^= 0x40;
            assert_eq!(std::fs::read(&path).expect("read"), want);
            // Fire-once: a second walk leaves the file alone.
            maybe_rot_peer_file(&path);
            assert_eq!(std::fs::read(&path).expect("read"), want);
        }
        std::fs::write(&path, &clean).expect("reset");
        {
            let guard = install(FaultPlan::rot_peer(PeerRot::Truncate(5)));
            maybe_rot_peer_file(&path);
            assert!(guard.fired().rot_peer);
            assert_eq!(std::fs::read(&path).expect("read").len(), 5);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seeded_peer_rot_is_deterministic() {
        for seed in 0..32 {
            let a = FaultPlan::seeded_peer_rot(seed);
            assert_eq!(a, FaultPlan::seeded_peer_rot(seed), "seed {seed}");
            assert!(a.rot_peer_file.is_some());
        }
    }

    #[test]
    fn corruption_flips_exactly_one_byte_once() {
        let guard = install(FaultPlan::corrupt_snapshot(10));
        let clean = vec![0u8; 4];
        let mut bytes = clean.clone();
        maybe_corrupt_snapshot(&mut bytes);
        assert_eq!(bytes, vec![0, 0, 0x40, 0], "byte 10 % 4 = 2 flipped");
        assert!(guard.fired().corrupt_snapshot);
        let mut again = clean.clone();
        maybe_corrupt_snapshot(&mut again);
        assert_eq!(again, clean, "fires once");
    }
}

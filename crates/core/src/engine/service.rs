//! The serving lifecycle layer: a [`ServingLoop`] that owns a
//! [`BatchScheduler`] and, while traces execute, keeps the long-running
//! process healthy — periodic **background snapshot exports** (the
//! warm-start API existed since the snapshot layer landed, but nothing
//! scheduled it) and **admission-table GC** (bounding the per-tenant
//! window registry under unbounded tenant churn).
//!
//! Both jobs run on an executed-step cadence ([`ServiceConfig`]), counted
//! across every run the loop serves, so a process alternating many short
//! batches gets the same hygiene as one serving a single long trace:
//!
//! * **Snapshot export** spawns a real background thread over the shared
//!   cache's `Arc` — [`SharedPlanCache::export_hottest`] locks one shard
//!   at a time, so the lanes keep planning and executing while the export
//!   walks the cache (no stop-the-world; the race is property-tested in
//!   `tests/serving.rs`). Finished snapshots are collected with
//!   [`ServingLoop::take_snapshots`]; if an export is still in flight when
//!   the next cadence tick arrives, the tick is skipped rather than piling
//!   up threads.
//! * **Admission GC** calls [`SharedPlanCache::gc_tenants`]: each sweep
//!   advances the table's generation clock and evicts windows idle for
//!   more than [`ServiceConfig::gc_max_idle`] sweeps. Live lanes keep
//!   their resolved window handles either way.
//!
//! Neither job can change results: exports only *read* plans (clones of
//! resident entries), and admission decisions never alter outputs — the
//! bit-identity property the whole runtime is tested for.
//!
//! Attaching a [`SnapshotStore`]
//! ([`ServingLoop::set_snapshot_store`]) additionally *persists* each
//! export: the background thread writes the snapshot through the store's
//! atomic, retried, retention-pruned path before handing it to
//! [`ServingLoop::take_snapshots`]. Persistence failures never reach the
//! lanes — an export whose save exhausts its retries is dropped with the
//! failure visible in [`SchedulerStats::snapshot_io_retries`] /
//! [`SchedulerStats::snapshots_quarantined`], and serving continues.
//!
//! **Snapshot gossip** ([`ServiceConfig::with_gossip`]) closes the loop
//! in the other direction: on a step cadence — plus one bootstrap sweep
//! the first time the loop runs, so a process *joining* a fleet warms up
//! before serving its first step — the loop scans its peers' store
//! directories, decodes each peer's newest snapshot
//! ([`SnapshotStore::load_newer_than`]: corrupt files are quarantined to
//! `*.bad` exactly as in a warm restart, and a peer that has produced
//! nothing new since the last sweep is skipped from the directory listing
//! alone), and imports it capacity-respecting through
//! [`SharedPlanCache::import`]. Plans are pure functions of tile content,
//! so gossip can change *who* plans a tile, never *what* runs — warmth
//! moves between processes, results cannot. The sweeps are accounted in
//! [`SchedulerStats::gossip_imports`] /
//! [`SchedulerStats::gossip_plans_adopted`] /
//! [`SchedulerStats::gossip_skipped_stale`]. See
//! [`fleet`](super::fleet) for the placement ring and the multi-process
//! harness built on top of this cadence.
//!
//! ```
//! use prosperity_core::engine::{
//!     BatchPolicy, EngineConfig, ServiceConfig, ServingLoop,
//! };
//! use spikemat::gemm::{spiking_gemm, WeightMatrix};
//! use spikemat::SpikeMatrix;
//!
//! let spikes = SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[0, 1, 1]]);
//! let w = WeightMatrix::from_fn(3, 2, |r, c| (r + c) as i64);
//! let traces = vec![vec![(&spikes, &w); 4], vec![(&spikes, &w); 4]];
//!
//! // Export a 64-plan snapshot every 3 executed steps.
//! let service = ServiceConfig::default().with_snapshots(3, 64);
//! let mut serving =
//!     ServingLoop::new(EngineConfig::default(), BatchPolicy::RoundRobin, service);
//! serving.run(&traces, |_, _, out| {
//!     assert_eq!(out, &spiking_gemm(&spikes, &w));
//! });
//! let snapshots = serving.take_snapshots();
//! assert!(!snapshots.is_empty());
//! assert_eq!(serving.stats().snapshots_exported, snapshots.len() as u64);
//! ```

use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use spikemat::gemm::OutputMatrix;
use spikemat::TileShape;

use super::batch::{BatchPolicy, BatchScheduler, TraceStep};
use super::shared::SharedPlanCache;
use super::snapshot::PlanSnapshot;
use super::stats::SchedulerStats;
use super::store::SnapshotStore;
use super::{Element, EngineConfig};

/// Lifecycle cadences of a [`ServingLoop`], in executed steps (GeMMs),
/// counted across every run the loop serves. The default disables every
/// job; enable them with the builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Executed steps between background snapshot exports; 0 disables.
    pub snapshot_every: usize,
    /// Hottest plans captured per export.
    pub snapshot_plans: usize,
    /// Executed steps between admission-table GC sweeps; 0 disables.
    pub gc_every: usize,
    /// Sweeps a tenant window may sit idle (no handle resolution) before a
    /// sweep evicts it.
    pub gc_max_idle: u64,
    /// Executed steps between gossip import sweeps over
    /// [`ServiceConfig::gossip_peers`]; 0 disables gossip (including the
    /// bootstrap sweep).
    pub gossip_every: usize,
    /// Peer snapshot-store directories each gossip sweep scans (one
    /// [`SnapshotStore`] layout per peer process).
    pub gossip_peers: Vec<PathBuf>,
}

impl Default for ServiceConfig {
    /// Every job off; `snapshot_plans` 1024 and `gc_max_idle` 2 as the
    /// starting points the builders inherit.
    fn default() -> Self {
        Self {
            snapshot_every: 0,
            snapshot_plans: 1024,
            gc_every: 0,
            gc_max_idle: 2,
            gossip_every: 0,
            gossip_peers: Vec::new(),
        }
    }
}

impl ServiceConfig {
    /// Enables background snapshot export: the hottest `plans` entries
    /// every `every` executed steps.
    pub fn with_snapshots(mut self, every: usize, plans: usize) -> Self {
        self.snapshot_every = every;
        self.snapshot_plans = plans;
        self
    }

    /// Enables admission-table GC: one sweep every `every` executed steps,
    /// evicting windows idle for more than `max_idle` sweeps.
    pub fn with_gc(mut self, every: usize, max_idle: u64) -> Self {
        self.gc_every = every;
        self.gc_max_idle = max_idle;
        self
    }

    /// Enables snapshot gossip: every `every` executed steps (plus one
    /// bootstrap sweep before the loop's first run), scan each peer store
    /// directory in `peers` and import its newest not-yet-seen snapshot
    /// into the shared cache. Peers are other processes' [`SnapshotStore`]
    /// directories; a peer directory that does not exist yet is simply
    /// empty until its process starts exporting.
    pub fn with_gossip(mut self, every: usize, peers: Vec<PathBuf>) -> Self {
        self.gossip_every = every;
        self.gossip_peers = peers;
        self
    }
}

/// One gossip peer's import state: the peer's store directory, the store
/// handle once it opened, and the staleness cutoff (newest sequence number
/// already imported from this peer).
#[derive(Debug)]
struct GossipPeer {
    dir: PathBuf,
    store: Option<SnapshotStore>,
    last_seq: Option<u64>,
}

impl GossipPeer {
    fn new(dir: PathBuf) -> Self {
        Self {
            dir,
            store: None,
            last_seq: None,
        }
    }

    /// One import attempt from this peer: `(imported, adopted, stale)`.
    /// Opening the store is retried on every sweep until it succeeds; IO
    /// and decode failures never escape (corrupt files are quarantined by
    /// the walk, unreadable ones retried next sweep).
    // analyze: hot-path
    fn sweep(&mut self, shared: &SharedPlanCache, tile: TileShape) -> (u64, u64, u64) {
        if self.store.is_none() {
            self.store = SnapshotStore::new(&self.dir, 1).ok();
        }
        let Some(store) = &self.store else {
            return (0, 0, 0);
        };
        match store.load_newer_than(self.last_seq) {
            Ok(Some((seq, snapshot))) => {
                let report = shared.import(&snapshot, tile);
                self.last_seq = Some(seq);
                (1, report.restored as u64, 0)
            }
            // Nothing strictly newer than what we already imported: a
            // stale skip when we had imported before, plain emptiness
            // otherwise (new peer that has not exported yet).
            Ok(None) => (0, 0, u64::from(self.last_seq.is_some())),
            Err(_) => (0, 0, 0),
        }
    }
}

/// A [`BatchScheduler`] wrapped with the long-running-process jobs:
/// step-cadence background snapshot export and admission-table GC.
///
/// The loop owns the scheduler — [`ServingLoop::scheduler_mut`] exposes it
/// for policy switches or warm starts — and serves batches through
/// [`ServingLoop::run`] (lanes persist, same-tenant replay) or
/// [`ServingLoop::run_batch`]/[`run_batch_as`](ServingLoop::run_batch_as)
/// (fresh lanes per batch — the tenant-churn shape the GC exists for).
#[derive(Debug)]
pub struct ServingLoop<T = i64> {
    sched: BatchScheduler<T>,
    service: ServiceConfig,
    /// Executed steps since the last export / sweep (across runs).
    since_snapshot: usize,
    since_gc: usize,
    since_gossip: usize,
    /// Lifecycle counters surfaced through [`ServingLoop::stats`].
    snapshots_exported: u64,
    gc_evictions: u64,
    gossip_imports: u64,
    gossip_plans_adopted: u64,
    gossip_skipped_stale: u64,
    /// Per-peer import state, built from
    /// [`ServiceConfig::gossip_peers`] (and refreshed by
    /// [`ServingLoop::set_gossip_peers`]).
    gossip: Vec<GossipPeer>,
    /// The bootstrap sweep runs once, before the loop's first run.
    gossip_bootstrapped: bool,
    /// The in-flight export thread, if any.
    export: Option<JoinHandle<()>>,
    /// Finished exports travel back over this channel.
    snapshot_tx: Sender<PlanSnapshot>,
    snapshot_rx: Receiver<PlanSnapshot>,
    /// When attached, every background export is persisted through this
    /// store (atomic write, bounded retry, retention prune).
    store: Option<Arc<SnapshotStore>>,
}

impl<T: Element> ServingLoop<T> {
    /// Creates a serving loop over a fresh scheduler
    /// ([`BatchScheduler::new`]).
    pub fn new(config: EngineConfig, policy: BatchPolicy, service: ServiceConfig) -> Self {
        Self::with_scheduler(BatchScheduler::new(config, policy), service)
    }

    /// Wraps an existing scheduler (e.g. one built with
    /// [`BatchScheduler::warm_start`] or over a shared cache).
    pub fn with_scheduler(sched: BatchScheduler<T>, service: ServiceConfig) -> Self {
        let (snapshot_tx, snapshot_rx) = channel();
        let gossip = service
            .gossip_peers
            .iter()
            .map(|dir| GossipPeer::new(dir.clone()))
            .collect();
        Self {
            sched,
            service,
            since_snapshot: 0,
            since_gc: 0,
            since_gossip: 0,
            snapshots_exported: 0,
            gc_evictions: 0,
            gossip_imports: 0,
            gossip_plans_adopted: 0,
            gossip_skipped_stale: 0,
            gossip,
            gossip_bootstrapped: false,
            export: None,
            snapshot_tx,
            snapshot_rx,
            store: None,
        }
    }

    /// Replaces the gossip peer set (fleet membership change: a node
    /// joined or left). Import state is preserved for directories present
    /// in both the old and new set, so an unchanged peer is not
    /// re-imported from scratch; genuinely new peers start cold and are
    /// picked up by the next sweep.
    pub fn set_gossip_peers(&mut self, peers: Vec<PathBuf>) {
        let mut old: Vec<GossipPeer> = std::mem::take(&mut self.gossip);
        self.gossip = peers
            .iter()
            .map(|dir| {
                old.iter()
                    .position(|p| p.dir == *dir)
                    .map(|i| old.swap_remove(i))
                    .unwrap_or_else(|| GossipPeer::new(dir.clone()))
            })
            .collect();
        self.service.gossip_peers = peers;
    }

    /// Attaches a [`SnapshotStore`]: every background export from now on
    /// is also persisted through it (crash-safe, retried, pruned to the
    /// store's retention). The handle is shared so callers can read the
    /// store's counters and files while the loop serves.
    pub fn set_snapshot_store(&mut self, store: Arc<SnapshotStore>) {
        self.store = Some(store);
    }

    /// Builder form of [`ServingLoop::set_snapshot_store`].
    pub fn with_snapshot_store(mut self, store: Arc<SnapshotStore>) -> Self {
        self.set_snapshot_store(store);
        self
    }

    /// The attached snapshot store, if any.
    pub fn snapshot_store(&self) -> Option<&Arc<SnapshotStore>> {
        self.store.as_ref()
    }

    /// The lifecycle cadences.
    pub fn service_config(&self) -> &ServiceConfig {
        &self.service
    }

    /// The wrapped scheduler.
    pub fn scheduler(&self) -> &BatchScheduler<T> {
        &self.sched
    }

    /// Mutable access to the wrapped scheduler (policy switches,
    /// `begin_batch`, warm starts).
    pub fn scheduler_mut(&mut self) -> &mut BatchScheduler<T> {
        &mut self.sched
    }

    /// The shared plan cache all lanes plan through.
    pub fn shared_cache(&self) -> &Arc<SharedPlanCache> {
        self.sched.shared_cache()
    }

    /// The last run's scheduling record with this loop's lifecycle
    /// counters filled in (`snapshots_exported`, `gc_evictions`, the
    /// gossip trio `gossip_imports` / `gossip_plans_adopted` /
    /// `gossip_skipped_stale`, and —
    /// when a [`SnapshotStore`] is attached — `snapshot_io_retries` /
    /// `snapshots_quarantined` plus the encode/load volume counters
    /// `snapshot_bytes_encoded` / `snapshot_plans_encoded` /
    /// `snapshot_bytes_loaded` / `snapshot_plans_loaded`; a bare scheduler
    /// reports all of them as 0). `shard_resets` is refreshed from the
    /// live cache so resets by other holders of the cache since the last
    /// run are visible too.
    pub fn stats(&self) -> SchedulerStats {
        let mut stats = self.sched.scheduler_stats().clone();
        stats.snapshots_exported = self.snapshots_exported;
        stats.gc_evictions = self.gc_evictions;
        stats.gossip_imports = self.gossip_imports;
        stats.gossip_plans_adopted = self.gossip_plans_adopted;
        stats.gossip_skipped_stale = self.gossip_skipped_stale;
        stats.shard_resets = self.shared_cache().shard_resets();
        if let Some(store) = &self.store {
            stats.snapshot_io_retries = store.io_retries();
            stats.snapshots_quarantined = store.quarantined();
            stats.snapshot_bytes_encoded = store.bytes_encoded();
            stats.snapshot_plans_encoded = store.plans_encoded();
            stats.snapshot_bytes_loaded = store.bytes_loaded();
            stats.snapshot_plans_loaded = store.plans_loaded();
        }
        stats
    }

    /// Runs one batch through the scheduler, lanes persisting from the
    /// previous run (same-tenant replay — see [`BatchScheduler::run`]),
    /// triggering the cadence jobs as steps execute.
    pub fn run<'a, S, F>(&mut self, traces: &[S], sink: F)
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]>,
        F: FnMut(usize, usize, &OutputMatrix<T>),
    {
        self.run_inner(traces, sink);
    }

    /// [`ServingLoop::run`] for a *new* batch: retires every lane first
    /// ([`BatchScheduler::begin_batch`]), so the traces get fresh sessions,
    /// stats, and freshly minted admission tenant ids.
    pub fn run_batch<'a, S, F>(&mut self, traces: &[S], sink: F)
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]>,
        F: FnMut(usize, usize, &OutputMatrix<T>),
    {
        self.sched.begin_batch();
        self.run_inner(traces, sink);
    }

    /// [`ServingLoop::run_batch`] with explicit tenant ids per lane
    /// ([`BatchScheduler::begin_batch_as`]): lane `i` serves `tenants[i]`.
    /// Resolving the handles stamps each tenant's last-touched generation,
    /// which is what keeps *returning* tenants alive across GC sweeps.
    pub fn run_batch_as<'a, S, F>(&mut self, tenants: &[u64], traces: &[S], sink: F)
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]>,
        F: FnMut(usize, usize, &OutputMatrix<T>),
    {
        self.sched.begin_batch_as(tenants);
        self.run_inner(traces, sink);
    }

    fn run_inner<'a, S, F>(&mut self, traces: &[S], mut sink: F)
    where
        T: 'a,
        S: AsRef<[TraceStep<'a, T>]>,
        F: FnMut(usize, usize, &OutputMatrix<T>),
    {
        // The scheduler is mutably borrowed for the whole run, so the
        // cadence jobs work through locals + the cache's `Arc` and are
        // written back after.
        let service = self.service.clone();
        let shared = Arc::clone(self.sched.shared_cache());
        let tile = self.sched.config().tile;
        // Gossip bootstrap: a process joining a fleet sweeps its peers
        // once *before* serving its first step, so it starts warm instead
        // of rediscovering plans its peers already hold.
        if service.gossip_every > 0 && !self.gossip_bootstrapped {
            self.gossip_bootstrapped = true;
            for peer in &mut self.gossip {
                let (imports, adopted, stale) = peer.sweep(&shared, tile);
                self.gossip_imports += imports;
                self.gossip_plans_adopted += adopted;
                self.gossip_skipped_stale += stale;
            }
        }
        let mut gossip = std::mem::take(&mut self.gossip);
        let mut since_gossip = self.since_gossip;
        let mut gossip_imports = 0u64;
        let mut gossip_plans_adopted = 0u64;
        let mut gossip_skipped_stale = 0u64;
        // Materialize the lanes now so this run's tenant set is known:
        // before every GC sweep the live tenants are re-stamped, so a
        // tenant in the middle of a batch longer than the GC horizon is
        // never evicted as "idle" (handle resolution only marks batch
        // starts).
        self.sched.ensure_lanes(traces.len());
        let live_tenants: Vec<u64> = self
            .sched
            .tenants()
            .into_iter()
            .take(traces.len())
            .collect();
        let tx = self.snapshot_tx.clone();
        let store = self.store.clone();
        #[cfg(any(test, feature = "fault-injection"))]
        let fault_state = super::faults::snapshot();
        let mut since_snapshot = self.since_snapshot;
        let mut since_gc = self.since_gc;
        let mut snapshots_exported = 0u64;
        let mut gc_evictions = 0u64;
        let mut export = self.export.take();
        self.sched.run(traces, |lane, step, out| {
            sink(lane, step, out);
            if service.snapshot_every > 0 {
                since_snapshot += 1;
                if since_snapshot >= service.snapshot_every {
                    since_snapshot = 0;
                    // One export in flight at a time: a tick landing while
                    // the previous walk is still running is skipped, never
                    // queued — the next tick exports a fresher cache
                    // anyway.
                    if export.as_ref().is_none_or(JoinHandle::is_finished) {
                        if let Some(done) = export.take() {
                            let _ = done.join();
                        }
                        let shared = Arc::clone(&shared);
                        let tx = tx.clone();
                        let plans = service.snapshot_plans;
                        let store = store.clone();
                        #[cfg(any(test, feature = "fault-injection"))]
                        let fault_state = fault_state.clone();
                        export = Some(std::thread::spawn(move || {
                            // Spawned threads start with an empty fault
                            // plan; re-adopt the serving thread's so
                            // injected IO faults reach the store path.
                            #[cfg(any(test, feature = "fault-injection"))]
                            let _faults = super::faults::adopt(fault_state);
                            // Locks one shard at a time; lanes keep
                            // planning concurrently.
                            let snapshot = shared.export_hottest(plans);
                            if let Some(store) = &store {
                                // A save that exhausts its retries is
                                // dropped here — persistence hygiene must
                                // never abort serving; the store's
                                // counters record what happened.
                                let _ = store.save(&snapshot);
                            }
                            let _ = tx.send(snapshot);
                        }));
                        snapshots_exported += 1;
                    }
                }
            }
            if service.gc_every > 0 {
                since_gc += 1;
                if since_gc >= service.gc_every {
                    since_gc = 0;
                    for &tenant in &live_tenants {
                        shared.touch_tenant(tenant);
                    }
                    gc_evictions += shared.gc_tenants(service.gc_max_idle) as u64;
                }
            }
            if service.gossip_every > 0 {
                since_gossip += 1;
                if since_gossip >= service.gossip_every {
                    since_gossip = 0;
                    // Synchronous by design: one bounded directory scan
                    // (plus at most one snapshot decode) per peer, and a
                    // deterministic import order — the fleet tests pin
                    // bit-identity against a no-gossip oracle, which a
                    // racing import thread could not.
                    for peer in &mut gossip {
                        let (imports, adopted, stale) = peer.sweep(&shared, tile);
                        gossip_imports += imports;
                        gossip_plans_adopted += adopted;
                        gossip_skipped_stale += stale;
                    }
                }
            }
        });
        self.since_snapshot = since_snapshot;
        self.since_gc = since_gc;
        self.since_gossip = since_gossip;
        self.snapshots_exported += snapshots_exported;
        self.gc_evictions += gc_evictions;
        self.gossip_imports += gossip_imports;
        self.gossip_plans_adopted += gossip_plans_adopted;
        self.gossip_skipped_stale += gossip_skipped_stale;
        self.gossip = gossip;
        self.export = export;
    }

    /// Collects every background export finished so far, oldest first,
    /// joining an in-flight export thread if there is one (exports are a
    /// bounded walk over the shards, so this blocks at most briefly).
    /// Returns an empty vector when no cadence has fired since the last
    /// call.
    pub fn take_snapshots(&mut self) -> Vec<PlanSnapshot> {
        if let Some(handle) = self.export.take() {
            let _ = handle.join();
        }
        self.snapshot_rx.try_iter().collect()
    }
}

impl<T> Drop for ServingLoop<T> {
    fn drop(&mut self) {
        // Never leak a running export thread past the loop's lifetime.
        if let Some(handle) = self.export.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikemat::gemm::{spiking_gemm, WeightMatrix};
    use spikemat::{SpikeMatrix, TileShape};

    fn test_traces() -> (SpikeMatrix, WeightMatrix<i64>) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0x5EF);
        let spikes = SpikeMatrix::random(32, 16, 0.3, &mut rng);
        let w = WeightMatrix::from_fn(16, 4, |r, c| (r * 3 + c) as i64 - 5);
        (spikes, w)
    }

    #[test]
    fn cadence_exports_decodable_snapshots() {
        let (spikes, w) = test_traces();
        let traces = vec![vec![(&spikes, &w); 6], vec![(&spikes, &w); 6]];
        let service = ServiceConfig::default().with_snapshots(4, 128);
        let mut serving = ServingLoop::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
            service,
        );
        serving.run(&traces, |_, _, out| {
            assert_eq!(out, &spiking_gemm(&spikes, &w));
        });
        let snapshots = serving.take_snapshots();
        assert!(!snapshots.is_empty());
        assert_eq!(serving.stats().snapshots_exported, snapshots.len() as u64);
        for snap in &snapshots {
            let decoded = PlanSnapshot::decode(snap.encode()).expect("decodable");
            assert_eq!(decoded.len(), snap.len());
        }
        // Cadence state persists across runs; nothing new without steps.
        assert!(serving.take_snapshots().is_empty());
    }

    #[test]
    fn disabled_service_never_exports_or_sweeps() {
        let (spikes, w) = test_traces();
        let traces = vec![vec![(&spikes, &w); 8]];
        let mut serving = ServingLoop::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
            ServiceConfig::default(),
        );
        serving.run(&traces, |_, _, _| {});
        assert!(serving.take_snapshots().is_empty());
        let stats = serving.stats();
        assert_eq!(stats.snapshots_exported, 0);
        assert_eq!(stats.gc_evictions, 0);
        assert_eq!(stats.lane_steps, vec![8]);
    }

    #[test]
    fn gc_never_evicts_an_actively_executing_tenant() {
        use super::super::cache::AdmissionConfig;
        let (spikes, w) = test_traces();
        let config =
            EngineConfig::new(TileShape::new(8, 8), 256).with_admission(AdmissionConfig::default());
        // The most aggressive horizon possible: sweep every step, evict
        // anything not touched since the previous sweep. A tenant in the
        // middle of a batch far longer than that horizon must still be
        // alive at the end — live lanes are re-stamped before each sweep.
        let service = ServiceConfig::default().with_gc(1, 0);
        let mut serving = ServingLoop::<i64>::new(config, BatchPolicy::RoundRobin, service);
        let traces = vec![vec![(&spikes, &w); 32]];
        serving.run(&traces, |_, _, _| {});
        assert_eq!(serving.stats().gc_evictions, 0);
        assert_eq!(
            serving.shared_cache().stats().tenants,
            1,
            "the executing tenant's window must survive mid-batch sweeps"
        );
    }

    #[test]
    fn attached_store_persists_every_export_crash_safely() {
        let (spikes, w) = test_traces();
        let dir = std::env::temp_dir().join("prosperity_service_store_test");
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(SnapshotStore::new(&dir, 2).expect("open store"));
        let traces = vec![vec![(&spikes, &w); 6], vec![(&spikes, &w); 6]];
        let service = ServiceConfig::default().with_snapshots(4, 128);
        let mut serving = ServingLoop::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
            service,
        )
        .with_snapshot_store(Arc::clone(&store));
        serving.run(&traces, |_, _, out| {
            assert_eq!(out, &spiking_gemm(&spikes, &w));
        });
        let snapshots = serving.take_snapshots();
        assert!(!snapshots.is_empty());
        // Every export also landed on disk (bounded by retention) and the
        // newest loads back valid.
        let files = store.files().expect("list");
        assert!(!files.is_empty() && files.len() <= 2, "{files:?}");
        let loaded = store
            .load_latest_valid()
            .expect("walk")
            .expect("a valid snapshot is retained");
        assert_eq!(loaded.len(), snapshots.last().unwrap().len());
        let stats = serving.stats();
        assert_eq!(stats.snapshot_io_retries, 0);
        assert_eq!(stats.snapshots_quarantined, 0);
        drop(serving);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_export_io_failure_retries_without_touching_results() {
        use super::super::faults;
        faults::silence_injected_panics();
        let (spikes, w) = test_traces();
        let dir = std::env::temp_dir().join("prosperity_service_retry_test");
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(
            SnapshotStore::new(&dir, 2)
                .expect("open store")
                .with_retry(3, std::time::Duration::from_micros(50)),
        );
        let traces = vec![vec![(&spikes, &w); 8]];
        let service = ServiceConfig::default().with_snapshots(3, 64);
        let mut serving = ServingLoop::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
            service,
        )
        .with_snapshot_store(Arc::clone(&store));
        // Fail the first store IO op: the export thread (which adopted
        // the plan) retries and the save lands; serving stays exact.
        let guard = faults::install(faults::FaultPlan::fail_io(0));
        serving.run(&traces, |_, _, out| {
            assert_eq!(out, &spiking_gemm(&spikes, &w));
        });
        let snapshots = serving.take_snapshots();
        assert!(!snapshots.is_empty());
        assert!(guard.fired().fail_io, "export thread hit the injected op");
        drop(guard);
        assert_eq!(serving.stats().snapshot_io_retries, 1);
        assert!(store.load_latest_valid().expect("walk").is_some());
        drop(serving);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gossip_bootstrap_imports_a_peer_snapshot_then_skips_stale() {
        let (spikes, w) = test_traces();
        let traces = vec![vec![(&spikes, &w); 8]];
        let dir = std::env::temp_dir().join(format!(
            "prosperity_service_gossip_test_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        // A donor process's store directory holding one warm snapshot.
        let store = SnapshotStore::new(&dir, 4).expect("open store");
        let mut donor = ServingLoop::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
            ServiceConfig::default(),
        );
        donor.run(&traces, |_, _, _| {});
        let exported = donor.shared_cache().export_hottest(128);
        assert!(!exported.is_empty());
        store.save(&exported).expect("save");

        // A joiner gossiping on that directory warms up on its bootstrap
        // sweep (before step 0) and serves bit-exact results.
        let service = ServiceConfig::default().with_gossip(4, vec![dir.clone()]);
        let mut joiner = ServingLoop::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
            service,
        );
        joiner.run(&traces, |_, _, out| {
            assert_eq!(out, &spiking_gemm(&spikes, &w));
        });
        let stats = joiner.stats();
        assert!(stats.gossip_imports >= 1, "{stats:?}");
        assert!(stats.gossip_plans_adopted > 0, "{stats:?}");
        // Nothing new in the peer directory: every further sweep is a
        // stale skip resolved from the listing alone.
        let before = joiner.stats().gossip_skipped_stale;
        joiner.run(&traces, |_, _, _| {});
        let after = joiner.stats();
        assert!(after.gossip_skipped_stale > before, "{after:?}");
        assert_eq!(after.gossip_plans_adopted, stats.gossip_plans_adopted);
        drop(joiner);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gossip_disabled_keeps_counters_zero() {
        let (spikes, w) = test_traces();
        let traces = vec![vec![(&spikes, &w); 8]];
        let mut serving = ServingLoop::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
            ServiceConfig::default(),
        );
        serving.run(&traces, |_, _, _| {});
        let stats = serving.stats();
        assert_eq!(stats.gossip_imports, 0);
        assert_eq!(stats.gossip_plans_adopted, 0);
        assert_eq!(stats.gossip_skipped_stale, 0);
    }

    #[test]
    fn set_gossip_peers_preserves_state_for_kept_directories() {
        let (spikes, w) = test_traces();
        let traces = vec![vec![(&spikes, &w); 4]];
        let base = std::env::temp_dir().join(format!(
            "prosperity_service_peerset_test_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&base).ok();
        let kept = base.join("kept");
        let fresh = base.join("fresh");
        let store = SnapshotStore::new(&kept, 4).expect("open store");
        let mut donor = ServingLoop::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
            ServiceConfig::default(),
        );
        donor.run(&traces, |_, _, _| {});
        store
            .save(&donor.shared_cache().export_hottest(128))
            .expect("save");

        let service = ServiceConfig::default().with_gossip(2, vec![kept.clone()]);
        let mut joiner = ServingLoop::new(
            EngineConfig::new(TileShape::new(8, 8), 128),
            BatchPolicy::RoundRobin,
            service,
        );
        joiner.run(&traces, |_, _, _| {});
        let imported = joiner.stats().gossip_imports;
        assert!(imported >= 1);
        // Membership change keeping the old peer: its staleness cutoff
        // survives, so the kept directory is not re-imported.
        joiner.set_gossip_peers(vec![kept.clone(), fresh.clone()]);
        joiner.run(&traces, |_, _, _| {});
        assert_eq!(joiner.stats().gossip_imports, imported);
        drop(joiner);
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn gc_cadence_counts_evictions() {
        use super::super::cache::AdmissionConfig;
        let (spikes, w) = test_traces();
        let config =
            EngineConfig::new(TileShape::new(8, 8), 256).with_admission(AdmissionConfig::default());
        let service = ServiceConfig::default().with_gc(2, 0);
        let mut serving = ServingLoop::<i64>::new(config, BatchPolicy::RoundRobin, service);
        // Every batch mints a fresh tenant; with max_idle 0, each sweep
        // evicts every window not touched since the previous sweep.
        for _ in 0..6 {
            let traces = vec![vec![(&spikes, &w); 4]];
            serving.run_batch(&traces, |_, _, _| {});
        }
        assert!(serving.stats().gc_evictions > 0);
        let tenants = serving.shared_cache().stats().tenants;
        assert!(tenants <= 2, "table must stay bounded, got {tenants}");
    }
}

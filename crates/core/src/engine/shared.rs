//! The concurrent shard layer over the plan cache: a [`SharedPlanCache`]
//! any number of sessions hit together.

use crate::plan::TileMeta;
use spikemat::SpikeMatrix;
use std::sync::{Arc, Mutex};

use super::cache::{AdmissionConfig, InsertOutcome, PlanCache};
use super::stats::SharedCacheStats;

/// Per-shard aggregate counters, updated under the shard lock.
#[derive(Debug, Default, Clone, Copy)]
struct ShardCounters {
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    bypasses: u64,
    dedups: u64,
}

/// One lock domain of the shared cache.
#[derive(Debug)]
struct Shard {
    cache: PlanCache,
    counters: ShardCounters,
}

/// A concurrent tile-plan cache shared by any number of sessions.
///
/// The key space is split across `2^shard_bits` independent shards by the
/// top bits of the content hash; each shard is a content-addressed LRU
/// behind its
/// own mutex, so sessions planning concurrently contend only when their
/// tiles land in the same shard. Misses are planned *outside* the lock and
/// offered afterwards through an insert that deduplicates racing
/// planners: if another session inserted the same tile first, the resident
/// plan is returned and the duplicate dropped, so memory is shared and
/// results are (trivially — planning is deterministic) bit-identical.
///
/// Eviction is per shard (capacity is divided evenly), so global recency is
/// approximate; with a content-addressed cache this only affects *which*
/// plan is evicted, never correctness.
#[derive(Debug)]
pub struct SharedPlanCache {
    shards: Box<[Mutex<Shard>]>,
    shard_bits: u32,
    capacity: usize,
}

impl SharedPlanCache {
    /// Default shard count: enough lanes that a handful of concurrent
    /// sessions rarely collide, without fragmenting small capacities.
    pub const DEFAULT_SHARDS: usize = 8;

    /// Creates a shared cache with `capacity` total plans across
    /// [`SharedPlanCache::DEFAULT_SHARDS`] shards and no admission policy.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::DEFAULT_SHARDS, None)
    }

    /// Creates a shared cache with an explicit shard count (rounded up to a
    /// power of two, at least 1) and optional admission policy. The
    /// requested `capacity` is divided evenly across shards, rounding each
    /// shard *up* so a tiny capacity still gives every shard at least one
    /// slot; [`SharedPlanCache::capacity`] reports the resulting effective
    /// total (`per_shard × shards`, ≥ the request), so `resident` can never
    /// exceed the advertised capacity.
    pub fn with_shards(capacity: usize, shards: usize, admission: Option<AdmissionConfig>) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shard_bits = n.trailing_zeros();
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(n)
        };
        let capacity = per_shard * n;
        let shards = (0..n)
            .map(|_| {
                Mutex::new(Shard {
                    cache: PlanCache::new(per_shard, admission),
                    counters: ShardCounters::default(),
                })
            })
            .collect();
        Self {
            shards,
            shard_bits,
            capacity,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Effective total plan capacity across all shards (the construction
    /// request rounded up to a whole number of slots per shard).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Plans currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").cache.len())
            .sum()
    }

    /// Whether no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan in every shard (capacity unchanged). Affects
    /// all sessions sharing this cache.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().expect("shard poisoned").cache.clear();
        }
    }

    /// Aggregate counters summed over shards at this instant.
    pub fn stats(&self) -> SharedCacheStats {
        let mut out = SharedCacheStats {
            shards: self.shards.len(),
            capacity: self.capacity,
            ..SharedCacheStats::default()
        };
        for s in self.shards.iter() {
            let s = s.lock().expect("shard poisoned");
            out.hits += s.counters.hits;
            out.misses += s.counters.misses;
            out.insertions += s.counters.insertions;
            out.evictions += s.counters.evictions;
            out.bypasses += s.counters.bypasses;
            out.dedups += s.counters.dedups;
            out.resident += s.cache.len();
        }
        out
    }

    #[inline]
    fn shard_of(&self, hash: u64) -> &Mutex<Shard> {
        // Top bits: decorrelated from the HashMap bucket index, which uses
        // the low bits of the same hash.
        let idx = if self.shard_bits == 0 {
            0
        } else {
            (hash >> (64 - self.shard_bits)) as usize
        };
        &self.shards[idx]
    }

    /// Shard-locked lookup; refreshes recency and feeds that shard's
    /// admission estimator.
    pub(crate) fn lookup(&self, hash: u64, tile: &SpikeMatrix) -> Option<Arc<TileMeta>> {
        let mut shard = self.shard_of(hash).lock().expect("shard poisoned");
        let found = shard.cache.lookup(hash, tile);
        match found {
            Some(_) => shard.counters.hits += 1,
            None => shard.counters.misses += 1,
        }
        found
    }

    /// Lock-free-of-side-effects residency probe (affinity scheduling).
    pub(crate) fn peek(&self, hash: u64, tile: &SpikeMatrix) -> bool {
        self.shard_of(hash)
            .lock()
            .expect("shard poisoned")
            .cache
            .peek(hash, tile)
    }

    /// Offers a freshly planned tile; returns the plan to use plus the
    /// insertion outcome. If a racing session inserted the same tile while
    /// this one was planning, the resident plan wins (deduplication) and
    /// the offer is dropped without counting as an insertion.
    pub(crate) fn insert(
        &self,
        hash: u64,
        tile: &SpikeMatrix,
        meta: Arc<TileMeta>,
    ) -> (Arc<TileMeta>, InsertOutcome) {
        let mut shard = self.shard_of(hash).lock().expect("shard poisoned");
        // Dedup check: the offering session already counted its miss in
        // `lookup`, so this probe feeds neither hit/miss counters nor
        // admission; the race is recorded as its own outcome so the ledger
        // stays balanced (insertions + bypasses + dedups == misses).
        if let Some(resident) = shard.cache.get(hash, tile) {
            shard.counters.dedups += 1;
            return (resident, InsertOutcome::Deduplicated);
        }
        let outcome = shard.cache.insert(hash, tile, Arc::clone(&meta));
        match outcome {
            InsertOutcome::Inserted => shard.counters.insertions += 1,
            InsertOutcome::Evicted => {
                shard.counters.insertions += 1;
                shard.counters.evictions += 1;
            }
            InsertOutcome::Bypassed => shard.counters.bypasses += 1,
            InsertOutcome::Deduplicated => unreachable!("PlanCache never dedups"),
        }
        (meta, outcome)
    }
}

#[cfg(test)]
#[path = "shared_tests.rs"]
mod tests;

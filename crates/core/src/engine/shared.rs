//! The concurrent shard layer over the plan cache: a [`SharedPlanCache`]
//! any number of sessions hit together, with admission tracked *per
//! tenant* and snapshot export that never stops the world.
//!
//! Sharding covers concurrency: the key space is split across power-of-two
//! shards by the top bits of the content hash, one mutexed LRU per shard,
//! so sessions contend only on same-shard tiles and misses are planned
//! outside any lock. Admission, by contrast, is a *stream* property, not a
//! key-space property — a tenant replaying a correlated trace should keep
//! inserting while an uncorrelated tenant sharing the cache gets bypassed
//! — so the sliding-window estimators live in a per-tenant table beside
//! the shards, keyed by the session's tenant id. Snapshot export locks one
//! shard at a time and interleaves the per-shard recency lists, so a
//! serving fleet can checkpoint its hot plans without a global pause.
//!
//! **Fault tolerance.** A lane that panics while holding a shard mutex
//! (the scheduler catches the panic and quarantines the lane — see
//! [`BatchScheduler`](super::BatchScheduler)) leaves that mutex poisoned.
//! Rather than propagating the poison to every other tenant, all lock
//! acquisitions go through recovery helpers: a poisoned *shard* has its
//! entries dropped (the panicking lane may have left the LRU mid-update)
//! and the event counted in [`SharedCacheStats::shard_resets`]; poisoned
//! admission state is adopted as-is, since the sliding-window estimators
//! are advisory counters that no partial update can corrupt structurally.
//! Only the affected shard loses its plans — the other shards, and every
//! surviving tenant, keep serving.

use crate::plan::TileMeta;
use spikemat::{SpikeMatrix, TileShape};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use super::cache::{Admission, AdmissionConfig, InsertOutcome, PlanCache};
use super::snapshot::{ImportReport, PlanSnapshot, SnapshotEntry};
use super::stats::SharedCacheStats;

/// Locks `m`, adopting the state as-is if a previous holder panicked
/// (clearing the poison so later acquisitions stay on the fast path).
///
/// Correct only for state that stays structurally valid under a partial
/// update — advisory counters, admission estimators, collected fault
/// lists. Shard caches instead go through `SharedPlanCache::lock_shard`,
/// which resets the recovered shard's entries.
pub(crate) fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            m.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Per-shard aggregate counters, updated under the shard lock.
#[derive(Debug, Default, Clone, Copy)]
struct ShardCounters {
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    bypasses: u64,
    dedups: u64,
    restored_hits: u64,
}

/// One lock domain of the shared cache.
#[derive(Debug)]
struct Shard {
    cache: PlanCache,
    counters: ShardCounters,
}

/// Registry of the cache's tenants and (when an admission policy is
/// configured) their per-tenant sliding-window admission estimators.
///
/// Every tenant gets its own [`Admission`] window behind its own mutex,
/// created lazily when the first session for that tenant asks for a
/// [`handle`](AdmissionTable::handle), so admission decisions are
/// independent across tenants: one hot tenant's hits cannot hold
/// insertion open for a cold tenant (the historical per-shard leak), and
/// one cold tenant's misses cannot close it for a hot one.
///
/// The table exists even without an admission policy — entries are then
/// liveness-only (no window), so [`SharedCacheStats::tenants`] still
/// reports how many tenants registered sessions and GC still bounds the
/// registry under churn. (The historical bug: the whole table was gated
/// on the policy, so every no-admission deployment reported 0 tenants.)
///
/// Admission is consulted on every lookup and every insert, so the hot
/// path must not funnel through any table-wide lock — that would
/// re-introduce exactly the global serialization point the cache shards
/// exist to avoid. Sessions therefore resolve their tenant's
/// `Arc<Mutex<Admission>>` handle *once* at construction and hit only
/// that mutex afterwards; the registry's own mutex is touched once per
/// session (plus `stats()`), never per tile. Sessions of the *same*
/// tenant still serialize on their shared window — that is the
/// semantics, not a bottleneck to engineer away.
///
/// Deployments with *unbounded* tenant churn (ids minted per request, or a
/// long-lived process serving an open tenant population) would otherwise
/// grow the table forever, so windows carry a last-touched **generation**
/// stamp: every [`handle`](AdmissionTable::handle) resolution stamps the
/// current generation, every [`gc`](AdmissionTable::gc) sweep advances it
/// and evicts windows idle for more than the caller's threshold. Eviction
/// only drops the *registry entry* — sessions still holding the window's
/// `Arc` keep functioning unchanged; a new session for the same tenant id
/// simply starts a fresh window. The
/// [`ServingLoop`](super::ServingLoop) schedules sweeps on a step cadence.
#[derive(Debug)]
struct AdmissionTable {
    /// Admission policy applied per tenant; `None` registers tenants
    /// without windows (liveness tracking only).
    cfg: Option<AdmissionConfig>,
    /// GC clock: advanced once per [`AdmissionTable::gc`] sweep.
    generation: AtomicU64,
    states: Mutex<HashMap<u64, TenantWindow>>,
}

/// One tenant's registry entry: its admission window (when the cache has
/// an admission policy) plus its GC bookkeeping.
#[derive(Debug)]
struct TenantWindow {
    window: Option<Arc<Mutex<Admission>>>,
    /// Generation at which this tenant last resolved its handle.
    last_touch: u64,
}

impl AdmissionTable {
    fn new(cfg: Option<AdmissionConfig>) -> Self {
        Self {
            cfg,
            generation: AtomicU64::new(0),
            states: Mutex::new(HashMap::new()),
        }
    }

    /// Registers `tenant` (stamping the current GC generation either way)
    /// and returns its shared admission window — created on first request,
    /// `None` when the cache has no admission policy.
    fn handle(&self, tenant: u64) -> Option<Arc<Mutex<Admission>>> {
        let mut states = lock_recovering(&self.states);
        // Read the generation under the states lock so the stamp
        // linearizes with concurrent `gc` sweeps (a sweep between load and
        // stamp would otherwise record a one-generation-stale touch).
        let generation = self.generation.load(Ordering::Relaxed);
        let cfg = self.cfg;
        let entry = states.entry(tenant).or_insert_with(|| TenantWindow {
            window: cfg.map(|c| Arc::new(Mutex::new(Admission::new(c)))),
            last_touch: generation,
        });
        entry.last_touch = generation;
        entry.window.clone()
    }

    /// Re-stamps `tenant`'s last touch to the current generation, if its
    /// window is still registered (never creates one). The serving loop
    /// calls this for its live lanes before each sweep so *actively
    /// executing* tenants can never be evicted mid-batch — handle
    /// resolution alone only marks batch starts.
    fn touch(&self, tenant: u64) {
        let mut states = lock_recovering(&self.states);
        let generation = self.generation.load(Ordering::Relaxed);
        if let Some(entry) = states.get_mut(&tenant) {
            entry.last_touch = generation;
        }
    }

    /// One GC sweep: evicts every window whose last touch is more than
    /// `max_idle` generations old (idle 0 = touched since the previous
    /// sweep), then advances the generation. Returns the number evicted.
    /// The clock is read and advanced under the states lock, so stamps
    /// ([`handle`](AdmissionTable::handle)/[`touch`](AdmissionTable::touch))
    /// linearize with sweeps.
    fn gc(&self, max_idle: u64) -> usize {
        let mut states = lock_recovering(&self.states);
        let generation = self.generation.load(Ordering::Relaxed);
        let before = states.len();
        states.retain(|_, w| generation.saturating_sub(w.last_touch) <= max_idle);
        // Advance *after* the sweep, so a window stamped since the
        // previous sweep measures idle 0 at this one.
        self.generation.store(generation + 1, Ordering::Relaxed);
        before - states.len()
    }

    fn tenant_count(&self) -> usize {
        lock_recovering(&self.states).len()
    }
}

/// A concurrent tile-plan cache shared by any number of sessions.
///
/// The key space is split across `2^shard_bits` independent shards by the
/// top bits of the content hash; each shard is a content-addressed LRU
/// behind its
/// own mutex, so sessions planning concurrently contend only when their
/// tiles land in the same shard. Misses are planned *outside* the lock and
/// offered afterwards through an insert that deduplicates racing
/// planners: if another session inserted the same tile first, the resident
/// plan is returned and the duplicate dropped, so memory is shared and
/// results are (trivially — planning is deterministic) bit-identical.
///
/// Eviction is per shard (capacity is divided evenly), so global recency is
/// approximate; with a content-addressed cache this only affects *which*
/// plan is evicted, never correctness. Admission (when configured) is
/// tracked per *tenant*, not per shard — see
/// [`Session::with_shared_tenant`](super::Session::with_shared_tenant).
///
/// ```
/// use prosperity_core::engine::{EngineConfig, Session, SharedPlanCache};
/// use spikemat::gemm::{spiking_gemm, OutputMatrix, WeightMatrix};
/// use spikemat::SpikeMatrix;
/// use std::sync::Arc;
///
/// // Two sessions plan through one cache: whichever session plans a tile
/// // first warms it for the other, bit-identically.
/// let shared = Arc::new(SharedPlanCache::new(1024));
/// let config = EngineConfig::default();
/// let mut a = Session::<i64>::with_shared(config, Arc::clone(&shared));
/// let mut b = Session::<i64>::with_shared(config, Arc::clone(&shared));
///
/// let spikes = SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[1, 1, 1]]);
/// let weights = WeightMatrix::from_fn(3, 2, |r, c| (r + 2 * c) as i64);
/// let mut out = OutputMatrix::zeros(0, 0);
/// a.gemm_into(&spikes, &weights, &mut out);
/// b.gemm_into(&spikes, &weights, &mut out);
/// assert_eq!(out, spiking_gemm(&spikes, &weights));
/// // Session `a` planned the tiles; session `b` reused every one of them.
/// assert_eq!(b.stats().cache_misses, 0);
/// assert_eq!(shared.stats().dedups, 0);
/// ```
#[derive(Debug)]
pub struct SharedPlanCache {
    shards: Box<[Mutex<Shard>]>,
    shard_bits: u32,
    capacity: usize,
    /// Tenant registry (admission windows when a policy is configured;
    /// liveness-only entries otherwise).
    admission: AdmissionTable,
    /// Poisoned shards recovered (entries dropped) — see module docs.
    shard_resets: AtomicU64,
    /// Nanoseconds shard mutexes were held across lookups and insertions
    /// (acquisition → release), the serving hot path's contention budget.
    lock_hold_ns: AtomicU64,
}

impl SharedPlanCache {
    /// The historical fixed shard count. [`SharedPlanCache::new`] now
    /// derives its shard count from the host and the capacity instead
    /// ([`SharedPlanCache::recommended_shards`]); this constant remains
    /// for callers that want the old layout via
    /// [`SharedPlanCache::with_shards`].
    pub const DEFAULT_SHARDS: usize = 8;

    /// Shard count ceiling for [`SharedPlanCache::recommended_shards`].
    const MAX_RECOMMENDED_SHARDS: usize = 64;

    /// Creates a shared cache with `capacity` total plans, no admission
    /// policy, and a shard count derived from the host's parallelism and
    /// the capacity ([`SharedPlanCache::recommended_shards`]). Use
    /// [`SharedPlanCache::with_shards`] to pin an explicit shard count.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::recommended_shards(capacity), None)
    }

    /// The shard count [`SharedPlanCache::new`] would pick for `capacity`:
    /// about four lock domains per hardware thread — measured
    /// `lock_hold_ns` per operation is flat from 1 to 4+ threads' worth of
    /// shards on the serving bench, so the extra headroom costs nothing —
    /// rounded up to a power of two, capped at 64, and never more than one
    /// shard per 8 plans of capacity so tiny caches don't fragment into
    /// single-slot LRUs (a 0-capacity cache gets 1 shard).
    pub fn recommended_shards(capacity: usize) -> usize {
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let by_threads = (threads * 4)
            .next_power_of_two()
            .min(Self::MAX_RECOMMENDED_SHARDS);
        let by_capacity = (capacity / 8).max(1).next_power_of_two();
        by_threads.min(by_capacity)
    }

    /// Creates a shared cache with an explicit shard count (rounded up to a
    /// power of two, at least 1) and optional admission policy (tracked per
    /// tenant). The requested `capacity` is divided evenly across shards,
    /// rounding each shard *up* so a tiny capacity still gives every shard
    /// at least one slot; [`SharedPlanCache::capacity`] reports the
    /// resulting effective total (`per_shard × shards`, ≥ the request), so
    /// `resident` can never exceed the advertised capacity.
    pub fn with_shards(capacity: usize, shards: usize, admission: Option<AdmissionConfig>) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shard_bits = n.trailing_zeros();
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(n)
        };
        let capacity = per_shard * n;
        let shards = (0..n)
            .map(|_| {
                Mutex::new(Shard {
                    // Admission lives in the per-tenant table, never in the
                    // shard caches.
                    cache: PlanCache::new(per_shard, None),
                    counters: ShardCounters::default(),
                })
            })
            .collect();
        Self {
            shards,
            shard_bits,
            capacity,
            admission: AdmissionTable::new(admission),
            shard_resets: AtomicU64::new(0),
            lock_hold_ns: AtomicU64::new(0),
        }
    }

    /// Locks a shard, recovering from poison by dropping the shard's
    /// entries: a lane that panicked under this lock may have left the
    /// LRU mid-update, so the shard restarts cold (its plans are
    /// re-planned on demand — deterministically, so results are
    /// unchanged) rather than serving possibly-torn state. Each recovery
    /// bumps [`SharedPlanCache::shard_resets`]; counters and the other
    /// shards are untouched.
    fn lock_shard<'a>(&self, m: &'a Mutex<Shard>) -> std::sync::MutexGuard<'a, Shard> {
        match m.lock() {
            Ok(guard) => guard,
            Err(poisoned) => {
                m.clear_poison();
                let mut guard = poisoned.into_inner();
                guard.cache.clear();
                self.shard_resets.fetch_add(1, Ordering::Relaxed);
                guard
            }
        }
    }

    /// Poisoned shard mutexes recovered so far (entries dropped, serving
    /// continued). Also reported as [`SharedCacheStats::shard_resets`].
    pub fn shard_resets(&self) -> u64 {
        self.shard_resets.load(Ordering::Relaxed)
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Effective total plan capacity across all shards (the construction
    /// request rounded up to a whole number of slots per shard).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Plans currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| self.lock_shard(s).cache.len())
            .sum()
    }

    /// Whether no plans are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan in every shard (capacity unchanged). Affects
    /// all sessions sharing this cache.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            self.lock_shard(s).cache.clear();
        }
    }

    /// Zeroes the per-shard aggregate counters (hits, misses, insertions,
    /// evictions, bypasses, dedups, restored hits). Cache contents,
    /// residency, and admission state are untouched — this resets the
    /// *ledger*, not the cache. Visible to every session sharing this
    /// cache, so call it at a quiesced point (e.g.
    /// [`BatchScheduler::reset_stats`](super::BatchScheduler::reset_stats)
    /// between measurement windows).
    pub fn reset_stats(&self) {
        for s in self.shards.iter() {
            self.lock_shard(s).counters = ShardCounters::default();
        }
        self.lock_hold_ns.store(0, Ordering::Relaxed);
    }

    /// One tenant-table GC sweep: advances the table's generation clock
    /// and evicts every tenant entry that has not resolved a handle
    /// (session construction, [`BatchScheduler::begin_batch_as`]) for more
    /// than `max_idle` sweeps. Returns the number of entries evicted.
    /// Without an admission policy the entries are liveness-only, but GC
    /// still bounds the registry under tenant churn.
    ///
    /// Sessions still holding an evicted window's handle keep working —
    /// only the registry entry is dropped, bounding the table under
    /// unbounded tenant churn; a later session for the same tenant id
    /// starts a fresh window. The [`ServingLoop`](super::ServingLoop) runs
    /// sweeps on a step cadence
    /// ([`ServiceConfig::gc_every`](super::ServiceConfig)).
    ///
    /// [`BatchScheduler::begin_batch_as`]: super::BatchScheduler::begin_batch_as
    pub fn gc_tenants(&self, max_idle: u64) -> usize {
        self.admission.gc(max_idle)
    }

    /// Marks `tenant` as alive *now* for tenant-table GC purposes, without
    /// registering it (a no-op for unknown tenants). Handle resolution
    /// only stamps batch starts; the serving loop calls this for its live
    /// lanes before each sweep so a tenant in the middle of a long batch
    /// is never treated as idle.
    pub fn touch_tenant(&self, tenant: u64) {
        self.admission.touch(tenant);
    }

    /// Aggregate counters summed over shards at this instant.
    pub fn stats(&self) -> SharedCacheStats {
        let mut out = SharedCacheStats {
            shards: self.shards.len(),
            capacity: self.capacity,
            tenants: self.admission.tenant_count(),
            ..SharedCacheStats::default()
        };
        for s in self.shards.iter() {
            let s = self.lock_shard(s);
            out.hits += s.counters.hits;
            out.misses += s.counters.misses;
            out.insertions += s.counters.insertions;
            out.evictions += s.counters.evictions;
            out.bypasses += s.counters.bypasses;
            out.dedups += s.counters.dedups;
            out.restored_hits += s.counters.restored_hits;
            out.resident += s.cache.len();
            out.restored_resident += s.cache.restored_resident();
        }
        // Read after the loop: locking every shard above recovers any
        // still-poisoned shard, so the count is settled by now.
        out.shard_resets = self.shard_resets.load(Ordering::Relaxed);
        out.lock_hold_ns = self.lock_hold_ns.load(Ordering::Relaxed);
        out
    }

    /// Exports the up-to-`n` hottest plans across all shards as a
    /// [`PlanSnapshot`], without stopping the world: shards are locked one
    /// at a time, and their recency lists are interleaved rank-by-rank
    /// (every shard's MRU entry before any shard's second entry), the same
    /// approximation of global recency that per-shard eviction already
    /// accepts.
    pub fn export_hottest(&self, n: usize) -> PlanSnapshot {
        // First pass: shard depths only, so the clone work below can be
        // bounded — without this, every shard would have to export up to
        // `n` entries (shards × n clones under the locks) for the merge
        // to keep only `n`.
        let lens: Vec<usize> = self
            .shards
            .iter()
            .map(|s| self.lock_shard(s).cache.len())
            .collect();
        let target = n.min(lens.iter().sum());
        // Smallest per-shard depth whose rank interleave covers `target`
        // entries; at most `target + shards` entries are then cloned.
        let (mut lo, mut hi) = (0usize, lens.iter().copied().max().unwrap_or(0));
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if lens.iter().map(|&l| l.min(mid)).sum::<usize>() >= target {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let depth = lo;
        // Second pass: export and merge. A shard mutated between the
        // passes can only make the export slightly smaller or staler —
        // the same approximation concurrent eviction already imposes.
        let mut per_shard: Vec<std::vec::IntoIter<SnapshotEntry>> = self
            .shards
            .iter()
            .zip(&lens)
            .map(|(s, &l)| {
                self.lock_shard(s)
                    .cache
                    .export_hottest(l.min(depth))
                    .into_iter()
            })
            .collect();
        let mut entries = Vec::with_capacity(target);
        'merge: for _rank in 0..depth {
            for shard in per_shard.iter_mut() {
                if let Some(entry) = shard.next() {
                    if entries.len() == n {
                        break 'merge;
                    }
                    entries.push(entry);
                }
            }
        }
        PlanSnapshot { entries }
    }

    /// Restores a snapshot's plans into this cache, routing every entry to
    /// its shard (shards are locked one at a time). `tile` is the shape
    /// this cache's sessions serve: entries planned for a different
    /// geometry are dropped as [`ImportReport::skipped_shape`] — a
    /// wrong-shape plan's key can (rarely) equal a live tile's flat limbs
    /// and would then misindex the executor at serve time. Capacity is
    /// respected per shard — surplus entries degrade to a partial restore,
    /// live entries are never evicted — and the admission table is
    /// untouched: a restore is not traffic. Returns the merged per-shard
    /// report.
    pub fn import(&self, snapshot: &PlanSnapshot, tile: TileShape) -> ImportReport {
        let mut routed: Vec<Vec<SnapshotEntry>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut skipped_shape = 0;
        for entry in &snapshot.entries {
            if entry.matches_shape(tile.m, tile.k) {
                routed[self.shard_index(entry.hash)].push(entry.clone());
            } else {
                skipped_shape += 1;
            }
        }
        let mut report = ImportReport {
            requested: skipped_shape,
            skipped_shape,
            ..ImportReport::default()
        };
        for (shard, entries) in self.shards.iter().zip(routed) {
            let delta = self.lock_shard(shard).cache.import(entries);
            report.merge(&delta);
        }
        report
    }

    #[inline]
    fn shard_index(&self, hash: u64) -> usize {
        // Top bits: decorrelated from the HashMap bucket index, which uses
        // the low bits of the same hash.
        if self.shard_bits == 0 {
            0
        } else {
            (hash >> (64 - self.shard_bits)) as usize
        }
    }

    #[inline]
    fn shard_of(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[self.shard_index(hash)]
    }

    /// Registers `tenant` in the tenant table and returns its admission
    /// window (`None` when this cache has no admission policy — the tenant
    /// is still registered, so it counts in [`SharedCacheStats::tenants`]).
    /// Sessions resolve this once at construction and pass it to
    /// [`SharedPlanCache::lookup`]/[`SharedPlanCache::insert`], so the per-
    /// tile hot path touches only the tenant's own mutex, never a table.
    pub(crate) fn admission_handle(&self, tenant: u64) -> Option<Arc<Mutex<Admission>>> {
        self.admission.handle(tenant)
    }

    /// Shard-locked lookup; refreshes recency and feeds the caller's
    /// admission window (its session's tenant — see
    /// [`SharedPlanCache::admission_handle`]). A hit reports whether the
    /// serving entry was snapshot-restored.
    pub(crate) fn lookup(
        &self,
        hash: u64,
        tile: &SpikeMatrix,
        admission: Option<&Mutex<Admission>>,
    ) -> Option<(Arc<TileMeta>, bool)> {
        let found = {
            let mut shard = self.lock_shard(self.shard_of(hash));
            let held = std::time::Instant::now();
            let found = shard.cache.lookup(hash, tile);
            match &found {
                Some((_, restored)) => {
                    shard.counters.hits += 1;
                    shard.counters.restored_hits += u64::from(*restored);
                }
                None => shard.counters.misses += 1,
            }
            self.lock_hold_ns
                .fetch_add(held.elapsed().as_nanos() as u64, Ordering::Relaxed);
            found
        };
        // The shard lock is already released; the tenant's window is its
        // own (brief) lock domain.
        if let Some(a) = admission {
            lock_recovering(a).record(found.is_some());
        }
        found
    }

    /// Lock-free-of-side-effects residency probe (affinity scheduling).
    pub(crate) fn peek(&self, hash: u64, tile: &SpikeMatrix) -> bool {
        self.lock_shard(self.shard_of(hash)).cache.peek(hash, tile)
    }

    /// Offers a freshly planned tile; returns the plan to use plus the
    /// insertion outcome. If a racing session inserted the same tile
    /// while this one was planning, the resident plan wins (deduplication)
    /// and the offer is dropped without counting as an insertion;
    /// otherwise the caller's tenant admission window (if any) decides
    /// whether the plan is stored or bypassed.
    pub(crate) fn insert(
        &self,
        hash: u64,
        tile: &SpikeMatrix,
        meta: Arc<TileMeta>,
        admission: Option<&Mutex<Admission>>,
    ) -> (Arc<TileMeta>, InsertOutcome) {
        let mut shard = self.lock_shard(self.shard_of(hash));
        let held = std::time::Instant::now();
        // Injected-fault hook: a panic here unwinds with the shard mutex
        // held, poisoning it — exactly the scenario `lock_shard` recovers.
        #[cfg(any(test, feature = "fault-injection"))]
        super::faults::maybe_panic_shard();
        // Dedup check: the offering session already counted its miss in
        // `lookup`, so this probe feeds neither hit/miss counters nor
        // admission; the race is recorded as its own outcome so the ledger
        // stays balanced (insertions + bypasses + dedups == misses).
        let result = if let Some(resident) = shard.cache.get(hash, tile) {
            shard.counters.dedups += 1;
            (resident, InsertOutcome::Deduplicated)
        // Tenant admission, consulted only for a real (non-dedup) offer.
        // Lock order is always shard → admission window, so the nesting
        // cannot deadlock against `lookup` (which takes them disjointly).
        } else if admission.is_some_and(|a| !lock_recovering(a).should_insert()) {
            shard.counters.bypasses += 1;
            (meta, InsertOutcome::Bypassed)
        } else {
            let outcome = shard.cache.insert(hash, tile, Arc::clone(&meta));
            match outcome {
                InsertOutcome::Inserted => shard.counters.insertions += 1,
                InsertOutcome::Evicted => {
                    shard.counters.insertions += 1;
                    shard.counters.evictions += 1;
                }
                InsertOutcome::Bypassed => shard.counters.bypasses += 1,
                InsertOutcome::Deduplicated => unreachable!("PlanCache never dedups"),
            }
            (meta, outcome)
        };
        self.lock_hold_ns
            .fetch_add(held.elapsed().as_nanos() as u64, Ordering::Relaxed);
        result
    }
}

#[cfg(test)]
#[path = "shared_tests.rs"]
mod tests;

//! The serving runtime: end-to-end trace execution for one stream or many
//! concurrent streams, layered as
//!
//! | module | layer |
//! |---|---|
//! | [`cache`] | content-addressed plan LRU + adaptive admission |
//! | [`shared`] | the sharded concurrent [`SharedPlanCache`], per-tenant admission |
//! | [`snapshot`] | [`PlanSnapshot`]: persist hot plans across restarts (atomic writes) |
//! | [`store`] | [`SnapshotStore`]: retained, checksum-verified snapshot directory with corrupt-file quarantine |
//! | `pool` | recycled executor buffers (internal) |
//! | [`session`] | one stream's state: [`Session`] (= the historical [`Engine`]) |
//! | [`batch`] | [`BatchScheduler`] interleaving many traces over one shared cache (QoS policies, lane quarantine) |
//! | [`service`] | [`ServingLoop`]: background snapshot export + admission GC cadences |
//! | [`stats`] | mergeable per-session counters + shared-cache/scheduler aggregates |
//! | `faults` | deterministic fault injection (tests and the `fault-injection` feature only) |
//!
//! [`crate::exec::prosparsity_gemm`] re-plans and re-allocates everything on
//! every call. That is the right shape for one-shot algorithm studies but
//! wrong for serving model traces, where the same layer geometry recurs
//! every timestep and the spike matrices are *temporally correlated*: SNN
//! neurons tend to keep (or barely change) their firing pattern across
//! adjacent timesteps, so whole spike tiles repeat verbatim — across
//! timesteps, across layers, and across concurrent requests running the
//! same model. The runtime exploits every form of that redundancy:
//!
//! * **Plan cache** — per-tile meta information is keyed by a fast hash of
//!   the tile's raw bit limbs (verified by full limb comparison, so a hash
//!   collision can never substitute a wrong plan) and held in an LRU. A
//!   repeated tile skips the Detector/Pruner/Dispatcher entirely. Cached
//!   plans are position-independent: the same entry serves a tile wherever
//!   it appears in the grid — or in whichever *session* it appears, when
//!   sessions plan through one [`SharedPlanCache`] (sharded by the top
//!   bits of the content hash, one lock per shard, misses planned outside
//!   the lock and deduplicated on insert).
//! * **Adaptive admission** — a sliding-window hit-rate estimator
//!   ([`AdmissionConfig`]) bypasses cache insertion when the stream is
//!   uncorrelated, so miss-heavy traffic stops paying key-copy + LRU +
//!   eviction bookkeeping for reuse that never materializes; a sparse
//!   probe stream re-opens admission when correlation returns. On a
//!   shared cache the estimator is keyed per *tenant*
//!   ([`Session::with_shared_tenant`]), so co-located hot and cold
//!   streams get independent admission decisions.
//! * **Warm-start snapshots** — the hottest plans of any cache can be
//!   exported to a versioned, checksummed binary [`PlanSnapshot`] and
//!   re-imported after a process restart ([`Session::warm_start`],
//!   [`BatchScheduler::warm_start`]), so a restarted server begins at a
//!   warm hit rate instead of re-planning its whole working set;
//!   restored-plan hits are surfaced as [`EngineStats::restored_hits`].
//! * **Scratch reuse** — cache misses are planned through one persistent
//!   [`PlanScratch`](crate::plan::PlanScratch), so steady-state planning
//!   allocates only for the meta it emits.
//! * **Buffer pooling** — output matrices, executor arenas, and the
//!   spike-chain ping-pong buffers are recycled across layers, calls, and
//!   (via the [`BatchScheduler`]'s persistent lanes) whole traces.
//! * **Row-tile parallelism** — with the `parallel` feature (default),
//!   execution distributes row-tiles across threads exactly like
//!   [`crate::exec::execute_plan`], with bit-identical results; the
//!   `*_serial` entry points remain the oracle.
//! * **QoS scheduling + lifecycle** — beyond round-robin and
//!   cache-affinity, the [`BatchScheduler`] offers
//!   [`BatchPolicy::Weighted`] (deficit-round-robin step shares) and
//!   [`BatchPolicy::Deadline`] (earliest-deadline-first over step budgets
//!   with a starvation guard), recorded in [`SchedulerStats`]; a
//!   [`ServingLoop`] adds the long-running-process jobs — background
//!   snapshot export and admission-table GC on step cadences.
//!
//! Losslessness is preserved throughout: for any input,
//! [`Session::gemm_into`] produces bit-for-bit the output of
//! [`crate::exec::prosparsity_gemm`] (and thus of the reference
//! [`spikemat::gemm::spiking_gemm`]) — whatever the cache backend,
//! admission decisions, scheduling policy, or number of concurrent
//! sessions. Plans are pure functions of tile content, so sharing them can
//! change *who* plans, never *what* runs. Cache effectiveness is surfaced
//! through [`EngineStats`] / [`SharedCacheStats`].
//!
//! The runtime is additionally **fault tolerant**: a panicking lane is
//! quarantined ([`LaneFault`]) instead of aborting the batch, a poisoned
//! shared-cache shard recovers by resetting only its own entries, and
//! snapshots are written atomically with retention and corrupt-file
//! quarantine ([`SnapshotStore`]). All of it is exercised by the
//! deterministic fault-injection harness (`faults`, compiled for tests and
//! the `fault-injection` feature) and accounted in [`SchedulerStats`].

pub mod batch;
pub mod cache;
#[cfg(any(test, feature = "fault-injection"))]
pub mod faults;
pub mod fleet;
pub(crate) mod pool;
pub mod service;
pub mod session;
pub mod shared;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use batch::{BatchPolicy, BatchScheduler, LaneFault, TraceStep, DEADLINE_STARVATION_GUARD};
pub use cache::AdmissionConfig;
pub use fleet::{FleetHarness, Ring};
pub use service::{ServiceConfig, ServingLoop};
pub use session::{Engine, Session, SliceRun};
pub use shared::SharedPlanCache;
pub use snapshot::{ImportReport, PlanSnapshot, SnapshotError};
pub use stats::{EngineStats, SchedulerStats, SharedCacheStats};
pub use store::SnapshotStore;

use serde::{Deserialize, Serialize};
use spikemat::gemm::OutputMatrix;
use spikemat::{SpikeMatrix, TileShape};
use std::ops::AddAssign;

/// Element types the engine can accumulate.
///
/// With the `parallel` feature this additionally requires `Send + Sync` so
/// row-tiles can execute across threads; every integer and float type
/// qualifies either way.
#[cfg(feature = "parallel")]
pub trait Element: Copy + Default + AddAssign + Send + Sync + 'static {}
#[cfg(feature = "parallel")]
impl<T: Copy + Default + AddAssign + Send + Sync + 'static> Element for T {}

/// Element types the engine can accumulate (serial build).
#[cfg(not(feature = "parallel"))]
pub trait Element: Copy + Default + AddAssign + 'static {}
#[cfg(not(feature = "parallel"))]
impl<T: Copy + Default + AddAssign + 'static> Element for T {}

/// Session construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Accelerator tile geometry every GeMM is decomposed under.
    pub tile: TileShape,
    /// Maximum number of cached tile plans (LRU evicted beyond this);
    /// 0 disables the cache entirely. For a session created with
    /// [`Session::with_shared`], capacity belongs to the shared cache and
    /// this field is ignored.
    pub cache_capacity: usize,
    /// Adaptive cache-insertion bypass; `None` always admits (the
    /// historical behaviour).
    pub admission: Option<AdmissionConfig>,
}

impl EngineConfig {
    /// Config with the given tile geometry and cache capacity, no
    /// admission policy.
    pub fn new(tile: TileShape, cache_capacity: usize) -> Self {
        Self {
            tile,
            cache_capacity,
            admission: None,
        }
    }

    /// Enables the adaptive insertion-bypass policy.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }
}

impl Default for EngineConfig {
    /// The paper's default tile geometry with a 1024-plan cache (roughly
    /// 25 MB of meta information at the default 256×16 tile).
    fn default() -> Self {
        Self::new(TileShape::prosperity_default(), 1024)
    }
}

/// Binarizes an integer/float output into spikes: bit `(i, j)` fires iff
/// `values[i][j] >= threshold`. `out` is resized in place (the session's
/// pooled layer-chaining step).
pub fn threshold_spikes<T: Copy + Default + AddAssign + PartialOrd>(
    values: &OutputMatrix<T>,
    threshold: T,
    out: &mut SpikeMatrix,
) {
    out.reset(values.rows(), values.cols());
    for i in 0..values.rows() {
        for (j, v) in values.row(i).iter().enumerate() {
            if *v >= threshold {
                out.set(i, j, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_spikes_binarizes() {
        let mut o = OutputMatrix::<i64>::zeros(2, 3);
        o.accumulate_row(0, &[3, -1, 2]);
        o.accumulate_row(1, &[0, 2, 1]);
        let mut s = SpikeMatrix::zeros(9, 9);
        threshold_spikes(&o, 2, &mut s);
        assert_eq!(s, SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[0, 1, 0]]));
    }

    #[test]
    fn config_builders_compose() {
        let c =
            EngineConfig::new(TileShape::new(4, 4), 8).with_admission(AdmissionConfig::default());
        assert_eq!(c.cache_capacity, 8);
        assert!(c.admission.is_some());
        assert_eq!(EngineConfig::default().admission, None);
    }
}

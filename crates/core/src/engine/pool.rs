//! Recycled executor buffers shared across layers, calls, and worker
//! threads.

use std::sync::Mutex;

/// Reusable executor buffers for one row-tile worker.
#[derive(Debug)]
pub(crate) struct ExecScratch<T> {
    pub(crate) arena: Vec<T>,
    pub(crate) parents: Vec<bool>,
    pub(crate) simple: Vec<bool>,
}

impl<T> Default for ExecScratch<T> {
    fn default() -> Self {
        Self {
            arena: Vec::new(),
            parents: Vec::new(),
            simple: Vec::new(),
        }
    }
}

/// Pool of recycled buffers shared across layers, calls, and worker threads.
///
/// Holds the executor arenas (checked out per row-tile, including from rayon
/// workers — hence the mutex, which is touched twice per row-tile and never
/// inside the accumulation loops). The output and spike-chain buffers live
/// directly on the [`Session`](super::Session).
#[derive(Debug, Default)]
pub(crate) struct BufferPool<T> {
    exec: Mutex<Vec<ExecScratch<T>>>,
}

impl<T> BufferPool<T> {
    pub(crate) fn take_exec(&self) -> ExecScratch<T> {
        self.exec
            .lock()
            .expect("buffer pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    pub(crate) fn put_exec(&self, scratch: ExecScratch<T>) {
        self.exec
            .lock()
            .expect("buffer pool poisoned")
            .push(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_buffers() {
        let pool: BufferPool<i64> = BufferPool::default();
        let mut s = pool.take_exec();
        s.arena.resize(64, 0);
        pool.put_exec(s);
        let s2 = pool.take_exec();
        assert!(s2.arena.capacity() >= 64);
    }
}

//! Plan-cache snapshots: persist the hottest plans across process restarts.
//!
//! The serving runtime's whole advantage is a warm plan cache — but the
//! cache dies with the process, so every restart pays the full cold
//! planning cost again until the hit rate recovers. A [`PlanSnapshot`]
//! captures the hottest N entries of a cache (keys, tile metas, pattern
//! limbs, recency order, and per-entry hit counts) in a versioned,
//! checksummed binary format, and a restarted process imports it to start
//! at a warm hit rate instead of zero.
//!
//! Snapshots are taken at shutdown (`Session::export_snapshot`,
//! [`SharedPlanCache::export_hottest`](super::SharedPlanCache::export_hottest))
//! or *periodically while serving*: a
//! [`ServingLoop`](super::ServingLoop) launches shard-at-a-time exports
//! on a background thread on an executed-step cadence, so a long-running
//! fleet always has a recent warm-start image without ever pausing its
//! lanes.
//!
//! The codec follows the `trace_io` style: a hand-rolled little-endian
//! layout over [`bytes`], no `serde` on the hot types, and decode paths
//! that fail cleanly (never panic) on truncated, corrupt, or
//! version-skewed input. Restores are *exact*: an imported entry is
//! bit-identical to the exported one — same key limbs, same
//! [`TileMeta`] down to the packed pattern limbs —
//! so a warm-started cache serves exactly the plans the original process
//! would have (property-tested in `tests/serving.rs`).
//!
//! Format (little-endian):
//!
//! ```text
//! magic "PSNP" | version u32 | entry count u32 | payload checksum u64
//! payload, per entry (hottest first):
//!   hash u64 | hits u64 | key limb count u32 | key limbs (u64 each)
//!   row_start u64 | col_start u64 | valid_rows u32 | valid_cols u32
//!   sorter_stages u32 | row count u32 | pattern bit-length u32
//!   per row: prefix u32 (u32::MAX = none) | kind u8
//!            | pattern limbs (⌈bits/64⌉ u64 each)
//!   order: row count × u32
//! ```
//!
//! The checksum (FNV-1a over the payload) is verified before any payload
//! field is trusted; the per-entry hash is additionally re-derived from
//! the key limbs on decode, so a flipped bit in either is caught twice.
//! `pattern_limbs` is not stored — it is by construction the
//! concatenation of the per-row patterns and is rebuilt on decode.
//!
//! Typical lifecycle:
//!
//! ```
//! use prosperity_core::engine::{Engine, PlanSnapshot, Session};
//! use spikemat::gemm::{OutputMatrix, WeightMatrix};
//! use spikemat::SpikeMatrix;
//!
//! // A serving process warms its cache...
//! let mut engine = Engine::<i64>::default();
//! let spikes = SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[1, 0, 1]]);
//! let weights = WeightMatrix::from_fn(3, 2, |r, c| (r + c) as i64);
//! let mut out = OutputMatrix::zeros(0, 0);
//! engine.gemm_into(&spikes, &weights, &mut out);
//!
//! // ...snapshots the hottest plans at shutdown...
//! let bytes = engine.export_snapshot(1024).encode();
//!
//! // ...and the next process starts warm instead of cold.
//! let snapshot = PlanSnapshot::decode(bytes).expect("valid snapshot");
//! let (mut warm, report) = Session::<i64>::warm_start(*engine.config(), &snapshot);
//! assert_eq!(report.restored, snapshot.len());
//! warm.gemm_into(&spikes, &weights, &mut out);
//! assert_eq!(warm.stats().restored_hits, warm.stats().cache_hits);
//! ```

use crate::plan::{RowMeta, TileMeta};
use crate::prune::MatchKind;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use spikemat::BitRow;
use std::fmt;
use std::sync::Arc;

use super::cache::hash_limbs;

const MAGIC: &[u8; 4] = b"PSNP";
const VERSION: u32 = 1;
/// Fixed header size: magic (4) + version (4) + count (4) + checksum (8).
const HEADER_BYTES: usize = 20;
/// Sentinel for "no prefix" in the on-disk row encoding.
const NO_PREFIX: u32 = u32::MAX;

/// Errors raised while decoding or loading a serialized snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the `PSNP` magic.
    BadMagic,
    /// Unsupported format version (older/newer writer).
    BadVersion(u32),
    /// The buffer ended before the declared contents.
    Truncated,
    /// The payload checksum does not match its contents.
    ChecksumMismatch,
    /// A field held an invalid value (e.g. an out-of-range prefix index).
    Corrupt(&'static str),
    /// Reading the snapshot file failed.
    Io(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a plan snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot buffer truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot field: {what}"),
            SnapshotError::Io(err) => write!(f, "snapshot io: {err}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// What an import did with the snapshot's entries.
///
/// `requested == restored + skipped_capacity + skipped_duplicate +
/// skipped_shape` always holds; a partial restore (snapshot larger than
/// the restoring cache) shows up as `skipped_capacity > 0`, never as an
/// error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Entries the snapshot offered.
    pub requested: usize,
    /// Entries now resident because of this import.
    pub restored: usize,
    /// Hottest-first surplus dropped because the cache ran out of room
    /// (import never evicts live entries).
    pub skipped_capacity: usize,
    /// Entries whose key was already resident (e.g. importing into an
    /// already-warm cache).
    pub skipped_duplicate: usize,
    /// Entries whose tile geometry does not match the importing session's
    /// configured tile shape (a snapshot from a differently-configured
    /// process — its plans could never be looked up here, and a
    /// wrong-shape plan must never be served).
    pub skipped_shape: usize,
}

impl ImportReport {
    /// Accumulates another shard's or session's report into this one.
    pub fn merge(&mut self, other: &ImportReport) {
        self.requested += other.requested;
        self.restored += other.restored;
        self.skipped_capacity += other.skipped_capacity;
        self.skipped_duplicate += other.skipped_duplicate;
        self.skipped_shape += other.skipped_shape;
    }
}

/// One exported cache entry: the full content key, the plan, and its
/// popularity metadata.
#[derive(Debug, Clone)]
pub(crate) struct SnapshotEntry {
    /// Content hash of `limbs` (redundant — re-derived and cross-checked on
    /// decode).
    pub(crate) hash: u64,
    /// The tile's raw limbs, row-major — the cache key.
    pub(crate) limbs: Box<[u64]>,
    pub(crate) meta: Arc<TileMeta>,
    /// Times the original cache served this plan.
    pub(crate) hits: u64,
}

impl SnapshotEntry {
    /// Whether this entry's plan was built for an `m × k` tile.
    ///
    /// The decoder can only check that an entry is *internally*
    /// consistent; whether it fits the importing cache's tile shape is
    /// known only at import time. A wrong-shape plan is worse than
    /// useless — its key can (rarely) collide with a live tile's flat
    /// limbs and then the executor would index out of bounds — so every
    /// import path drops mismatches, reported as
    /// [`ImportReport::skipped_shape`].
    pub(crate) fn matches_shape(&self, m: usize, k: usize) -> bool {
        self.meta.rows.len() == m && self.meta.rows.iter().all(|r| r.pattern.len() == k)
    }
}

/// The hottest plans of a cache, in recency order (hottest first), ready to
/// be encoded to bytes or imported into a fresh cache.
///
/// Produced by `Session::export_snapshot` /
/// [`SharedPlanCache::export_hottest`](super::SharedPlanCache::export_hottest);
/// consumed by the `warm_start` constructors and `import_snapshot` methods.
/// See the [module docs](self) for the lifecycle and format.
#[derive(Debug, Clone, Default)]
pub struct PlanSnapshot {
    pub(crate) entries: Vec<SnapshotEntry>,
}

impl PlanSnapshot {
    /// Number of plans captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no plans.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the snapshot into the versioned, checksummed binary
    /// format.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Serializes into a caller-owned buffer, reusing its capacity.
    ///
    /// This is the steady-state encode path: the header is written with a
    /// placeholder checksum, the payload is appended in place (no side
    /// buffer), and the checksum bytes are backpatched — so a warm buffer
    /// makes the whole encode allocation-free. The export thread's
    /// [`super::SnapshotStore`] holds one such buffer per store.
    // analyze: hot-path
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.clear();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(self.entries.len() as u32);
        buf.put_u64_le(0); // checksum placeholder, backpatched below
        for entry in &self.entries {
            encode_entry(buf, entry);
        }
        let checksum = fnv1a(&buf[HEADER_BYTES..]);
        buf[12..HEADER_BYTES].copy_from_slice(&checksum.to_le_bytes());
    }

    /// Decodes a snapshot previously written by [`PlanSnapshot::encode`].
    ///
    /// Never panics on malformed input: truncation, bit flips (caught by
    /// the payload checksum and the per-entry hash cross-check), version
    /// skew, and out-of-range fields all surface as [`SnapshotError`]s.
    pub fn decode(mut buf: Bytes) -> Result<Self, SnapshotError> {
        need(&buf, 4)?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        need(&buf, 16)?;
        let version = buf.get_u32_le();
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let count = buf.get_u32_le() as usize;
        let checksum = buf.get_u64_le();
        if fnv1a(&buf) != checksum {
            return Err(SnapshotError::ChecksumMismatch);
        }
        let mut entries = Vec::with_capacity(count.min(buf.remaining() / MIN_ENTRY_BYTES));
        for _ in 0..count {
            entries.push(decode_entry(&mut buf)?);
        }
        if buf.remaining() != 0 {
            return Err(SnapshotError::Corrupt("trailing bytes"));
        }
        Ok(Self { entries })
    }

    /// Writes [`PlanSnapshot::encode`]'s bytes to a file — atomically: the
    /// bytes land in `<path>.tmp` (written, then fsynced) and are renamed
    /// into place, so a crash mid-save can never leave a torn snapshot at
    /// `path`. Readers see either the previous complete file or the new
    /// complete one; a failed save cleans up its temp file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), SnapshotError> {
        atomic_write(path.as_ref(), &self.encode()).map_err(|e| SnapshotError::Io(e.to_string()))
    }

    /// Reads and decodes a snapshot file written by [`PlanSnapshot::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(e.to_string()))?;
        Self::decode(Bytes::from(bytes))
    }
}

/// Smallest possible encoded entry (all counts zero) — bounds the upfront
/// `Vec` reservation against a corrupt entry count.
const MIN_ENTRY_BYTES: usize = 8 + 8 + 4 + 8 + 8 + 4 + 4 + 4 + 4 + 4;

/// Crash-safe file write: `bytes` land in `<path>.tmp` first (written and
/// fsynced), then rename into place — the POSIX atomic-replace idiom, so a
/// crash at any point leaves either the previous complete file or the new
/// complete one at `path`, never a torn mix. A failed write removes its
/// temp file (best effort). Shared by [`PlanSnapshot::save`] and the
/// [`SnapshotStore`](super::SnapshotStore); every filesystem operation
/// passes through the fault-injection [`io_fault`] hook.
pub(crate) fn atomic_write(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let tmp = tmp_path(path);
    let result = (|| {
        io_fault("create temp file")?;
        let mut file = std::fs::File::create(&tmp)?;
        io_fault("write temp file")?;
        file.write_all(bytes)?;
        io_fault("sync temp file")?;
        file.sync_all()?;
        drop(file);
        io_fault("rename into place")?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// `<path>.tmp`, the staging name [`atomic_write`] renames from.
fn tmp_path(path: &std::path::Path) -> std::path::PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    std::path::PathBuf::from(os)
}

/// The injected failure for this IO operation, if a fault plan targets it;
/// compiles to `Ok(())` outside tests and the `fault-injection` feature.
#[inline]
pub(crate) fn io_fault(_op: &'static str) -> std::io::Result<()> {
    #[cfg(any(test, feature = "fault-injection"))]
    if let Some(err) = super::faults::maybe_io_error(_op) {
        return Err(err);
    }
    Ok(())
}

/// FNV-1a over the payload; cheap, order-sensitive, and enough to catch
/// the accidental corruption this format defends against (bit rot,
/// truncated writes) — it is not a cryptographic integrity check.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn need(buf: &Bytes, n: usize) -> Result<(), SnapshotError> {
    if buf.remaining() < n {
        Err(SnapshotError::Truncated)
    } else {
        Ok(())
    }
}

// analyze: hot-path
fn encode_entry(buf: &mut BytesMut, entry: &SnapshotEntry) {
    buf.put_u64_le(entry.hash);
    buf.put_u64_le(entry.hits);
    buf.put_u32_le(entry.limbs.len() as u32);
    for &limb in entry.limbs.iter() {
        buf.put_u64_le(limb);
    }
    let meta = &entry.meta;
    buf.put_u64_le(meta.row_start as u64);
    buf.put_u64_le(meta.col_start as u64);
    buf.put_u32_le(meta.valid_rows as u32);
    buf.put_u32_le(meta.valid_cols as u32);
    buf.put_u32_le(meta.sorter_stages as u32);
    buf.put_u32_le(meta.rows.len() as u32);
    let pattern_bits = meta.rows.first().map_or(0, |r| r.pattern.len());
    buf.put_u32_le(pattern_bits as u32);
    for row in &meta.rows {
        buf.put_u32_le(row.prefix.map_or(NO_PREFIX, |p| p as u32));
        buf.put_u8(match row.kind {
            MatchKind::None => 0,
            MatchKind::Partial => 1,
            MatchKind::Exact => 2,
        });
        for &limb in row.pattern.limbs() {
            buf.put_u64_le(limb);
        }
    }
    for &i in &meta.order {
        buf.put_u32_le(i as u32);
    }
}

fn decode_entry(buf: &mut Bytes) -> Result<SnapshotEntry, SnapshotError> {
    need(buf, 20)?;
    let hash = buf.get_u64_le();
    let hits = buf.get_u64_le();
    let limb_count = buf.get_u32_le() as usize;
    need(buf, limb_count * 8)?;
    let limbs: Box<[u64]> = (0..limb_count).map(|_| buf.get_u64_le()).collect();
    if hash_limbs(&limbs) != hash {
        return Err(SnapshotError::Corrupt("entry hash"));
    }
    need(buf, 8 + 8 + 4 + 4 + 4 + 4 + 4)?;
    let row_start = buf.get_u64_le() as usize;
    let col_start = buf.get_u64_le() as usize;
    let valid_rows = buf.get_u32_le() as usize;
    let valid_cols = buf.get_u32_le() as usize;
    let sorter_stages = buf.get_u32_le() as usize;
    let row_count = buf.get_u32_le() as usize;
    let pattern_bits = buf.get_u32_le() as usize;
    let pattern_words = pattern_bits.div_ceil(64);
    // Cross-field consistency: the key is `row_count` rows of
    // `pattern_words` limbs each, and the valid (non-padding) region can
    // never exceed the padded tile. A file that lies about any of these
    // must fail here, not panic later inside the executor.
    if limb_count != row_count * pattern_words {
        return Err(SnapshotError::Corrupt("key geometry"));
    }
    if valid_rows > row_count {
        return Err(SnapshotError::Corrupt("valid rows"));
    }
    if valid_cols > pattern_bits {
        return Err(SnapshotError::Corrupt("valid cols"));
    }
    // Reservations are clamped by the bytes actually present, so a
    // malformed count cannot force a huge upfront allocation.
    let mut rows = Vec::with_capacity(row_count.min(buf.remaining() / (5 + pattern_words * 8)));
    let mut pattern_limbs =
        Vec::with_capacity((row_count * pattern_words).min(buf.remaining() / 8));
    for _ in 0..row_count {
        need(buf, 5 + pattern_words * 8)?;
        let prefix = match buf.get_u32_le() {
            NO_PREFIX => None,
            p if (p as usize) < row_count => Some(p as usize),
            _ => return Err(SnapshotError::Corrupt("row prefix")),
        };
        let kind = match buf.get_u8() {
            0 => MatchKind::None,
            1 => MatchKind::Partial,
            2 => MatchKind::Exact,
            _ => return Err(SnapshotError::Corrupt("row kind")),
        };
        let mut pattern = BitRow::zeros(pattern_bits);
        for limb_idx in 0..pattern_words {
            let limb = buf.get_u64_le();
            pattern_limbs.push(limb);
            for bit in 0..64 {
                let j = limb_idx * 64 + bit;
                if j < pattern_bits && (limb >> bit) & 1 == 1 {
                    pattern.set(j, true);
                }
            }
        }
        // A stored limb may only carry bits within the declared pattern
        // length (the BitRow invariant the executor kernels rely on).
        if pattern.limbs() != &pattern_limbs[pattern_limbs.len() - pattern_words..] {
            return Err(SnapshotError::Corrupt("pattern tail bits"));
        }
        rows.push(RowMeta {
            prefix,
            kind,
            pattern,
        });
    }
    need(buf, row_count * 4)?;
    let mut position = vec![usize::MAX; row_count];
    let mut order = Vec::with_capacity(row_count);
    for pos in 0..row_count {
        let i = buf.get_u32_le() as usize;
        if i >= row_count || position[i] != usize::MAX {
            return Err(SnapshotError::Corrupt("execution order"));
        }
        position[i] = pos;
        order.push(i);
    }
    // The order must be *topological*, not just a permutation: the
    // executor computes each row on top of its prefix's already-finished
    // output, so a prefix scheduled after (or equal to) its dependent row
    // would silently read garbage — reject it here instead.
    for (i, row) in rows.iter().enumerate() {
        if let Some(p) = row.prefix {
            if p == i || position[p] >= position[i] {
                return Err(SnapshotError::Corrupt("execution order"));
            }
        }
    }
    Ok(SnapshotEntry {
        hash,
        limbs,
        meta: Arc::new(TileMeta {
            row_start,
            col_start,
            valid_rows,
            valid_cols,
            rows,
            pattern_limbs,
            order,
            sorter_stages,
        }),
        hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig, Session};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spikemat::gemm::{OutputMatrix, WeightMatrix};
    use spikemat::{SpikeMatrix, TileShape};

    /// A session warmed on a few random matrices, plus its traffic.
    fn warm_session(seed: u64, cache_capacity: usize) -> (Session<i64>, Vec<SpikeMatrix>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let config = EngineConfig::new(TileShape::new(8, 8), cache_capacity);
        let mut engine = Engine::new(config);
        let w = WeightMatrix::from_fn(24, 3, |r, c| (r * 5 + c) as i64 - 11);
        let mut out = OutputMatrix::zeros(0, 0);
        let spikes: Vec<SpikeMatrix> = (0..6)
            .map(|_| SpikeMatrix::random(20, 24, rng.gen_range(0.1..0.5), &mut rng))
            .collect();
        for s in &spikes {
            engine.gemm_into(s, &w, &mut out);
            engine.gemm_into(s, &w, &mut out); // second pass: per-slot hits
        }
        (engine, spikes)
    }

    fn entry_eq(a: &SnapshotEntry, b: &SnapshotEntry) -> bool {
        a.hash == b.hash
            && a.limbs == b.limbs
            && a.hits == b.hits
            && a.meta.row_start == b.meta.row_start
            && a.meta.col_start == b.meta.col_start
            && a.meta.valid_rows == b.meta.valid_rows
            && a.meta.valid_cols == b.meta.valid_cols
            && a.meta.sorter_stages == b.meta.sorter_stages
            && a.meta.rows == b.meta.rows
            && a.meta.pattern_limbs == b.meta.pattern_limbs
            && a.meta.order == b.meta.order
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        for seed in 0..8u64 {
            let (engine, _) = warm_session(0x500 + seed, 256);
            let snap = engine.export_snapshot(256);
            assert!(!snap.is_empty(), "seed {seed}");
            let decoded = PlanSnapshot::decode(snap.encode()).expect("roundtrip");
            assert_eq!(decoded.len(), snap.len(), "seed {seed}");
            for (i, (a, b)) in snap.entries.iter().zip(&decoded.entries).enumerate() {
                assert!(entry_eq(a, b), "seed {seed} entry {i} differs");
            }
        }
    }

    #[test]
    fn encode_into_matches_encode_and_reuses_buffer() {
        let (engine, _) = warm_session(0x5EED, 256);
        let snap = engine.export_snapshot(256);
        let reference = snap.encode();
        let mut buf = BytesMut::new();
        snap.encode_into(&mut buf);
        assert_eq!(&buf[..], &reference[..], "backpatched encode must agree");
        // A second pass into the same (now warm) buffer is identical too.
        snap.encode_into(&mut buf);
        assert_eq!(&buf[..], &reference[..]);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = PlanSnapshot::default();
        let bytes = snap.encode();
        assert_eq!(PlanSnapshot::decode(bytes).expect("empty ok").len(), 0);
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        let (engine, _) = warm_session(0x77, 64);
        let bytes = engine.export_snapshot(4).encode();
        for cut in 0..bytes.len() {
            assert!(
                PlanSnapshot::decode(bytes.slice(0..cut)).is_err(),
                "cut at {cut}/{} must fail",
                bytes.len()
            );
        }
        assert!(PlanSnapshot::decode(bytes).is_ok());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let (engine, _) = warm_session(0x99, 64);
        let clean = engine.export_snapshot(3).encode().to_vec();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            assert!(
                PlanSnapshot::decode(Bytes::from(bad)).is_err(),
                "flip at byte {i} slipped through"
            );
        }
    }

    #[test]
    fn version_skew_rejected() {
        let (engine, _) = warm_session(0xAB, 64);
        let mut bytes = engine.export_snapshot(2).encode().to_vec();
        bytes[4] = 99;
        assert!(matches!(
            PlanSnapshot::decode(Bytes::from(bytes)),
            Err(SnapshotError::BadVersion(99))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = PlanSnapshot::default().encode().to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            PlanSnapshot::decode(Bytes::from(bytes)),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn forged_checksum_cannot_smuggle_inconsistent_geometry() {
        // A writer can recompute the (non-cryptographic) checksum, so the
        // decoder must reject cross-field lies on its own — at decode
        // time, not as an executor panic at serve time.
        let (engine, _) = warm_session(0xBEEF, 64);
        let clean = engine.export_snapshot(1).encode().to_vec();
        // Entry layout after the 20-byte header: hash u64 | hits u64 |
        // limb_count u32 | limbs | row_start u64 | col_start u64 |
        // valid_rows u32 | valid_cols u32 | ...
        let limb_count = u32::from_le_bytes(clean[36..40].try_into().unwrap()) as usize;
        let valid_rows_at = 40 + limb_count * 8 + 16;
        let reforge = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut bytes = clean.clone();
            mutate(&mut bytes);
            let sum = fnv1a(&bytes[20..]);
            bytes[12..20].copy_from_slice(&sum.to_le_bytes());
            PlanSnapshot::decode(Bytes::from(bytes))
        };
        assert!(matches!(
            reforge(
                &|b| b[valid_rows_at..valid_rows_at + 4].copy_from_slice(&u32::MAX.to_le_bytes())
            ),
            Err(SnapshotError::Corrupt("valid rows"))
        ));
        assert!(matches!(
            reforge(&|b| b[valid_rows_at + 4..valid_rows_at + 8]
                .copy_from_slice(&u32::MAX.to_le_bytes())),
            Err(SnapshotError::Corrupt("valid cols"))
        ));
        // Huge declared counts must error, never attempt the allocation.
        let row_count_at = valid_rows_at + 12;
        assert!(matches!(
            reforge(&|b| {
                b[row_count_at..row_count_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
                b[row_count_at + 4..row_count_at + 8].copy_from_slice(&u32::MAX.to_le_bytes());
            }),
            Err(SnapshotError::Corrupt("key geometry"))
        ));
        // Untouched, the same reforge pipeline decodes fine.
        assert!(reforge(&|_| {}).is_ok());
    }

    #[test]
    fn forged_non_topological_order_is_rejected() {
        // A permutation is not enough: the executor computes each row on
        // top of its prefix, so a prefix ordered after its dependent row
        // (or a self-prefix) must fail at decode, not corrupt outputs at
        // serve time. Build a tile guaranteed to contain a prefix pair.
        let tile = SpikeMatrix::from_rows_of_bits(&[&[1, 0, 0, 1], &[1, 1, 0, 1]]);
        let config = EngineConfig::new(TileShape::new(2, 4), 16);
        let mut engine = Engine::<i64>::new(config);
        let w = WeightMatrix::from_fn(4, 2, |r, c| (r + c) as i64);
        let mut out = OutputMatrix::zeros(0, 0);
        engine.gemm_into(&tile, &w, &mut out);
        let snap = engine.export_snapshot(16);
        assert_eq!(snap.len(), 1);
        let meta = &snap.entries[0].meta;
        assert_eq!(meta.rows[1].prefix, Some(0), "row 1 must depend on row 0");
        assert_eq!(meta.order, vec![0, 1]);
        let clean = snap.encode().to_vec();
        // The two order u32s are the last 8 bytes; swap them (prefix now
        // scheduled after its dependent) and re-forge the checksum.
        let order_at = clean.len() - 8;
        let reforge = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut bytes = clean.clone();
            mutate(&mut bytes);
            let sum = fnv1a(&bytes[20..]);
            bytes[12..20].copy_from_slice(&sum.to_le_bytes());
            PlanSnapshot::decode(Bytes::from(bytes))
        };
        assert!(matches!(
            reforge(&|b| {
                b[order_at..order_at + 4].copy_from_slice(&1u32.to_le_bytes());
                b[order_at + 4..order_at + 8].copy_from_slice(&0u32.to_le_bytes());
            }),
            Err(SnapshotError::Corrupt("execution order"))
        ));
        assert!(reforge(&|_| {}).is_ok());
    }

    #[test]
    fn import_drops_entries_of_a_different_tile_shape() {
        // A snapshot from a process configured with another tile geometry
        // must not be served here: its plans could never be looked up, and
        // a (freak) key collision with a live tile would misindex the
        // executor. The session import path drops them, reported as such.
        let (engine, _) = warm_session(0x51A9, 256);
        let snap = engine.export_snapshot(256);
        let other = EngineConfig::new(TileShape::new(16, 4), 256);
        let (warm, report) = Session::<i64>::warm_start(other, &snap);
        assert_eq!(report.requested, snap.len());
        assert_eq!(report.skipped_shape, snap.len());
        assert_eq!(report.restored, 0);
        assert_eq!(warm.cached_plans(), 0);
        // Matching shape restores everything, skipping nothing.
        let (_, report) = Session::<i64>::warm_start(*engine.config(), &snap);
        assert_eq!(report.skipped_shape, 0);
        assert_eq!(report.restored, snap.len());
    }

    #[test]
    fn oversized_snapshot_degrades_to_partial_restore() {
        let (engine, spikes) = warm_session(0xCA, 256);
        let snap = engine.export_snapshot(256);
        let total = snap.len();
        assert!(total > 4, "need eviction pressure for this test");
        // Restore into a cache with room for only 4 plans: the 4 hottest
        // land, the rest are reported skipped, nothing panics.
        let small = EngineConfig::new(TileShape::new(8, 8), 4);
        let (mut warm, report) = Session::<i64>::warm_start(small, &snap);
        assert_eq!(report.requested, total);
        assert_eq!(report.restored, 4);
        assert_eq!(report.skipped_capacity, total - 4);
        assert_eq!(report.skipped_duplicate, 0);
        assert_eq!(warm.cached_plans(), 4);
        // The partially-restored session still serves correctly.
        let w = WeightMatrix::from_fn(24, 3, |r, c| (r * 5 + c) as i64 - 11);
        let mut out = OutputMatrix::zeros(0, 0);
        warm.gemm_into(&spikes[0], &w, &mut out);
        assert_eq!(out, spikemat::gemm::spiking_gemm(&spikes[0], &w));
    }

    #[test]
    fn import_into_warm_cache_skips_duplicates() {
        let (engine, _) = warm_session(0xD0, 256);
        let snap = engine.export_snapshot(256);
        let config = *engine.config();
        let (mut warm, first) = Session::<i64>::warm_start(config, &snap);
        assert_eq!(first.restored, snap.len());
        let again = warm.import_snapshot(&snap);
        assert_eq!(again.restored, 0);
        assert_eq!(again.skipped_duplicate, snap.len());
        assert_eq!(warm.cached_plans(), snap.len());
    }

    #[test]
    fn save_and_load_roundtrip_through_a_file() {
        let (engine, _) = warm_session(0xF1, 64);
        let snap = engine.export_snapshot(8);
        let path = std::env::temp_dir().join("prosperity_snapshot_test.psnp");
        snap.save(&path).expect("save");
        let loaded = PlanSnapshot::load(&path).expect("load");
        assert_eq!(loaded.len(), snap.len());
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            PlanSnapshot::load(&path),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn every_file_truncation_point_errors_cleanly() {
        // The on-disk mirror of the in-memory truncation property: a
        // partially written file — every possible torn length — must load
        // as a clean error, never a panic or a silently short snapshot.
        let (engine, _) = warm_session(0xF2, 64);
        let bytes = engine.export_snapshot(4).encode();
        let path = std::env::temp_dir().join("prosperity_snapshot_file_trunc_test.psnp");
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).expect("write truncated file");
            assert!(
                PlanSnapshot::load(&path).is_err(),
                "file cut at {cut}/{} must fail to load",
                bytes.len()
            );
        }
        std::fs::write(&path, &bytes[..]).expect("write full file");
        assert!(PlanSnapshot::load(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_a_failed_save_leaves_no_debris() {
        use crate::engine::faults;
        let (engine, _) = warm_session(0xF3, 64);
        let snap = engine.export_snapshot(8);
        let path = std::env::temp_dir().join("prosperity_snapshot_atomic_test.psnp");
        let tmp = super::tmp_path(&path);
        std::fs::remove_file(&path).ok();

        // Fail each of the four IO ops in turn: the save errors, the
        // destination never appears, and no temp file is left behind.
        for op in 0..4 {
            let guard = faults::install(faults::FaultPlan::fail_io(op));
            let err = snap.save(&path);
            assert!(guard.fired().fail_io, "op {op} targeted");
            assert!(matches!(err, Err(SnapshotError::Io(_))), "op {op}");
            assert!(!path.exists(), "op {op}: destination must not appear");
            assert!(!tmp.exists(), "op {op}: temp file must be cleaned up");
        }

        // A clean save lands, leaves no temp file, and loads back.
        snap.save(&path).expect("save");
        assert!(!tmp.exists(), "temp renamed away");
        assert_eq!(PlanSnapshot::load(&path).expect("load").len(), snap.len());

        // Overwrite with a failing save: the previous complete file
        // survives untouched — the atomic-replace guarantee.
        let before = std::fs::read(&path).expect("read");
        let _guard = faults::install(faults::FaultPlan::fail_io(2));
        assert!(snap.save(&path).is_err());
        assert_eq!(std::fs::read(&path).expect("read"), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn report_merge_sums_every_field() {
        let mut a = ImportReport {
            requested: 5,
            restored: 3,
            skipped_capacity: 1,
            skipped_duplicate: 1,
            skipped_shape: 0,
        };
        a.merge(&ImportReport {
            requested: 2,
            restored: 2,
            ..ImportReport::default()
        });
        assert_eq!(
            a,
            ImportReport {
                requested: 7,
                restored: 5,
                skipped_capacity: 1,
                skipped_duplicate: 1,
                skipped_shape: 0,
            }
        );
    }
}

//! Unit tests (kept beside the module, out of its main file).

use super::super::threshold_spikes;
use super::*;
use crate::exec::prosparsity_gemm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spikemat::gemm::spiking_gemm;
use spikemat::TileShape;

fn random_case(rng: &mut StdRng) -> (SpikeMatrix, WeightMatrix<i64>) {
    let m = rng.gen_range(1..50);
    let k = rng.gen_range(1..40);
    let n = rng.gen_range(1..8);
    let s = SpikeMatrix::random(m, k, rng.gen_range(0.05..0.6), rng);
    let w = WeightMatrix::from_fn(k, n, |_, _| rng.gen_range(-50i64..50));
    (s, w)
}

#[test]
fn engine_matches_reference_across_random_cases() {
    let mut rng = StdRng::seed_from_u64(11);
    for trial in 0..20 {
        let (s, w) = random_case(&mut rng);
        let tile = TileShape::new(rng.gen_range(1..=16), rng.gen_range(1..=16));
        let mut engine = Engine::new(EngineConfig::new(tile, rng.gen_range(0..8)));
        let mut out = OutputMatrix::zeros(0, 0);
        engine.gemm_into(&s, &w, &mut out);
        assert_eq!(out, spiking_gemm(&s, &w), "trial {trial}");
        assert_eq!(out, prosparsity_gemm(&s, &w, tile), "trial {trial}");
    }
}

#[test]
fn serial_and_parallel_paths_agree() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..10 {
        let (s, w) = random_case(&mut rng);
        let tile = TileShape::new(rng.gen_range(1..=12), rng.gen_range(1..=12));
        let mut engine = Engine::new(EngineConfig::new(tile, 16));
        let mut a = OutputMatrix::zeros(0, 0);
        let mut b = OutputMatrix::zeros(0, 0);
        engine.gemm_into(&s, &w, &mut a);
        engine.gemm_into_serial(&s, &w, &mut b);
        assert_eq!(a, b);
    }
}

#[test]
fn repeated_matrix_hits_cache_and_stays_lossless() {
    let mut rng = StdRng::seed_from_u64(13);
    let s = SpikeMatrix::random(64, 32, 0.3, &mut rng);
    let w = WeightMatrix::from_fn(32, 4, |r, c| (r * 7 + c) as i64 - 9);
    let mut engine = Engine::new(EngineConfig::new(TileShape::new(16, 16), 64));
    let reference = spiking_gemm(&s, &w);
    let mut out = OutputMatrix::zeros(0, 0);
    engine.gemm_into(&s, &w, &mut out);
    let misses_first = engine.stats().cache_misses;
    assert_eq!(out, reference);
    engine.gemm_into(&s, &w, &mut out);
    assert_eq!(out, reference);
    let stats = engine.stats();
    assert_eq!(stats.gemms, 2);
    // Second pass must be all hits.
    assert_eq!(stats.cache_misses, misses_first);
    assert_eq!(stats.cache_hits, misses_first);
    assert!(stats.hit_rate() > 0.49 && stats.hit_rate() < 0.51);
}

#[test]
fn identical_tiles_within_one_matrix_share_a_plan() {
    // Two identical 4-row bands → the second band's tile is a hit even
    // on the very first GeMM.
    let band = [
        &[1u8, 0, 1, 0][..],
        &[1, 0, 0, 1],
        &[1, 0, 1, 1],
        &[0, 1, 0, 0],
    ];
    let rows: Vec<&[u8]> = band.iter().chain(band.iter()).copied().collect();
    let s = SpikeMatrix::from_rows_of_bits(&rows);
    let w = WeightMatrix::from_fn(4, 3, |r, c| (r + 2 * c) as i64);
    let mut engine = Engine::new(EngineConfig::new(TileShape::new(4, 4), 8));
    let mut out = OutputMatrix::zeros(0, 0);
    engine.gemm_into(&s, &w, &mut out);
    assert_eq!(out, spiking_gemm(&s, &w));
    let stats = engine.stats();
    assert_eq!(stats.tiles, 2);
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 1);
}

#[test]
fn lru_evicts_oldest_and_result_stays_exact() {
    let mut rng = StdRng::seed_from_u64(14);
    // Capacity 2 with 4 distinct tiles per GeMM → constant eviction.
    let s = SpikeMatrix::random(16, 16, 0.4, &mut rng);
    let w = WeightMatrix::from_fn(16, 3, |r, c| (r * 3 + c) as i64 - 20);
    let mut engine = Engine::new(EngineConfig::new(TileShape::new(4, 16), 2));
    let reference = spiking_gemm(&s, &w);
    let mut out = OutputMatrix::zeros(0, 0);
    for _ in 0..3 {
        engine.gemm_into(&s, &w, &mut out);
        assert_eq!(out, reference);
    }
    let stats = engine.stats();
    assert!(stats.cache_evictions > 0, "{stats:?}");
    assert!(engine.cached_plans() <= 2);
}

#[test]
fn zero_capacity_disables_cache() {
    let mut rng = StdRng::seed_from_u64(15);
    let s = SpikeMatrix::random(20, 10, 0.3, &mut rng);
    let w = WeightMatrix::from_fn(10, 2, |r, c| (r + c) as i64);
    let mut engine = Engine::new(EngineConfig::new(TileShape::new(8, 8), 0));
    let mut out = OutputMatrix::zeros(0, 0);
    engine.gemm_into(&s, &w, &mut out);
    engine.gemm_into(&s, &w, &mut out);
    assert_eq!(out, spiking_gemm(&s, &w));
    assert_eq!(engine.stats().cache_hits, 0);
    assert_eq!(engine.cached_plans(), 0);
}

#[test]
fn shared_sessions_see_each_others_plans() {
    let mut rng = StdRng::seed_from_u64(31);
    let s = SpikeMatrix::random(64, 32, 0.3, &mut rng);
    let w = WeightMatrix::from_fn(32, 4, |r, c| (r * 5 + c) as i64 - 7);
    let shared = Arc::new(SharedPlanCache::new(256));
    let config = EngineConfig::new(TileShape::new(16, 16), 0);
    let mut a = Session::with_shared(config, Arc::clone(&shared));
    let mut b = Session::with_shared(config, Arc::clone(&shared));
    let reference = spiking_gemm(&s, &w);
    let mut out = OutputMatrix::zeros(0, 0);
    a.gemm_into(&s, &w, &mut out);
    assert_eq!(out, reference);
    let a_misses = a.stats().cache_misses;
    assert!(a_misses > 0);
    // Session B planned nothing: every tile was warmed by A.
    b.gemm_into(&s, &w, &mut out);
    assert_eq!(out, reference);
    assert_eq!(b.stats().cache_misses, 0);
    assert_eq!(b.stats().cache_hits, a_misses + a.stats().cache_hits);
    assert!(a.shared_cache().is_some());
    assert_eq!(a.cached_plans(), shared.len());
    // Shared-cache counters audit the combined traffic.
    let cs = shared.stats();
    assert_eq!(cs.misses, a_misses);
    assert_eq!(cs.insertions, a_misses);
}

#[test]
fn admission_bypass_keeps_results_exact() {
    // A stream of all-distinct matrices: admission closes after the
    // first window, bypassed tiles still execute losslessly.
    let mut rng = StdRng::seed_from_u64(33);
    let config =
        EngineConfig::new(TileShape::new(8, 8), 64).with_admission(super::super::AdmissionConfig {
            window: 16,
            min_hit_permille: 100,
            probe_period: 8,
        });
    let mut engine = Engine::new(config);
    let mut out = OutputMatrix::zeros(0, 0);
    for _ in 0..12 {
        let s = SpikeMatrix::random(24, 24, 0.5, &mut rng);
        let w = WeightMatrix::from_fn(24, 3, |r, c| (r + c) as i64 - 11);
        engine.gemm_into(&s, &w, &mut out);
        assert_eq!(out, spiking_gemm(&s, &w));
    }
    let stats = engine.stats();
    assert!(stats.cache_bypasses > 0, "{stats:?}");
    // Bypassed plans never displaced anything.
    assert!(engine.cached_plans() <= 64);
}

#[test]
fn run_layers_recycles_one_output_buffer() {
    let mut rng = StdRng::seed_from_u64(17);
    let layers: Vec<(SpikeMatrix, WeightMatrix<i64>)> =
        (0..4).map(|_| random_case(&mut rng)).collect();
    let mut engine = Engine::<i64>::default();
    let mut seen = 0;
    engine.run_layers(layers.iter().map(|(s, w)| (s, w)), |i, out| {
        assert_eq!(out, &spiking_gemm(&layers[i].0, &layers[i].1));
        seen += 1;
    });
    assert_eq!(seen, 4);
    assert_eq!(engine.stats().gemms, 4);
}

#[test]
fn forward_chain_matches_manual_loop() {
    let mut rng = StdRng::seed_from_u64(18);
    let input = SpikeMatrix::random(24, 12, 0.35, &mut rng);
    let dims = [12usize, 9, 7, 5];
    let layers: Vec<WeightMatrix<i64>> = dims
        .windows(2)
        .map(|d| WeightMatrix::from_fn(d[0], d[1], |_, _| rng.gen_range(-3i64..4)))
        .collect();
    let threshold = 2i64;

    let mut engine = Engine::new(EngineConfig::new(TileShape::new(8, 8), 32));
    let mut got = SpikeMatrix::zeros(0, 0);
    engine.forward_chain(&input, &layers, threshold, &mut got);

    // Manual reference: gemm + threshold per layer.
    let mut cur = input.clone();
    for w in &layers {
        let out = spiking_gemm(&cur, w);
        let mut next = SpikeMatrix::zeros(0, 0);
        threshold_spikes(&out, threshold, &mut next);
        cur = next;
    }
    assert_eq!(got, cur);
    // A second pass through the warmed engine (and cached ChainLayout)
    // is identical.
    let mut again = SpikeMatrix::zeros(0, 0);
    engine.forward_chain(&input, &layers, threshold, &mut again);
    assert_eq!(again, cur);
    assert!(engine.stats().cache_hits > 0);
}

#[test]
#[should_panic(expected = "does not chain")]
fn forward_chain_rejects_broken_adjacency() {
    let mut engine = Engine::<i64>::default();
    let input = SpikeMatrix::zeros(4, 8);
    let layers = vec![
        WeightMatrix::from_fn(8, 6, |_, _| 1i64),
        WeightMatrix::from_fn(5, 3, |_, _| 1i64), // 6 != 5
    ];
    let mut out = SpikeMatrix::zeros(0, 0);
    engine.forward_chain(&input, &layers, 1, &mut out);
}

#[test]
fn chain_layout_revalidates_on_geometry_change() {
    let mut rng = StdRng::seed_from_u64(19);
    let mut engine = Engine::new(EngineConfig::new(TileShape::new(8, 8), 32));
    let mut got = SpikeMatrix::zeros(0, 0);
    for dims in [[10usize, 8, 6], [12usize, 5, 9]] {
        let input = SpikeMatrix::random(16, dims[0], 0.3, &mut rng);
        let layers: Vec<WeightMatrix<i64>> = dims
            .windows(2)
            .map(|d| WeightMatrix::from_fn(d[0], d[1], |_, _| rng.gen_range(-3i64..4)))
            .collect();
        engine.forward_chain(&input, &layers, 1, &mut got);
        let mut cur = input.clone();
        for w in &layers {
            let out = spiking_gemm(&cur, w);
            let mut next = SpikeMatrix::zeros(0, 0);
            threshold_spikes(&out, 1, &mut next);
            cur = next;
        }
        assert_eq!(got, cur, "dims {dims:?}");
    }
}

#[test]
fn empty_and_degenerate_shapes() {
    let mut engine = Engine::<i64>::default();
    let mut out = OutputMatrix::zeros(0, 0);
    // Zero output columns.
    let s = SpikeMatrix::random(5, 4, 0.5, &mut StdRng::seed_from_u64(1));
    let w0 = WeightMatrix::from_fn(4, 0, |_, _| 0i64);
    engine.gemm_into(&s, &w0, &mut out);
    assert_eq!((out.rows(), out.cols()), (5, 0));
    // Zero-row spike matrix.
    let empty = SpikeMatrix::zeros(0, 4);
    let w = WeightMatrix::from_fn(4, 3, |_, _| 1i64);
    engine.gemm_into(&empty, &w, &mut out);
    assert_eq!((out.rows(), out.cols()), (0, 3));
}

#[test]
#[should_panic(expected = "does not match weight rows")]
fn shape_mismatch_panics() {
    let mut engine = Engine::<i64>::default();
    let s = SpikeMatrix::zeros(2, 3);
    let w = WeightMatrix::from_fn(4, 2, |_, _| 0i64);
    let mut out = OutputMatrix::zeros(0, 0);
    engine.gemm_into(&s, &w, &mut out);
}

//! Spiking attention on the PPU (paper Sec. IV, "Support for Transformers").
//!
//! Spiking self-attention multiplies *binary* matrices: `Q·Kᵀ` is a spike
//! matrix times a spike matrix, and `attn·V` likewise. Both are
//! "spiking-GeMM-like" and are executed on the same ProSparsity pipeline by
//! treating one binary operand as a 0/1 integer weight matrix — which is why
//! Prosperity supports spiking transformers that prior SNN ASICs cannot.

use crate::engine::Engine;
use crate::exec::prosparsity_gemm;
use spikemat::gemm::{OutputMatrix, WeightMatrix};
use spikemat::{SpikeMatrix, TileShape};

/// Lowers a binary spike matrix into a 0/1 integer weight matrix so it can
/// serve as the stationary operand of a spiking GeMM.
pub fn spikes_as_weights(spikes: &SpikeMatrix) -> WeightMatrix<i64> {
    WeightMatrix::from_fn(spikes.rows(), spikes.cols(), |r, c| {
        i64::from(spikes.get(r, c))
    })
}

/// Computes the spiking attention score matrix `Q · Kᵀ` under product
/// sparsity.
///
/// `q` is `(T·L) × d` and `k` is `L × d` (key vectors per position); the
/// result is the `(T·L) × L` integer score matrix. Exact: binary × binary
/// products are integer dot products, so ProSparsity reuse is lossless.
///
/// # Panics
///
/// Panics if the head dimensions of `q` and `k` differ.
pub fn spiking_qk(q: &SpikeMatrix, k: &SpikeMatrix, tile: TileShape) -> OutputMatrix<i64> {
    assert_eq!(q.cols(), k.cols(), "Q and K head dimensions differ");
    let kt = k.transpose(); // d × L
    prosparsity_gemm(q, &spikes_as_weights(&kt), tile)
}

/// Computes `attn · V` for *binary* attention maps (spike-driven attention):
/// the binarized score matrix selects and accumulates value rows.
pub fn spiking_av(
    attn: &SpikeMatrix,
    values: &WeightMatrix<i64>,
    tile: TileShape,
) -> OutputMatrix<i64> {
    prosparsity_gemm(attn, values, tile)
}

/// Lowers a key matrix once for repeated [`spiking_qk_prelowered`] calls:
/// `Kᵀ` as a 0/1 weight matrix (`d × L`).
pub fn lower_keys(k: &SpikeMatrix) -> WeightMatrix<i64> {
    spikes_as_weights(&k.transpose())
}

/// [`spiking_qk`] through a reusable [`Engine`]: the score GeMM goes via the
/// tile plan cache and pooled output buffer, so repeated attention heads and
/// timesteps (whose query tiles are temporally correlated) skip re-planning.
/// The tile geometry comes from the engine's configuration.
///
/// This re-lowers `k` on every call for parity with [`spiking_qk`]; a
/// serving loop whose keys are fixed across timesteps should [`lower_keys`]
/// once and call [`spiking_qk_prelowered`] so the steady state stays
/// allocation-free.
///
/// # Panics
///
/// Panics if the head dimensions of `q` and `k` differ.
pub fn spiking_qk_with(
    engine: &mut Engine<i64>,
    q: &SpikeMatrix,
    k: &SpikeMatrix,
    out: &mut OutputMatrix<i64>,
) {
    assert_eq!(q.cols(), k.cols(), "Q and K head dimensions differ");
    spiking_qk_prelowered(engine, q, &lower_keys(k), out);
}

/// [`spiking_qk_with`] with keys already lowered by [`lower_keys`] — the
/// zero-steady-state-allocation attention path for constant-key streams.
pub fn spiking_qk_prelowered(
    engine: &mut Engine<i64>,
    q: &SpikeMatrix,
    kt_weights: &WeightMatrix<i64>,
    out: &mut OutputMatrix<i64>,
) {
    engine.gemm_into(q, kt_weights, out);
}

/// [`spiking_av`] through a reusable [`Engine`] (cached plans + pooled
/// output); binary attention maps across timesteps are highly repetitive,
/// which is exactly what the tile cache exploits.
pub fn spiking_av_with(
    engine: &mut Engine<i64>,
    attn: &SpikeMatrix,
    values: &WeightMatrix<i64>,
    out: &mut OutputMatrix<i64>,
) {
    engine.gemm_into(attn, values, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikemat::gemm::spiking_gemm;

    fn q_matrix() -> SpikeMatrix {
        SpikeMatrix::from_rows_of_bits(&[
            &[1, 0, 1, 0],
            &[1, 0, 0, 1],
            &[1, 0, 1, 1],
            &[1, 0, 1, 0], // duplicate of row 0 → EM reuse in attention
        ])
    }

    fn k_matrix() -> SpikeMatrix {
        SpikeMatrix::from_rows_of_bits(&[&[1, 1, 0, 0], &[0, 0, 1, 1], &[1, 0, 1, 0]])
    }

    #[test]
    fn qk_scores_are_set_intersections() {
        let scores = spiking_qk(&q_matrix(), &k_matrix(), TileShape::new(4, 4));
        // score[i][j] = |S_qi ∩ S_kj|.
        let q = q_matrix();
        let k = k_matrix();
        for i in 0..q.rows() {
            for j in 0..k.rows() {
                let expect = q.row(i).and(k.row(j)).popcount() as i64;
                assert_eq!(scores.get(i, j), expect, "({i},{j})");
            }
        }
    }

    #[test]
    fn qk_matches_reference_gemm() {
        let q = q_matrix();
        let k = k_matrix();
        let kt = k.transpose();
        let w = spikes_as_weights(&kt);
        assert_eq!(
            spiking_qk(&q, &k, TileShape::new(2, 2)),
            spiking_gemm(&q, &w)
        );
    }

    #[test]
    fn duplicate_queries_share_score_rows() {
        let scores = spiking_qk(&q_matrix(), &k_matrix(), TileShape::new(4, 4));
        assert_eq!(scores.row(0), scores.row(3));
    }

    #[test]
    fn av_accumulates_selected_values() {
        let attn = SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[0, 1, 0]]);
        let v = WeightMatrix::from_vec(3, 2, vec![1, 2, 10, 20, 100, 200]);
        let out = spiking_av(&attn, &v, TileShape::new(2, 3));
        assert_eq!(out.row(0), &[101, 202]);
        assert_eq!(out.row(1), &[10, 20]);
    }

    #[test]
    fn engine_attention_matches_direct_lowering() {
        use crate::engine::EngineConfig;
        use spikemat::TileShape;
        let q = q_matrix();
        let k = k_matrix();
        let tile = TileShape::new(2, 2);
        let mut engine = Engine::new(EngineConfig::new(tile, 32));
        let mut scores = OutputMatrix::zeros(0, 0);
        spiking_qk_with(&mut engine, &q, &k, &mut scores);
        assert_eq!(scores, spiking_qk(&q, &k, tile));
        // Binarize the scores and push them through attn·V on both paths.
        let attn =
            SpikeMatrix::from_rows_of_bits(&[&[1, 0, 1], &[0, 1, 0], &[1, 1, 0], &[1, 0, 1]]);
        let v = WeightMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as i64 + 1);
        let mut av = OutputMatrix::zeros(0, 0);
        spiking_av_with(&mut engine, &attn, &v, &mut av);
        assert_eq!(av, spiking_av(&attn, &v, tile));
        // Re-running the same head is served from the cache, identically.
        let hits_before = engine.stats().cache_hits;
        let mut again = OutputMatrix::zeros(0, 0);
        spiking_qk_with(&mut engine, &q, &k, &mut again);
        assert_eq!(again, scores);
        assert!(engine.stats().cache_hits > hits_before);
    }

    #[test]
    #[should_panic(expected = "head dimensions differ")]
    fn dimension_mismatch_panics() {
        let q = SpikeMatrix::zeros(2, 4);
        let k = SpikeMatrix::zeros(2, 5);
        let _ = spiking_qk(&q, &k, TileShape::new(2, 2));
    }
}
